// Design-choice ablations (DESIGN.md Sec 6) on the M1 system:
//   1. MSE threshold sweep — Sec 3.3 fixes 0.5 because "more than 0.5 MSE
//      ... emitted chains quite dissimilar from the trained failure chains";
//      the sweep exposes the precision/recall cliff around that value.
//   2. Cumulative vs adjacent deltaT — Sec 3.2's cumulative time-to-terminal
//      encoding vs plain inter-arrival gaps: the lead-time forecast
//      (predicted minutes-to-failure) should degrade without the cumulative
//      signal.
//   3. Skip-gram pre-training on/off — Sec 3.1's word-embedding
//      vectorization as initialization for the LSTM embedding tables.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/phase3.hpp"
#include "nn/inference_backend.hpp"
#include "util/table.hpp"

using namespace desh;

namespace {

struct AblationOutcome {
  core::SystemEvaluation eval;
  double lead_forecast_error = 0;  // mean |predicted - actual| lead, seconds
};

AblationOutcome evaluate_run(const bench::SystemRun& r) {
  AblationOutcome out{core::Evaluator::evaluate(r.run.candidates,
                                                r.run.predictions, r.log.truth),
                      0};
  double err = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < r.run.predictions.size(); ++i) {
    const core::FailurePrediction& p = r.run.predictions[i];
    if (!p.flagged) continue;
    err += std::abs(p.predicted_lead_seconds - p.lead_seconds);
    ++n;
  }
  out.lead_forecast_error = n ? err / static_cast<double>(n) : 0;
  return out;
}

}  // namespace

int main() {
  bench::print_env_header("bench_ablation_design");
  std::cout << "=== Design ablations on M1 ===\n\n";
  const logs::SystemProfile profile = logs::profile_m1();

  // --- Baseline run (paper configuration) -------------------------------
  const bench::SystemRun base = bench::run_system(profile);
  const AblationOutcome base_out = evaluate_run(base);

  // --- 1. Threshold sweep: re-decide, no retraining needed --------------
  std::cout << "\n--- 1. MSE threshold sweep (paper operating point: 0.5) ---\n";
  util::TextTable tsweep({"Threshold", "Recall %", "Precision %", "FP rate %"});
  for (const float threshold : {0.15f, 0.3f, 0.5f, 0.7f, 0.9f, 1.2f}) {
    core::Phase3Config p3 = base.pipeline.config().phase3;
    p3.mse_threshold = threshold;
    const nn::ReferenceBackend backend(base.pipeline.phase2().model());
    core::Phase3Predictor predictor(backend, p3);
    std::vector<core::FailurePrediction> predictions;
    for (const chains::CandidateSequence& c : base.run.candidates)
      predictions.push_back(predictor.decide(c));
    const auto eval = core::Evaluator::evaluate(base.run.candidates,
                                                predictions, base.log.truth);
    tsweep.add_row({util::format_fixed(threshold, 2),
                    bench::pct(eval.metrics.recall),
                    bench::pct(eval.metrics.precision),
                    bench::pct(eval.metrics.fp_rate)});
  }
  tsweep.print(std::cout);
  std::cout << "Expected shape: recall saturates near 0.5 while the FP rate "
               "keeps climbing — the paper's threshold sits at the knee.\n";

  // --- 2 & 3. Retraining ablations ---------------------------------------
  core::DeshConfig adjacent_config;
  adjacent_config.phase3.cumulative_dt = false;
  std::cout << "\n--- 2. deltaT encoding (retrains phase 2) ---\n";
  const bench::SystemRun adjacent = bench::run_system(profile, adjacent_config);
  const AblationOutcome adjacent_out = evaluate_run(adjacent);

  core::DeshConfig no_sg_config;
  no_sg_config.skipgram.enabled = false;
  std::cout << "\n--- 3. skip-gram pre-training (retrains phases 1-2) ---\n";
  const bench::SystemRun no_sg = bench::run_system(profile, no_sg_config);
  const AblationOutcome no_sg_out = evaluate_run(no_sg);

  std::cout << "\n";
  util::TextTable table({"Variant", "Recall %", "Precision %",
                         "Lead forecast err s", "Phase1 acc %"});
  auto add = [&](const std::string& name, const bench::SystemRun& r,
                 const AblationOutcome& o) {
    table.add_row({name, bench::pct(o.eval.metrics.recall),
                   bench::pct(o.eval.metrics.precision),
                   util::format_fixed(o.lead_forecast_error, 1),
                   bench::pct(r.fit.phase1_accuracy)});
  };
  add("paper config (cumulative dT, skip-gram)", base, base_out);
  add("adjacent dT", adjacent, adjacent_out);
  add("no skip-gram init", no_sg, no_sg_out);
  table.print(std::cout);

  std::cout << "\nKey claim (Sec 3.2): the cumulative deltaT carries the "
               "lead-time signal — its forecast error ("
            << util::format_fixed(base_out.lead_forecast_error, 1)
            << "s) should be clearly below the adjacent-gap encoding's ("
            << util::format_fixed(adjacent_out.lead_forecast_error, 1)
            << "s).\n";
  return 0;
}
