// Sec 4.1 ablation — history-size sensitivity of phase-1 next-phrase
// prediction: "Experimentation proved 3-step prediction with 2 hidden
// layers to have ~85% accuracy ... Reducing the history size to 3 brings
// down the accuracy by 10% to 14%." Sweeps history in {3, 5, 8} on M1's
// corpus and also ablates the hidden-layer count (1 vs 2, Sec 3.1: "more
// than 1 hidden layer strengthens LSTM's efficacy").
#include <iostream>

#include "bench_common.hpp"
#include "chains/parsed_log.hpp"
#include "core/phase1.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_ablation_history");
  std::cout << "=== Sec 4.1 ablation: phase-1 accuracy vs history size and "
               "hidden layers ===\n\n";

  logs::SyntheticCraySource source(logs::profile_m1());
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  logs::PhraseVocab vocab;
  const chains::ParsedLog parsed_train = chains::parse_corpus(train, vocab, true);
  const chains::ParsedLog parsed_test = chains::parse_corpus(test, vocab, false);
  std::cout << "M1 corpus: " << parsed_train.event_count << " train events, "
            << parsed_test.event_count << " test events, vocab "
            << vocab.size() << "\n\n";

  util::TextTable table({"History", "Hidden layers", "Train acc %",
                         "Test acc %", "Paper reference"});
  double acc_h8 = 0, acc_h3 = 0;
  for (const std::size_t layers : {std::size_t{2}, std::size_t{1}}) {
    for (const std::size_t history : {std::size_t{8}, std::size_t{5},
                                      std::size_t{3}}) {
      core::Phase1Config config;
      config.history = history;
      config.num_layers = layers;
      config.epochs = 7;  // converge both depths; the sweep compares ceilings
      util::Rng rng(31 + history * 10 + layers);
      core::Phase1Trainer trainer(config, vocab.size(), rng);
      trainer.fit(parsed_train);
      const double train_acc = trainer.accuracy(parsed_train, history);
      const double test_acc = trainer.accuracy(parsed_test, history);
      std::string reference;
      if (layers == 2 && history == 8)
        reference = "paper: ~85% accuracy";
      else if (layers == 2 && history == 3)
        reference = "paper: 10-14% below history 8";
      table.add_row({std::to_string(history), std::to_string(layers),
                     bench::pct(train_acc), bench::pct(test_acc), reference});
      if (layers == 2 && history == 8) acc_h8 = test_acc;
      if (layers == 2 && history == 3) acc_h3 = test_acc;
      std::cout << "trained history=" << history << " layers=" << layers
                << " -> test acc " << bench::pct(test_acc) << "%\n";
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nAblation check: history 3 costs "
            << util::format_fixed((acc_h8 - acc_h3) * 100, 1)
            << " accuracy points vs history 8 (paper: 10-14 points).\n";
  return 0;
}
