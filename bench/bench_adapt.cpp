// Online-adaptation bench: the two promises desh::adapt makes to a serving
// deployment, measured and asserted.
//
//  1. Ingest isolation — a background retrain must not stall the serving
//     ingest path. Measures per-submit() latency p99 with no retrain, then
//     again while a challenger fit runs on the retrainer thread, and
//     asserts p99_during <= 1.5 x max(p99_base, floor). The floor (20 us)
//     absorbs clock granularity and scheduler jitter on small containers:
//     on a single hardware thread the retrain and ingest threads timeshare,
//     so an absolute sub-floor baseline would turn OS noise into a bench
//     failure. Submissions are measured against an unpumped deep queue so
//     the number isolates the admission path itself.
//
//  2. Validated swap + provable rollback — the full closed loop on a
//     drifted stream: drift latch -> inline retrain -> challenger wins the
//     shadow eval -> registry v2 + server hot swap; then a second shift
//     during probation breaks the challenger's promise and the controller
//     rolls the registry champion back to v1 and re-installs the prior
//     snapshot on the server.
//
//   ./bench_adapt [--records N] [--smoke]
//
// --smoke shrinks the p99 sample count (the ctest wiring runs this mode);
// every assertion stays armed.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "desh.hpp"
#include "util/cli.hpp"

using namespace desh;

namespace {

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FAIL: " << what << "\n";
    std::exit(1);
  }
}

/// The drifted stream: the tiny-profile test corpus with a novel fault
/// family (absent from the champion's vocabulary) after every other record.
logs::LogCorpus make_drifted_stream(const logs::LogCorpus& test) {
  logs::LogCorpus stream;
  std::size_t i = 0;
  for (const logs::LogRecord& record : test) {
    stream.push_back(record);
    if (++i % 2 == 0) {
      logs::LogRecord novel = record;
      novel.message =
          "widget driver fault on port " + std::to_string(i % 7);
      novel.timestamp += 1e-3;
      stream.push_back(std::move(novel));
    }
  }
  return stream;
}

adapt::AdaptOptions adapt_options(const std::string& root) {
  adapt::AdaptOptions o;
  o.registry_root = root;
  o.trainer.phase1.epochs = 1;
  o.trainer.threads = 1;
  o.config.oov_window = 64;
  o.config.novelty_window = 64;
  o.config.min_window_fill = 16;
  o.config.hysteresis = 2;
  o.config.oov_trigger = 0.2;
  o.config.oov_clear = 0.05;
  o.config.replay_capacity = 1u << 16;
  o.config.min_replay_records = 512;
  o.config.retrain_cooldown_records = 1u << 20;
  // Probation must outlast the post-swap tail of the stream so the
  // regression burst lands while the promise is still being checked; the
  // regression test is on the cumulative OOV rate since the swap.
  o.config.probation_records = 4096;
  o.config.regression_margin = 0.10;
  return o;
}

double p99_submit_seconds(serve::InferenceServer& server,
                          const logs::LogCorpus& stream, std::size_t n) {
  std::vector<double> latencies;
  latencies.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const logs::LogRecord& r = stream[i % stream.size()];
    const auto t0 = std::chrono::steady_clock::now();
    const serve::Admission admission = server.submit(r);
    const auto t1 = std::chrono::steady_clock::now();
    check(admission == serve::Admission::kAccepted, "submit rejected");
    latencies.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(latencies.begin(), latencies.end());
  return latencies[(latencies.size() * 99) / 100];
}

/// Promise 1: background retrain leaves the ingest path's p99 alone.
void bench_ingest_isolation(
    const std::shared_ptr<const core::DeshPipeline>& champion,
    const logs::LogCorpus& stream, std::size_t n,
    const std::string& registry_root) {
  serve::ServeConfig config;
  config.queue_capacity = n;  // never pumped mid-measurement: admission only
  config.start_collector = false;

  // Baseline: no controller, no retrain.
  auto baseline_server =
      std::move(serve::InferenceServer::create(*champion, config).value());
  const double p99_base = p99_submit_seconds(*baseline_server, stream, n);
  baseline_server->stop();

  // Measured run: same submissions while a challenger fit runs on the
  // controller's background thread. Drift is silenced (huge min_fill);
  // force_retrain() launches the fit explicitly.
  adapt::AdaptOptions opts = adapt_options(registry_root);
  opts.config.background = true;
  opts.config.oov_window = 1u << 16;
  opts.config.novelty_window = 1u << 16;
  opts.config.calibration_window = 1u << 16;
  opts.config.min_window_fill = 1u << 16;
  auto server =
      std::move(serve::InferenceServer::create(*champion, config).value());
  auto controller =
      std::move(adapt::AdaptController::create(champion, opts)).value();
  controller->attach(*server);
  controller->on_batch(stream, {});  // prime the replay buffer directly
  check(controller->force_retrain(), "retrain refused");
  check(controller->stats().retrain_in_flight, "retrain not in flight");
  const double p99_during = p99_submit_seconds(*server, stream, n);
  controller->wait_idle();
  check(controller->stats().retrains == 1, "retrain count");
  controller->stop();
  server->stop();

  // 1-CPU containers timeshare the two threads; the floor keeps scheduler
  // jitter on a sub-microsecond baseline from failing the assertion.
#ifdef DESH_TSAN
  // TSan serializes instrumented threads far more aggressively (~10x), so
  // the retrain thread steals bigger timeslices from ingest. This run
  // checks for races, not latency isolation — widen both knobs.
  const double floor = 200e-6;
  const double bound = 5.0 * std::max(p99_base, floor);
#else
  const double floor = 20e-6;
  const double bound = 1.5 * std::max(p99_base, floor);
#endif
  std::cout << "ingest p99: baseline " << util::format_fixed(p99_base * 1e6, 2)
            << " us, during retrain "
            << util::format_fixed(p99_during * 1e6, 2) << " us (bound "
            << util::format_fixed(bound * 1e6, 2) << " us)\n";
  check(p99_during <= bound,
        "ingest p99 during background retrain exceeds 1.5x baseline");
}

/// Promise 2: the closed loop swaps on real drift and provably rolls back
/// on a post-swap regression.
void bench_swap_and_rollback(
    const std::shared_ptr<const core::DeshPipeline>& champion,
    const logs::LogCorpus& stream, const std::string& registry_root) {
  serve::ServeConfig config;
  config.queue_capacity = stream.size();
  config.max_batch = 128;
  config.start_collector = false;
  auto server =
      std::move(serve::InferenceServer::create(*champion, config).value());
  adapt::AdaptOptions opts = adapt_options(registry_root);
  opts.config.background = false;  // inline: the swap lands mid-stream
  auto controller =
      std::move(adapt::AdaptController::create(champion, opts)).value();
  controller->attach(*server);
  check(controller->registry().champion().value_or(0) == 1,
        "incumbent not published as v1");

  util::Stopwatch sw;
  for (std::size_t at = 0; at < stream.size(); at += 128) {
    const std::size_t n = std::min<std::size_t>(128, stream.size() - at);
    for (std::size_t i = 0; i < n; ++i) (void)server->submit(stream[at + i]);
    server->pump();
  }
  server->drain();
  const double swap_seconds = sw.elapsed_seconds();
  adapt::AdaptStats stats = controller->stats();
  check(stats.drift_triggers >= 1, "drift never triggered");
  check(stats.promotions == 1, "challenger not promoted");
  check(stats.last_shadow.challenger_wins, "challenger lost shadow eval");
  check(controller->registry().champion().value_or(0) == 2,
        "registry champion must be v2 after the swap");
  check(server->stats().reloads == 1, "server never installed the swap");
  std::cout << "drift -> retrain -> validated swap: v"
            << *controller->registry().champion() << " in "
            << util::format_fixed(swap_seconds, 2) << " s (shadow: champion "
            << util::format_fixed(stats.last_shadow.champion_score, 3)
            << " vs challenger "
            << util::format_fixed(stats.last_shadow.challenger_score, 3)
            << ")\n";

  // Post-swap regression: a family even the fresh challenger has never
  // seen floods the stream. 512 all-OOV records against the ~700-record
  // post-swap tail push the cumulative probation OOV rate far past the
  // challenger's holdout promise + regression margin.
  logs::LogCorpus burst;
  for (std::size_t i = 0; i < 512; ++i) {
    logs::LogRecord r = stream.back();
    r.message = "gizmo cache stall detected lane " + std::to_string(i % 5);
    r.timestamp += 1.0 + static_cast<double>(i);
    burst.push_back(std::move(r));
  }
  for (const logs::LogRecord& r : burst) (void)server->submit(r);
  server->pump();   // the tap sees the burst; the rollback stages
  server->drain();  // boundary: the prior snapshot re-installs
  stats = controller->stats();
  check(stats.rollbacks == 1, "probation regression did not roll back");
  check(controller->registry().champion().value_or(0) == 1,
        "registry champion must be back to v1 after rollback");
  check(!controller->registry().previous_champion().has_value(),
        "rollback must spend the rollback slot");
  check(server->stats().reloads == 2, "server never installed the rollback");
  check(controller->champion().get() == champion.get(),
        "controller champion must be the original snapshot");
  std::cout << "probation regression -> rollback: registry champion back to v"
            << *controller->registry().champion() << ", server reloads "
            << server->stats().reloads << "\n";

  controller->stop();
  server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const bool smoke = args.has("smoke");
  const std::size_t n = static_cast<std::size_t>(
      args.get_int("records", smoke ? 20000 : 200000));
  bench::print_env_header("adapt");

  logs::SyntheticCraySource source(logs::profile_tiny(2024));
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  core::DeshConfig config;
  config.phase1.epochs = 1;
  auto fitted = std::make_shared<core::DeshPipeline>(config);
  fitted->fit(train);
  std::shared_ptr<const core::DeshPipeline> champion = std::move(fitted);
  const logs::LogCorpus stream = make_drifted_stream(test);

  const std::string root =
      (std::filesystem::temp_directory_path() / "desh_bench_adapt").string();
  std::filesystem::remove_all(root);
  bench_ingest_isolation(champion, stream, n, root + "/isolation");
  bench_swap_and_rollback(champion, stream, root + "/loop");
  std::filesystem::remove_all(root);
  std::cout << "bench_adapt: all adaptation contracts hold\n";
  return 0;
}
