// Shared harness for the paper-reproduction benches: runs the full Desh
// pipeline (generate -> split -> fit -> predict -> evaluate) for a system
// profile and returns everything the individual table/figure benches print.
#pragma once

#include <iostream>
#include <string>

#include "core/evaluator.hpp"
#include "core/pipeline.hpp"
#include "logs/generator.hpp"
#include "obs/obs.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

// Injected by bench/CMakeLists.txt so every bench can state how it was
// built — numbers from different build configurations are not comparable.
#ifndef DESH_BUILD_TYPE_STRING
#define DESH_BUILD_TYPE_STRING "unknown"
#endif
#ifndef DESH_SANITIZE_STRING
#define DESH_SANITIZE_STRING ""
#endif

namespace desh::bench {

/// One-line JSON header printed at the top of every bench identifying the
/// measurement environment: worker count, whether telemetry was compiled
/// in / runtime-enabled, build type, and sanitizer instrumentation. Bench
/// trajectories recorded over time are only comparable when these match.
inline void print_env_header(const std::string& bench_name) {
  const char* sanitize = DESH_SANITIZE_STRING;
  std::cout << "{\"bench\": \"" << bench_name
            << "\", \"threads\": " << util::resolve_threads()
            << ", \"obs_compiled\": "
            << (obs::compiled_in() ? "true" : "false")
            << ", \"obs_enabled\": "
            << (obs::compiled_in() && obs::enabled() ? "true" : "false")
            << ", \"build_type\": \"" << DESH_BUILD_TYPE_STRING
            << "\", \"sanitize\": \"" << (*sanitize ? sanitize : "none")
            << "\"}\n";
}

struct SystemRun {
  logs::SystemProfile profile;
  logs::SyntheticLog log;
  core::DeshPipeline pipeline;
  core::FitReport fit;
  core::TestRun run;
  core::SystemEvaluation eval;
  double fit_seconds = 0;
  double predict_seconds = 0;
};

/// Runs one system end to end. The pipeline config defaults to the paper's
/// Table 5 parameters; callers may override (ablations).
inline SystemRun run_system(const logs::SystemProfile& profile,
                            core::DeshConfig config = {},
                            bool verbose = true) {
  SystemRun out{profile, {}, core::DeshPipeline(config), {}, {}, {}};
  if (verbose)
    std::cout << "[" << profile.name << "] generating "
              << profile.node_count << "-node / " << profile.duration_hours
              << "h trace..." << std::flush;
  logs::SyntheticCraySource source(profile);
  out.log = source.generate();
  auto [train, test] =
      core::split_corpus(out.log.records, out.log.truth.split_time);
  if (verbose)
    std::cout << " " << out.log.records.size() << " records. training ("
              << util::resolve_threads(config.threads) << " threads)..."
              << std::flush;
  util::Stopwatch sw;
  out.fit = out.pipeline.fit(train);
  out.fit_seconds = sw.elapsed_seconds();
  sw.reset();
  out.run = out.pipeline.predict(test);
  out.predict_seconds = sw.elapsed_seconds();
  out.eval = core::Evaluator::evaluate(out.run.candidates, out.run.predictions,
                                       out.log.truth);
  if (verbose)
    std::cout << " done (" << util::format_fixed(out.fit_seconds, 1) << "s fit, "
              << util::format_fixed(out.predict_seconds, 1) << "s predict)\n";
  return out;
}

inline std::string pct(double fraction, int decimals = 1) {
  return util::format_fixed(fraction * 100.0, decimals);
}

/// Prints the standard bench footer comparing against a paper value.
inline std::string paper_vs(double paper, double measured, int decimals = 1) {
  return "paper=" + util::format_fixed(paper, decimals) +
         " measured=" + util::format_fixed(measured, decimals);
}

}  // namespace desh::bench
