// Compiled-inference gate: the load-time model compiler (src/compile) must
// actually buy its keep on the single-stream decision path. Three claims are
// asserted, not just printed:
//
//   - Speed. Per-decision latency through the compiled engine must beat the
//     reference engine by >= 2x in an uninstrumented Release build (the only
//     configuration where kernel timings mean anything). Sanitized builds
//     still require the compiled engine not to be SLOWER (floor 1.0), and a
//     TSan build only reports — its ~10x slowdown is not a kernel property.
//   - Accuracy. The quantized engines' mean absolute per-step score delta
//     against the reference engine (compile::mean_score_delta, the same
//     statistic the calibration gate uses) stays within
//     CompileConfig::max_accuracy_delta; the fp32 compiled engine stays
//     within float-reassociation noise.
//   - Decisions. Over the full candidate set, the fp32 compiled engine must
//     flip no flag vs the reference engine; quantized engines report their
//     flip count in the snapshot.
//
//   ./bench_compile [--iters N] [--out BENCH_compile.json] [--smoke]
//
// --smoke shrinks the iteration count (the ctest wiring runs this mode); the
// BENCH_compile.json snapshot is written either way, extending the
// BENCH_*.json trajectory (see EXPERIMENTS.md "BENCH trajectory").
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "compile/backend.hpp"
#include "desh.hpp"
#include "util/cli.hpp"

using namespace desh;

namespace {

/// Fails the bench loudly — this binary doubles as a ctest smoke check.
void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FAIL: " << what << "\n";
    std::exit(1);
  }
}

core::DeshPipeline train_pipeline(const logs::SyntheticLog& log,
                                  logs::LogCorpus& test_out) {
  core::DeshConfig config;
  config.phase1.epochs = 1;
  config.skipgram.enabled = false;
  auto pipeline = core::DeshPipeline::create(config);
  check(pipeline.ok(), "pipeline config rejected");
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  pipeline.value().fit(train);
  test_out = std::move(test);
  return std::move(pipeline).value();
}

struct EnginePoint {
  std::string name;            // backend->name(): what actually got built
  std::string requested;       // config asked for (differs on fallback)
  double ns_per_decision = 0;
  double speedup_vs_reference = 0;
  double mean_score_delta = 0;   // vs reference, calibration statistic
  std::size_t flags_changed = 0; // decide() flag flips vs reference
};

/// Single-stream decision latency: one candidate at a time through
/// Phase3Predictor::decide (the serving hot path), `iters` passes over the
/// whole candidate set, best-of-3 to shed scheduler noise.
double time_decisions(const core::Phase3Predictor& predictor,
                      const std::vector<chains::CandidateSequence>& candidates,
                      std::size_t iters) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    util::Stopwatch sw;
    for (std::size_t i = 0; i < iters; ++i)
      for (const chains::CandidateSequence& candidate : candidates)
        (void)predictor.decide(candidate);
    best = std::min(best, sw.elapsed_seconds());
  }
  return best * 1e9 / static_cast<double>(iters * candidates.size());
}

std::string json_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6f", value);
  return buffer;
}

/// The BENCH_compile.json snapshot: env fields matching the stdout header
/// plus one entry per engine, so successive runs diff cleanly.
void write_snapshot(const std::string& path, bool smoke, std::size_t iters,
                    std::size_t decisions, bool speedup_asserted,
                    const std::vector<EnginePoint>& points) {
  std::ofstream os(path, std::ios::trunc);
  check(static_cast<bool>(os), "cannot write " + path);
  const char* sanitize = DESH_SANITIZE_STRING;
  os << "{\n"
     << "  \"bench\": \"compile\",\n"
     << "  \"build_type\": \"" << DESH_BUILD_TYPE_STRING << "\",\n"
     << "  \"sanitize\": \"" << (*sanitize ? sanitize : "none") << "\",\n"
     << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
     << "  \"iterations\": " << iters << ",\n"
     << "  \"decisions_per_pass\": " << decisions << ",\n"
     << "  \"speedup_asserted\": " << (speedup_asserted ? "true" : "false")
     << ",\n"
     << "  \"engines\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const EnginePoint& p = points[i];
    os << "    {\"name\": \"" << p.name << "\", \"requested\": \""
       << p.requested << "\", \"ns_per_decision\": "
       << json_double(p.ns_per_decision) << ", \"speedup_vs_reference\": "
       << json_double(p.speedup_vs_reference) << ", \"mean_score_delta\": "
       << json_double(p.mean_score_delta)
       << ", \"flags_changed\": " << p.flags_changed << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  check(static_cast<bool>(os), "short write to " + path);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const bool smoke = args.has("smoke");
  const std::string out = args.get("out", "BENCH_compile.json");
  std::size_t iters = smoke ? 4 : 32;
  if (args.has("iters"))
    iters = std::strtoull(args.get("iters", "").c_str(), nullptr, 10);
  check(iters > 0, "--iters must be positive");
  bench::print_env_header("compile");

  logs::SyntheticCraySource source(logs::profile_tiny(2024));
  const logs::SyntheticLog log = source.generate();
  logs::LogCorpus test;
  const core::DeshPipeline pipeline = train_pipeline(log, test);
  const core::TestRun run = pipeline.predict(test);
  check(!run.candidates.empty(), "no candidate sequences in test split");
  const std::vector<nn::ChainSequence>& calibration =
      pipeline.training_chains();
  check(!calibration.empty(), "no training chains for the delta statistic");
  std::cout << run.candidates.size() << " candidates, " << calibration.size()
            << " calibration chains, " << iters << " passes\n";

  // The engines under test: the requested config and what it should build.
  struct Request {
    std::string label;
    core::CompileConfig config;
  };
  std::vector<Request> requests(4);
  requests[0].label = "reference";
  requests[1].label = "compiled";
  requests[1].config.backend = core::BackendKind::kCompiled;
  requests[2].label = "compiled+int8";
  requests[2].config.backend = core::BackendKind::kCompiled;
  requests[2].config.quant = core::QuantMode::kInt8;
  requests[3].label = "compiled+int16";
  requests[3].config.backend = core::BackendKind::kCompiled;
  requests[3].config.quant = core::QuantMode::kInt16;

  std::cout << "engine | ns/decision | speedup | score delta | flips\n";
  std::vector<EnginePoint> points;
  std::shared_ptr<const nn::InferenceBackend> reference;
  std::vector<core::FailurePrediction> reference_decisions;
  for (const Request& request : requests) {
    auto built = pipeline.make_backend(request.config);
    check(built.ok(), request.label + " rejected: " +
                          (built.ok() ? std::string() : built.error().message));
    const std::shared_ptr<const nn::InferenceBackend> backend =
        std::move(built).value();
    const core::Phase3Predictor predictor(*backend,
                                          pipeline.config().phase3);

    EnginePoint point;
    point.name = std::string(backend->name());
    point.requested = request.label;
    point.ns_per_decision = time_decisions(predictor, run.candidates, iters);
    if (!reference) {
      check(point.name == "reference", "first engine must be the reference");
      reference = backend;
      for (const chains::CandidateSequence& candidate : run.candidates)
        reference_decisions.push_back(predictor.decide(candidate));
    } else {
      point.mean_score_delta =
          compile::mean_score_delta(*reference, *backend, calibration);
      for (std::size_t i = 0; i < run.candidates.size(); ++i)
        if (predictor.decide(run.candidates[i]).flagged !=
            reference_decisions[i].flagged)
          ++point.flags_changed;
    }
    point.speedup_vs_reference =
        points.empty() ? 1.0
                       : points.front().ns_per_decision / point.ns_per_decision;
    std::cout << point.requested << " | "
              << util::format_fixed(point.ns_per_decision, 0) << " | "
              << util::format_fixed(point.speedup_vs_reference, 2) << "x | "
              << json_double(point.mean_score_delta) << " | "
              << point.flags_changed << "\n";
    points.push_back(point);
  }

  // Accuracy: quantized engines must sit within the same bound the
  // calibration gate enforces; the fp32 program is reassociation-only.
  const double quant_bound = core::CompileConfig{}.max_accuracy_delta;
  for (const EnginePoint& point : points) {
    if (point.requested == "compiled")
      check(point.mean_score_delta <= 1e-3,
            "fp32 compiled engine drifted: delta " +
                json_double(point.mean_score_delta));
    if (point.requested == "compiled+int8" ||
        point.requested == "compiled+int16")
      check(point.mean_score_delta <= quant_bound,
            point.requested + " delta " + json_double(point.mean_score_delta) +
                " exceeds " + json_double(quant_bound));
  }

  // Decisions: fp32 compiled must not flip a single flag.
  for (const EnginePoint& point : points)
    if (point.requested == "compiled")
      check(point.flags_changed == 0,
            "fp32 compiled engine flipped " +
                std::to_string(point.flags_changed) + " decisions");

  // Speed: >= 2x only means something in an uninstrumented Release build.
  // Sanitized (non-TSan) builds keep a floor of 1.0 — the compiled engine
  // must never be slower than the reference walk it replaces. TSan only
  // reports (that build checks races, not kernels).
  const std::string build_type = DESH_BUILD_TYPE_STRING;
  const bool instrumented = *DESH_SANITIZE_STRING != '\0';
  const bool release = build_type == "Release" ||
                       build_type == "RelWithDebInfo";
  const bool speedup_asserted = release && !instrumented;
  double worst_compiled_speedup = 1e300;
  for (const EnginePoint& point : points)
    if (point.requested != "reference")
      worst_compiled_speedup =
          std::min(worst_compiled_speedup, point.speedup_vs_reference);
#ifdef DESH_TSAN
  std::cout << "TSan build: speedup reported, not asserted\n";
#else
  if (speedup_asserted)
    check(worst_compiled_speedup >= 2.0,
          "compiled speedup " + json_double(worst_compiled_speedup) +
              "x below the 2x gate");
  else
    check(worst_compiled_speedup >= 1.0,
          "compiled engine slower than reference under instrumentation");
#endif

  write_snapshot(out, smoke, iters, run.candidates.size(),
#ifdef DESH_TSAN
                 false,
#else
                 speedup_asserted,
#endif
                 points);
  std::cout << "snapshot written: " << out << "\n";
  return 0;
}
