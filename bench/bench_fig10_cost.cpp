// Figure 10 — "Cost Analysis" (Sec 4.4): prediction time as a function of
// the number of prediction steps (1..3) for history sizes 5 and 8, measured
// with google-benchmark on the trained phase-1 LSTM. The paper's shape:
// more steps cost more; history 8 is slightly slower than history 5
// (~0.1-0.7 ms per prediction on their platform).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hpp"
#include "core/phase1.hpp"
#include "core/pipeline.hpp"
#include "logs/generator.hpp"
#include "nn/inference_backend.hpp"

using namespace desh;

namespace {

// One trained model shared across all benchmark cases (training is not what
// Fig 10 measures — "training phases 1 and 2 are performed offline").
struct TrainedFixture {
  core::DeshPipeline pipeline;
  logs::SyntheticLog log;
  std::vector<std::uint32_t> stream;

  TrainedFixture() {
    logs::SystemProfile profile = logs::profile_tiny(77);
    profile.failure_count = 60;
    logs::SyntheticCraySource source(profile);
    log = source.generate();
    auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
    core::DeshConfig config;
    config.phase1.epochs = 1;  // cost, not accuracy, is measured here
    config.phase2.epochs = 20;
    pipeline.fit(train);
    // A long phrase stream to draw prediction windows from.
    logs::PhraseVocab vocab = pipeline.vocab();
    chains::ParsedLog parsed = chains::parse_corpus(test, vocab, false);
    for (const logs::NodeId& node : parsed.sorted_nodes())
      for (const chains::ParsedEvent& e : parsed.by_node.at(node))
        stream.push_back(e.phrase);
  }
};

TrainedFixture& fixture() {
  static TrainedFixture f;
  return f;
}

void BM_Prediction(benchmark::State& state) {
  const auto history = static_cast<std::size_t>(state.range(0));
  const auto steps = static_cast<std::size_t>(state.range(1));
  TrainedFixture& f = fixture();
  const nn::ReferenceBackend backend(f.pipeline.phase1().model());
  std::size_t cursor = 0;
  for (auto _ : state) {
    if (cursor + history >= f.stream.size()) cursor = 0;
    std::span<const std::uint32_t> window(f.stream.data() + cursor, history);
    benchmark::DoNotOptimize(backend.predict_steps(window, steps));
    cursor += history;
  }
  state.SetLabel("history=" + std::to_string(history) +
                 " steps=" + std::to_string(steps));
}

}  // namespace

// The paper's grid: steps of prediction x history size {5, 8}.
BENCHMARK(BM_Prediction)
    ->ArgsProduct({{5, 8}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  bench::print_env_header("bench_fig10_cost");
  std::printf(
      "=== Figure 10: Cost Analysis — prediction time vs #steps for history "
      "5 and 8 ===\n(paper shape: 3-step > 1-step; history 8 slightly above "
      "history 5; ~0.1-0.7 ms range)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
