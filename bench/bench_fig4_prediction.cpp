// Figure 4 — "Prediction Rates": recall, precision, accuracy and F1 score
// for each of the four systems (Observation 1: >=84% precision, >=83.6%
// accuracy, >=85.7% F1, recall up to 87.5%).
#include <cmath>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_fig4_prediction");
  std::cout << "=== Figure 4: Prediction Rates (Desh three-phase LSTM) ===\n"
            << "Table 5 config: phase1 2HL/HS8/3-step CCE+SGD, "
               "phase2 2HL/HS5/1-step MSE+RMSprop, threshold 0.5\n\n";

  util::TextTable table({"System", "Recall %", "(paper)", "Precision %",
                         "(paper)", "Accuracy %", "(paper)", "F1 %",
                         "(paper)"});
  double min_precision = 100, min_accuracy = 100, min_f1 = 100,
         max_recall = 0;
  for (const logs::SystemProfile& profile : logs::all_system_profiles()) {
    const bench::SystemRun r = bench::run_system(profile);
    const core::Metrics& m = r.eval.metrics;
    table.add_row({profile.name, bench::pct(m.recall),
                   util::format_fixed(profile.paper.recall, 1),
                   bench::pct(m.precision),
                   util::format_fixed(profile.paper.precision, 1),
                   bench::pct(m.accuracy),
                   util::format_fixed(profile.paper.accuracy, 1),
                   bench::pct(m.f1), util::format_fixed(profile.paper.f1, 1)});
    min_precision = std::min(min_precision, m.precision * 100);
    min_accuracy = std::min(min_accuracy, m.accuracy * 100);
    min_f1 = std::min(min_f1, m.f1 * 100);
    max_recall = std::max(max_recall, m.recall * 100);
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nObservation 1 check (paper: precision>=84, accuracy>=83.6, "
               "F1>=85.7, recall as high as 87.5):\n"
            << "  min precision = " << util::format_fixed(min_precision, 1)
            << "  min accuracy = " << util::format_fixed(min_accuracy, 1)
            << "  min F1 = " << util::format_fixed(min_f1, 1)
            << "  max recall = " << util::format_fixed(max_recall, 1) << "\n";

  // Data-parallel training speedup: same profile, serial vs 8 workers.
  // The sharded engine is deterministic, so both fits reach identical
  // models; only the wall time differs (bounded by the machine's cores).
  std::cout << "\n=== Fit wall time: serial vs 8-thread data-parallel ===\n"
            << "(" << std::thread::hardware_concurrency()
            << " hardware threads on this machine)\n";
  const logs::SystemProfile timing_profile = logs::all_system_profiles().front();
  core::DeshConfig serial_config;
  serial_config.threads = 1;
  const bench::SystemRun serial = bench::run_system(timing_profile,
                                                    serial_config);
  core::DeshConfig parallel_config;
  parallel_config.threads = 8;
  const bench::SystemRun parallel = bench::run_system(timing_profile,
                                                      parallel_config);
  std::cout << "  serial fit   = " << util::format_fixed(serial.fit_seconds, 2)
            << "s\n  8-thread fit = "
            << util::format_fixed(parallel.fit_seconds, 2) << "s\n  speedup = "
            << util::format_fixed(serial.fit_seconds /
                                      std::max(parallel.fit_seconds, 1e-9),
                                  2)
            << "x  (loss delta = "
            << util::format_fixed(
                   std::abs(serial.fit.phase2_loss - parallel.fit.phase2_loss),
                   6)
            << ", deterministic sharding)\n";
  return 0;
}
