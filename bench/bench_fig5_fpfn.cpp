// Figure 5 — "FP Rate and FN Rate" per system (Observation 3: FP rates
// 16.66%..25%, FN rates 12.5%..14.89%).
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_fig5_fpfn");
  std::cout << "=== Figure 5: False Positive and False Negative Rates ===\n\n";
  util::TextTable table({"System", "FP Rate %", "(paper)", "FN Rate %",
                         "(paper)", "TP", "FP", "FN", "TN"});
  double max_fn = 0;
  for (const logs::SystemProfile& profile : logs::all_system_profiles()) {
    const bench::SystemRun r = bench::run_system(profile);
    const core::Metrics& m = r.eval.metrics;
    table.add_row({profile.name, bench::pct(m.fp_rate),
                   util::format_fixed(profile.paper.fp_rate, 2),
                   bench::pct(m.fn_rate),
                   util::format_fixed(profile.paper.fn_rate, 2),
                   std::to_string(r.eval.counts.tp),
                   std::to_string(r.eval.counts.fp),
                   std::to_string(r.eval.counts.fn),
                   std::to_string(r.eval.counts.tn)});
    max_fn = std::max(max_fn, m.fn_rate * 100);
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nObservation 3 check: paper's FN rates never exceed 15% — "
               "measured max FN rate = "
            << util::format_fixed(max_fn, 1)
            << "% (Desh is effective at not missing actual failures).\n";
  return 0;
}
