// Table 7 + Figure 6 — "Lead Times + Failure Classes": average lead time and
// standard deviation per failure class, pooled across the four systems
// (Observation 2: per-class lead times differ; Observation 4: per-class
// deviation is lower than per-system deviation).
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_fig6_leadtime_class");
  std::cout << "=== Table 7 / Figure 6: Lead Times by Failure Class ===\n\n";

  std::array<util::SampleSet, logs::kFailureClassCount> pooled;
  util::SampleSet all_leads;
  std::array<double, 4> per_system_stddev{};
  std::size_t system_index = 0;
  for (const logs::SystemProfile& profile : logs::all_system_profiles()) {
    const bench::SystemRun r = bench::run_system(profile);
    for (std::size_t c = 0; c < logs::kFailureClassCount; ++c)
      for (double lead : r.eval.lead_by_class[c].samples()) {
        pooled[c].add(lead);
        all_leads.add(lead);
      }
    per_system_stddev[system_index++] = r.eval.lead_times.stddev();
  }

  std::cout << "\n";
  util::TextTable table({"Class", "Failures (paper examples)", "TPs",
                         "Avg Lead s", "(paper)", "StdDev s"});
  static const char* kDescriptions[] = {
      "Slurm scheduler errors, task/application bugs",
      "Machine check exceptions, page/memory faults",
      "Lustre/DVS bugs, packet/protocol errors",
      "Segfaults, trap invalid opcode",
      "NMI faults, critical h/w, heartbeat errors",
      "Stack trace, kernel panic"};
  double mean_class_stddev = 0;
  for (std::size_t c = 0; c < logs::kFailureClassCount; ++c) {
    const auto cls = static_cast<logs::FailureClass>(c);
    table.add_row({std::string(logs::failure_class_name(cls)),
                   kDescriptions[c], std::to_string(pooled[c].count()),
                   util::format_fixed(pooled[c].mean(), 2),
                   util::format_fixed(logs::paper_lead_time_seconds(cls), 2),
                   util::format_fixed(pooled[c].stddev(), 2)});
    mean_class_stddev += pooled[c].stddev() / logs::kFailureClassCount;
  }
  table.print(std::cout);

  double mean_system_stddev = 0;
  for (double s : per_system_stddev) mean_system_stddev += s / 4.0;
  std::cout << "\nObservation 4 check: per-class lead-time stddev (avg "
            << util::format_fixed(mean_class_stddev, 1)
            << "s) vs per-system stddev (avg "
            << util::format_fixed(mean_system_stddev, 1)
            << "s) — classes have distinct, reproducible lead times when the "
               "class deviation is lower.\n";
  std::cout << "Observation 2 check: Panic has the shortest lead (paper "
               "~59s), MCE the longest (paper ~160s): measured Panic="
            << util::format_fixed(
                   pooled[static_cast<std::size_t>(logs::FailureClass::kPanic)]
                       .mean(),
                   1)
            << "s MCE="
            << util::format_fixed(
                   pooled[static_cast<std::size_t>(logs::FailureClass::kMce)]
                       .mean(),
                   1)
            << "s\n";
  return 0;
}
