// Figure 7 — "Avg Lead Times of Systems": per-system mean lead time with
// standard deviation. M2 tops the chart because its failure mix leans toward
// Hardware and FileSystem failures with few quick kernel panics (Sec 4.2).
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_fig7_leadtime_system");
  std::cout << "=== Figure 7: Average Lead Times per System ===\n\n";
  util::TextTable table({"System", "Avg Lead s", "StdDev s", "TPs",
                         "Predicted Lead s (model estimate)"});
  double m2_lead = 0, other_max = 0;
  for (const logs::SystemProfile& profile : logs::all_system_profiles()) {
    const bench::SystemRun r = bench::run_system(profile);
    const double lead = r.eval.lead_times.mean();
    table.add_row({profile.name, util::format_fixed(lead, 1),
                   util::format_fixed(r.eval.lead_times.stddev(), 1),
                   std::to_string(r.eval.lead_times.count()),
                   util::format_fixed(r.eval.predicted_lead_times.mean(), 1)});
    if (profile.name == "M2")
      m2_lead = lead;
    else
      other_max = std::max(other_max, lead);
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nShape check (paper: M2 has higher lead times than the rest; "
               "all systems average well over a minute):\n  M2 = "
            << util::format_fixed(m2_lead, 1) << "s vs max(others) = "
            << util::format_fixed(other_max, 1) << "s -> "
            << (m2_lead > other_max ? "M2 leads, as in the paper"
                                    : "ordering differs from the paper")
            << "\n";
  return 0;
}
