// Figure 8 — "Lead Times and FP Rate": the sensitivity study. Flagging a
// failure after checking fewer phrases of a candidate sequence yields longer
// lead times but admits more lookalikes as false positives ("the earlier we
// flag the longer the lead time ... at the expense of an increasing false
// positive rate"). The paper reports ~18-30% FP at 105-196 s climbing to
// ~44% FP at >= 6 minutes.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/sensitivity.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_fig8_sensitivity");
  std::cout << "=== Figure 8: Lead Time vs False Positive Rate ===\n\n";

  // Pool the sweep across all four systems for a stable curve.
  std::map<std::size_t, util::RunningStats> lead_by_k, fp_by_k;
  for (const logs::SystemProfile& profile : logs::all_system_profiles()) {
    const bench::SystemRun r = bench::run_system(profile);
    const auto points = core::lead_time_sensitivity(r.pipeline, r.run,
                                                    r.log.truth, 2, 7);
    for (const core::SensitivityPoint& p : points) {
      lead_by_k[p.decision_position].add(p.mean_lead_seconds);
      fp_by_k[p.decision_position].add(p.fp_rate);
    }
  }

  std::cout << "\n";
  util::TextTable table({"Phrases checked", "Avg Lead s", "FP Rate %",
                         "Paper reference"});
  for (const auto& [k, lead] : lead_by_k) {
    std::string reference;
    const double l = lead.mean();
    if (l >= 360)
      reference = "paper: ~44% FP at >=6 min";
    else if (l >= 240)
      reference = "paper: ~39% FP at >=4 min";
    else if (l >= 105)
      reference = "paper: 18-30% FP at 105-196 s";
    else
      reference = "paper: operating point region";
    table.add_row({std::to_string(k + 1),  // positions are 0-based
                   util::format_fixed(l, 1),
                   util::format_fixed(fp_by_k[k].mean(), 1), reference});
  }
  table.print(std::cout);

  const double early_lead = lead_by_k.begin()->second.mean();
  const double late_lead = lead_by_k.rbegin()->second.mean();
  const double early_fp = fp_by_k.begin()->second.mean();
  const double late_fp = fp_by_k.rbegin()->second.mean();
  std::cout << "\nTrade-off check: earliest flag = "
            << util::format_fixed(early_lead, 0) << "s lead at "
            << util::format_fixed(early_fp, 1) << "% FP; latest flag = "
            << util::format_fixed(late_lead, 0) << "s lead at "
            << util::format_fixed(late_fp, 1) << "% FP -> "
            << ((early_lead > late_lead && early_fp > late_fp)
                    ? "longer lead costs more false positives, as in the paper"
                    : "trade-off direction differs from the paper")
            << "\n";
  return 0;
}
