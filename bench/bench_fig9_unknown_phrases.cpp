// Table 8 + Figure 9 + Table 9 — "Unknown Phrase Analysis" (Sec 4.3):
// the fraction of each Unknown phrase's occurrences that belongs to a
// node-failure chain, demonstrating Observations 5/6 (an anomalous-looking
// phrase is benign in one context and part of a failure chain in another).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "chains/unknown_analysis.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_fig9_unknown_phrases");
  std::cout << "=== Table 8 / Figure 9: Unknown Tagged Phrases ===\n\n";

  // Pool occurrences across all four systems' corpora.
  std::vector<chains::UnknownPhraseStat> pooled;
  for (const logs::SystemProfile& profile : logs::all_system_profiles()) {
    std::cout << "[" << profile.name << "] generating + scanning corpus...\n";
    logs::SyntheticCraySource source(profile);
    const logs::SyntheticLog log = source.generate();
    const auto stats =
        chains::UnknownPhraseAnalyzer::analyze(log.records, log.truth);
    if (pooled.empty()) {
      pooled = stats;
    } else {
      for (std::size_t i = 0; i < stats.size(); ++i) {
        pooled[i].total += stats[i].total;
        pooled[i].in_failures += stats[i].in_failures;
      }
    }
  }

  std::cout << "\n";
  util::TextTable table({"#", "Phrase", "Occurrences",
                         "Contribution %", "(paper)"});
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    const chains::UnknownPhraseStat& s = pooled[i];
    table.add_row({"P" + std::to_string(i + 1), s.tmpl,
                   std::to_string(s.total),
                   util::format_fixed(s.measured_contribution() * 100, 0),
                   util::format_fixed(s.paper_contribution * 100, 0)});
  }
  table.print(std::cout);

  // Observation 5 demonstration (Table 9): the same phrase appears in both
  // failure and non-failure sequences.
  auto most = std::max_element(pooled.begin(), pooled.end(),
                               [](const auto& a, const auto& b) {
                                 return a.measured_contribution() <
                                        b.measured_contribution();
                               });
  auto least = std::min_element(pooled.begin(), pooled.end(),
                                [](const auto& a, const auto& b) {
                                  return a.measured_contribution() <
                                         b.measured_contribution();
                                });
  std::cout << "\nObservation 5/6 (Table 9): every phrase above occurs in "
               "BOTH failure and non-failure sequences.\n  Most "
               "failure-bound:  \""
            << most->tmpl << "\" ("
            << util::format_fixed(most->measured_contribution() * 100, 0)
            << "% of occurrences precede a node failure)\n  Least "
               "failure-bound: \""
            << least->tmpl << "\" ("
            << util::format_fixed(least->measured_contribution() * 100, 0)
            << "%) — anomalous phrases alone are not failure indicators; the "
               "chain context is.\n";
  return 0;
}
