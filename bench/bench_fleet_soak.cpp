// Fleet soak: one FleetController vs a node space far too large for a
// single monitor's comfort — >= 100k distinct nodes streamed through N
// shards. Two claims are asserted, not just printed:
//
//   - Admission p99 holds. FleetController::submit is a route + bounded
//     queue push; its p99 (read back from the fleet's own health()
//     quantiles) must stay in the millisecond range no matter how many
//     records are in flight behind it.
//   - Throughput scales with shard count — WHEN the hardware can run the
//     shard collectors in parallel. Each point runs S collector threads
//     plus the submitter; on boxes with fewer cores than that, the sweep
//     still runs but the assertion degrades to a floor ("sharding must not
//     collapse throughput"), because there is nothing to scale onto.
//
//   ./bench_fleet_soak [--nodes 100000] [--records 200000]
//                      [--shards 1,2,4] [--out BENCH_fleet.json] [--smoke]
//
// --smoke shrinks the fleet (the ctest wiring runs this mode); the JSON
// snapshot is written either way, extending the BENCH_*.json trajectory
// started by BENCH_wal.json (see EXPERIMENTS.md "BENCH trajectory").
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "desh.hpp"
#include "logs/template_miner.hpp"
#include "util/cli.hpp"

using namespace desh;

namespace {

/// Fails the bench loudly — this binary doubles as a ctest smoke check.
void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FAIL: " << what << "\n";
    std::exit(1);
  }
}

core::DeshPipeline train_pipeline(const logs::SyntheticLog& log) {
  core::DeshConfig config;
  config.phase1.epochs = 1;
  config.skipgram.enabled = false;
  auto pipeline = core::DeshPipeline::create(config);
  check(pipeline.ok(), "pipeline config rejected");
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  pipeline.value().fit(train);
  return std::move(pipeline).value();
}

/// Anomalous message texts the fitted labeler will NOT gate out — the soak
/// is only honest if every record builds window state and reaches the
/// decision path.
std::vector<std::string> anomalous_messages(
    const core::DeshPipeline& pipeline, const logs::LogCorpus& corpus) {
  std::vector<std::string> out;
  for (const logs::LogRecord& record : corpus) {
    const std::string tmpl = logs::TemplateMiner::extract(record.message);
    if (tmpl.empty()) continue;
    const std::uint32_t phrase = pipeline.vocab().encode(tmpl);
    if (pipeline.labeler().label(phrase) == logs::PhraseLabel::kSafe) continue;
    out.push_back(record.message);
    if (out.size() >= 64) break;
  }
  check(!out.empty(), "no anomalous messages in corpus");
  return out;
}

/// `node_count` distinct physical node ids in a fixed scan order.
std::vector<logs::NodeId> synthetic_fleet(std::size_t node_count) {
  std::vector<logs::NodeId> out;
  out.reserve(node_count);
  for (std::uint16_t x = 0; out.size() < node_count; ++x)
    for (std::uint16_t y = 0; y < 8 && out.size() < node_count; ++y)
      for (std::uint8_t c = 0; c < 3 && out.size() < node_count; ++c)
        for (std::uint8_t s = 0; s < 16 && out.size() < node_count; ++s)
          for (std::uint8_t n = 0; n < 4 && out.size() < node_count; ++n)
            out.push_back(logs::NodeId{x, y, c, s, n});
  return out;
}

/// `records` anomalous records round-robin across the whole node fleet,
/// 1 s apart (non-decreasing overall, increasing per node).
logs::LogCorpus make_stream(const std::vector<logs::NodeId>& nodes,
                            const std::vector<std::string>& messages,
                            std::size_t records) {
  logs::LogCorpus out;
  out.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    logs::LogRecord r;
    r.timestamp = static_cast<double>(i);
    r.node = nodes[i % nodes.size()];
    r.message = messages[i % messages.size()];
    out.push_back(std::move(r));
  }
  return out;
}

struct Point {
  std::size_t shards = 0;
  double wall_seconds = 0;
  double records_per_second = 0;
  double submit_p50_seconds = 0;
  double submit_p99_seconds = 0;
  std::size_t alerts = 0;
  double shard_balance = 0;  // max/min per-shard processed (1.0 = perfect)
};

/// Non-owning shared_ptr over a stack pipeline (the fleet's create()
/// signature shares model ownership; the bench keeps it on main's frame).
std::shared_ptr<const core::DeshPipeline> share(
    const core::DeshPipeline& pipeline) {
  return {&pipeline, [](const core::DeshPipeline*) {}};
}

/// One sweep point: an S-shard fleet (collector threads on) absorbing the
/// whole stream, timed from first submit to drain-complete.
Point run_shards(const core::DeshPipeline& pipeline,
                 const logs::LogCorpus& stream, std::size_t shards) {
  fleet::FleetOptions options;
  options.fleet.shards = shards;
  options.shard.queue_capacity = stream.size();  // soak, not backpressure
  options.shard.max_batch = 256;
  options.shard.monitor.gap_seconds = 1e9;  // the cadence never resets state
  options.shard.monitor.rearm_seconds = 0;
  options.shard.monitor.threads = 1;  // shards ARE the parallelism
  auto created = fleet::FleetController::create(share(pipeline), options);
  check(created.ok(), "fleet rejected: " +
                          (created.ok() ? std::string() :
                                          created.error().message));
  fleet::FleetController& fleet = *created.value();

  util::Stopwatch sw;
  check(fleet.submit_batch(stream) == stream.size(), "records rejected");
  fleet.drain();
  Point point;
  point.shards = shards;
  point.wall_seconds = sw.elapsed_seconds();
  fleet.stop();

  const fleet::FleetHealth health = fleet.health();
  check(health.totals.admitted == stream.size(), "admitted != submitted");
  check(health.totals.processed == stream.size(), "processed != submitted");
  check(health.totals.rejected == 0, "unexpected backpressure");
  check(health.totals.shed == 0, "unexpected shedding");
  point.records_per_second =
      static_cast<double>(stream.size()) / point.wall_seconds;
  point.submit_p50_seconds = health.submit_p50_seconds;
  point.submit_p99_seconds = health.submit_p99_seconds;
  point.alerts = health.totals.alerts;
  std::size_t min_processed = stream.size(), max_processed = 0;
  for (const fleet::ShardHealth& shard : health.per_shard) {
    min_processed = std::min(min_processed, shard.serve.processed);
    max_processed = std::max(max_processed, shard.serve.processed);
  }
  point.shard_balance =
      min_processed == 0 ? 0.0
                         : static_cast<double>(max_processed) /
                               static_cast<double>(min_processed);
  return point;
}

std::string json_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6f", value);
  return buffer;
}

/// The BENCH_fleet.json snapshot: env fields matching the stdout header
/// plus one entry per shard-count point, so successive runs diff cleanly.
void write_snapshot(const std::string& path, bool smoke, std::size_t nodes,
                    std::size_t records, bool scaling_asserted,
                    const std::vector<Point>& points) {
  std::ofstream os(path, std::ios::trunc);
  check(static_cast<bool>(os), "cannot write " + path);
  const char* sanitize = DESH_SANITIZE_STRING;
  os << "{\n"
     << "  \"bench\": \"fleet_soak\",\n"
     << "  \"build_type\": \"" << DESH_BUILD_TYPE_STRING << "\",\n"
     << "  \"sanitize\": \"" << (*sanitize ? sanitize : "none") << "\",\n"
     << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
     << "  \"nodes\": " << nodes << ",\n"
     << "  \"records\": " << records << ",\n"
     << "  \"scaling_asserted\": " << (scaling_asserted ? "true" : "false")
     << ",\n"
     << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    os << "    {\"shards\": " << p.shards
       << ", \"wall_seconds\": " << json_double(p.wall_seconds)
       << ", \"records_per_second\": " << json_double(p.records_per_second)
       << ", \"submit_p50_seconds\": " << json_double(p.submit_p50_seconds)
       << ", \"submit_p99_seconds\": " << json_double(p.submit_p99_seconds)
       << ", \"alerts\": " << p.alerts
       << ", \"shard_balance\": " << json_double(p.shard_balance) << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  check(static_cast<bool>(os), "short write to " + path);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const bool smoke = args.has("smoke");
  const std::string out = args.get("out", "BENCH_fleet.json");
  std::size_t node_count = smoke ? 5000 : 100000;
  std::size_t record_count = smoke ? 20000 : 200000;
  if (args.has("nodes"))
    node_count = std::strtoull(args.get("nodes", "").c_str(), nullptr, 10);
  if (args.has("records"))
    record_count = std::strtoull(args.get("records", "").c_str(), nullptr, 10);
  std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};
  if (args.has("shards")) {
    shard_counts.clear();
    for (const std::string& part : util::split(args.get("shards", ""), ','))
      shard_counts.push_back(std::strtoull(part.c_str(), nullptr, 10));
    check(!shard_counts.empty(), "--shards expects a comma-separated list");
  }
  check(record_count >= node_count, "--records must be >= --nodes");
  bench::print_env_header("fleet_soak");

  logs::SyntheticCraySource source(logs::profile_tiny(2024));
  const logs::SyntheticLog log = source.generate();
  const core::DeshPipeline pipeline = train_pipeline(log);
  const std::vector<std::string> messages =
      anomalous_messages(pipeline, log.records);
  const std::vector<logs::NodeId> nodes = synthetic_fleet(node_count);
  const logs::LogCorpus stream = make_stream(nodes, messages, record_count);
  std::cout << node_count << " nodes, " << record_count << " records\n";

  std::cout << "shards | wall s | rec/s | submit p99 s | balance\n";
  std::vector<Point> points;
  for (const std::size_t shards : shard_counts) {
    const Point point = run_shards(pipeline, stream, shards);
    std::cout << point.shards << " | "
              << util::format_fixed(point.wall_seconds, 2) << " | "
              << util::format_fixed(point.records_per_second, 0) << " | "
              << util::format_fixed(point.submit_p99_seconds, 6) << " | "
              << util::format_fixed(point.shard_balance, 2) << "\n";
    points.push_back(point);
  }

  // Admission p99 holds at every point. The bound is an upper-bound bucket
  // estimate from the fleet's own latency ladder; TSan's ~10x slowdown
  // gets a proportionally relaxed bound (that run checks races, not time).
#ifdef DESH_TSAN
  const double p99_bound = 0.1;
#else
  const double p99_bound = 0.01;
#endif
  for (const Point& point : points)
    check(point.submit_p99_seconds <= p99_bound,
          "submit p99 " + util::format_fixed(point.submit_p99_seconds, 6) +
              "s exceeds " + util::format_fixed(p99_bound, 3) + "s at " +
              std::to_string(point.shards) + " shards");

  // Consistent hashing must spread a >= 100k-node space near-evenly.
  for (const Point& point : points)
    if (point.shards > 1)
      check(point.shard_balance > 0 && point.shard_balance < 2.0,
            "per-shard load imbalance at " + std::to_string(point.shards) +
                " shards");

  // Scaling: only assertable when the box can actually run the largest
  // fleet's collectors plus the submitter concurrently.
  const Point& first = points.front();
  const Point& last = points.back();
  const unsigned cores = std::thread::hardware_concurrency();
  const bool can_scale =
      points.size() >= 2 && last.shards > first.shards &&
      cores >= last.shards + 1;
#ifdef DESH_TSAN
  const bool scaling_asserted = false;
  check(last.records_per_second >= 0.2 * first.records_per_second,
        "sharding collapsed throughput under TSan");
#else
  const bool scaling_asserted = can_scale;
  if (can_scale)
    check(last.records_per_second >= 1.15 * first.records_per_second,
          "throughput did not scale from " + std::to_string(first.shards) +
              " to " + std::to_string(last.shards) + " shards");
  else
    // Too few cores to scale onto: sharding must still not collapse.
    check(last.records_per_second >= 0.4 * first.records_per_second,
          "sharding overhead collapsed throughput");
#endif

  write_snapshot(out, smoke, node_count, record_count, scaling_asserted,
                 points);
  std::cout << "snapshot written: " << out << "\n";
  return 0;
}
