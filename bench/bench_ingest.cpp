// Ingest frontend bench: raw syslog bytes -> lines -> parsed records, plus
// the full raw-text -> first-prediction path. Three claims are asserted,
// not just printed:
//
//   - Parse throughput holds. The steady-state tokenize path (LineSplitter
//     + SyslogViewParser over 64 KiB chunks) must sustain >= 100 MB/s
//     single-threaded on a Release build. Sanitizer builds measure the
//     same loop against a relaxed floor — those runs check memory/races,
//     not time.
//   - The steady-state tokenize path performs ZERO heap allocations. A
//     global operator-new counting hook brackets the measured loop after
//     one warmup pass; any per-line allocation fails the bench loudly.
//   - Raw text produces predictions. An anomalous stream rendered to
//     syslog text and fed through an IngestPump into a manual-pump server
//     must raise alerts; the time from first byte to first alert is the
//     reported first-prediction latency.
//
//   ./bench_ingest [--mb 64] [--out BENCH_ingest.json] [--smoke]
//
// --smoke shrinks the corpus (the ctest wiring runs this mode); the JSON
// snapshot is written either way, extending the BENCH_*.json trajectory
// (see EXPERIMENTS.md "BENCH trajectory").
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "desh.hpp"
#include "ingest/line_splitter.hpp"
#include "ingest/syslog_view.hpp"
#include "ingest/template_tracker.hpp"
#include "util/cli.hpp"

// --- allocation counting hook ------------------------------------------------
// Replaces the global allocator with a counting shim. Counting is gated on
// g_count_allocs so only the bracketed measurement loop pays attention;
// everything else (training, corpus construction) allocates freely.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_calls{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace desh;

namespace {

/// Fails the bench loudly — this binary doubles as a ctest smoke check.
void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FAIL: " << what << "\n";
    std::exit(1);
  }
}

core::DeshPipeline train_pipeline(const logs::LogCorpus& train) {
  core::DeshConfig config;
  config.phase1.epochs = 1;
  auto pipeline = core::DeshPipeline::create(config);
  check(pipeline.ok(), "pipeline config rejected");
  pipeline.value().fit(train);
  return std::move(pipeline).value();
}

/// At least `target_bytes` of realistic syslog text: the synthetic corpus
/// rendered once, then self-concatenated (parsing is stateless across
/// lines, so repetition does not flatter the tokenizer).
std::string make_raw_text(const logs::LogCorpus& corpus,
                          std::size_t target_bytes) {
  const std::string unit = logs::render_syslog_text(corpus);
  check(!unit.empty(), "empty rendered corpus");
  std::string out;
  out.reserve(target_bytes + unit.size());
  while (out.size() < target_bytes) out += unit;
  return out;
}

struct ParsePass {
  std::uint64_t lines = 0;
  std::uint64_t records = 0;
  double seconds = 0;
  std::uint64_t alloc_calls = 0;
};

/// One pass of the tokenize path over `text` in `chunk_bytes` chunks.
/// `track` additionally routes every parsed message through the online
/// template tracker (the full frontend, allocation-free no longer).
ParsePass parse_pass(std::string_view text, std::size_t chunk_bytes,
                     ingest::TemplateTracker* track, bool count_allocs) {
  ingest::LineSplitter splitter(8 * 1024);
  ingest::SyslogViewParser parser;
  ParsePass pass;
  util::Stopwatch sw;
  if (count_allocs) {
    g_alloc_calls.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
  }
  std::size_t at = 0;
  ingest::ParsedLine parsed;
  std::string_view line;
  while (at < text.size()) {
    const std::size_t n = std::min(chunk_bytes, text.size() - at);
    splitter.begin_chunk(text.substr(at, n));
    at += n;
    while (splitter.next(line)) {
      ++pass.lines;
      if (parser.parse(line, parsed)) {
        ++pass.records;
        if (track) track->observe(parsed.message);
      }
    }
  }
  if (splitter.finish(line)) {
    ++pass.lines;
    if (parser.parse(line, parsed)) ++pass.records;
  }
  if (count_allocs) {
    g_count_allocs.store(false, std::memory_order_relaxed);
    pass.alloc_calls = g_alloc_calls.load(std::memory_order_relaxed);
  }
  pass.seconds = sw.elapsed_seconds();
  return pass;
}

struct LatencyRun {
  double first_alert_seconds = 0;
  std::size_t alerts = 0;
  std::size_t records = 0;
};

/// Raw syslog text through an IngestPump into a manual-pump server; wall
/// time from the first fed byte to the first polled alert.
LatencyRun run_first_prediction(const core::DeshPipeline& pipeline,
                                const std::string& raw,
                                std::size_t chunk_bytes) {
  serve::ServeConfig sconfig;
  sconfig.start_collector = false;
  sconfig.monitor.threads = 1;
  auto server = serve::InferenceServer::create(pipeline, sconfig);
  check(server.ok(), "server rejected");
  auto pump = ingest::IngestPump::create(*server.value());
  check(pump.ok(), "pump rejected");

  LatencyRun out;
  std::vector<core::MonitorAlert> alerts;
  util::Stopwatch sw;
  std::size_t at = 0;
  bool first_seen = false;
  while (at < raw.size()) {
    const std::size_t n = std::min(chunk_bytes, raw.size() - at);
    check(pump.value()->feed_bytes(std::string_view(raw).substr(at, n)).ok(),
          "feed_bytes failed");
    at += n;
    while (server.value()->pump() != 0) {
    }
    if (!first_seen) {
      std::vector<core::MonitorAlert> batch = server.value()->poll_alerts();
      if (!batch.empty()) {
        first_seen = true;
        out.first_alert_seconds = sw.elapsed_seconds();
        out.alerts += batch.size();
      }
    }
  }
  check(pump.value()->finish().ok(), "finish failed");
  server.value()->drain();
  out.alerts += server.value()->poll_alerts().size();
  out.records = pump.value()->stats().records;
  server.value()->stop();
  check(first_seen && out.alerts > 0, "raw text produced no alerts");
  return out;
}

std::string json_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6f", value);
  return buffer;
}

/// The BENCH_ingest.json snapshot: env fields matching the stdout header
/// plus the measured throughput/latency points, so runs diff cleanly.
void write_snapshot(const std::string& path, bool smoke, std::size_t text_mb,
                    double parse_mb_s, double frontend_mb_s,
                    double lines_per_second, std::uint64_t alloc_calls,
                    double floor_mb_s, bool floor_asserted,
                    const LatencyRun& latency) {
  std::ofstream os(path, std::ios::trunc);
  check(static_cast<bool>(os), "cannot write " + path);
  const char* sanitize = DESH_SANITIZE_STRING;
  os << "{\n"
     << "  \"bench\": \"ingest\",\n"
     << "  \"build_type\": \"" << DESH_BUILD_TYPE_STRING << "\",\n"
     << "  \"sanitize\": \"" << (*sanitize ? sanitize : "none") << "\",\n"
     << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
     << "  \"text_mb\": " << text_mb << ",\n"
     << "  \"parse_mb_per_second\": " << json_double(parse_mb_s) << ",\n"
     << "  \"frontend_mb_per_second\": " << json_double(frontend_mb_s)
     << ",\n"
     << "  \"lines_per_second\": " << json_double(lines_per_second) << ",\n"
     << "  \"steady_state_alloc_calls\": " << alloc_calls << ",\n"
     << "  \"throughput_floor_mb_per_second\": " << json_double(floor_mb_s)
     << ",\n"
     << "  \"floor_asserted\": " << (floor_asserted ? "true" : "false")
     << ",\n"
     << "  \"first_prediction_seconds\": "
     << json_double(latency.first_alert_seconds) << ",\n"
     << "  \"first_prediction_alerts\": " << latency.alerts << ",\n"
     << "  \"first_prediction_records\": " << latency.records << "\n"
     << "}\n";
  check(static_cast<bool>(os), "short write to " + path);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const bool smoke = args.has("smoke");
  const std::string out = args.get("out", "BENCH_ingest.json");
  std::size_t text_mb = smoke ? 8 : 64;
  if (args.has("mb"))
    text_mb = std::strtoull(args.get("mb", "").c_str(), nullptr, 10);
  check(text_mb > 0, "--mb must be positive");
  const std::size_t chunk_bytes = 64 * 1024;
  bench::print_env_header("ingest");

  logs::SyntheticCraySource source(logs::profile_tiny(2024));
  const logs::SyntheticLog log = source.generate();
  const std::string text = make_raw_text(log.records, text_mb << 20);
  const double mb = static_cast<double>(text.size()) / (1 << 20);
  std::cout << util::format_fixed(mb, 1) << " MB raw syslog text, "
            << log.records.size() << " distinct records\n";

  // Warmup (reserves carry buffers, touches the text once), then the
  // allocation-bracketed measured pass over the identical loop.
  ParsePass warm = parse_pass(text, chunk_bytes, nullptr, false);
  check(warm.records == warm.lines, "rendered corpus must parse fully");
  ParsePass measured = parse_pass(text, chunk_bytes, nullptr, true);
  check(measured.lines == warm.lines, "passes disagree on line count");
  const double parse_mb_s = mb / measured.seconds;
  const double lines_s =
      static_cast<double>(measured.lines) / measured.seconds;
  std::cout << "tokenize: " << util::format_fixed(parse_mb_s, 1)
            << " MB/s, " << util::format_fixed(lines_s, 0) << " lines/s, "
            << measured.alloc_calls << " allocs steady-state\n";

  // The zero-allocation claim is absolute: the splitter borrows views into
  // the chunk and the parser's scratch was capacity-reserved by warmup, so
  // a single steady-state allocation is a regression, not noise.
  check(measured.alloc_calls == 0,
        "steady-state tokenize path allocated " +
            std::to_string(measured.alloc_calls) + " times");

  // Full frontend (tokenize + online template tracking) for context; the
  // tracker interns novel templates, so this pass is allowed to allocate.
  ingest::TemplateTracker tracker;
  ParsePass tracked = parse_pass(text, chunk_bytes, &tracker, false);
  const double frontend_mb_s = mb / tracked.seconds;
  std::cout << "frontend (with template tracking): "
            << util::format_fixed(frontend_mb_s, 1) << " MB/s, "
            << tracker.template_count() << " templates\n";

  // Throughput floor: the 100 MB/s contract is for optimized builds on
  // real time; sanitizer/debug builds run the same loop against a floor
  // that only catches collapse (those runs check memory/races, not time).
  const bool optimized = std::string(DESH_BUILD_TYPE_STRING) == "Release" &&
                         std::string(DESH_SANITIZE_STRING).empty();
  const double floor_mb_s = optimized ? 100.0 : 2.0;
  check(parse_mb_s >= floor_mb_s,
        "parse throughput " + util::format_fixed(parse_mb_s, 1) +
            " MB/s below the " + util::format_fixed(floor_mb_s, 0) +
            " MB/s floor");

  // Raw text -> first prediction: the held-out split (which carries real
  // injected failure chains) rendered to syslog text and streamed through
  // a pump into a manual-pump server with production monitor settings.
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  const core::DeshPipeline pipeline = train_pipeline(train);
  const std::string raw_test =
      logs::render_syslog_text(logs::canonicalize_syslog(test));
  const LatencyRun latency =
      run_first_prediction(pipeline, raw_test, chunk_bytes);
  std::cout << "raw text -> first prediction: "
            << util::format_fixed(latency.first_alert_seconds, 4) << " s ("
            << latency.alerts << " alerts over " << latency.records
            << " records)\n";

  write_snapshot(out, smoke, text_mb, parse_mb_s, frontend_mb_s, lines_s,
                 measured.alloc_calls, floor_mb_s, optimized, latency);
  std::cout << "snapshot written: " << out << "\n";
  return 0;
}
