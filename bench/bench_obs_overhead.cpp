// Telemetry overhead bench: proves the desh::obs instrumentation wired
// through the training hot paths (phase1/phase2 step timers, skip-gram
// pair counters, thread-pool task metrics) costs < 2 % of fit wall time.
// Runs the Figure-4 training workload in alternating A/B pairs — telemetry
// runtime-enabled vs runtime-disabled — in one binary, so both modes share
// the same build, cache state and thermal envelope. Telemetry observes but
// never steers: the bench additionally asserts the trained losses are
// bit-identical between modes.
//
// Flags: --profile tiny|fig4 (default tiny), --reps N (default 7).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace desh;

namespace {

struct FitResult {
  double seconds = 0;
  float phase1_loss = 0;
  float phase2_loss = 0;
};

FitResult run_fit(const logs::SyntheticLog& log, bool telemetry_on) {
  obs::DeshObsConfig config;
  config.enabled = telemetry_on;
  obs::configure(config);
  obs::registry().reset();
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  core::DeshPipeline pipeline;
  util::Stopwatch sw;
  const core::FitReport fit = pipeline.fit(train);
  FitResult out;
  out.seconds = sw.elapsed_seconds();
  out.phase1_loss = fit.phase1_loss;
  out.phase2_loss = fit.phase2_loss;
  return out;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_env_header("bench_obs_overhead");
  std::string profile_name = "tiny";
  int reps = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc)
      profile_name = argv[++i];
    else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else {
      std::cerr << "usage: bench_obs_overhead [--profile tiny|fig4] "
                   "[--reps N]\n";
      return 2;
    }
  }
  if (!obs::compiled_in()) {
    std::cout << "telemetry compiled out (DESH_OBS=OFF): nothing to "
                 "measure, overhead is 0 by construction\nPASS\n";
    return 0;
  }

  logs::SystemProfile profile = logs::profile_tiny(41);
  if (profile_name == "fig4") profile = logs::all_system_profiles().front();
  std::cout << "=== Telemetry overhead: fit wall time, obs enabled vs "
               "runtime-disabled ===\n"
            << "profile=" << profile.name << " reps=" << reps
            << " (alternating A/B pairs, medians compared)\n\n";
  logs::SyntheticCraySource source(profile);
  const logs::SyntheticLog log = source.generate();

  // Warm-up: one fit per mode so neither pays first-run costs (page
  // faults, lazy metric registration).
  run_fit(log, /*telemetry_on=*/true);
  run_fit(log, /*telemetry_on=*/false);

  // ABBA ordering: alternate which mode runs first within each pair so
  // slow machine drift (thermal, co-tenant load) cancels out of the
  // paired differences instead of biasing one mode.
  std::vector<double> off_seconds, pair_diffs;
  float on_p1 = 0, on_p2 = 0, off_p1 = 0, off_p2 = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const bool on_first = rep % 2 == 0;
    const FitResult first = run_fit(log, on_first);
    const FitResult second = run_fit(log, !on_first);
    const FitResult& on = on_first ? first : second;
    const FitResult& off = on_first ? second : first;
    off_seconds.push_back(off.seconds);
    pair_diffs.push_back(on.seconds - off.seconds);
    on_p1 = on.phase1_loss;
    on_p2 = on.phase2_loss;
    off_p1 = off.phase1_loss;
    off_p2 = off.phase2_loss;
    std::cout << "  rep " << rep << ": on="
              << util::format_fixed(on.seconds, 3) << "s off="
              << util::format_fixed(off.seconds, 3) << "s diff="
              << util::format_fixed(pair_diffs.back() * 1e3, 0) << "ms\n";
  }
  obs::configure({});  // restore defaults

  // Telemetry must not steer training: identical bits either way.
  if (std::memcmp(&on_p1, &off_p1, sizeof(float)) != 0 ||
      std::memcmp(&on_p2, &off_p2, sizeof(float)) != 0) {
    std::cout << "\nFAIL: losses differ between telemetry modes "
              << "(phase1 " << on_p1 << " vs " << off_p1 << ", phase2 "
              << on_p2 << " vs " << off_p2 << ") — telemetry steered "
              << "training\n";
    return 1;
  }

  const double off_med = median(off_seconds);
  const double diff_med = median(pair_diffs);
  const double overhead_pct = diff_med / off_med * 100.0;
  std::cout << "\nmedian paired diff=" << util::format_fixed(diff_med * 1e3, 0)
            << "ms over median off=" << util::format_fixed(off_med, 3)
            << "s -> overhead=" << util::format_fixed(overhead_pct, 2)
            << "% (budget 2%)\n"
            << "losses bit-identical across modes: phase1="
            << on_p1 << " phase2=" << on_p2 << "\n";
  if (overhead_pct < 2.0) {
    std::cout << "PASS: telemetry overhead under 2% of fit wall time\n";
    return 0;
  }
  std::cout << "FAIL: telemetry overhead exceeds the 2% budget\n";
  return 1;
}
