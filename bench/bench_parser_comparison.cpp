// Log-parser comparison: the heuristic TemplateMiner (rule-based
// static/dynamic splitting, Sec 3.1 / Table 2) vs the learned DrainMiner
// (He et al.-style fixed-depth tree, the "log parsing methods [26]" family).
//
// Metric: *grouping accuracy* against the generator's ground-truth catalog —
// the standard log-parsing score: a message is correctly parsed when its
// assigned group contains exactly the messages of its true template.
#include <iostream>
#include <map>
#include <set>

#include "bench_common.hpp"
#include "logs/drain_miner.hpp"
#include "logs/template_miner.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_parser_comparison");
  std::cout << "=== Parser comparison: rule-based TemplateMiner vs learned "
               "DrainMiner ===\n\n";
  logs::SyntheticCraySource source(logs::profile_m3());
  const logs::SyntheticLog log = source.generate();

  // Ground truth group per record: the catalog template that rendered it.
  // (TemplateMiner's output *is* the catalog template by construction, so
  // truth is recovered through it; the round-trip property is test-enforced.)
  std::vector<std::string> truth;
  truth.reserve(log.records.size());
  for (const logs::LogRecord& r : log.records)
    truth.push_back(logs::TemplateMiner::extract(r.message));

  auto grouping_accuracy = [&](const std::vector<std::uint32_t>& assigned) {
    // A predicted group is correct iff it is in 1:1 correspondence with one
    // truth group; every message in correct groups counts as accurate.
    std::map<std::uint32_t, std::set<std::string>> truths_of_group;
    std::map<std::string, std::set<std::uint32_t>> groups_of_truth;
    for (std::size_t i = 0; i < assigned.size(); ++i) {
      truths_of_group[assigned[i]].insert(truth[i]);
      groups_of_truth[truth[i]].insert(assigned[i]);
    }
    std::size_t accurate = 0;
    for (std::size_t i = 0; i < assigned.size(); ++i)
      if (truths_of_group[assigned[i]].size() == 1 &&
          groups_of_truth[truth[i]].size() == 1)
        ++accurate;
    return static_cast<double>(accurate) / static_cast<double>(assigned.size());
  };

  // --- Rule-based miner --------------------------------------------------
  util::Stopwatch sw;
  logs::PhraseVocab vocab;
  std::vector<std::uint32_t> heuristic_groups;
  heuristic_groups.reserve(log.records.size());
  for (const logs::LogRecord& r : log.records)
    heuristic_groups.push_back(vocab.add(logs::TemplateMiner::extract(r.message)));
  const double heuristic_seconds = sw.elapsed_seconds();

  // --- Drain-style miner ---------------------------------------------------
  sw.reset();
  logs::DrainMiner drain;
  std::vector<std::uint32_t> drain_groups;
  drain_groups.reserve(log.records.size());
  for (const logs::LogRecord& r : log.records)
    drain_groups.push_back(drain.add(r.message));
  const double drain_seconds = sw.elapsed_seconds();

  util::TextTable table({"Parser", "Templates found", "Grouping acc %",
                         "Parse time s", "Msgs/s"});
  table.add_row({"TemplateMiner (rules)", std::to_string(vocab.size() - 1),
                 util::format_fixed(grouping_accuracy(heuristic_groups) * 100, 1),
                 util::format_fixed(heuristic_seconds, 2),
                 std::to_string(static_cast<long>(
                     log.records.size() / std::max(1e-9, heuristic_seconds)))});
  table.add_row({"DrainMiner (learned)", std::to_string(drain.template_count()),
                 util::format_fixed(grouping_accuracy(drain_groups) * 100, 1),
                 util::format_fixed(drain_seconds, 2),
                 std::to_string(static_cast<long>(
                     log.records.size() / std::max(1e-9, drain_seconds)))});
  table.print(std::cout);
  std::cout << "\n(" << log.records.size()
            << " raw messages from M3's corpus; ground truth = the catalog "
               "template behind each message.)\nThe rule-based miner is "
               "exact on Cray-shaped dynamics by construction; Drain "
               "approaches it without any hand-written token rules — the "
               "trade-off log-parsing studies [26] report.\n";
  return 0;
}
