// Recovery-impact study — the paper's motivating argument quantified
// (Sec 1: imperfect prediction still pays because "much cheaper process
// migrations" replace "expensive checkpoint/restarts"; Sec 4.6: 3 minutes
// of lead suffices for process migration [41] and DINO cloning [39]).
//
// Feeds one simulated cluster workload four recovery policies:
//   reactive       — periodic checkpointing only, restart after failures;
//   desh           — plus live migration + quarantine driven by the *actual*
//                    warnings Desh produced on this system's logs (including
//                    its false positives and missed failures);
//   desh+lazy-ckpt — same warnings, checkpoint cadence relaxed 3x (lazy
//                    checkpointing [40]: prediction covers most failures);
//   oracle         — perfect warnings, 120 s lead (upper bound).
// and reports lost node-hours, failure hits vs saves, and job slowdowns.
#include <iostream>

#include "bench_common.hpp"
#include "recovery/cluster_sim.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_recovery_impact");
  std::cout << "=== Recovery impact: reactive vs Desh-guided vs oracle ===\n\n";

  const logs::SystemProfile profile = logs::profile_m1();
  const bench::SystemRun r = bench::run_system(profile);

  // Ground-truth failures in the test window drive the simulation.
  std::vector<recovery::NodeFailure> failures;
  for (const logs::FailureEvent& f : r.log.truth.failures)
    if (f.terminal_time >= r.log.truth.split_time)
      failures.push_back({f.node, f.terminal_time});

  // Desh's warning stream: every *flagged* candidate (true or false) warns
  // at (sequence end - achieved lead) — exactly when phase 3 would have
  // fired in deployment.
  std::vector<recovery::FailureWarning> desh_warnings;
  for (std::size_t i = 0; i < r.run.predictions.size(); ++i) {
    const core::FailurePrediction& p = r.run.predictions[i];
    if (!p.flagged) continue;
    desh_warnings.push_back(
        {p.node, std::max(0.0, p.sequence_end_time - p.lead_seconds)});
  }
  std::cout << "\n" << failures.size() << " test-window failures, "
            << desh_warnings.size() << " Desh warnings (TP="
            << r.eval.counts.tp << ", FP=" << r.eval.counts.fp << ")\n\n";

  logs::SyntheticCraySource source(profile);
  recovery::WorkloadConfig workload;
  workload.duration_seconds = r.log.truth.duration_seconds;
  workload.job_arrival_rate_per_hour = 14.0;
  workload.seed = 555;
  recovery::ClusterSimulator sim(source.nodes(), workload);

  recovery::RecoveryPolicyConfig reactive;
  recovery::RecoveryPolicyConfig proactive = reactive;
  proactive.proactive = true;

  // With a reliable predictor the checkpoint cadence can also relax (lazy
  // checkpointing, Tiwari et al. [40], cited in Sec 5): most failures are
  // caught by migration, so checkpoints exist only for the predictor's
  // misses.
  recovery::RecoveryPolicyConfig proactive_lazy = proactive;
  proactive_lazy.checkpoint_interval *= 3.0;

  const auto res_reactive = sim.run(reactive, "reactive", failures, {});
  const auto res_desh = sim.run(proactive, "desh", failures, desh_warnings);
  const auto res_lazy =
      sim.run(proactive_lazy, "desh+lazy-ckpt", failures, desh_warnings);
  const auto res_oracle = sim.run(
      proactive, "oracle", failures,
      recovery::oracle_warnings(failures, 120.0));

  util::TextTable table({"Policy", "Failure hits", "Saves", "Migrations",
                         "(wasted)", "Lost work nh", "Overhead nh",
                         "Quarantine nh", "Total waste nh", "Mean slowdown"});
  for (const recovery::SimulationResult* res :
       {&res_reactive, &res_desh, &res_lazy, &res_oracle}) {
    table.add_row(
        {res->policy_name, std::to_string(res->failure_hits),
         std::to_string(res->failure_saves), std::to_string(res->migrations),
         std::to_string(res->wasted_migrations),
         util::format_fixed(res->lost_work_seconds / 3600.0, 1),
         util::format_fixed(res->overhead_seconds / 3600.0, 1),
         util::format_fixed(res->quarantine_idle_seconds / 3600.0, 1),
         util::format_fixed(res->total_waste_seconds() / 3600.0, 1),
         util::format_fixed(res->job_slowdowns.mean(), 2)});
  }
  table.print(std::cout);

  const double saved = res_reactive.total_waste_seconds() -
                       res_lazy.total_waste_seconds();
  const double saved_pct =
      100.0 * saved / std::max(1.0, res_reactive.total_waste_seconds());
  std::cout << "\nDesh-guided recovery cuts wasted node-hours by "
            << util::format_fixed(saved / 3600.0, 1) << " ("
            << util::format_fixed(saved_pct, 0)
            << "% of the reactive policy's waste, combining migration with "
               "relaxed checkpointing); the oracle bound shows "
               "the remaining headroom.\nThis reproduces the paper's Sec 1 "
               "argument: even imperfect prediction converts expensive "
               "restarts into cheap migrations.\n";
  return 0;
}
