// Robustness study: the headline metrics across independent trace seeds.
// The paper reports single numbers per system; this bench quantifies how
// much of our paper-vs-measured gap is plain sampling noise by re-running
// M1 with five different generator seeds and reporting mean +/- stddev.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_seed_stability");
  std::cout << "=== Seed stability: M1 metrics across 5 trace seeds ===\n\n";
  util::RunningStats recall, precision, accuracy, f1, fp_rate, lead;
  util::TextTable per_seed({"Seed", "Recall %", "Precision %", "Accuracy %",
                            "F1 %", "FP rate %", "Lead s"});
  for (const std::uint64_t seed : {101ull, 1001ull, 2002ull, 3003ull, 4004ull}) {
    logs::SystemProfile profile = logs::profile_m1();
    profile.seed = seed;
    const bench::SystemRun r = bench::run_system(profile);
    const core::Metrics& m = r.eval.metrics;
    per_seed.add_row({std::to_string(seed), bench::pct(m.recall),
                      bench::pct(m.precision), bench::pct(m.accuracy),
                      bench::pct(m.f1), bench::pct(m.fp_rate),
                      util::format_fixed(r.eval.lead_times.mean(), 1)});
    recall.add(m.recall * 100);
    precision.add(m.precision * 100);
    accuracy.add(m.accuracy * 100);
    f1.add(m.f1 * 100);
    fp_rate.add(m.fp_rate * 100);
    lead.add(r.eval.lead_times.mean());
  }
  std::cout << "\n";
  per_seed.print(std::cout);

  const logs::PaperResults paper = logs::profile_m1().paper;
  std::cout << "\n";
  util::TextTable summary({"Metric", "Mean", "StdDev", "Paper (M1)"});
  auto row = [&](const char* name, const util::RunningStats& s, double ref) {
    summary.add_row({name, util::format_fixed(s.mean(), 1),
                     util::format_fixed(s.stddev(), 1),
                     util::format_fixed(ref, 1)});
  };
  row("Recall %", recall, paper.recall);
  row("Precision %", precision, paper.precision);
  row("Accuracy %", accuracy, paper.accuracy);
  row("F1 %", f1, paper.f1);
  row("FP rate %", fp_rate, paper.fp_rate);
  row("Lead s", lead, 0);
  summary.print(std::cout);
  std::cout << "\nPaper values within ~2 stddev of the seed distribution "
               "indicate the reproduction matches up to sampling noise.\n";
  return 0;
}
