// Serving-engine throughput: micro-batched InferenceServer vs per-record
// StreamingMonitor::observe(), on a decide-dense stream (every record is
// anomalous, every full window is scored — the model-bound regime where a
// saturated cluster actually lives).
//
// The batching lever is cross-node width: K interleaved nodes give the
// round-based decide K-row GEMMs instead of K separate matrix-vector
// passes. The bench sweeps K, checks the alert streams stay byte-identical
// to sequential replay, and reports records/sec.
//
//   ./bench_serve_throughput [--records N] [--smoke]
//
// --smoke shrinks the sweep and additionally exercises the admission /
// backpressure / shed / hot-reload paths (the ctest wiring runs this mode).
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/monitor.hpp"
#include "desh.hpp"
#include "logs/template_miner.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace desh;

namespace {

/// Fails the bench loudly — this binary doubles as a ctest smoke check.
void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FAIL: " << what << "\n";
    std::exit(1);
  }
}

core::DeshPipeline train_pipeline(const logs::SyntheticLog& log) {
  core::DeshConfig config;
  config.phase1.epochs = 1;  // phase 1 only feeds the labeler here
  // Production-scale phase 2: a chain model whose weights (~4 MB) outgrow
  // L2, putting per-record decides in the memory-bound regime micro-batching
  // exists for. Chain QUALITY is irrelevant to a throughput bench, so a few
  // epochs suffice.
  config.phase2.embed_dim = 256;
  config.phase2.hidden_size = 256;
  config.phase2.epochs = 4;
  config.skipgram.enabled = false;
  auto pipeline = core::DeshPipeline::create(config);
  check(pipeline.ok(), "pipeline config rejected");
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  pipeline.value().fit(train);
  return std::move(pipeline).value();
}

/// Anomalous message texts the fitted labeler will NOT gate out, so every
/// stream record advances a window and (once deep enough) costs a decide.
std::vector<std::string> anomalous_messages(
    const core::DeshPipeline& pipeline, const logs::LogCorpus& corpus) {
  std::vector<std::string> out;
  for (const logs::LogRecord& record : corpus) {
    const std::string tmpl = logs::TemplateMiner::extract(record.message);
    if (tmpl.empty()) continue;
    const std::uint32_t phrase = pipeline.vocab().encode(tmpl);
    if (pipeline.labeler().label(phrase) == logs::PhraseLabel::kSafe) continue;
    out.push_back(record.message);
    if (out.size() >= 64) break;
  }
  check(!out.empty(), "no anomalous messages in corpus");
  return out;
}

/// N records round-robin across K nodes, 1 s apart — the decide-dense
/// interleaving a saturated cluster produces.
logs::LogCorpus make_stream(const std::vector<std::string>& messages,
                            std::size_t n, std::size_t k) {
  logs::LogCorpus out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    logs::LogRecord r;
    r.timestamp = static_cast<double>(i);
    r.node.cabinet_x = static_cast<std::uint16_t>(i % k);
    r.node.node = 1;
    r.message = messages[i % messages.size()];
    out.push_back(std::move(r));
  }
  return out;
}

core::MonitorConfig stream_monitor_config() {
  core::MonitorConfig mc;
  mc.gap_seconds = 1e9;    // the 1 s synthetic cadence never resets windows
  mc.rearm_seconds = 0;    // alerts do not silence: decide on every record
  mc.threads = 1;          // isolate GEMM batching from thread parallelism
  return mc;
}

bool same_alerts(const std::vector<core::MonitorAlert>& a,
                 const std::vector<core::MonitorAlert>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i].node == b[i].node) || a[i].time != b[i].time ||
        a[i].score != b[i].score ||
        a[i].predicted_lead_seconds != b[i].predicted_lead_seconds ||
        a[i].message != b[i].message)
      return false;
  return true;
}

/// One sweep point: sequential observe() vs the manual-pump server on the
/// same stream. Returns {baseline_rps, serve_rps} and checks equivalence.
std::pair<double, double> run_width(const core::DeshPipeline& pipeline,
                                    const logs::LogCorpus& stream) {
  std::vector<core::MonitorAlert> base_alerts;
  util::Stopwatch sw;
  core::StreamingMonitor monitor(pipeline, stream_monitor_config());
  for (const logs::LogRecord& record : stream)
    if (auto alert = monitor.observe(record))
      base_alerts.push_back(std::move(*alert));
  const double base_seconds = sw.elapsed_seconds();

  serve::ServeConfig config;
  config.queue_capacity = stream.size();
  config.max_batch = 256;
  config.start_collector = false;  // manual pump: deterministic, same thread
  config.monitor = stream_monitor_config();
  sw.reset();
  auto server = serve::InferenceServer::create(pipeline, config);
  check(server.ok(), "server rejected");
  serve::InferenceServer& srv = *server.value();
  check(srv.submit_batch(stream) == stream.size(), "records rejected");
  while (srv.pump() != 0) {
  }
  const double serve_seconds = sw.elapsed_seconds();
  check(same_alerts(base_alerts, srv.poll_alerts()),
        "serve alerts diverge from sequential replay");

  const double n = static_cast<double>(stream.size());
  return {n / base_seconds, n / serve_seconds};
}

/// Admission, backpressure, shed and hot-reload on a toy server — the
/// contract checks the ctest smoke run exists for.
void smoke_contracts(const core::DeshPipeline& pipeline,
                     const std::vector<std::string>& messages) {
  serve::ServeConfig config;
  config.queue_capacity = 8;
  config.max_batch = 2;
  config.shed_watermark = 0.5;  // shed down to 4 queued after each pump
  config.start_collector = false;
  config.monitor = stream_monitor_config();
  auto server = serve::InferenceServer::create(pipeline, config);
  check(server.ok(), "smoke server rejected");
  serve::InferenceServer& srv = *server.value();

  const logs::LogCorpus stream = make_stream(messages, 12, 4);
  std::size_t accepted = 0, rejected = 0;
  for (const logs::LogRecord& r : stream)
    (srv.submit(r) == serve::Admission::kAccepted ? accepted : rejected)++;
  check(accepted == 8 && rejected == 4, "backpressure miscounted");
  check(srv.pump() == 2, "pump width");
  // 6 left > watermark 4: two shed, oldest first.
  serve::ServeStats stats = srv.stats();
  check(stats.shed == 2 && stats.queue_depth == 4, "shed policy miscounted");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "desh_bench_serve_model")
          .string();
  check(core::try_save_pipeline(pipeline, dir).ok(), "snapshot save");
  check(srv.swap_model(dir).ok(), "swap_model");
  srv.drain();  // pumps the backlog and installs the staged model
  stats = srv.stats();
  check(stats.reloads == 1 && stats.queue_depth == 0, "hot reload");
  check(!srv.swap_model("/nonexistent/desh-dir").ok(),
        "swap_model must fail on a missing directory");
  srv.stop();
  check(srv.submit(stream[0]) == serve::Admission::kStopped,
        "submit after stop");
  std::cout << "smoke contracts: admission/backpressure/shed/reload ok\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const bool smoke = args.has("smoke");
  const std::size_t n =
      static_cast<std::size_t>(args.get_int("records", smoke ? 320 : 4096));
  bench::print_env_header("serve_throughput");

  logs::SyntheticCraySource source(logs::profile_tiny(2024));
  const logs::SyntheticLog log = source.generate();
  const core::DeshPipeline pipeline = train_pipeline(log);
  const std::vector<std::string> messages =
      anomalous_messages(pipeline, log.records);

  smoke_contracts(pipeline, messages);

  const std::vector<std::size_t> widths =
      smoke ? std::vector<std::size_t>{1, 8}
            : std::vector<std::size_t>{1, 2, 4, 8, 16};
  std::cout << "width | observe rec/s | serve rec/s | speedup\n";
  double speedup_at_8 = 0;
  for (const std::size_t k : widths) {
    const logs::LogCorpus stream = make_stream(messages, n, k);
    const auto [base_rps, serve_rps] = run_width(pipeline, stream);
    const double speedup = serve_rps / base_rps;
    if (k >= 8 && speedup_at_8 == 0) speedup_at_8 = speedup;
    std::cout << util::format_fixed(static_cast<double>(k), 0) << " | "
              << util::format_fixed(base_rps, 0) << " | "
              << util::format_fixed(serve_rps, 0) << " | "
              << util::format_fixed(speedup, 2) << "x\n";
  }
#ifdef DESH_TSAN
  // TSan's ~10x instrumentation slowdown shifts the GEMM/bookkeeping ratio
  // that the 2x batching win depends on; this run checks for races, not for
  // throughput, so only require batching not to be a regression.
  check(speedup_at_8 >= 1.0,
        "micro-batching must not regress sequential observe under TSan");
#else
  check(speedup_at_8 >= 2.0,
        "micro-batching must be >= 2x sequential observe at width >= 8");
#endif
  std::cout << "serve speedup at width >= 8: "
            << util::format_fixed(speedup_at_8, 2) << "x (>= 2x required)\n";
  return 0;
}
