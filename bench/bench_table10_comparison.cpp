// Tables 10 & 11 — "Desh Comparison": Desh vs a DeepLog-style per-entry
// detector (Du et al. [18]) and a classic n-gram detector, on identical
// corpora and the identical node-failure task. The paper's claims to
// reproduce in shape: Desh reaches comparable recall with much higher
// precision (Table 10 row "Desh": recall 86%, precision 92.2%), and only
// Desh produces lead times and component locations (Table 11).
#include <iostream>

#include "baseline/deeplog.hpp"
#include "baseline/ngram.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace desh;

namespace {

core::SystemEvaluation evaluate_flags(
    const std::vector<chains::CandidateSequence>& candidates,
    const std::vector<bool>& flags, const logs::GroundTruth& truth) {
  std::vector<core::FailurePrediction> predictions(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    predictions[i].node = candidates[i].node;
    predictions[i].flagged = flags[i];
    predictions[i].sequence_end_time = candidates[i].end_time();
  }
  return core::Evaluator::evaluate(candidates, predictions, truth);
}

}  // namespace

int main() {
  bench::print_env_header("bench_table10_comparison");
  std::cout << "=== Tables 10/11: Desh vs DeepLog-style vs n-gram ===\n\n";

  core::ConfusionCounts desh_total, deeplog_total, ngram_total;
  util::RunningStats desh_lead;
  for (const logs::SystemProfile& profile : logs::all_system_profiles()) {
    const bench::SystemRun r = bench::run_system(profile);
    desh_total.tp += r.eval.counts.tp;
    desh_total.fp += r.eval.counts.fp;
    desh_total.fn += r.eval.counts.fn;
    desh_total.tn += r.eval.counts.tn;
    for (double lead : r.eval.lead_times.samples()) desh_lead.add(lead);

    // Baselines train on the same raw training window & vocabulary and
    // decide over the same candidate sequences.
    auto [train, test] =
        core::split_corpus(r.log.records, r.log.truth.split_time);
    logs::PhraseVocab vocab = r.pipeline.vocab();
    chains::ParsedLog parsed_train = chains::parse_corpus(train, vocab, false);

    util::Rng rng(profile.seed ^ 0xBA5EBA11);
    baseline::DeepLogDetector deeplog(baseline::DeepLogConfig{}, vocab.size(),
                                      rng);
    deeplog.fit(parsed_train);
    baseline::NgramDetector ngram(baseline::NgramConfig{}, vocab.size());
    ngram.fit(parsed_train);

    std::vector<bool> deeplog_flags, ngram_flags;
    for (const chains::CandidateSequence& c : r.run.candidates) {
      deeplog_flags.push_back(deeplog.flags_candidate(c));
      ngram_flags.push_back(ngram.flags_candidate(c));
    }
    const auto dl =
        evaluate_flags(r.run.candidates, deeplog_flags, r.log.truth);
    const auto ng = evaluate_flags(r.run.candidates, ngram_flags, r.log.truth);
    deeplog_total.tp += dl.counts.tp;
    deeplog_total.fp += dl.counts.fp;
    deeplog_total.fn += dl.counts.fn;
    deeplog_total.tn += dl.counts.tn;
    ngram_total.tp += ng.counts.tp;
    ngram_total.fp += ng.counts.fp;
    ngram_total.fn += ng.counts.fn;
    ngram_total.tn += ng.counts.tn;
  }

  const core::Metrics desh_m = core::Metrics::from_counts(desh_total);
  const core::Metrics dl_m = core::Metrics::from_counts(deeplog_total);
  const core::Metrics ng_m = core::Metrics::from_counts(ngram_total);

  std::cout << "\n--- Table 10 analog (pooled over M1..M4) ---\n";
  util::TextTable table({"Solution", "Method", "Lead Time", "Recall %",
                         "Precision %", "FP Rate %", "Location"});
  table.add_row({"Desh", "3-phase LSTM",
                 util::format_fixed(desh_lead.mean(), 0) + "s (" +
                     util::format_fixed(desh_lead.mean() / 60.0, 1) + " min)",
                 bench::pct(desh_m.recall), bench::pct(desh_m.precision),
                 bench::pct(desh_m.fp_rate), "node-level"});
  table.add_row({"DeepLog-style", "per-entry top-g LSTM", "none",
                 bench::pct(dl_m.recall), bench::pct(dl_m.precision),
                 bench::pct(dl_m.fp_rate), "none"});
  table.add_row({"N-gram", "top-g MLE backoff", "none",
                 bench::pct(ng_m.recall), bench::pct(ng_m.precision),
                 bench::pct(ng_m.fp_rate), "none"});
  table.print(std::cout);
  std::cout << "(paper Table 10: Desh lead 3 min, recall 86%, precision "
               "92.2%, node-level localization)\n";

  std::cout << "\n--- Table 11 analog: capability matrix ---\n";
  util::TextTable caps({"Feature", "Desh", "DeepLog-style", "N-gram"});
  caps.add_row({"No source-code access", "yes", "yes", "yes"});
  caps.add_row({"Lead time prediction", "yes", "no", "no"});
  caps.add_row({"Component (node) location", "yes", "no", "no"});
  caps.add_row({"Sequence-level anomaly", "yes", "no (per entry)",
                "no (per entry)"});
  caps.add_row({"Injected failures needed", "no", "no", "no"});
  caps.add_row({"Node-failure prediction", "yes", "repurposed", "repurposed"});
  caps.print(std::cout);

  std::cout << "\nShape check: Desh precision ("
            << bench::pct(desh_m.precision)
            << "%) should clearly exceed the per-entry detectors ("
            << bench::pct(dl_m.precision) << "% / " << bench::pct(ng_m.precision)
            << "%) because per-entry anomaly detection flags every unusual "
               "sequence, failures and non-failures alike.\n";
  return 0;
}
