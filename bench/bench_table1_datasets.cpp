// Table 1 — "Log Details": the four evaluation systems, the paper's scale
// next to this reproduction's scaled-down simulation parameters, plus the
// actually generated corpus sizes.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace desh;

int main() {
  bench::print_env_header("bench_table1_datasets");
  std::cout << "=== Table 1: Log Details (paper scale vs simulated scale) ===\n\n";
  util::TextTable table({"System", "Type", "Paper Duration", "Paper Size",
                         "Paper Nodes", "Sim Nodes", "Sim Hours",
                         "Sim Records", "Sim Failures"});
  for (const logs::SystemProfile& profile : logs::all_system_profiles()) {
    logs::SyntheticCraySource source(profile);
    const logs::SyntheticLog log = source.generate();
    table.add_row({profile.name, profile.machine_type, profile.paper_duration,
                   profile.paper_size, std::to_string(profile.paper_nodes),
                   std::to_string(profile.node_count),
                   util::format_fixed(profile.duration_hours, 0),
                   std::to_string(log.records.size()),
                   std::to_string(log.truth.failures.size())});
  }
  table.print(std::cout);
  std::cout << "\nScaling note: node counts and durations are reduced ~40x so "
               "the full suite runs on a workstation;\nfailure-class mixes, "
               "failure/lookalike ratios and lead-time distributions are "
               "preserved (see DESIGN.md).\n";
  return 0;
}
