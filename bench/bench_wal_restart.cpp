// WAL restart performance: how long InferenceServer::create() spends in the
// restore path (newest checkpoint + tail replay through observe()) as the
// un-checkpointed tail grows. The interesting number is replay throughput:
// restore cost is replay-dominated, so MTTR after a crash is tail_records /
// replay_rps — this bench pins that rate and starts the BENCH_wal.json
// trajectory.
//
//   ./bench_wal_restart [--tails 0,10000,100000] [--out BENCH_wal.json]
//                       [--smoke]
//
// Each sweep point builds a fresh log: a fixed prefix of records, one
// explicit checkpoint, then exactly `tail` more records — so the restore
// replays `tail` records, no more, no less (checked). --smoke shrinks the
// tails (the ctest wiring runs this mode); the JSON snapshot is written
// either way.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/monitor.hpp"
#include "desh.hpp"
#include "logs/template_miner.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace desh;

namespace {

/// Fails the bench loudly — this binary doubles as a ctest smoke check.
void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FAIL: " << what << "\n";
    std::exit(1);
  }
}

core::DeshPipeline train_pipeline(const logs::SyntheticLog& log) {
  core::DeshConfig config;
  config.phase1.epochs = 1;
  config.skipgram.enabled = false;
  auto pipeline = core::DeshPipeline::create(config);
  check(pipeline.ok(), "pipeline config rejected");
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  pipeline.value().fit(train);
  return std::move(pipeline).value();
}

/// Anomalous message texts the fitted labeler will NOT gate out — replay
/// cost is only honest if every replayed record actually advances a window.
std::vector<std::string> anomalous_messages(
    const core::DeshPipeline& pipeline, const logs::LogCorpus& corpus) {
  std::vector<std::string> out;
  for (const logs::LogRecord& record : corpus) {
    const std::string tmpl = logs::TemplateMiner::extract(record.message);
    if (tmpl.empty()) continue;
    const std::uint32_t phrase = pipeline.vocab().encode(tmpl);
    if (pipeline.labeler().label(phrase) == logs::PhraseLabel::kSafe) continue;
    out.push_back(record.message);
    if (out.size() >= 64) break;
  }
  check(!out.empty(), "no anomalous messages in corpus");
  return out;
}

/// N records round-robin across 8 nodes, 1 s apart.
logs::LogCorpus make_stream(const std::vector<std::string>& messages,
                            std::size_t n) {
  logs::LogCorpus out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    logs::LogRecord r;
    r.timestamp = static_cast<double>(i);
    r.node.cabinet_x = static_cast<std::uint16_t>(i % 8);
    r.node.node = 1;
    r.message = messages[i % messages.size()];
    out.push_back(std::move(r));
  }
  return out;
}

core::MonitorConfig stream_monitor_config() {
  core::MonitorConfig mc;
  mc.gap_seconds = 1e9;  // the 1 s synthetic cadence never resets windows
  mc.rearm_seconds = 0;  // alerts do not silence: decide on every record
  mc.threads = 1;
  return mc;
}

serve::ServeConfig wal_config(const std::string& dir, std::size_t capacity) {
  serve::ServeConfig config;
  config.queue_capacity = capacity;
  config.max_batch = 256;
  config.start_collector = false;
  config.monitor = stream_monitor_config();
  config.wal.directory = dir;
  config.wal.flush_every_records = 64;
  config.wal.checkpoint_every_records = 0;  // explicit checkpoints only
  return config;
}

struct Point {
  std::size_t tail = 0;
  double restore_seconds = 0;
  double replay_rps = 0;  // tail / restore_seconds (0 tail: 0)
};

/// One sweep point: populate a fresh log (prefix, checkpoint, tail), then
/// time a cold InferenceServer::create() against it.
Point run_tail(const core::DeshPipeline& pipeline,
               const std::vector<std::string>& messages, std::size_t tail,
               const std::filesystem::path& dir) {
  constexpr std::size_t kPrefix = 256;
  std::filesystem::remove_all(dir);
  const logs::LogCorpus stream = make_stream(messages, kPrefix + tail);

  {  // writer run: everything before the checkpoint is folded into it
    auto server =
        serve::InferenceServer::create(pipeline, wal_config(dir.string(), stream.size()));
    check(server.ok(), "writer server rejected");
    serve::InferenceServer& srv = *server.value();
    logs::LogCorpus prefix(stream.begin(), stream.begin() + kPrefix);
    logs::LogCorpus rest(stream.begin() + kPrefix, stream.end());
    check(srv.submit_batch(prefix) == kPrefix, "prefix rejected");
    while (srv.pump() != 0) {
    }
    check(srv.wal_checkpoint_now().ok(), "checkpoint failed");
    check(srv.submit_batch(rest) == rest.size(), "tail rejected");
    while (srv.pump() != 0) {
    }
    srv.stop();  // flushes: the whole tail is on disk
  }

  util::Stopwatch sw;
  auto restored =
      serve::InferenceServer::create(pipeline, wal_config(dir.string(), 16));
  Point point;
  point.tail = tail;
  point.restore_seconds = sw.elapsed_seconds();
  check(restored.ok(), "restore rejected");
  const serve::InferenceServer::WalStats stats = restored.value()->wal_stats();
  check(stats.checkpoint_seq == kPrefix, "checkpoint not restored");
  check(stats.replayed == tail, "tail length diverged from replay count");
  check(stats.applied_seq == kPrefix + tail, "applied_seq after restore");
  restored.value()->stop();
  if (tail > 0)
    point.replay_rps = static_cast<double>(tail) / point.restore_seconds;
  return point;
}

std::string json_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6f", value);
  return buffer;
}

/// The BENCH_wal.json snapshot: env fields matching the stdout header plus
/// one entry per sweep point, so successive runs diff cleanly.
void write_snapshot(const std::string& path, bool smoke,
                    const std::vector<Point>& points) {
  std::ofstream os(path, std::ios::trunc);
  check(static_cast<bool>(os), "cannot write " + path);
  const char* sanitize = DESH_SANITIZE_STRING;
  os << "{\n"
     << "  \"bench\": \"wal_restart\",\n"
     << "  \"build_type\": \"" << DESH_BUILD_TYPE_STRING << "\",\n"
     << "  \"sanitize\": \"" << (*sanitize ? sanitize : "none") << "\",\n"
     << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
     << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    os << "    {\"tail_records\": " << p.tail << ", \"restore_seconds\": "
       << json_double(p.restore_seconds) << ", \"replay_records_per_second\": "
       << json_double(p.replay_rps) << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  check(static_cast<bool>(os), "short write to " + path);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const bool smoke = args.has("smoke");
  const std::string out = args.get("out", "BENCH_wal.json");
  std::vector<std::size_t> tails = smoke
                                       ? std::vector<std::size_t>{0, 1000, 5000}
                                       : std::vector<std::size_t>{0, 10000,
                                                                  100000};
  if (args.has("tails")) {
    tails.clear();
    for (const std::string& part :
         util::split(args.get("tails", ""), ','))
      tails.push_back(std::strtoull(part.c_str(), nullptr, 10));
    check(!tails.empty(), "--tails expects a comma-separated list");
  }
  bench::print_env_header("wal_restart");

  logs::SyntheticCraySource source(logs::profile_tiny(2024));
  const logs::SyntheticLog log = source.generate();
  const core::DeshPipeline pipeline = train_pipeline(log);
  const std::vector<std::string> messages =
      anomalous_messages(pipeline, log.records);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "desh_bench_wal_restart";

  std::cout << "tail records | restore s | replay rec/s\n";
  std::vector<Point> points;
  for (const std::size_t tail : tails) {
    const Point point = run_tail(pipeline, messages, tail, dir);
    std::cout << point.tail << " | "
              << util::format_fixed(point.restore_seconds, 4) << " | "
              << util::format_fixed(point.replay_rps, 0) << "\n";
    points.push_back(point);
  }
  std::filesystem::remove_all(dir);

  // A 0-record tail must restore from the checkpoint alone — if it ever
  // costs as much as a 1000+-record replay, the checkpoint path regressed.
  check(points.size() >= 2 &&
            points.front().restore_seconds <= points.back().restore_seconds,
        "checkpoint-only restore slower than the longest replay");
  write_snapshot(out, smoke, points);
  std::cout << "snapshot written: " << out << "\n";
  return 0;
}
