file(REMOVE_RECURSE
  "../bench/bench_fig10_cost"
  "../bench/bench_fig10_cost.pdb"
  "CMakeFiles/bench_fig10_cost.dir/bench_fig10_cost.cpp.o"
  "CMakeFiles/bench_fig10_cost.dir/bench_fig10_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
