file(REMOVE_RECURSE
  "../bench/bench_fig5_fpfn"
  "../bench/bench_fig5_fpfn.pdb"
  "CMakeFiles/bench_fig5_fpfn.dir/bench_fig5_fpfn.cpp.o"
  "CMakeFiles/bench_fig5_fpfn.dir/bench_fig5_fpfn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fpfn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
