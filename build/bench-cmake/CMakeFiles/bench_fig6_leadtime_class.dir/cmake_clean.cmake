file(REMOVE_RECURSE
  "../bench/bench_fig6_leadtime_class"
  "../bench/bench_fig6_leadtime_class.pdb"
  "CMakeFiles/bench_fig6_leadtime_class.dir/bench_fig6_leadtime_class.cpp.o"
  "CMakeFiles/bench_fig6_leadtime_class.dir/bench_fig6_leadtime_class.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_leadtime_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
