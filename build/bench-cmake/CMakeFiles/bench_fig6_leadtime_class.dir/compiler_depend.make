# Empty compiler generated dependencies file for bench_fig6_leadtime_class.
# This may be replaced when dependencies are built.
