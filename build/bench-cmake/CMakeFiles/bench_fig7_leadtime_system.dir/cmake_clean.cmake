file(REMOVE_RECURSE
  "../bench/bench_fig7_leadtime_system"
  "../bench/bench_fig7_leadtime_system.pdb"
  "CMakeFiles/bench_fig7_leadtime_system.dir/bench_fig7_leadtime_system.cpp.o"
  "CMakeFiles/bench_fig7_leadtime_system.dir/bench_fig7_leadtime_system.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_leadtime_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
