# Empty compiler generated dependencies file for bench_fig7_leadtime_system.
# This may be replaced when dependencies are built.
