file(REMOVE_RECURSE
  "../bench/bench_fig9_unknown_phrases"
  "../bench/bench_fig9_unknown_phrases.pdb"
  "CMakeFiles/bench_fig9_unknown_phrases.dir/bench_fig9_unknown_phrases.cpp.o"
  "CMakeFiles/bench_fig9_unknown_phrases.dir/bench_fig9_unknown_phrases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_unknown_phrases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
