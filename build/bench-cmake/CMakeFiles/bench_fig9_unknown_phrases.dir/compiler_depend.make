# Empty compiler generated dependencies file for bench_fig9_unknown_phrases.
# This may be replaced when dependencies are built.
