file(REMOVE_RECURSE
  "../bench/bench_parser_comparison"
  "../bench/bench_parser_comparison.pdb"
  "CMakeFiles/bench_parser_comparison.dir/bench_parser_comparison.cpp.o"
  "CMakeFiles/bench_parser_comparison.dir/bench_parser_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parser_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
