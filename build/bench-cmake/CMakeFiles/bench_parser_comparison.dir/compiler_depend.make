# Empty compiler generated dependencies file for bench_parser_comparison.
# This may be replaced when dependencies are built.
