file(REMOVE_RECURSE
  "../bench/bench_recovery_impact"
  "../bench/bench_recovery_impact.pdb"
  "CMakeFiles/bench_recovery_impact.dir/bench_recovery_impact.cpp.o"
  "CMakeFiles/bench_recovery_impact.dir/bench_recovery_impact.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
