# Empty dependencies file for bench_recovery_impact.
# This may be replaced when dependencies are built.
