
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_seed_stability.cpp" "bench-cmake/CMakeFiles/bench_seed_stability.dir/bench_seed_stability.cpp.o" "gcc" "bench-cmake/CMakeFiles/bench_seed_stability.dir/bench_seed_stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/desh_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/desh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/desh_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/chains/CMakeFiles/desh_chains.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/desh_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/desh_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/desh_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/desh_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/desh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
