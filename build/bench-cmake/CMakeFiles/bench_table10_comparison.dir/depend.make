# Empty dependencies file for bench_table10_comparison.
# This may be replaced when dependencies are built.
