file(REMOVE_RECURSE
  "CMakeFiles/lead_time_tradeoff.dir/lead_time_tradeoff.cpp.o"
  "CMakeFiles/lead_time_tradeoff.dir/lead_time_tradeoff.cpp.o.d"
  "lead_time_tradeoff"
  "lead_time_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lead_time_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
