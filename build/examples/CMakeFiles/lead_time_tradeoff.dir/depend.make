# Empty dependencies file for lead_time_tradeoff.
# This may be replaced when dependencies are built.
