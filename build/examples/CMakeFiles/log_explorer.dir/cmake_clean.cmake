file(REMOVE_RECURSE
  "CMakeFiles/log_explorer.dir/log_explorer.cpp.o"
  "CMakeFiles/log_explorer.dir/log_explorer.cpp.o.d"
  "log_explorer"
  "log_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
