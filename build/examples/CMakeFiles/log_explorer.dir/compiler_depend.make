# Empty compiler generated dependencies file for log_explorer.
# This may be replaced when dependencies are built.
