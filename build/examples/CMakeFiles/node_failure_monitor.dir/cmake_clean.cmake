file(REMOVE_RECURSE
  "CMakeFiles/node_failure_monitor.dir/node_failure_monitor.cpp.o"
  "CMakeFiles/node_failure_monitor.dir/node_failure_monitor.cpp.o.d"
  "node_failure_monitor"
  "node_failure_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_failure_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
