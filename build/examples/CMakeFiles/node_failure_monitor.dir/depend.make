# Empty dependencies file for node_failure_monitor.
# This may be replaced when dependencies are built.
