file(REMOVE_RECURSE
  "CMakeFiles/desh_baseline.dir/deeplog.cpp.o"
  "CMakeFiles/desh_baseline.dir/deeplog.cpp.o.d"
  "CMakeFiles/desh_baseline.dir/ngram.cpp.o"
  "CMakeFiles/desh_baseline.dir/ngram.cpp.o.d"
  "libdesh_baseline.a"
  "libdesh_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desh_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
