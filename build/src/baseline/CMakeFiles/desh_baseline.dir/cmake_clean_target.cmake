file(REMOVE_RECURSE
  "libdesh_baseline.a"
)
