# Empty dependencies file for desh_baseline.
# This may be replaced when dependencies are built.
