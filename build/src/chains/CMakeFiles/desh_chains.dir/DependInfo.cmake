
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chains/delta_time.cpp" "src/chains/CMakeFiles/desh_chains.dir/delta_time.cpp.o" "gcc" "src/chains/CMakeFiles/desh_chains.dir/delta_time.cpp.o.d"
  "/root/repo/src/chains/extractor.cpp" "src/chains/CMakeFiles/desh_chains.dir/extractor.cpp.o" "gcc" "src/chains/CMakeFiles/desh_chains.dir/extractor.cpp.o.d"
  "/root/repo/src/chains/labeler.cpp" "src/chains/CMakeFiles/desh_chains.dir/labeler.cpp.o" "gcc" "src/chains/CMakeFiles/desh_chains.dir/labeler.cpp.o.d"
  "/root/repo/src/chains/parsed_log.cpp" "src/chains/CMakeFiles/desh_chains.dir/parsed_log.cpp.o" "gcc" "src/chains/CMakeFiles/desh_chains.dir/parsed_log.cpp.o.d"
  "/root/repo/src/chains/unknown_analysis.cpp" "src/chains/CMakeFiles/desh_chains.dir/unknown_analysis.cpp.o" "gcc" "src/chains/CMakeFiles/desh_chains.dir/unknown_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logs/CMakeFiles/desh_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/desh_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/desh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/desh_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
