file(REMOVE_RECURSE
  "CMakeFiles/desh_chains.dir/delta_time.cpp.o"
  "CMakeFiles/desh_chains.dir/delta_time.cpp.o.d"
  "CMakeFiles/desh_chains.dir/extractor.cpp.o"
  "CMakeFiles/desh_chains.dir/extractor.cpp.o.d"
  "CMakeFiles/desh_chains.dir/labeler.cpp.o"
  "CMakeFiles/desh_chains.dir/labeler.cpp.o.d"
  "CMakeFiles/desh_chains.dir/parsed_log.cpp.o"
  "CMakeFiles/desh_chains.dir/parsed_log.cpp.o.d"
  "CMakeFiles/desh_chains.dir/unknown_analysis.cpp.o"
  "CMakeFiles/desh_chains.dir/unknown_analysis.cpp.o.d"
  "libdesh_chains.a"
  "libdesh_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desh_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
