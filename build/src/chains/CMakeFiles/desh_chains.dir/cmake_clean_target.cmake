file(REMOVE_RECURSE
  "libdesh_chains.a"
)
