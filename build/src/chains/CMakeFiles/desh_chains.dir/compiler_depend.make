# Empty compiler generated dependencies file for desh_chains.
# This may be replaced when dependencies are built.
