
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/desh_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/desh_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/insights.cpp" "src/core/CMakeFiles/desh_core.dir/insights.cpp.o" "gcc" "src/core/CMakeFiles/desh_core.dir/insights.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/desh_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/desh_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/desh_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/desh_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/persistence.cpp" "src/core/CMakeFiles/desh_core.dir/persistence.cpp.o" "gcc" "src/core/CMakeFiles/desh_core.dir/persistence.cpp.o.d"
  "/root/repo/src/core/phase1.cpp" "src/core/CMakeFiles/desh_core.dir/phase1.cpp.o" "gcc" "src/core/CMakeFiles/desh_core.dir/phase1.cpp.o.d"
  "/root/repo/src/core/phase2.cpp" "src/core/CMakeFiles/desh_core.dir/phase2.cpp.o" "gcc" "src/core/CMakeFiles/desh_core.dir/phase2.cpp.o.d"
  "/root/repo/src/core/phase3.cpp" "src/core/CMakeFiles/desh_core.dir/phase3.cpp.o" "gcc" "src/core/CMakeFiles/desh_core.dir/phase3.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/desh_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/desh_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/desh_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/desh_core.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chains/CMakeFiles/desh_chains.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/desh_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/desh_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/desh_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/desh_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/desh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
