file(REMOVE_RECURSE
  "CMakeFiles/desh_core.dir/evaluator.cpp.o"
  "CMakeFiles/desh_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/desh_core.dir/insights.cpp.o"
  "CMakeFiles/desh_core.dir/insights.cpp.o.d"
  "CMakeFiles/desh_core.dir/metrics.cpp.o"
  "CMakeFiles/desh_core.dir/metrics.cpp.o.d"
  "CMakeFiles/desh_core.dir/monitor.cpp.o"
  "CMakeFiles/desh_core.dir/monitor.cpp.o.d"
  "CMakeFiles/desh_core.dir/persistence.cpp.o"
  "CMakeFiles/desh_core.dir/persistence.cpp.o.d"
  "CMakeFiles/desh_core.dir/phase1.cpp.o"
  "CMakeFiles/desh_core.dir/phase1.cpp.o.d"
  "CMakeFiles/desh_core.dir/phase2.cpp.o"
  "CMakeFiles/desh_core.dir/phase2.cpp.o.d"
  "CMakeFiles/desh_core.dir/phase3.cpp.o"
  "CMakeFiles/desh_core.dir/phase3.cpp.o.d"
  "CMakeFiles/desh_core.dir/pipeline.cpp.o"
  "CMakeFiles/desh_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/desh_core.dir/sensitivity.cpp.o"
  "CMakeFiles/desh_core.dir/sensitivity.cpp.o.d"
  "libdesh_core.a"
  "libdesh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
