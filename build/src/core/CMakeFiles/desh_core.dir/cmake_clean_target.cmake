file(REMOVE_RECURSE
  "libdesh_core.a"
)
