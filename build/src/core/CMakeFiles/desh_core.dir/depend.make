# Empty dependencies file for desh_core.
# This may be replaced when dependencies are built.
