file(REMOVE_RECURSE
  "CMakeFiles/desh_embed.dir/skipgram.cpp.o"
  "CMakeFiles/desh_embed.dir/skipgram.cpp.o.d"
  "libdesh_embed.a"
  "libdesh_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desh_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
