file(REMOVE_RECURSE
  "libdesh_embed.a"
)
