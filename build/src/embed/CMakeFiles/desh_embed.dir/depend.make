# Empty dependencies file for desh_embed.
# This may be replaced when dependencies are built.
