
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logs/drain_miner.cpp" "src/logs/CMakeFiles/desh_logs.dir/drain_miner.cpp.o" "gcc" "src/logs/CMakeFiles/desh_logs.dir/drain_miner.cpp.o.d"
  "/root/repo/src/logs/generator.cpp" "src/logs/CMakeFiles/desh_logs.dir/generator.cpp.o" "gcc" "src/logs/CMakeFiles/desh_logs.dir/generator.cpp.o.d"
  "/root/repo/src/logs/io.cpp" "src/logs/CMakeFiles/desh_logs.dir/io.cpp.o" "gcc" "src/logs/CMakeFiles/desh_logs.dir/io.cpp.o.d"
  "/root/repo/src/logs/node_id.cpp" "src/logs/CMakeFiles/desh_logs.dir/node_id.cpp.o" "gcc" "src/logs/CMakeFiles/desh_logs.dir/node_id.cpp.o.d"
  "/root/repo/src/logs/phrase_catalog.cpp" "src/logs/CMakeFiles/desh_logs.dir/phrase_catalog.cpp.o" "gcc" "src/logs/CMakeFiles/desh_logs.dir/phrase_catalog.cpp.o.d"
  "/root/repo/src/logs/record.cpp" "src/logs/CMakeFiles/desh_logs.dir/record.cpp.o" "gcc" "src/logs/CMakeFiles/desh_logs.dir/record.cpp.o.d"
  "/root/repo/src/logs/syslog.cpp" "src/logs/CMakeFiles/desh_logs.dir/syslog.cpp.o" "gcc" "src/logs/CMakeFiles/desh_logs.dir/syslog.cpp.o.d"
  "/root/repo/src/logs/system_profile.cpp" "src/logs/CMakeFiles/desh_logs.dir/system_profile.cpp.o" "gcc" "src/logs/CMakeFiles/desh_logs.dir/system_profile.cpp.o.d"
  "/root/repo/src/logs/template_miner.cpp" "src/logs/CMakeFiles/desh_logs.dir/template_miner.cpp.o" "gcc" "src/logs/CMakeFiles/desh_logs.dir/template_miner.cpp.o.d"
  "/root/repo/src/logs/vocab.cpp" "src/logs/CMakeFiles/desh_logs.dir/vocab.cpp.o" "gcc" "src/logs/CMakeFiles/desh_logs.dir/vocab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/desh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
