file(REMOVE_RECURSE
  "CMakeFiles/desh_logs.dir/drain_miner.cpp.o"
  "CMakeFiles/desh_logs.dir/drain_miner.cpp.o.d"
  "CMakeFiles/desh_logs.dir/generator.cpp.o"
  "CMakeFiles/desh_logs.dir/generator.cpp.o.d"
  "CMakeFiles/desh_logs.dir/io.cpp.o"
  "CMakeFiles/desh_logs.dir/io.cpp.o.d"
  "CMakeFiles/desh_logs.dir/node_id.cpp.o"
  "CMakeFiles/desh_logs.dir/node_id.cpp.o.d"
  "CMakeFiles/desh_logs.dir/phrase_catalog.cpp.o"
  "CMakeFiles/desh_logs.dir/phrase_catalog.cpp.o.d"
  "CMakeFiles/desh_logs.dir/record.cpp.o"
  "CMakeFiles/desh_logs.dir/record.cpp.o.d"
  "CMakeFiles/desh_logs.dir/syslog.cpp.o"
  "CMakeFiles/desh_logs.dir/syslog.cpp.o.d"
  "CMakeFiles/desh_logs.dir/system_profile.cpp.o"
  "CMakeFiles/desh_logs.dir/system_profile.cpp.o.d"
  "CMakeFiles/desh_logs.dir/template_miner.cpp.o"
  "CMakeFiles/desh_logs.dir/template_miner.cpp.o.d"
  "CMakeFiles/desh_logs.dir/vocab.cpp.o"
  "CMakeFiles/desh_logs.dir/vocab.cpp.o.d"
  "libdesh_logs.a"
  "libdesh_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desh_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
