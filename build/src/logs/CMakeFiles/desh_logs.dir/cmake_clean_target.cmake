file(REMOVE_RECURSE
  "libdesh_logs.a"
)
