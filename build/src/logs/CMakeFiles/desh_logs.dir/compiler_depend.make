# Empty compiler generated dependencies file for desh_logs.
# This may be replaced when dependencies are built.
