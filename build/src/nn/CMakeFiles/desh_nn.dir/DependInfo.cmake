
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/chain_model.cpp" "src/nn/CMakeFiles/desh_nn.dir/chain_model.cpp.o" "gcc" "src/nn/CMakeFiles/desh_nn.dir/chain_model.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/desh_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/desh_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/desh_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/desh_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/desh_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/desh_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/desh_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/desh_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/desh_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/desh_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/phrase_model.cpp" "src/nn/CMakeFiles/desh_nn.dir/phrase_model.cpp.o" "gcc" "src/nn/CMakeFiles/desh_nn.dir/phrase_model.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/desh_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/desh_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/desh_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/desh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
