file(REMOVE_RECURSE
  "CMakeFiles/desh_nn.dir/chain_model.cpp.o"
  "CMakeFiles/desh_nn.dir/chain_model.cpp.o.d"
  "CMakeFiles/desh_nn.dir/dense.cpp.o"
  "CMakeFiles/desh_nn.dir/dense.cpp.o.d"
  "CMakeFiles/desh_nn.dir/embedding.cpp.o"
  "CMakeFiles/desh_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/desh_nn.dir/loss.cpp.o"
  "CMakeFiles/desh_nn.dir/loss.cpp.o.d"
  "CMakeFiles/desh_nn.dir/lstm.cpp.o"
  "CMakeFiles/desh_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/desh_nn.dir/optimizer.cpp.o"
  "CMakeFiles/desh_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/desh_nn.dir/phrase_model.cpp.o"
  "CMakeFiles/desh_nn.dir/phrase_model.cpp.o.d"
  "CMakeFiles/desh_nn.dir/serialize.cpp.o"
  "CMakeFiles/desh_nn.dir/serialize.cpp.o.d"
  "libdesh_nn.a"
  "libdesh_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desh_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
