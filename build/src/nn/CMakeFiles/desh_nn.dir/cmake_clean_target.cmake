file(REMOVE_RECURSE
  "libdesh_nn.a"
)
