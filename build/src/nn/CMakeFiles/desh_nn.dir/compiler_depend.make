# Empty compiler generated dependencies file for desh_nn.
# This may be replaced when dependencies are built.
