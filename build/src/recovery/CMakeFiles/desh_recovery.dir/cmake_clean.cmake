file(REMOVE_RECURSE
  "CMakeFiles/desh_recovery.dir/cluster_sim.cpp.o"
  "CMakeFiles/desh_recovery.dir/cluster_sim.cpp.o.d"
  "libdesh_recovery.a"
  "libdesh_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desh_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
