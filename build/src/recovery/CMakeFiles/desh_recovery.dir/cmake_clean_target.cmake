file(REMOVE_RECURSE
  "libdesh_recovery.a"
)
