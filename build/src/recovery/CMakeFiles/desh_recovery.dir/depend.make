# Empty dependencies file for desh_recovery.
# This may be replaced when dependencies are built.
