file(REMOVE_RECURSE
  "CMakeFiles/desh_tensor.dir/matrix.cpp.o"
  "CMakeFiles/desh_tensor.dir/matrix.cpp.o.d"
  "CMakeFiles/desh_tensor.dir/ops.cpp.o"
  "CMakeFiles/desh_tensor.dir/ops.cpp.o.d"
  "libdesh_tensor.a"
  "libdesh_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desh_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
