file(REMOVE_RECURSE
  "libdesh_tensor.a"
)
