# Empty compiler generated dependencies file for desh_tensor.
# This may be replaced when dependencies are built.
