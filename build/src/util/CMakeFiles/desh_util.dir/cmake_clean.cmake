file(REMOVE_RECURSE
  "CMakeFiles/desh_util.dir/cli.cpp.o"
  "CMakeFiles/desh_util.dir/cli.cpp.o.d"
  "CMakeFiles/desh_util.dir/rng.cpp.o"
  "CMakeFiles/desh_util.dir/rng.cpp.o.d"
  "CMakeFiles/desh_util.dir/stats.cpp.o"
  "CMakeFiles/desh_util.dir/stats.cpp.o.d"
  "CMakeFiles/desh_util.dir/strings.cpp.o"
  "CMakeFiles/desh_util.dir/strings.cpp.o.d"
  "CMakeFiles/desh_util.dir/table.cpp.o"
  "CMakeFiles/desh_util.dir/table.cpp.o.d"
  "libdesh_util.a"
  "libdesh_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desh_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
