file(REMOVE_RECURSE
  "libdesh_util.a"
)
