# Empty compiler generated dependencies file for desh_util.
# This may be replaced when dependencies are built.
