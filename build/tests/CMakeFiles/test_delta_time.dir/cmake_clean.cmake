file(REMOVE_RECURSE
  "CMakeFiles/test_delta_time.dir/test_delta_time.cpp.o"
  "CMakeFiles/test_delta_time.dir/test_delta_time.cpp.o.d"
  "test_delta_time"
  "test_delta_time.pdb"
  "test_delta_time[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
