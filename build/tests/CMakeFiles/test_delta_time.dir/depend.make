# Empty dependencies file for test_delta_time.
# This may be replaced when dependencies are built.
