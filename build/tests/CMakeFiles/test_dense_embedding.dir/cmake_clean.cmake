file(REMOVE_RECURSE
  "CMakeFiles/test_dense_embedding.dir/test_dense_embedding.cpp.o"
  "CMakeFiles/test_dense_embedding.dir/test_dense_embedding.cpp.o.d"
  "test_dense_embedding"
  "test_dense_embedding.pdb"
  "test_dense_embedding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
