# Empty compiler generated dependencies file for test_dense_embedding.
# This may be replaced when dependencies are built.
