file(REMOVE_RECURSE
  "CMakeFiles/test_drain_syslog.dir/test_drain_syslog.cpp.o"
  "CMakeFiles/test_drain_syslog.dir/test_drain_syslog.cpp.o.d"
  "test_drain_syslog"
  "test_drain_syslog.pdb"
  "test_drain_syslog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drain_syslog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
