# Empty dependencies file for test_drain_syslog.
# This may be replaced when dependencies are built.
