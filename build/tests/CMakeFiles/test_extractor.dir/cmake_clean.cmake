file(REMOVE_RECURSE
  "CMakeFiles/test_extractor.dir/test_extractor.cpp.o"
  "CMakeFiles/test_extractor.dir/test_extractor.cpp.o.d"
  "test_extractor"
  "test_extractor.pdb"
  "test_extractor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
