file(REMOVE_RECURSE
  "CMakeFiles/test_insights.dir/test_insights.cpp.o"
  "CMakeFiles/test_insights.dir/test_insights.cpp.o.d"
  "test_insights"
  "test_insights.pdb"
  "test_insights[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_insights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
