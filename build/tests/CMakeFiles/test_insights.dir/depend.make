# Empty dependencies file for test_insights.
# This may be replaced when dependencies are built.
