# Empty dependencies file for test_labeler.
# This may be replaced when dependencies are built.
