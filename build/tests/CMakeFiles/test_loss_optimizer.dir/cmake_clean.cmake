file(REMOVE_RECURSE
  "CMakeFiles/test_loss_optimizer.dir/test_loss_optimizer.cpp.o"
  "CMakeFiles/test_loss_optimizer.dir/test_loss_optimizer.cpp.o.d"
  "test_loss_optimizer"
  "test_loss_optimizer.pdb"
  "test_loss_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loss_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
