file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_evaluator.dir/test_metrics_evaluator.cpp.o"
  "CMakeFiles/test_metrics_evaluator.dir/test_metrics_evaluator.cpp.o.d"
  "test_metrics_evaluator"
  "test_metrics_evaluator.pdb"
  "test_metrics_evaluator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_evaluator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
