# Empty compiler generated dependencies file for test_metrics_evaluator.
# This may be replaced when dependencies are built.
