file(REMOVE_RECURSE
  "CMakeFiles/test_persistence_monitor.dir/test_persistence_monitor.cpp.o"
  "CMakeFiles/test_persistence_monitor.dir/test_persistence_monitor.cpp.o.d"
  "test_persistence_monitor"
  "test_persistence_monitor.pdb"
  "test_persistence_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_persistence_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
