file(REMOVE_RECURSE
  "CMakeFiles/test_skipgram.dir/test_skipgram.cpp.o"
  "CMakeFiles/test_skipgram.dir/test_skipgram.cpp.o.d"
  "test_skipgram"
  "test_skipgram.pdb"
  "test_skipgram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skipgram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
