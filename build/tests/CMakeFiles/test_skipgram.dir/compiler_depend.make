# Empty compiler generated dependencies file for test_skipgram.
# This may be replaced when dependencies are built.
