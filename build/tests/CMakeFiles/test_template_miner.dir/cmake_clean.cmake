file(REMOVE_RECURSE
  "CMakeFiles/test_template_miner.dir/test_template_miner.cpp.o"
  "CMakeFiles/test_template_miner.dir/test_template_miner.cpp.o.d"
  "test_template_miner"
  "test_template_miner.pdb"
  "test_template_miner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_template_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
