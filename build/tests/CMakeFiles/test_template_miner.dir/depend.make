# Empty dependencies file for test_template_miner.
# This may be replaced when dependencies are built.
