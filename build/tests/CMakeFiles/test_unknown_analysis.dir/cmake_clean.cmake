file(REMOVE_RECURSE
  "CMakeFiles/test_unknown_analysis.dir/test_unknown_analysis.cpp.o"
  "CMakeFiles/test_unknown_analysis.dir/test_unknown_analysis.cpp.o.d"
  "test_unknown_analysis"
  "test_unknown_analysis.pdb"
  "test_unknown_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unknown_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
