# Empty dependencies file for test_unknown_analysis.
# This may be replaced when dependencies are built.
