file(REMOVE_RECURSE
  "CMakeFiles/test_vocab_io.dir/test_vocab_io.cpp.o"
  "CMakeFiles/test_vocab_io.dir/test_vocab_io.cpp.o.d"
  "test_vocab_io"
  "test_vocab_io.pdb"
  "test_vocab_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vocab_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
