# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_strings[1]_include.cmake")
include("/root/repo/build/tests/test_table_cli[1]_include.cmake")
include("/root/repo/build/tests/test_matrix_ops[1]_include.cmake")
include("/root/repo/build/tests/test_dense_embedding[1]_include.cmake")
include("/root/repo/build/tests/test_lstm[1]_include.cmake")
include("/root/repo/build/tests/test_loss_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_skipgram[1]_include.cmake")
include("/root/repo/build/tests/test_node_id[1]_include.cmake")
include("/root/repo/build/tests/test_template_miner[1]_include.cmake")
include("/root/repo/build/tests/test_vocab_io[1]_include.cmake")
include("/root/repo/build/tests/test_catalog[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_labeler[1]_include.cmake")
include("/root/repo/build/tests/test_extractor[1]_include.cmake")
include("/root/repo/build/tests/test_delta_time[1]_include.cmake")
include("/root/repo/build/tests/test_metrics_evaluator[1]_include.cmake")
include("/root/repo/build/tests/test_phases[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_unknown_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_persistence_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_drain_syslog[1]_include.cmake")
include("/root/repo/build/tests/test_insights[1]_include.cmake")
