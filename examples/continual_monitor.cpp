// Continual monitoring: the desh::adapt closed loop end to end.
//
// A streaming monitor trained offline goes stale the day the cluster
// changes — a firmware update, a new interconnect, a swapped-in blade
// family all emit messages the trained vocabulary has never seen. This
// example stages exactly that: it trains a champion on the synthetic
// trace, serves the test stream through an InferenceServer with an
// AdaptController tapped in, and injects a distribution shift halfway
// through (a novel "widget driver fault" family the champion cannot
// encode). Watch the loop close:
//
//   1. DETECT   — the OOV/novelty windows fill, breach, and latch drift
//   2. RETRAIN  — a challenger is fitted on the bounded replay buffer,
//                 warm-started from the champion
//   3. VALIDATE — champion vs challenger shadow-eval on the held-out
//                 window; the winner is decided by evidence, not recency
//   4. SWAP     — the challenger is published to the versioned registry,
//                 promoted, and hot-swapped into the server at a batch
//                 boundary; a probation period guards the promotion
//
//   ./continual_monitor [--profile tiny|m1|m2|m3|m4] [--registry PATH]
//
// Retraining runs inline (background=false) so the printed timeline is
// deterministic; production deployments set background=true and the same
// loop runs on a dedicated thread while serving never stalls (bench_adapt
// measures that isolation).
#include <filesystem>
#include <iostream>
#include <memory>

#include "desh.hpp"
#include "logs/generator.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

using namespace desh;

namespace {

logs::SystemProfile pick_profile(const std::string& name) {
  if (name == "m1") return logs::profile_m1();
  if (name == "m2") return logs::profile_m2();
  if (name == "m3") return logs::profile_m3();
  if (name == "m4") return logs::profile_m4();
  return logs::profile_tiny(2026);
}

void print_drift(const adapt::DriftStatus& drift) {
  std::cout << "  drift: oov " << util::format_fixed(drift.oov_rate, 3)
            << " (" << drift.oov_samples << " samples), novelty "
            << util::format_fixed(drift.novelty_rate, 3) << " ("
            << drift.novelty_samples << " samples)";
  if (drift.drifting()) {
    std::cout << " — LATCHED:";
    for (adapt::DriftSignal s : drift.latched)
      std::cout << " " << adapt::to_string(s);
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const logs::SystemProfile profile = pick_profile(args.get("profile", "tiny"));
  const std::string registry_root = args.get(
      "registry",
      (std::filesystem::temp_directory_path() / "desh_continual_registry")
          .string());
  std::filesystem::remove_all(registry_root);

  // ---- offline training: the champion --------------------------------
  std::cout << "== Desh continual monitor on '" << profile.name << "' ==\n";
  logs::SyntheticCraySource source(profile);
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  std::cout << "offline training on " << train.size() << " records...\n";
  core::DeshConfig trainer;
  trainer.phase1.epochs = 1;  // demo budget; production keeps the default
  auto pipeline = std::make_shared<core::DeshPipeline>(trainer);
  const core::FitReport fit = pipeline->fit(train);
  std::shared_ptr<const core::DeshPipeline> champion = std::move(pipeline);
  std::cout << "champion trained: vocab " << fit.vocab_size << ", "
            << fit.failure_chains << " failure chains\n";

  // ---- the shifted stream --------------------------------------------
  // First half: the distribution the champion was trained on. Second
  // half: every other record is a fault family the vocabulary has never
  // seen — the morning after the firmware update.
  logs::LogCorpus stream;
  std::size_t i = 0;
  for (const logs::LogRecord& record : test) {
    stream.push_back(record);
    if (++i > test.size() / 2 && i % 2 == 0) {
      logs::LogRecord novel = record;
      novel.message = "widget driver fault on port " + std::to_string(i % 7);
      novel.timestamp += 1e-3;
      stream.push_back(std::move(novel));
    }
  }
  std::cout << "live stream: " << stream.size() << " records, shift at record "
            << test.size() / 2 << "\n\n";

  // ---- serve + adapt --------------------------------------------------
  serve::ServeConfig serve_config;
  serve_config.queue_capacity = stream.size();
  serve_config.max_batch = 128;
  serve_config.start_collector = false;  // manual pump: deterministic demo
  auto server =
      std::move(serve::InferenceServer::create(*champion, serve_config))
          .value();

  adapt::AdaptOptions options;
  options.registry_root = registry_root;
  options.trainer = trainer;
  options.trainer.threads = 1;
  options.config.background = false;  // inline retrain (see file comment)
  options.config.oov_window = 64;
  options.config.novelty_window = 64;
  options.config.min_window_fill = 16;
  options.config.hysteresis = 2;
  options.config.oov_trigger = 0.2;
  options.config.oov_clear = 0.05;
  options.config.replay_capacity = 1u << 16;
  options.config.min_replay_records = 512;
  options.config.retrain_cooldown_records = 1u << 20;
  auto controller =
      std::move(adapt::AdaptController::create(champion, options)).value();
  controller->attach(*server);
  std::cout << "registry at " << controller->registry().root()
            << ": incumbent published + promoted as v"
            << controller->registry().champion().value_or(0) << "\n";

  std::size_t last_reloads = 0, last_retrains = 0, last_triggers = 0;
  std::size_t last_entries = controller->registry().entries().size();
  for (std::size_t at = 0; at < stream.size(); at += 128) {
    const std::size_t n = std::min<std::size_t>(128, stream.size() - at);
    for (std::size_t k = 0; k < n; ++k) (void)server->submit(stream[at + k]);
    server->pump();

    const adapt::AdaptStats stats = controller->stats();
    if (stats.drift_triggers > last_triggers) {
      // An inline retrain in the same pump resets the detector, so the
      // latched signals are read from the registry note it left behind
      // (when the challenger won and was published this chunk).
      std::cout << "[record ~" << at + n << "] DRIFT detected";
      if (controller->registry().entries().size() > last_entries)
        std::cout << " (" << controller->registry().entries().back().note
                  << ")";
      std::cout << "\n";
      last_triggers = stats.drift_triggers;
    }
    last_entries = controller->registry().entries().size();
    if (stats.retrains > last_retrains) {
      const adapt::ShadowReport& shadow = stats.last_shadow;
      std::cout << "[record ~" << at + n << "] RETRAIN #" << stats.retrains
                << " on " << stats.records_tapped
                << "-record replay window\n"
                << "  shadow eval (" << shadow.holdout_records
                << " held-out records): champion score "
                << util::format_fixed(shadow.champion_score, 3)
                << " (coverage "
                << util::format_fixed(shadow.champion_coverage, 3)
                << ") vs challenger "
                << util::format_fixed(shadow.challenger_score, 3)
                << " (coverage "
                << util::format_fixed(shadow.challenger_coverage, 3) << ") — "
                << (shadow.challenger_wins ? "challenger WINS"
                                           : "challenger rejected")
                << "\n";
      last_retrains = stats.retrains;
    }
    const std::size_t reloads = server->stats().reloads;
    if (reloads > last_reloads) {
      std::cout << "[record ~" << at + n << "] SWAP installed: champion is v"
                << controller->registry().champion().value_or(0)
                << (stats.probation_active ? " (on probation)" : "") << "\n";
      last_reloads = reloads;
    }
  }
  server->drain();

  // ---- epilogue -------------------------------------------------------
  const adapt::AdaptStats stats = controller->stats();
  std::cout << "\n--- adaptation summary ---\n"
            << "records tapped:  " << stats.records_tapped << "\n"
            << "drift triggers:  " << stats.drift_triggers << "\n"
            << "retrains:        " << stats.retrains << " ("
            << stats.retrain_failures << " failed)\n"
            << "promotions:      " << stats.promotions << ", rejections: "
            << stats.rejections << ", rollbacks: " << stats.rollbacks << "\n"
            << "champion:        v" << stats.champion_version.value_or(0)
            << (stats.probation_active ? " (probation still running)" : "")
            << "\n";
  std::cout << "registry versions:";
  for (const adapt::RegistryEntry& e : controller->registry().entries())
    std::cout << " v" << e.version << (e.note.empty() ? "" : " [" + e.note + "]");
  std::cout << "\n";
  print_drift(controller->drift());

  controller->stop();
  server->stop();
  return 0;
}
