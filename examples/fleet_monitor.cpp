// Fleet-scale serving demo: the desh::fleet layer run the way a site
// operator would, exercising every runbook in FLEET.md on live traffic.
//
//   1. Train a pipeline offline on the first 30% of the trace.
//   2. Stand up a FleetController: N consistent-hash-routed shards, each
//      an InferenceServer with its own WAL directory under --wal-root.
//   3. Replay the test stream through submit(), honoring backpressure.
//   4. Mid-stream, run the drain -> restart-from-WAL runbook on shard 0:
//      its nodes fail over, the shard restores from its own log, and its
//      nodes route home again — ingestion never stops.
//   5. Later, roll out a model snapshot fleet-wide with rolling_reload()
//      under a probation probe (the adapt promotion path).
//   6. Print the merged FleetHealth: per-shard counters, submit p99, and
//      the top-K soonest-predicted failures — the operator's page.
//
//   ./fleet_monitor [--profile tiny|m1|m2|m3|m4] [--shards N]
//                   [--wal-root DIR] [--max-warnings N]
#include <filesystem>
#include <iostream>
#include <memory>
#include <thread>

#include "desh.hpp"
#include "logs/generator.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

using namespace desh;

namespace {
logs::SystemProfile pick_profile(const std::string& name) {
  if (name == "m1") return logs::profile_m1();
  if (name == "m2") return logs::profile_m2();
  if (name == "m3") return logs::profile_m3();
  if (name == "m4") return logs::profile_m4();
  return logs::profile_tiny(2026);
}
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const logs::SystemProfile profile = pick_profile(args.get("profile", "tiny"));
  const auto shard_count = static_cast<std::size_t>(args.get_int("shards", 3));
  const auto max_warnings =
      static_cast<std::size_t>(args.get_int("max-warnings", 6));
  const std::string wal_root = args.get(
      "wal-root",
      (std::filesystem::temp_directory_path() / "desh_fleet_monitor_wal")
          .string());
  std::filesystem::remove_all(wal_root);  // a fresh demo, not a recovery

  std::cout << "== Desh fleet on '" << profile.name << "' (" << shard_count
            << " shards) ==\n";
  logs::SyntheticCraySource source(profile);
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);

  std::cout << "offline training on " << train.size() << " records...\n";
  auto pipeline = std::make_shared<core::DeshPipeline>();
  const core::FitReport fit = pipeline->fit(train);
  std::cout << "trained: vocab " << fit.vocab_size << ", "
            << fit.failure_chains << " failure chains\n";

  // The snapshot that rolling_reload() installs fleet-wide below — in a
  // real deployment this is the adapt::ModelRegistry's promoted version.
  const std::string model_dir =
      (std::filesystem::temp_directory_path() / "desh_fleet_monitor_model")
          .string();
  if (auto saved = core::try_save_pipeline(*pipeline, model_dir); !saved) {
    std::cerr << "snapshot save failed: " << saved.error().message << "\n";
    return 1;
  }

  fleet::FleetOptions options;
  options.fleet.shards = shard_count;
  options.fleet.wal_root = wal_root;  // one WAL directory per shard
  options.shard.queue_capacity = 4096;
  auto created = fleet::FleetController::create(pipeline, options);
  if (!created) {
    std::cerr << "fleet rejected: " << created.error().message << "\n";
    return 1;
  }
  fleet::FleetController& fleet = *created.value();

  std::cout << "--- serving " << test.size() << " test records ---\n";
  std::vector<core::MonitorAlert> alerts;
  bool restarted = false;
  bool reloaded = false;
  for (std::size_t i = 0; i < test.size(); ++i) {
    // FLEET.md runbook, step by step: drain shard 0 (its nodes fail over
    // clockwise), restart it over its own WAL, and let routing bring its
    // nodes home. The rest of the fleet serves throughout.
    if (!restarted && i == test.size() / 3) {
      restarted = true;
      if (auto drained = fleet.drain_shard(0); !drained) {
        std::cerr << "drain_shard: " << drained.error().message << "\n";
      } else if (auto back = fleet.restart_shard(0); !back) {
        std::cerr << "restart_shard: " << back.error().message << "\n";
      } else {
        const auto wal = fleet.health().per_shard[0].wal;
        std::cout << "[" << logs::format_timestamp(test[i].timestamp)
                  << "] shard 0 drained + restarted from " << wal_root
                  << "/shard-0 (replayed " << wal.replayed
                  << " tail records)\n";
      }
    }
    // Fleet-wide model rollout with probation: every shard must pass the
    // probe or every shard rolls back — never a half-installed fleet.
    if (!reloaded && i == (2 * test.size()) / 3) {
      reloaded = true;
      auto next = core::try_load_pipeline(model_dir);
      if (!next) {
        std::cerr << "snapshot load failed: " << next.error().message << "\n";
      } else {
        auto handoff = std::make_shared<core::DeshPipeline>(
            std::move(next).value());
        auto probe = [](std::size_t, serve::InferenceServer& server)
            -> core::Expected<void> {
          if (server.stats().reloads == 0)
            return core::Error{core::ErrorCode::kUnavailable,
                               "swap did not install"};
          return {};
        };
        if (auto rolled = fleet.rolling_reload(handoff, probe); !rolled)
          std::cerr << "rolling_reload rolled back: "
                    << rolled.error().message << "\n";
        else
          std::cout << "[" << logs::format_timestamp(test[i].timestamp)
                    << "] rolling reload passed probation on every shard\n";
      }
    }
    while (fleet.submit(test[i]) == serve::Admission::kQueueFull)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (i % 4096 == 0)
      for (core::MonitorAlert& a : fleet.poll_alerts())
        alerts.push_back(std::move(a));
  }
  fleet.drain();
  for (core::MonitorAlert& a : fleet.poll_alerts())
    alerts.push_back(std::move(a));

  std::size_t printed = 0;
  for (const core::MonitorAlert& alert : alerts) {
    if (printed >= max_warnings) break;
    std::cout << "[" << logs::format_timestamp(alert.time)
              << "] WARNING: " << alert.message << "\n";
    ++printed;
  }
  if (alerts.size() > printed)
    std::cout << "... and " << alerts.size() - printed
              << " further warnings suppressed (--max-warnings)\n";

  const fleet::FleetHealth health = fleet.health();
  fleet.stop();
  std::cout << "\n--- fleet health ---\n"
            << "shards " << health.active_shards << "/" << health.shards
            << " active; admitted " << health.totals.admitted
            << ", processed " << health.totals.processed << ", alerts "
            << health.totals.alerts << ", reloads " << health.totals.reloads
            << "\nwal committed " << health.wal_committed_records
            << " records (replayed " << health.wal_replayed_records
            << " on restart); submit p99 "
            << util::format_fixed(health.submit_p99_seconds * 1e6, 1)
            << " us\nper shard:";
  for (const fleet::ShardHealth& shard : health.per_shard)
    std::cout << "\n  [" << shard.shard << "] "
              << (shard.active ? "active" : "drained") << " processed "
              << shard.serve.processed << " alerts " << shard.serve.alerts;
  std::cout << "\ntop at-risk nodes (horizon "
            << util::format_fixed(options.fleet.alert_horizon_seconds, 0)
            << " s):\n";
  if (health.top_at_risk.empty()) std::cout << "  (none)\n";
  for (const fleet::AtRiskNode& node : health.top_at_risk)
    std::cout << "  " << node.node.to_string() << " on shard "
              << node.shard << ", predicted failure at "
              << logs::format_timestamp(node.predicted_failure_time) << " ("
              << util::format_fixed(node.predicted_lead_seconds / 60.0, 1)
              << " min lead)\n";
  return 0;
}
