// Tailing a live syslog file: the desh::ingest frontend end to end.
//
// Production monitors do not receive tidy pre-parsed LogRecords — they
// follow a console log that some other process appends to, a few hundred
// bytes at a time, with no respect for line boundaries. This example
// stages exactly that: a writer appends the held-out synthetic stream to a
// file in irregular partial writes (lines torn mid-byte, corrupt frames,
// one megabyte-scale garbage "line"), while a tail loop reads whatever new
// bytes have appeared and feeds them — raw — through an IngestPump into an
// InferenceServer. The pump's splitter stitches the torn lines back
// together, the parser rejects the junk without stopping, the template
// tracker interns every message family it meets, and the server raises the
// same lead-time alerts it would have raised on the pre-parsed stream.
//
//   ./ingest_tail [--profile tiny|m1|m2|m3|m4] [--file PATH]
//
// The point to watch: torn_lines climbs into the hundreds while records
// equals exactly the number of well-formed lines — chunking is invisible
// to the decision stream (tests/test_ingest.cpp proves the equivalence
// bit-for-bit; this example just lets you watch it happen).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "desh.hpp"
#include "logs/generator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace desh;

namespace {

logs::SystemProfile pick_profile(const std::string& name) {
  if (name == "m1") return logs::profile_m1();
  if (name == "m2") return logs::profile_m2();
  if (name == "m3") return logs::profile_m3();
  if (name == "m4") return logs::profile_m4();
  return logs::profile_tiny(2026);
}

/// Appends `bytes` to the log file the way a console daemon would: open,
/// write, flush, close. Partial lines land on disk as partial lines.
void append_to_log(const std::string& path, std::string_view bytes) {
  std::ofstream os(path, std::ios::app | std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const logs::SystemProfile profile = pick_profile(args.get("profile", "tiny"));
  const std::string path = args.get(
      "file",
      (std::filesystem::temp_directory_path() / "desh_ingest_tail.log")
          .string());
  std::filesystem::remove(path);

  // ---- offline training ------------------------------------------------
  std::cout << "== Desh raw-log tail on '" << profile.name << "' ==\n";
  logs::SyntheticCraySource source(profile);
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  std::cout << "offline training on " << train.size() << " records...\n";
  core::DeshConfig config;
  config.phase1.epochs = 1;  // demo budget; production keeps the default
  auto created = core::DeshPipeline::create(config);
  core::DeshPipeline pipeline = std::move(created).value();
  const core::FitReport fit = pipeline.fit(train);
  std::cout << "trained: vocab " << fit.vocab_size << ", "
            << fit.failure_chains << " failure chains\n";

  // ---- the "live" log file --------------------------------------------
  // The writer's script: the held-out stream as raw syslog text, salted
  // with what real console logs contain — corrupt frames the parser must
  // reject, and one giant garbage line the splitter must drop whole
  // without buffering it.
  std::string script = logs::render_syslog_text(test);
  script.insert(script.size() / 3,
                "<<<firmware frame 0xdeadbeef not syslog>>>\n");
  script.insert(2 * script.size() / 3,
                std::string(64 * 1024, 'x') + "\n");
  std::cout << "live log: " << script.size() << " bytes will be appended to "
            << path << " in irregular partial writes\n\n";

  // ---- serve through the pump -----------------------------------------
  serve::ServeConfig serve_config;
  serve_config.start_collector = false;  // manual pump: deterministic demo
  auto server =
      std::move(serve::InferenceServer::create(pipeline, serve_config))
          .value();
  auto pump = std::move(ingest::IngestPump::create(*server)).value();

  // The tail loop. Writer and reader alternate deterministically here (a
  // real deployment runs them in different processes); `offset` plays the
  // role of tail -f's remembered file position.
  util::Rng rng(7);
  std::size_t written = 0;        // script bytes appended so far
  std::uint64_t offset = 0;       // log bytes consumed so far
  std::size_t alerts_seen = 0;
  std::vector<char> buffer(64 * 1024);
  while (written < script.size() || offset < written) {
    // Writer turn: append 1..512 bytes, boundary-blind.
    if (written < script.size()) {
      const std::size_t n =
          std::min(script.size() - written, 1 + rng.uniform_index(512));
      append_to_log(path, std::string_view(script).substr(written, n));
      written += n;
    }

    // Reader turn: consume whatever the file has beyond our offset.
    std::ifstream is(path, std::ios::binary);
    is.seekg(static_cast<std::streamoff>(offset));
    while (is.read(buffer.data(),
                   static_cast<std::streamsize>(buffer.size())) ||
           is.gcount() > 0) {
      const std::string_view chunk(buffer.data(),
                                   static_cast<std::size_t>(is.gcount()));
      if (!pump->feed_bytes(chunk).ok()) {
        std::cerr << "pump rejected bytes (sink stopped?)\n";
        return 1;
      }
      offset += chunk.size();
    }

    for (const core::MonitorAlert& alert : server->poll_alerts()) {
      ++alerts_seen;
      std::cout << "[alert " << alerts_seen << "] " << alert.message << "\n";
    }
  }
  // End of stream: flush the final unterminated line, then drain the sink.
  (void)pump->finish();
  server->drain();
  for (const core::MonitorAlert& alert : server->poll_alerts()) {
    ++alerts_seen;
    std::cout << "[alert " << alerts_seen << "] " << alert.message << "\n";
  }

  // ---- epilogue --------------------------------------------------------
  const ingest::IngestStats stats = pump->stats();
  std::cout << "\n--- ingest summary ---\n"
            << "bytes read:        " << stats.bytes << "\n"
            << "lines seen:        " << stats.lines << "\n"
            << "records admitted:  " << stats.records << "\n"
            << "torn lines healed: " << stats.torn_lines << "\n"
            << "unparseable lines: " << stats.unparseable_lines << "\n"
            << "oversize dropped:  " << stats.oversize_lines << "\n"
            << "template families: " << pump->tracker().template_count()
            << " (" << stats.new_templates << " first sightings)\n"
            << "admission retries: " << stats.admission_retries << "\n"
            << "alerts raised:     " << alerts_seen << "\n";

  server->stop();
  std::filesystem::remove(path);
  return 0;
}
