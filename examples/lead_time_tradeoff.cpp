// Lead-time / false-positive trade-off planner (the Fig 8 study as a tool).
//
// An operator wants the longest possible warning while keeping false alarms
// below a budget ("Researchers agree that failure prediction is useful even
// if imperfect", Sec 1). This example sweeps the decision point on one
// system and recommends the earliest flag position whose FP rate stays under
// the requested ceiling, translating the result into which recovery actions
// (Sec 4.6) the lead time affords.
//
//   ./lead_time_tradeoff [--profile tiny|m1|...] [--max-fp 25]
#include <iostream>

#include "core/evaluator.hpp"
#include "core/sensitivity.hpp"
#include "desh.hpp"
#include "logs/generator.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace desh;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  logs::SystemProfile profile = logs::profile_tiny(3);
  const std::string name = args.get("profile", "tiny");
  if (name == "m1") profile = logs::profile_m1();
  if (name == "m2") profile = logs::profile_m2();
  if (name == "m3") profile = logs::profile_m3();
  if (name == "m4") profile = logs::profile_m4();
  const double max_fp = args.get_double("max-fp", 25.0);

  std::cout << "== Lead-time planner on '" << profile.name
            << "' (FP budget " << util::format_fixed(max_fp, 0) << "%) ==\n";
  logs::SyntheticCraySource source(profile);
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  core::DeshPipeline pipeline;
  pipeline.fit(train);
  const core::TestRun run = pipeline.predict(test);
  const auto points = core::lead_time_sensitivity(pipeline, run, log.truth,
                                                  2, 7);

  std::cout << "\n";
  util::TextTable table({"Phrases checked", "Avg lead s", "Recall %",
                         "FP rate %", "Within budget"});
  const core::SensitivityPoint* recommended = nullptr;
  for (const core::SensitivityPoint& p : points) {
    const bool ok = p.fp_rate <= max_fp && p.tp > 0;
    if (ok && (!recommended ||
               p.mean_lead_seconds > recommended->mean_lead_seconds))
      recommended = &p;
    table.add_row({std::to_string(p.decision_position + 1),
                   util::format_fixed(p.mean_lead_seconds, 1),
                   util::format_fixed(p.recall, 1),
                   util::format_fixed(p.fp_rate, 1), ok ? "yes" : "no"});
  }
  table.print(std::cout);

  if (!recommended) {
    std::cout << "\nNo operating point satisfies a "
              << util::format_fixed(max_fp, 0)
              << "% FP budget on this system; relax --max-fp.\n";
    return 0;
  }
  const double lead = recommended->mean_lead_seconds;
  std::cout << "\nRecommended operating point: decide after "
            << recommended->decision_position + 1 << " phrases -> "
            << util::format_fixed(lead, 0) << "s average lead at "
            << util::format_fixed(recommended->fp_rate, 1) << "% FP.\n"
            << "\nRecovery actions this lead time affords (Sec 4.6):\n"
            << "  process-level live migration (13-24s): "
            << (lead > 24 ? "YES" : "no") << "\n"
            << "  DINO node cloning (90s):               "
            << (lead > 90 ? "YES" : "no") << "\n"
            << "  quarantine from scheduler (immediate): "
            << (lead > 0 ? "YES" : "no") << "\n";
  return 0;
}
