// Log explorer: the Sec 3.1 / Sec 4.3 analysis workflow as a tool.
//
// Generates (or loads) a raw Cray-style log, then walks the front half of
// the Desh pipeline interactively:
//   1. template mining — static/dynamic splitting with examples (Table 2);
//   2. vocabulary + expert labeling statistics (Table 3);
//   3. skip-gram embedding neighborhoods (which phrases co-occur);
//   4. failure-chain extraction with a printed example chain (Table 4);
//   5. unknown-phrase contribution analysis (Table 8 / Fig 9).
//
//   ./log_explorer [--profile tiny|m1|m2|m3|m4] [--load file.log]
#include <iostream>
#include <map>

#include "chains/delta_time.hpp"
#include "chains/extractor.hpp"
#include "chains/unknown_analysis.hpp"
#include "core/insights.hpp"
#include "desh.hpp"
#include "embed/skipgram.hpp"
#include "logs/generator.hpp"
#include "logs/io.hpp"
#include "logs/template_miner.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace desh;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  logs::SystemProfile profile = logs::profile_tiny(7);
  const std::string name = args.get("profile", "tiny");
  if (name == "m1") profile = logs::profile_m1();
  if (name == "m2") profile = logs::profile_m2();
  if (name == "m3") profile = logs::profile_m3();
  if (name == "m4") profile = logs::profile_m4();

  logs::SyntheticCraySource source(profile);
  logs::SyntheticLog log = source.generate();
  if (args.has("load")) {
    core::Expected<logs::LogCorpus> loaded =
        logs::load_corpus(args.get("load", ""));
    if (!loaded) {
      std::cerr << loaded.error().message << "\n";
      return 1;
    }
    log.records = std::move(loaded).value();
    std::cout << "loaded corpus from " << args.get("load", "") << "\n";
  }
  std::cout << "== Log explorer: " << log.records.size() << " records from '"
            << profile.name << "' ==\n\n";

  // 1. Template mining examples.
  std::cout << "--- 1. static/dynamic phrase splitting (Table 2) ---\n";
  std::size_t shown = 0;
  for (const logs::LogRecord& r : log.records) {
    const std::string tmpl = logs::TemplateMiner::extract(r.message);
    if (tmpl == r.message) continue;  // show only messages with dynamics
    std::cout << "  raw:      " << r.message << "\n  template: " << tmpl
              << "\n";
    if (++shown >= 4) break;
  }

  // 2. Vocabulary and labeling.
  logs::PhraseVocab vocab;
  chains::ParsedLog parsed = chains::parse_corpus(log.records, vocab, true);
  chains::PhraseLabeler labeler(vocab);
  std::map<logs::PhraseLabel, std::size_t> label_counts;
  std::map<logs::PhraseLabel, std::size_t> event_counts;
  std::vector<std::size_t> occurrences(vocab.size(), 0);
  for (const auto& [node, events] : parsed.by_node)
    for (const chains::ParsedEvent& e : events) {
      ++event_counts[labeler.label(e.phrase)];
      ++occurrences[e.phrase];
    }
  for (std::uint32_t id = 1; id < vocab.size(); ++id)
    ++label_counts[labeler.label(id)];
  std::cout << "\n--- 2. vocabulary & expert labels (Table 3) ---\n"
            << "  " << vocab.size() << " distinct templates from "
            << parsed.event_count << " events\n"
            << "  Safe: " << label_counts[logs::PhraseLabel::kSafe]
            << " templates / " << event_counts[logs::PhraseLabel::kSafe]
            << " events\n"
            << "  Unknown: " << label_counts[logs::PhraseLabel::kUnknown]
            << " templates / " << event_counts[logs::PhraseLabel::kUnknown]
            << " events\n"
            << "  Error: " << label_counts[logs::PhraseLabel::kError]
            << " templates / " << event_counts[logs::PhraseLabel::kError]
            << " events\n";

  // 3. Embedding neighborhoods.
  std::cout << "\n--- 3. skip-gram phrase neighborhoods (Sec 3.1, window 8/3) "
               "---\n";
  embed::SkipGramConfig sg_config;
  sg_config.vocab_size = vocab.size();
  util::Rng rng(99);
  embed::SkipGram skipgram(sg_config, rng);
  std::vector<std::vector<std::uint32_t>> sequences;
  for (const logs::NodeId& node : parsed.sorted_nodes()) {
    std::vector<std::uint32_t> ids;
    for (const chains::ParsedEvent& e : parsed.by_node.at(node))
      ids.push_back(e.phrase);
    sequences.push_back(std::move(ids));
  }
  skipgram.train(sequences, 2);
  for (const char* probe : {"LustreError *", "CPU * Machine Check Exception: *"}) {
    const std::uint32_t id = vocab.encode(probe);
    if (id == logs::PhraseVocab::kUnknownId) continue;
    std::cout << "  nearest to \"" << probe << "\":\n";
    for (const auto& [other, sim] : skipgram.most_similar(id, 3))
      std::cout << "    " << util::format_fixed(sim, 2) << "  "
                << vocab.decode(other) << "\n";
  }

  // 4. Failure chains.
  chains::ChainExtractor extractor;
  const auto candidates = extractor.extract(parsed, labeler);
  std::size_t failure_chains = 0;
  const chains::CandidateSequence* example = nullptr;
  for (const auto& c : candidates)
    if (c.ends_with_terminal) {
      ++failure_chains;
      if (!example) example = &c;
    }
  std::cout << "\n--- 4. failure-chain extraction (Sec 3.1 step 5) ---\n"
            << "  " << candidates.size() << " anomalous candidate sequences, "
            << failure_chains << " end in a terminal phrase (failure chains)\n";
  if (example) {
    std::cout << "  example chain on node " << example->node.to_string()
              << " (deltaT to terminal, Table 4 format):\n";
    const auto deltas = chains::DeltaTimeCalculator::delta_seconds(*example);
    for (std::size_t i = 0; i < example->events.size(); ++i)
      std::cout << "    dT=" << util::format_fixed(deltas[i], 3) << "s  "
                << vocab.decode(example->events[i].phrase) << "\n";
  }

  // 5. Unknown phrase analysis.
  std::cout << "\n--- 5. unknown-phrase failure contribution (Table 8 / Fig 9) "
               "---\n";
  util::TextTable table({"Phrase", "Occurrences", "In failure chains",
                         "Contribution %"});
  for (const chains::UnknownPhraseStat& s :
       chains::UnknownPhraseAnalyzer::analyze(log.records, log.truth))
    table.add_row({s.tmpl, std::to_string(s.total),
                   std::to_string(s.in_failures),
                   util::format_fixed(s.measured_contribution() * 100, 0)});
  table.print(std::cout);
  std::cout << "\nObservation 5: none of these is 0% or 100% — anomalous "
               "phrases are failure evidence only in chain context.\n";

  // 6. Ground-truth-free failure indicators (Sec 1: Desh "gives insights as
  // to what phrases indicate node failures").
  std::cout << "\n--- 6. learned failure indicators (lift of extracted "
               "chains, no ground truth) ---\n";
  const auto insights = core::failure_indicators(parsed, candidates, vocab);
  std::size_t printed = 0;
  for (const core::PhraseInsight& insight : insights) {
    if (printed++ >= 8) break;
    std::cout << "  lift " << util::format_fixed(insight.lift, 1) << "  ("
              << insight.chain_count << "/" << insight.corpus_count
              << " occurrences in chains)  " << insight.tmpl << "\n";
  }
  return 0;
}
