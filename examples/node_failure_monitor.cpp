// Streaming node-failure monitor: the deployment scenario of Sec 4.5,
// built on core::StreamingMonitor.
//
// After offline training (phases 1-2), the monitor replays the test stream
// in timestamp order and raises the paper's headline warning as soon as a
// per-node window matches a trained failure chain:
//     "In 2.5 minutes, node c0-0c1s4n2 located in cabinet 0-0, chassis 1,
//      blade 4, node 2 is expected to fail"
// In streaming mode the true time-to-failure is unknowable, so the warning
// carries the MODEL's predicted lead time (the phase-2 deltaT head). At the
// end the monitor scores itself against ground truth: how many failures were
// warned about ahead of time, and how early.
//
//   ./node_failure_monitor [--profile tiny|m1|m2|m3|m4] [--max-warnings N]
//                          [--stats-every N] [--stats-file PATH]
//
// While replaying, a telemetry stats line is printed every --stats-every
// records (records/sec, alerts so far, observe-latency p50/p95 read from the
// desh::obs registry). --stats-file additionally flushes the full registry
// as JSON to PATH every 2 s (obs::FileSink), the scrape surface a resident
// monitor would expose.
#include <iostream>
#include <memory>

#include "desh.hpp"
#include "logs/generator.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

using namespace desh;

namespace {

logs::SystemProfile pick_profile(const std::string& name) {
  if (name == "m1") return logs::profile_m1();
  if (name == "m2") return logs::profile_m2();
  if (name == "m3") return logs::profile_m3();
  if (name == "m4") return logs::profile_m4();
  return logs::profile_tiny(2026);
}

/// One "stats:" line from the live telemetry registry — what an operator
/// tailing the monitor's log would watch.
void print_stats_line(std::size_t records_seen, double elapsed_seconds) {
  const obs::RegistrySnapshot snap = obs::registry().snapshot();
  double alerts = 0, p50 = 0, p95 = 0;
  for (const obs::MetricSnapshot& m : snap.metrics) {
    if (m.name == obs::kMonitorAlertsTotal.name) alerts = m.value;
    if (m.name == obs::kMonitorObserveSeconds.name) {
      p50 = obs::approx_quantile(m, 0.50);
      p95 = obs::approx_quantile(m, 0.95);
    }
  }
  const double rate = elapsed_seconds > 0 ? records_seen / elapsed_seconds : 0;
  std::cout << "stats: " << records_seen << " records, "
            << util::format_fixed(rate, 0) << " rec/s, "
            << static_cast<std::size_t>(alerts) << " alerts, observe p50<="
            << util::format_fixed(p50 * 1e3, 2) << "ms p95<="
            << util::format_fixed(p95 * 1e3, 2) << "ms\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const logs::SystemProfile profile = pick_profile(args.get("profile", "tiny"));
  const auto max_warnings =
      static_cast<std::size_t>(args.get_int("max-warnings", 12));
  const auto stats_every =
      static_cast<std::size_t>(args.get_int("stats-every", 2000));
  const std::string stats_file = args.get("stats-file", "");
  std::unique_ptr<obs::FileSink> sink;
  if (obs::compiled_in() && !stats_file.empty())
    sink = std::make_unique<obs::FileSink>(stats_file,
                                           /*interval_seconds=*/2.0,
                                           obs::registry());

  std::cout << "== Desh streaming monitor on '" << profile.name << "' ==\n";
  logs::SyntheticCraySource source(profile);
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);

  std::cout << "offline training on " << train.size() << " records...\n";
  core::DeshPipeline pipeline;
  const core::FitReport fit = pipeline.fit(train);
  std::cout << "trained: vocab " << fit.vocab_size << ", "
            << fit.failure_chains << " failure chains learned\n\n";
  std::cout << "--- replaying " << test.size() << " test records live ---\n";

  core::StreamingMonitor monitor(pipeline);
  struct Warning {
    logs::NodeId node;
    double at_time;
    double predicted_lead;
  };
  std::vector<Warning> warnings;
  std::size_t printed = 0;
  std::size_t records_seen = 0;
  util::Stopwatch replay_clock;

  for (const logs::LogRecord& record : test) {
    const auto alert = monitor.observe(record);
    if (obs::compiled_in() && ++records_seen % stats_every == 0)
      print_stats_line(records_seen, replay_clock.elapsed_seconds());
    if (!alert) continue;
    warnings.push_back({alert->node, alert->time,
                        alert->predicted_lead_seconds});
    if (printed < max_warnings) {
      std::cout << "[" << logs::format_timestamp(alert->time)
                << "] WARNING: " << alert->message << " (match score "
                << util::format_fixed(alert->score, 3) << ")\n";
      ++printed;
    }
  }
  if (warnings.size() > printed)
    std::cout << "... and " << warnings.size() - printed
              << " further warnings suppressed (--max-warnings)\n";

  // ---- Self-scoring against ground truth ------------------------------
  std::size_t warned_failures = 0, missed_failures = 0, false_alarms = 0;
  util::SampleSet achieved_lead;
  std::vector<bool> warning_used(warnings.size(), false);
  for (const logs::FailureEvent& f : log.truth.failures) {
    if (f.terminal_time < log.truth.split_time) continue;
    bool warned = false;
    for (std::size_t i = 0; i < warnings.size(); ++i) {
      if (warning_used[i] || !(warnings[i].node == f.node)) continue;
      if (warnings[i].at_time >= f.start_time - 1.0 &&
          warnings[i].at_time <= f.terminal_time) {
        warned = true;
        warning_used[i] = true;
        achieved_lead.add(f.terminal_time - warnings[i].at_time);
        break;
      }
    }
    warned ? ++warned_failures : ++missed_failures;
  }
  for (std::size_t i = 0; i < warnings.size(); ++i)
    if (!warning_used[i]) ++false_alarms;

  std::cout << "\n--- monitor self-score ---\n"
            << "failures warned ahead of time: " << warned_failures << "/"
            << (warned_failures + missed_failures) << "\n"
            << "false alarms: " << false_alarms << "\n";
  if (achieved_lead.count() > 0)
    std::cout << "achieved warning lead: mean "
              << util::format_fixed(achieved_lead.mean(), 1) << "s, median "
              << util::format_fixed(achieved_lead.quantile(0.5), 1)
              << "s (paper Sec 4.6: 13-24s suffices for process migration, "
                 "90s for node cloning)\n";
  return 0;
}
