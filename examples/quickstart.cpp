// Quickstart: generate a synthetic Cray log, train the three-phase Desh
// pipeline on the first 30%, predict node failures on the rest, and print
// the Table 6 metrics plus a few operator warnings.
//
//   ./quickstart [--profile tiny|m1|m2|m3|m4] [--seed N]
#include <iostream>

#include "core/evaluator.hpp"
#include "desh.hpp"
#include "logs/generator.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

using namespace desh;

namespace {
logs::SystemProfile pick_profile(const std::string& name, std::uint64_t seed) {
  if (name == "m1") return logs::profile_m1();
  if (name == "m2") return logs::profile_m2();
  if (name == "m3") return logs::profile_m3();
  if (name == "m4") return logs::profile_m4();
  return logs::profile_tiny(seed);
}
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::string profile_name = args.get("profile", "tiny");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  logs::SystemProfile profile = pick_profile(profile_name, seed);
  std::cout << "== Desh quickstart on profile '" << profile.name << "' ("
            << profile.node_count << " nodes, " << profile.duration_hours
            << "h simulated) ==\n";

  // 1. Generate the raw log (stands in for the vendor-controlled Cray logs).
  util::Stopwatch sw;
  logs::SyntheticCraySource source(profile);
  logs::SyntheticLog log = source.generate();
  std::cout << "generated " << log.records.size() << " raw log records, "
            << log.truth.failures.size() << " node failures, "
            << log.truth.lookalikes.size() << " non-failure anomalies  ["
            << util::format_fixed(sw.elapsed_seconds(), 2) << "s]\n";

  // 2. Temporal 30/70 train/test split (Sec 4).
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  std::cout << "train records: " << train.size()
            << "  test records: " << test.size() << "\n";

  // 3. Offline training: phases 1 and 2.
  sw.reset();
  core::DeshPipeline pipeline;
  core::FitReport fit = pipeline.fit(train);
  std::cout << "fit: vocab=" << fit.vocab_size
            << " phase1_acc=" << util::format_fixed(fit.phase1_accuracy * 100, 1)
            << "% chains=" << fit.failure_chains
            << " phase2_loss=" << util::format_fixed(fit.phase2_loss, 4) << "  ["
            << util::format_fixed(sw.elapsed_seconds(), 1) << "s]\n";

  // 4. Phase-3 inference on the test window.
  sw.reset();
  core::TestRun run = pipeline.predict(test);
  std::cout << "phase 3 scored " << run.candidates.size()
            << " candidate sequences  ["
            << util::format_fixed(sw.elapsed_seconds(), 1) << "s]\n\n";

  // 5. A few operator warnings, exactly as Sec 4.5 phrases them.
  std::size_t shown = 0;
  for (const core::FailurePrediction& p : run.predictions) {
    if (!p.flagged || shown >= 3) continue;
    std::cout << "  WARNING: " << p.warning_message() << "\n";
    ++shown;
  }

  // 6. Score against ground truth.
  core::SystemEvaluation eval =
      core::Evaluator::evaluate(run.candidates, run.predictions, log.truth);
  std::cout << "\nconfusion: TP=" << eval.counts.tp << " FP=" << eval.counts.fp
            << " FN=" << eval.counts.fn << " TN=" << eval.counts.tn
            << "  (test failures=" << eval.test_failures << ", novel="
            << eval.novel_failures << ")\n";
  std::cout << "recall=" << util::format_fixed(eval.metrics.recall * 100, 1)
            << "%  precision="
            << util::format_fixed(eval.metrics.precision * 100, 1)
            << "%  accuracy="
            << util::format_fixed(eval.metrics.accuracy * 100, 1)
            << "%  F1=" << util::format_fixed(eval.metrics.f1 * 100, 1)
            << "%\nFP rate=" << util::format_fixed(eval.metrics.fp_rate * 100, 1)
            << "%  FN rate=" << util::format_fixed(eval.metrics.fn_rate * 100, 1)
            << "%  mean lead time="
            << util::format_fixed(eval.lead_times.mean(), 1) << "s (predicted "
            << util::format_fixed(eval.predicted_lead_times.mean(), 1)
            << "s)\n";
  return 0;
}
