// Cluster-scale serving demo: the desh::serve engine fed by the synthetic
// Cray source, the way a resident site daemon would run it.
//
//   1. Train a pipeline offline on the first 30% of the trace.
//   2. Stand up an InferenceServer (bounded queue + collector thread).
//   3. Replay the test stream through submit(), honoring backpressure:
//      a kQueueFull refusal makes the producer wait for the queue to drain
//      instead of dropping records on the floor.
//   4. Mid-stream, hot-swap the model from a directory snapshot
//      (swap_model) without stopping ingestion.
//   5. Report the serving counters and the alerts raised.
//
//   ./serve_cluster [--profile tiny|m1|m2|m3|m4] [--capacity N]
//                   [--max-batch N] [--max-warnings N]
#include <filesystem>
#include <iostream>
#include <thread>

#include "desh.hpp"
#include "logs/generator.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

using namespace desh;

namespace {
logs::SystemProfile pick_profile(const std::string& name) {
  if (name == "m1") return logs::profile_m1();
  if (name == "m2") return logs::profile_m2();
  if (name == "m3") return logs::profile_m3();
  if (name == "m4") return logs::profile_m4();
  return logs::profile_tiny(2026);
}
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const logs::SystemProfile profile = pick_profile(args.get("profile", "tiny"));
  const auto max_warnings =
      static_cast<std::size_t>(args.get_int("max-warnings", 8));

  std::cout << "== Desh serving engine on '" << profile.name << "' ==\n";
  logs::SyntheticCraySource source(profile);
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);

  std::cout << "offline training on " << train.size() << " records...\n";
  auto pipeline = std::make_shared<core::DeshPipeline>();
  const core::FitReport fit = pipeline->fit(train);
  std::cout << "trained: vocab " << fit.vocab_size << ", "
            << fit.failure_chains << " failure chains\n";

  // A disk snapshot for the mid-stream hot reload below.
  const std::string model_dir =
      (std::filesystem::temp_directory_path() / "desh_serve_cluster_model")
          .string();
  if (core::Expected<void> saved = core::try_save_pipeline(*pipeline, model_dir);
      !saved) {
    std::cerr << "snapshot save failed: " << saved.error().message << "\n";
    return 1;
  }

  serve::ServeConfig config;
  config.queue_capacity = static_cast<std::size_t>(args.get_int("capacity", 4096));
  config.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 256));
  core::Expected<std::unique_ptr<serve::InferenceServer>> server =
      serve::InferenceServer::create(pipeline, config);
  if (!server) {
    std::cerr << "server rejected: " << server.error().message << "\n";
    return 1;
  }
  serve::InferenceServer& srv = *server.value();

  std::cout << "--- serving " << test.size() << " test records (queue "
            << config.queue_capacity << ", batch <= " << config.max_batch
            << ") ---\n";
  util::Stopwatch clock;
  std::vector<core::MonitorAlert> alerts;
  bool swapped = false;
  for (std::size_t i = 0; i < test.size(); ++i) {
    // Hot reload halfway through: ingestion never pauses; the collector
    // installs the snapshot at the next batch boundary.
    if (!swapped && i == test.size() / 2) {
      if (core::Expected<void> swap = srv.swap_model(model_dir); !swap)
        std::cerr << "swap_model failed: " << swap.error().message << "\n";
      else
        std::cout << "[" << logs::format_timestamp(test[i].timestamp)
                  << "] hot model reload staged from " << model_dir << "\n";
      swapped = true;
    }
    // Explicit backpressure: on kQueueFull, wait for the collector rather
    // than dropping — this producer can afford to lag.
    while (srv.submit(test[i]) == serve::Admission::kQueueFull)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (i % 4096 == 0)
      for (core::MonitorAlert& a : srv.poll_alerts())
        alerts.push_back(std::move(a));
  }
  srv.drain();
  srv.stop();
  for (core::MonitorAlert& a : srv.poll_alerts()) alerts.push_back(std::move(a));
  const double elapsed = clock.elapsed_seconds();

  std::size_t printed = 0;
  for (const core::MonitorAlert& alert : alerts) {
    if (printed >= max_warnings) break;
    std::cout << "[" << logs::format_timestamp(alert.time)
              << "] WARNING: " << alert.message << "\n";
    ++printed;
  }
  if (alerts.size() > printed)
    std::cout << "... and " << alerts.size() - printed
              << " further warnings suppressed (--max-warnings)\n";

  const serve::ServeStats stats = srv.stats();
  std::cout << "\n--- serving counters ---\n"
            << "admitted " << stats.admitted << ", rejected " << stats.rejected
            << ", shed " << stats.shed << ", processed " << stats.processed
            << "\nbatches " << stats.batches << " (mean width "
            << util::format_fixed(
                   stats.batches
                       ? static_cast<double>(stats.processed) /
                             static_cast<double>(stats.batches)
                       : 0.0,
                   1)
            << "), reloads " << stats.reloads << ", alerts " << stats.alerts
            << "\nthroughput "
            << util::format_fixed(
                   elapsed > 0 ? static_cast<double>(stats.processed) / elapsed
                               : 0.0,
                   0)
            << " records/s end to end\n";
  return 0;
}
