// Train-once / deploy-many workflow: the operational shape of Desh
// (Sec 4.4: "training phases 1 and 2 are performed offline").
//
//   1. TRAIN  — fit the pipeline on a training corpus and save it to disk;
//   2. DEPLOY — a fresh process loads the saved pipeline (no retraining)
//               and monitors a BSD-syslog-formatted log file live.
//
// Run without arguments for a self-contained demo that performs both steps
// on a synthetic trace (writing its artifacts under a temp directory), or
// point the stages at real files:
//
//   ./train_and_deploy --train corpus.log --model /var/lib/desh/model
//   ./train_and_deploy --deploy /var/log/console.syslog --model /var/lib/desh/model
#include <cstdio>
#include <fstream>
#include <filesystem>
#include <iostream>

#include "desh.hpp"
#include "logs/generator.hpp"
#include "logs/io.hpp"
#include "logs/syslog.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

using namespace desh;

namespace {

int train_stage(const std::string& corpus_path, const std::string& model_dir) {
  std::cout << "[train] loading corpus " << corpus_path << "\n";
  core::Expected<logs::LogCorpus> loaded = logs::load_corpus(corpus_path);
  if (!loaded) {
    std::cerr << "[train] " << loaded.error().message << "\n";
    return 1;
  }
  const logs::LogCorpus corpus = std::move(loaded).value();
  std::cout << "[train] " << corpus.size() << " records; fitting pipeline...\n";
  util::Stopwatch sw;
  core::DeshPipeline pipeline;
  const core::FitReport report = pipeline.fit(corpus);
  std::cout << "[train] vocab " << report.vocab_size << ", "
            << report.failure_chains << " failure chains, phase1 acc "
            << util::format_fixed(report.phase1_accuracy * 100, 1) << "% ["
            << util::format_fixed(sw.elapsed_seconds(), 1) << "s]\n";
  if (core::Expected<void> saved = core::try_save_pipeline(pipeline, model_dir);
      !saved) {
    std::cerr << "[train] save failed: " << saved.error().message << "\n";
    return 1;
  }
  std::cout << "[train] model saved to " << model_dir << "\n";
  return 0;
}

int deploy_stage(const std::string& syslog_path, const std::string& model_dir) {
  std::cout << "[deploy] loading model from " << model_dir << "\n";
  core::Expected<core::DeshPipeline> pipeline =
      core::try_load_pipeline(model_dir);
  if (!pipeline) {
    std::cerr << "[deploy] load failed: " << pipeline.error().message << "\n";
    return 1;
  }
  std::cout << "[deploy] monitoring " << syslog_path << "\n";
  core::Expected<logs::LogCorpus> stream =
      logs::load_syslog_file(syslog_path);
  if (!stream) {
    std::cerr << "[deploy] " << stream.error().message << "\n";
    return 1;
  }
  core::StreamingMonitor monitor(pipeline.value());
  for (const logs::LogRecord& record : stream.value())
    if (const auto alert = monitor.observe(record))
      std::cout << "  ALERT: " << alert->message << "\n";
  std::cout << "[deploy] " << monitor.records_seen() << " records scanned, "
            << monitor.alerts_raised() << " alerts raised\n";
  return 0;
}

int demo() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "desh_train_and_deploy";
  fs::create_directories(dir);
  const std::string corpus_path = (dir / "train.log").string();
  const std::string syslog_path = (dir / "console.syslog").string();
  const std::string model_dir = (dir / "model").string();

  std::cout << "== demo: generating a tiny trace and writing both file "
               "formats under " << dir << " ==\n";
  logs::SyntheticCraySource source(logs::profile_tiny(71));
  const logs::SyntheticLog log = source.generate();
  auto [train, test] = core::split_corpus(log.records, log.truth.split_time);
  if (core::Expected<void> w = logs::save_corpus(train, corpus_path); !w) {
    std::cerr << "demo: " << w.error().message << "\n";
    return 1;
  }
  // The deployment side reads syslog format, as a real site would have.
  if (core::Expected<void> w = logs::save_syslog_file(test, syslog_path); !w) {
    std::cerr << "demo: " << w.error().message << "\n";
    return 1;
  }

  const int train_rc = train_stage(corpus_path, model_dir);
  if (train_rc != 0) return train_rc;
  std::cout << "\n-- simulating a separate deployment process --\n";
  return deploy_stage(syslog_path, model_dir);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::string model_dir = args.get("model", "desh-model");
  if (args.has("train")) return train_stage(args.get("train", ""), model_dir);
  if (args.has("deploy")) return deploy_stage(args.get("deploy", ""), model_dir);
  return demo();
}
