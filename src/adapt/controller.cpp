#include "adapt/controller.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "logs/template_miner.hpp"
#include "obs/catalog.hpp"
#include "util/bytes.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace desh::adapt {

namespace {

// "adapt" WAL checkpoint section: magic + format version + optional
// champion registry version + replay-buffer records. The replay buffer is
// the one piece of adapt state that cannot be rebuilt from the registry or
// the log tail alone — losing it across a crash would silently gut the
// next retrain's training window.
constexpr std::string_view kAdaptBlobMagic = "DESHADPT";
constexpr std::uint32_t kAdaptBlobFormat = 1;

// Process-wide adaptation telemetry (OBSERVABILITY.md "online adaptation").
// Cached references: registration takes the registry lock exactly once.
struct AdaptObs {
  obs::Counter& tapped =
      obs::registry().counter(obs::kAdaptRecordsTappedTotal);
  obs::Gauge& oov_rate = obs::registry().gauge(obs::kAdaptOovRate);
  obs::Gauge& novelty_rate = obs::registry().gauge(obs::kAdaptNoveltyRate);
  obs::Gauge& calibration =
      obs::registry().gauge(obs::kAdaptCalibrationError);
  obs::Counter& triggers =
      obs::registry().counter(obs::kAdaptDriftTriggersTotal);
  obs::Gauge& replay_depth = obs::registry().gauge(obs::kAdaptReplayDepth);
  obs::Counter& retrains = obs::registry().counter(obs::kAdaptRetrainsTotal);
  obs::Counter& retrain_failures =
      obs::registry().counter(obs::kAdaptRetrainFailuresTotal);
  obs::Histogram& retrain_seconds =
      obs::registry().histogram(obs::kAdaptRetrainSeconds);
  obs::Counter& shadow_evals =
      obs::registry().counter(obs::kAdaptShadowEvalsTotal);
  obs::Counter& promotions =
      obs::registry().counter(obs::kAdaptPromotionsTotal);
  obs::Counter& rejections =
      obs::registry().counter(obs::kAdaptRejectionsTotal);
  obs::Counter& rollbacks =
      obs::registry().counter(obs::kAdaptRollbacksTotal);
  obs::Gauge& registry_size =
      obs::registry().gauge(obs::kAdaptRegistrySize);
  obs::Gauge& champion_version =
      obs::registry().gauge(obs::kAdaptChampionVersion);
  static AdaptObs& get() {
    static AdaptObs instance;
    return instance;
  }
};

std::string join_violations(const std::vector<std::string>& violations) {
  std::string out = "AdaptController: invalid options:";
  for (const std::string& v : violations) out += "\n  - " + v;
  return out;
}

}  // namespace

core::Expected<std::unique_ptr<AdaptController>> AdaptController::create(
    std::shared_ptr<const core::DeshPipeline> champion,
    AdaptOptions options) {
  if (!champion)
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "AdaptController: null champion"};
  if (!champion->fitted())
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "AdaptController: champion is not fitted"};
  if (options.registry_root.empty())
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "AdaptController: empty registry_root"};
  // One validation pass covers the challenger trainer config AND the adapt
  // knobs — the adapt fields ride in DeshConfig::validate's "adapt." paths.
  core::DeshConfig check = options.trainer;
  check.adapt = options.config;
  const std::vector<std::string> violations = check.validate();
  if (!violations.empty())
    return core::Error{core::ErrorCode::kInvalidConfig,
                       join_violations(violations)};

  core::Expected<ModelRegistry> registry =
      ModelRegistry::open(options.registry_root, options.registry_capacity);
  if (!registry) return registry.error();

  std::unique_ptr<AdaptController> controller(new AdaptController(
      std::move(champion), std::move(options),
      std::move(registry).value()));
  // A fresh registry gets the incumbent as version 1, immediately promoted:
  // from the very first challenger swap there is a rollback target. No other
  // thread can see the controller yet, but the lock keeps the analysis (and
  // the invariant) uniform.
  {
    util::LockGuard lk(controller->mu_);
    if (!controller->registry_.champion()) {
      // desh-analyze: allow(blocking-under-lock) manifest write during
      // construction; no other thread can see this controller yet
      core::Expected<std::uint32_t> version = controller->registry_.publish(
          *controller->champion_, "initial champion");
      if (!version) return version.error();
      core::Expected<void> promoted =
          // desh-analyze: allow(blocking-under-lock) same: pre-publication
          controller->registry_.promote(version.value());
      if (!promoted) return promoted.error();
    }
  }
  {
    util::LockGuard lk(controller->mu_);
    controller->stats_.champion_version = controller->registry_.champion();
    controller->export_gauges_locked();
  }
  return controller;
}

AdaptController::AdaptController(
    std::shared_ptr<const core::DeshPipeline> champion, AdaptOptions options,
    ModelRegistry registry)
    : options_(std::move(options)),
      detector_(options_.config),
      replay_(options_.config.replay_capacity),
      registry_(std::move(registry)) {
  // Single-threaded construction; the lock exists for the analysis and
  // costs one uncontended acquire.
  util::LockGuard lk(mu_);
  rebind_champion_locked(std::move(champion));
}

AdaptController::~AdaptController() { stop(); }

void AdaptController::attach(serve::InferenceServer& server) {
  {
    util::LockGuard lk(mu_);
    server_ = &server;
  }
  server.set_tap([this](std::span<const logs::LogRecord> records,
                        std::span<const core::MonitorAlert> alerts) {
    on_batch(records, alerts);
  });
  if (server.wal_stats().enabled) {
    // Registering delivers a recovered "adapt" section immediately, on this
    // thread — the replay buffer is refilled before attach returns. A blob
    // from an incompatible build is skipped (restore_state rejects it); the
    // buffer then refills organically from the tap.
    server.wal_set_state_hook(
        "adapt", [this] { return serialize_state(); },
        [this](const std::string& blob) {
          static_cast<void>(restore_state(blob));
        });
  }
}

std::string AdaptController::serialize_state() const {
  util::LockGuard lk(mu_);
  std::string out;
  out.append(kAdaptBlobMagic);
  util::put_u32(out, kAdaptBlobFormat);
  util::put_u8(out, stats_.champion_version ? 1 : 0);
  util::put_u32(out, stats_.champion_version.value_or(0));
  util::put_u64(out, replay_.size());
  for (const logs::LogRecord& r : replay_.snapshot()) {
    util::put_f64(out, r.timestamp);
    util::put_u16(out, r.node.cabinet_x);
    util::put_u16(out, r.node.cabinet_y);
    util::put_u8(out, r.node.chassis);
    util::put_u8(out, r.node.slot);
    util::put_u8(out, r.node.node);
    util::put_bytes(out, r.message);
  }
  return out;
}

core::Expected<void> AdaptController::restore_state(std::string_view blob) {
  const auto fail = [](const char* what) {
    return core::Error{core::ErrorCode::kFormatVersion,
                       std::string("adapt checkpoint: ") + what};
  };
  if (blob.size() < kAdaptBlobMagic.size() ||
      blob.substr(0, kAdaptBlobMagic.size()) != kAdaptBlobMagic)
    return fail("bad magic");
  util::ByteReader reader(blob.substr(kAdaptBlobMagic.size()));
  std::uint32_t format = 0;
  if (!reader.get_u32(format) || format != kAdaptBlobFormat)
    return fail("unsupported format version");
  std::uint8_t has_version = 0;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!reader.get_u8(has_version) || !reader.get_u32(version) ||
      !reader.get_u64(count))
    return fail("truncated header");
  logs::LogCorpus records;
  for (std::uint64_t i = 0; i < count; ++i) {
    logs::LogRecord r;
    bool ok = reader.get_f64(r.timestamp);
    ok = ok && reader.get_u16(r.node.cabinet_x);
    ok = ok && reader.get_u16(r.node.cabinet_y);
    ok = ok && reader.get_u8(r.node.chassis);
    ok = ok && reader.get_u8(r.node.slot);
    ok = ok && reader.get_u8(r.node.node);
    ok = ok && reader.get_bytes(r.message);
    if (!ok) return fail("truncated record");
    records.push_back(std::move(r));
  }
  if (!reader.done()) return fail("trailing bytes");
  util::LockGuard lk(mu_);
  replay_.clear();
  replay_.append(records);
  export_gauges_locked();
  return {};
}

std::optional<std::uint32_t> AdaptController::checkpoint_champion_version(
    std::string_view blob) {
  if (blob.size() < kAdaptBlobMagic.size() ||
      blob.substr(0, kAdaptBlobMagic.size()) != kAdaptBlobMagic)
    return std::nullopt;
  util::ByteReader reader(blob.substr(kAdaptBlobMagic.size()));
  std::uint32_t format = 0;
  std::uint8_t has_version = 0;
  std::uint32_t version = 0;
  if (!reader.get_u32(format) || format != kAdaptBlobFormat ||
      !reader.get_u8(has_version) || !reader.get_u32(version))
    return std::nullopt;
  if (has_version == 0) return std::nullopt;
  return version;
}

void AdaptController::rebind_champion_locked(
    std::shared_ptr<const core::DeshPipeline> champion) {
  champion_ = std::move(champion);
  // Phrase ids that appear on any trained failure chain: the complement is
  // the novelty signal ("the failure mix contains sequences we never
  // learned").
  chain_phrases_.assign(champion_->vocab().size(), false);
  for (const nn::ChainSequence& chain : champion_->training_chains())
    for (const nn::ChainStep& step : chain)
      if (step.phrase < chain_phrases_.size())
        chain_phrases_[step.phrase] = true;
}

void AdaptController::export_gauges_locked() {
  AdaptObs& o = AdaptObs::get();
  const DriftStatus& s = detector_.status();
  o.oov_rate.set(s.oov_rate);
  o.novelty_rate.set(s.novelty_rate);
  o.calibration.set(s.calibration_error);
  o.replay_depth.set(static_cast<double>(replay_.size()));
  o.registry_size.set(static_cast<double>(registry_.entries().size()));
  if (stats_.champion_version)
    o.champion_version.set(static_cast<double>(*stats_.champion_version));
}

void AdaptController::on_batch(std::span<const logs::LogRecord> records,
                               std::span<const core::MonitorAlert> alerts) {
  AdaptObs& o = AdaptObs::get();
  std::string trigger_note;
  std::optional<RetrainJob> job;
  {
    util::LockGuard lk(mu_);
    stats_.records_tapped += records.size();
    o.tapped.add(records.size());
    replay_.append(records);

    const chains::PhraseLabeler& labeler = champion_->labeler();
    const logs::PhraseVocab& vocab = champion_->vocab();
    double batch_last_time = -1.0;
    for (const logs::LogRecord& record : records) {
      const std::string tmpl =
          logs::TemplateMiner::extract(record.message);
      if (tmpl.empty()) continue;
      batch_last_time = std::max(batch_last_time, record.timestamp);
      const std::uint32_t phrase = vocab.encode(tmpl);
      const bool oov = phrase == logs::PhraseVocab::kUnknownId;
      detector_.observe_record(oov);
      if (probation_.active) {
        ++probation_.templates;
        if (oov) ++probation_.oov;
      }
      if (labeler.label(phrase) != logs::PhraseLabel::kSafe) {
        const bool novel = oov || phrase >= chain_phrases_.size() ||
                           !chain_phrases_[phrase];
        detector_.observe_novelty(novel);
      }
      // A terminal phrase resolves the node's pending alert: the realized
      // lead is now known, so the forecast can be graded.
      if (!oov && labeler.is_terminal(phrase)) {
        auto it = pending_alerts_.find(record.node);
        if (it != pending_alerts_.end()) {
          const double realized = record.timestamp - it->second.alert_time;
          if (realized >= 0.0) {
            const double err =
                std::abs(it->second.predicted_lead_seconds - realized) /
                std::max(realized, 1.0);
            detector_.observe_calibration(err);
          }
          pending_alerts_.erase(it);
        }
      }
    }
    // New alerts open (or refresh) the node's calibration ledger entry.
    for (const core::MonitorAlert& alert : alerts)
      pending_alerts_[alert.node] = {alert.time,
                                     alert.predicted_lead_seconds};
    // Alerts whose failure never materialized within the horizon are the
    // worst possible forecast: full-scale calibration error.
    if (batch_last_time >= 0.0) {
      for (auto it = pending_alerts_.begin();
           it != pending_alerts_.end();) {
        if (batch_last_time - it->second.alert_time >
            options_.config.alert_horizon_seconds) {
          detector_.observe_calibration(1.0);
          it = pending_alerts_.erase(it);
        } else {
          ++it;
        }
      }
    }

    detector_.evaluate();

    // Probation: the freshly promoted champion must hold its shadow-eval
    // promise on live traffic, or the swap is undone.
    if (probation_.active &&
        probation_.templates >= std::min(options_.config.min_window_fill,
                                         options_.config.probation_records)) {
      const double rate = static_cast<double>(probation_.oov) /
                          static_cast<double>(probation_.templates);
      if (rate > probation_.expected_oov +
                     options_.config.regression_margin) {
        // desh-analyze: allow(blocking-under-lock) rollback rewrites the
        // registry manifest under mu_ on purpose — a regressed champion must
        // not serve one more batch than detection takes
        rollback_locked();
      } else if (probation_.templates >=
                 options_.config.probation_records) {
        probation_.active = false;  // probation served, promotion final
      }
    }

    if (should_retrain_locked()) {
      std::vector<std::string> names;
      for (DriftSignal s : detector_.status().latched)
        names.emplace_back(to_string(s));
      trigger_note = names.empty() ? std::string("scheduled")
                                   : "drift:" + util::join(names, "+");
      job = make_job_locked(trigger_note);
    }
    export_gauges_locked();
  }
  if (job) launch(std::move(*job));
}

bool AdaptController::should_retrain_locked() {
  if (stopping_ || retraining_ || replay_.empty()) return false;
  // Depth floor and cooldown first, WITHOUT consuming the drift edge: a
  // trigger that lands too early or mid-cooldown stays pending and
  // launches on a later batch. A replay window shallower than the floor
  // has no complete failure chains, so the challenger fit would fail.
  if (replay_.size() < options_.config.min_replay_records) return false;
  const std::size_t since =
      stats_.records_tapped - last_retrain_at_records_;
  if (last_retrain_at_records_ != 0 &&
      since < options_.config.retrain_cooldown_records)
    return false;
  const bool scheduled =
      options_.config.schedule_every_records > 0 &&
      since >= options_.config.schedule_every_records &&
      last_retrain_at_records_ != stats_.records_tapped;
  const bool drift = detector_.take_trigger();
  if (drift) {
    ++stats_.drift_triggers;
    AdaptObs::get().triggers.add();
  }
  return drift || scheduled;
}

AdaptController::RetrainJob AdaptController::make_job_locked(
    std::string note) {
  retraining_ = true;
  ++stats_.retrains;
  AdaptObs::get().retrains.add();
  last_retrain_at_records_ = stats_.records_tapped;
  return RetrainJob{replay_.snapshot(), champion_, std::move(note)};
}

bool AdaptController::force_retrain() {
  std::optional<RetrainJob> job;
  {
    util::LockGuard lk(mu_);
    if (stopping_ || retraining_ || replay_.empty()) return false;
    job = make_job_locked("forced");
  }
  launch(std::move(*job));
  return true;
}

void AdaptController::launch(RetrainJob job) {
  if (!options_.config.background) {
    run_retrain(std::move(job));
    return;
  }
  util::LockGuard lk(mu_);
  // At most one retrain is in flight (make_job_locked requires
  // !retraining_), so a joinable handle here is a finished thread.
  // desh-analyze: allow(blocking-under-lock) joining a finished thread: the
  // handle is only joinable after its run_retrain already returned
  if (retrain_thread_.joinable()) retrain_thread_.join();
  retrain_thread_ = std::thread([this, j = std::move(job)]() mutable {
    // desh-analyze: allow(blocking-under-lock) deferred: the body runs on
    // the spawned thread after launch() released mu_
    run_retrain(std::move(j));  // desh-analyze: allow(lock-order) deferred: runs after launch() released mu_
  });
}

void AdaptController::run_retrain(RetrainJob job) {
  AdaptObs& o = AdaptObs::get();
  util::Stopwatch sw;
  const ReplaySplit split =
      split_replay(job.replay, options_.config.holdout_fraction);

  std::optional<core::DeshPipeline> challenger;
  try {
    challenger.emplace(options_.trainer);
    challenger->fit(split.train, *job.champion);
  } catch (const std::exception&) {
    // Typical cause: the replay window holds no complete failure chain yet.
    // Not fatal — the stream keeps accumulating and a later trigger retries.
    util::LockGuard lk(mu_);
    ++stats_.retrain_failures;
    o.retrain_failures.add();
    o.retrain_seconds.observe(sw.elapsed_seconds());
    retraining_ = false;
    idle_cv_.notify_all();
    return;
  }

  const ShadowReport report = shadow_evaluate(
      *job.champion, *challenger, split.holdout, options_.config);
  o.shadow_evals.add();
  o.retrain_seconds.observe(sw.elapsed_seconds());

  util::LockGuard lk(mu_);
  ++stats_.shadow_evals;
  stats_.last_shadow = report;
  bool done = false;
  if (!report.challenger_wins) {
    ++stats_.rejections;
    o.rejections.add();
    done = true;
  }
  if (!done) {
    auto next = std::make_shared<const core::DeshPipeline>(
        std::move(*challenger));
    core::Expected<std::uint32_t> version =
        // desh-analyze: allow(blocking-under-lock) manifest write on the
        // background retrain thread; the serve path never holds adapt.mu
        registry_.publish(*next, job.note);
    core::Expected<void> swapped;  // defaults to success
    // desh-analyze: allow(blocking-under-lock) model swap stages a pipeline
    // on the retrain thread; serving continues under serve.mu until drain
    if (version && server_ != nullptr) swapped = server_->swap_model(next);
    if (!version || !swapped) {
      // Registry full of protected versions, disk trouble, or the server
      // already stopped: the champion stays; the challenger is dropped.
      ++stats_.retrain_failures;
      o.retrain_failures.add();
    } else {
      // promote() after a successful publish can only fail on manifest
      // I/O; the swap already happened, so keep the in-memory champion
      // consistent with what serves either way.
      // desh-analyze: allow(blocking-under-lock) manifest write on the
      // background retrain thread, see publish above
      if (core::Expected<void> promoted = registry_.promote(version.value());
          !promoted) {
        ++stats_.retrain_failures;
        o.retrain_failures.add();
      }
      previous_champion_ = champion_;
      rebind_champion_locked(std::move(next));
      // The new champion is judged on its own traffic: fresh windows,
      // fresh ledger, and a probation period pinned to its shadow promise.
      detector_.reset();
      pending_alerts_.clear();
      probation_.active = true;
      probation_.expected_oov = 1.0 - report.challenger_coverage;
      probation_.templates = 0;
      probation_.oov = 0;
      ++stats_.promotions;
      o.promotions.add();
      stats_.champion_version = registry_.champion();
    }
  }
  export_gauges_locked();
  retraining_ = false;
  idle_cv_.notify_all();
}

void AdaptController::rollback_locked() {
  // desh-analyze: allow(blocking-under-lock) manifest rewrite under mu_ on
  // purpose — a regressed champion must stop serving immediately
  core::Expected<std::uint32_t> rolled = registry_.rollback();
  if (!rolled || !previous_champion_) return;  // no target: keep serving
  if (server_ != nullptr) {
    // A stopped server refuses the stage; the controller still reverts its
    // own champion so detached operation stays consistent.
    // desh-analyze: allow(blocking-under-lock) emergency revert: staging the
    // prior model may read config from disk, and that beats serving it
    core::Expected<void> swapped = server_->swap_model(previous_champion_);
    (void)swapped;
  }
  rebind_champion_locked(std::move(previous_champion_));
  previous_champion_.reset();
  detector_.reset();
  pending_alerts_.clear();
  probation_.active = false;
  ++stats_.rollbacks;
  AdaptObs::get().rollbacks.add();
  stats_.champion_version = registry_.champion();
}

void AdaptController::wait_idle() {
  util::UniqueLock lk(mu_);
  // Inline predicate loop so the analysis sees retraining_ read under mu_.
  while (retraining_) idle_cv_.wait(lk);
}

void AdaptController::stop() {
  {
    util::LockGuard lk(mu_);
    stopping_ = true;
  }
  wait_idle();
  std::thread finished;
  {
    util::LockGuard lk(mu_);
    std::swap(finished, retrain_thread_);
  }
  if (finished.joinable()) finished.join();
  serve::InferenceServer* server = nullptr;
  {
    util::LockGuard lk(mu_);
    std::swap(server, server_);
  }
  if (server != nullptr) {
    server->set_tap(nullptr);
    // Null hooks: later checkpoints skip the "adapt" section instead of
    // serializing through a dangling controller.
    if (server->wal_stats().enabled)
      server->wal_set_state_hook("adapt", nullptr, nullptr);
  }
}

DriftStatus AdaptController::drift() const {
  util::LockGuard lk(mu_);
  return detector_.status();
}

AdaptStats AdaptController::stats() const {
  util::LockGuard lk(mu_);
  AdaptStats out = stats_;
  out.retrain_in_flight = retraining_;
  out.probation_active = probation_.active;
  return out;
}

std::shared_ptr<const core::DeshPipeline> AdaptController::champion() const {
  util::LockGuard lk(mu_);
  return champion_;
}

}  // namespace desh::adapt
