// AdaptController: the closed loop of desh::adapt. Wires the pieces
// together around a live InferenceServer:
//
//   serve tap ──> DriftDetector ──trigger──> BackgroundRetrainer
//        │             │                          │ (own thread)
//   ReplayBuffer   calibration              warm-started challenger
//        │         ledger                        │
//        └────── holdout window ──> shadow_evaluate ──win──> registry
//                                        │                  publish+promote
//                                      lose                 server swap
//                                        │                  probation
//                                    discard                 │regress
//                                                          rollback
//
// Threading: on_batch() runs on the serve collector thread (or the pump()
// caller); the retrain runs on its own std::thread when
// AdaptConfig::background is true, so serving ingest never waits on a fit.
// One retrain is in flight at a time; triggers that land mid-retrain are
// absorbed (the drift latch stays up, so a still-drifting stream simply
// retrains again after the cooldown). With background=false the retrain
// runs inline in the tap — the deterministic mode the replay tests pin.
//
// Lifetime: the controller holds a non-owning pointer to the server it is
// attached to; the server must outlive the controller (or stop() must be
// called before the server is destroyed — stop() detaches the tap).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adapt/drift.hpp"
#include "adapt/registry.hpp"
#include "adapt/replay_buffer.hpp"
#include "adapt/shadow.hpp"
#include "core/expected.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "serve/server.hpp"
#include "util/sync.hpp"

namespace desh::adapt {

struct AdaptOptions {
  /// Detection / retrain-policy knobs (validated with "adapt." field paths).
  core::AdaptConfig config;
  /// Config the challenger pipeline is fitted with. Use a fixed seed and
  /// threads=1 (plus background=false above) for bit-reproducible retrains.
  core::DeshConfig trainer;
  /// Registry root directory (created if absent).
  std::string registry_root;
  std::size_t registry_capacity = 4;
};

/// Lifetime counters + latest lifecycle facts (also exported as
/// desh_adapt_*).
struct AdaptStats {
  std::size_t records_tapped = 0;
  std::size_t drift_triggers = 0;
  std::size_t retrains = 0;          // launched
  std::size_t retrain_failures = 0;  // abandoned (e.g. no chains in replay)
  std::size_t shadow_evals = 0;
  std::size_t promotions = 0;
  std::size_t rejections = 0;
  std::size_t rollbacks = 0;
  bool retrain_in_flight = false;
  bool probation_active = false;
  std::optional<std::uint32_t> champion_version;
  /// Last completed shadow evaluation (valid when shadow_evals > 0).
  ShadowReport last_shadow;
};

class AdaptController {
 public:
  /// Validates options, opens (or resumes) the registry and — when the
  /// registry has no champion yet — publishes `champion` as version 1 and
  /// promotes it, so a rollback target chain exists from the first swap.
  /// Errors: kInvalidArgument (null/unfitted champion, empty registry
  /// root), kInvalidConfig (all adapt.*/trainer violations), plus registry
  /// I/O errors.
  [[nodiscard]] static core::Expected<std::unique_ptr<AdaptController>>
  create(std::shared_ptr<const core::DeshPipeline> champion,
         AdaptOptions options);

  ~AdaptController();  // stop()s if the owner has not

  AdaptController(const AdaptController&) = delete;
  AdaptController& operator=(const AdaptController&) = delete;

  /// Installs this controller as `server`'s tap and as the swap target for
  /// promotions/rollbacks. The server must outlive the controller (see the
  /// file comment). Detached controllers still work via direct on_batch()
  /// calls — swaps then only update the controller's own champion.
  ///
  /// When the server's WAL is enabled, also registers the "adapt" state
  /// hook: the controller's replay buffer and champion registry version
  /// ride in every fuzzy checkpoint, and a restored "adapt" section refills
  /// the replay buffer on the spot (wal_set_state_hook delivers it before
  /// attach returns). The champion *pipeline* is not swapped by a restore —
  /// reload the checkpointed version from the registry first (see
  /// checkpoint_champion_version) and construct the controller with it.
  void attach(serve::InferenceServer& server);

  /// Serializes the durable slice of controller state (the "adapt" WAL
  /// checkpoint section): champion registry version + replay-buffer
  /// records. Thread-safe; also callable directly by tests.
  std::string serialize_state() const;

  /// Restores serialize_state() output: refills the replay buffer (the
  /// current contents are replaced). Rejects unknown blobs with
  /// kFormatVersion and leaves the buffer untouched on error.
  [[nodiscard]] core::Expected<void> restore_state(std::string_view blob);

  /// The champion registry version recorded in an "adapt" checkpoint blob
  /// (InferenceServer::wal_restored_state("adapt")), if the blob is valid
  /// and a champion was promoted when it was taken. Lets an application
  /// reload that exact version from the ModelRegistry before constructing
  /// the controller, closing the crash-restart loop.
  static std::optional<std::uint32_t> checkpoint_champion_version(
      std::string_view blob);

  /// The tap body: drift bookkeeping, replay append, calibration ledger,
  /// probation check, retrain trigger. Also callable directly (tests,
  /// replay harnesses) with any batch of processed records + their alerts.
  void on_batch(std::span<const logs::LogRecord> records,
                std::span<const core::MonitorAlert> alerts);

  /// Launches a retrain now (ops override), bypassing drift state, schedule
  /// and cooldown. Returns false when one is already in flight or the
  /// replay buffer is empty. Honors AdaptConfig::background.
  bool force_retrain();

  /// Blocks until no retrain is in flight (the in-flight one, if any,
  /// completes and applies its verdict).
  void wait_idle();

  /// Joins any in-flight retrain, detaches the tap, and clears the "adapt"
  /// WAL state hook (later checkpoints stop carrying a stale section).
  /// Idempotent; called by the destructor.
  void stop();

  DriftStatus drift() const;
  AdaptStats stats() const;
  std::shared_ptr<const core::DeshPipeline> champion() const;
  /// Registry access for inspection/audit. Unsynchronized BY DESIGN — the
  /// documented contract is "call wait_idle() first for a stable view", so
  /// the analysis is suppressed rather than taking mu_ here (holding the
  /// lock for the returned reference's lifetime is impossible anyway).
  const ModelRegistry& registry() const DESH_NO_THREAD_SAFETY_ANALYSIS {
    return registry_;
  }

 private:
  AdaptController(std::shared_ptr<const core::DeshPipeline> champion,
                  AdaptOptions options, ModelRegistry registry);

  struct PendingAlert {
    double alert_time = 0.0;
    double predicted_lead_seconds = 0.0;
  };

  struct Probation {
    bool active = false;
    double expected_oov = 0.0;  // challenger's holdout OOV at promotion
    std::size_t templates = 0;  // templates seen since the swap
    std::size_t oov = 0;        // of which OOV under the new champion
  };

  /// Everything a retrain needs, snapshotted under mu_ at launch.
  struct RetrainJob {
    logs::LogCorpus replay;
    std::shared_ptr<const core::DeshPipeline> champion;
    std::string note;
  };

  /// Rebuilds the champion-derived caches (chain phrase set).
  void rebind_champion_locked(
      std::shared_ptr<const core::DeshPipeline> champion) DESH_REQUIRES(mu_);
  /// Trigger policy for this batch.
  bool should_retrain_locked() DESH_REQUIRES(mu_);
  /// Builds the snapshot and flips retraining_.
  RetrainJob make_job_locked(std::string note) DESH_REQUIRES(mu_);
  /// Dispatches the job: dedicated thread (background) or inline.
  void launch(RetrainJob job) DESH_EXCLUDES(mu_);
  /// Fit + shadow eval + (publish/promote/swap | reject). Runs on the
  /// retrain thread in background mode, inline otherwise; takes mu_ itself.
  void run_retrain(RetrainJob job) DESH_EXCLUDES(mu_);
  /// Probation regression: registry rollback + swap the prior champion
  /// back in.
  void rollback_locked() DESH_REQUIRES(mu_);
  void export_gauges_locked() DESH_REQUIRES(mu_);

  const AdaptOptions options_;
  serve::InferenceServer* server_  // non-owning; see attach()
      DESH_GUARDED_BY(mu_) = nullptr;

  mutable util::Mutex mu_;
  util::CondVar idle_cv_;  // retraining_ became false
  std::shared_ptr<const core::DeshPipeline> champion_ DESH_GUARDED_BY(mu_);
  std::shared_ptr<const core::DeshPipeline> previous_champion_
      DESH_GUARDED_BY(mu_);
  /// Champion phrase id -> on a chain.
  std::vector<bool> chain_phrases_ DESH_GUARDED_BY(mu_);
  DriftDetector detector_ DESH_GUARDED_BY(mu_);
  ReplayBuffer replay_ DESH_GUARDED_BY(mu_);
  ModelRegistry registry_ DESH_GUARDED_BY(mu_);
  std::unordered_map<logs::NodeId, PendingAlert> pending_alerts_
      DESH_GUARDED_BY(mu_);
  Probation probation_ DESH_GUARDED_BY(mu_);
  AdaptStats stats_ DESH_GUARDED_BY(mu_);
  std::size_t last_retrain_at_records_ DESH_GUARDED_BY(mu_) = 0;
  bool retraining_ DESH_GUARDED_BY(mu_) = false;
  bool stopping_ DESH_GUARDED_BY(mu_) = false;

  std::thread retrain_thread_ DESH_GUARDED_BY(mu_);
};

}  // namespace desh::adapt
