#include "adapt/drift.hpp"

#include <algorithm>

namespace desh::adapt {

const char* to_string(DriftSignal signal) {
  switch (signal) {
    case DriftSignal::kOovRate: return "oov_rate";
    case DriftSignal::kNoveltyRate: return "novelty_rate";
    case DriftSignal::kCalibrationError: return "calibration_error";
  }
  return "unknown";
}

void DriftDetector::Signal::configure(std::size_t capacity) {
  window.assign(capacity, 0.0f);
  reset();
}

void DriftDetector::Signal::push(float sample) {
  if (count == window.size()) {
    sum -= window[next];  // evict the oldest
  } else {
    ++count;
  }
  window[next] = sample;
  sum += sample;
  next = (next + 1) % window.size();
}

double DriftDetector::Signal::mean() const {
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

bool DriftDetector::Signal::evaluate(double trigger, double clear,
                                     std::size_t hysteresis,
                                     std::size_t min_fill) {
  // An empty or barely-filled window has no statistical standing: it can
  // neither breach nor clear a latch.
  if (count < std::min(min_fill, window.size())) return false;
  const double m = mean();
  if (m >= trigger) {
    breaches = std::min(breaches + 1, hysteresis);
    if (!latched && breaches >= hysteresis) {
      latched = true;
      return true;
    }
  } else {
    breaches = 0;
    if (latched && m <= clear) latched = false;
  }
  return false;
}

void DriftDetector::Signal::reset() {
  std::fill(window.begin(), window.end(), 0.0f);
  next = 0;
  count = 0;
  sum = 0.0;
  breaches = 0;
  latched = false;
}

DriftDetector::DriftDetector(const core::AdaptConfig& config)
    : config_(config) {
  oov_.configure(config_.oov_window);
  novelty_.configure(config_.novelty_window);
  calibration_.configure(config_.calibration_window);
}

void DriftDetector::observe_record(bool oov) {
  oov_.push(oov ? 1.0f : 0.0f);
}

void DriftDetector::observe_novelty(bool novel) {
  novelty_.push(novel ? 1.0f : 0.0f);
}

void DriftDetector::observe_calibration(double relative_error) {
  calibration_.push(
      static_cast<float>(std::clamp(relative_error, 0.0, 1.0)));
}

void DriftDetector::evaluate() {
  bool edge = false;
  edge |= oov_.evaluate(config_.oov_trigger, config_.oov_clear,
                        config_.hysteresis, config_.min_window_fill);
  edge |= novelty_.evaluate(config_.novelty_trigger, config_.novelty_clear,
                            config_.hysteresis, config_.min_window_fill);
  edge |= calibration_.evaluate(config_.calibration_trigger,
                                config_.calibration_clear,
                                config_.hysteresis, config_.min_window_fill);
  if (edge) trigger_pending_ = true;

  status_.oov_rate = oov_.mean();
  status_.novelty_rate = novelty_.mean();
  status_.calibration_error = calibration_.mean();
  status_.oov_samples = oov_.count;
  status_.novelty_samples = novelty_.count;
  status_.calibration_samples = calibration_.count;
  status_.latched.clear();
  if (oov_.latched) status_.latched.push_back(DriftSignal::kOovRate);
  if (novelty_.latched)
    status_.latched.push_back(DriftSignal::kNoveltyRate);
  if (calibration_.latched)
    status_.latched.push_back(DriftSignal::kCalibrationError);
}

bool DriftDetector::take_trigger() {
  const bool t = trigger_pending_;
  trigger_pending_ = false;
  return t;
}

void DriftDetector::reset() {
  oov_.reset();
  novelty_.reset();
  calibration_.reset();
  status_ = DriftStatus{};
  trigger_pending_ = false;
}

}  // namespace desh::adapt
