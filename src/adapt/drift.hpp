// DriftDetector: the sensing half of desh::adapt (DESIGN.md "Online
// adaptation"). Three sliding-window signals summarize how far live traffic
// has walked away from what the champion pipeline was trained on:
//
//   oov rate          — fraction of tapped templates the champion vocabulary
//                       encodes to <unk> (Table 8's unknown-phrase growth);
//   novelty rate      — fraction of anomalous (non-Safe) phrases absent from
//                       every trained failure chain (the failure MIX shifted
//                       even if the words did not);
//   calibration error — mean relative |predicted - realized| lead time over
//                       resolved alerts (the model still fires, but its
//                       clock is wrong).
//
// Each signal latches "drifting" only after `hysteresis` consecutive
// evaluations at/above its trigger threshold with at least `min_window_fill`
// samples in its window, and un-latches only when the statistic falls to
// the (lower) clear threshold — a dead band, so one borderline batch cannot
// flap the retrain loop. The detector is pure bookkeeping: no locks, no
// model calls; AdaptController owns the mapping from records/alerts to
// observe_*() samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/config.hpp"

namespace desh::adapt {

enum class DriftSignal { kOovRate, kNoveltyRate, kCalibrationError };

const char* to_string(DriftSignal signal);

/// Point-in-time view of every signal (also exported as desh_adapt_*).
struct DriftStatus {
  double oov_rate = 0.0;
  double novelty_rate = 0.0;
  double calibration_error = 0.0;
  std::size_t oov_samples = 0;
  std::size_t novelty_samples = 0;
  std::size_t calibration_samples = 0;
  /// Signals currently latched as drifting (post-hysteresis).
  std::vector<DriftSignal> latched;
  bool drifting() const { return !latched.empty(); }
};

class DriftDetector {
 public:
  /// `config` is trusted here; DeshConfig::validate() vets it upstream.
  explicit DriftDetector(const core::AdaptConfig& config);

  /// One tapped record with a non-empty template (oov = encoded to <unk>).
  void observe_record(bool oov);
  /// One anomalous phrase (novel = not on any trained failure chain).
  void observe_novelty(bool novel);
  /// One resolved/expired alert's relative lead error, clamped to [0, 1].
  void observe_calibration(double relative_error);

  /// Applies thresholds + hysteresis to the current windows. Call once per
  /// tapped batch; cheap (three window means).
  void evaluate();

  /// Rising edge of any latch since the last call — the retrain trigger.
  /// Consumes the edge; the latch itself stays up until the signal clears.
  bool take_trigger();

  const DriftStatus& status() const { return status_; }

  /// Forgets all windows, latches and hysteresis state (e.g. after a model
  /// swap: the new champion must be judged on its own traffic).
  void reset();

 private:
  /// One signal's sliding window + latch state machine.
  struct Signal {
    std::vector<float> window;  // ring buffer of samples
    std::size_t next = 0;       // ring cursor
    std::size_t count = 0;      // valid samples (<= window.size())
    double sum = 0.0;           // running sum of the valid samples
    std::size_t breaches = 0;   // consecutive evaluations at/above trigger
    bool latched = false;

    void configure(std::size_t capacity);
    void push(float sample);
    double mean() const;
    /// Returns true on the latch's rising edge.
    bool evaluate(double trigger, double clear, std::size_t hysteresis,
                  std::size_t min_fill);
    void reset();
  };

  core::AdaptConfig config_;
  Signal oov_;
  Signal novelty_;
  Signal calibration_;
  DriftStatus status_;
  bool trigger_pending_ = false;
};

}  // namespace desh::adapt
