#include "adapt/registry.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/persistence.hpp"

namespace desh::adapt {

namespace fs = std::filesystem;

namespace {

core::Error io_error(const std::string& what) {
  return core::Error{core::ErrorCode::kIo, "ModelRegistry: " + what};
}

}  // namespace

core::Expected<ModelRegistry> ModelRegistry::open(std::string root,
                                                  std::size_t capacity) {
  if (capacity == 0)
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "ModelRegistry: capacity must be positive"};
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) return io_error("cannot create root '" + root + "': " + ec.message());
  ModelRegistry registry(std::move(root), capacity);
  if (fs::exists(fs::path(registry.root_) / "MANIFEST")) {
    core::Expected<void> loaded = registry.load_manifest();
    if (!loaded) return loaded.error();
  }
  return registry;
}

std::string ModelRegistry::directory_of(std::uint32_t version) const {
  return (fs::path(root_) / ("v" + std::to_string(version))).string();
}

bool ModelRegistry::has_version(std::uint32_t version) const {
  for (const RegistryEntry& e : entries_)
    if (e.version == version) return true;
  return false;
}

core::Expected<void> ModelRegistry::write_manifest() const {
  // Write-then-rename so a crash mid-write never leaves a torn MANIFEST.
  const fs::path path = fs::path(root_) / "MANIFEST";
  const fs::path tmp = fs::path(root_) / "MANIFEST.tmp";
  {
    std::ofstream os(tmp);
    if (!os) return io_error("cannot write " + tmp.string());
    os << "format=desh-registry-" << kRegistryFormatVersion << "\n";
    os << "next_version=" << next_version_ << "\n";
    if (champion_) os << "champion=" << *champion_ << "\n";
    if (previous_) os << "previous=" << *previous_ << "\n";
    for (const RegistryEntry& e : entries_)
      os << "entry=" << e.version << " " << e.note << "\n";
    if (!os.good()) return io_error("short write to " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return io_error("cannot install MANIFEST: " + ec.message());
  return {};
}

core::Expected<void> ModelRegistry::load_manifest() {
  const fs::path path = fs::path(root_) / "MANIFEST";
  std::ifstream is(path);
  if (!is) return io_error("cannot read " + path.string());

  std::string line;
  if (!std::getline(is, line))
    return io_error("empty MANIFEST in " + root_);
  const std::string prefix = "format=desh-registry-";
  if (line.rfind(prefix, 0) != 0)
    return io_error("MANIFEST missing format stamp in " + root_);
  const std::uint32_t version =
      static_cast<std::uint32_t>(std::stoul(line.substr(prefix.size())));
  if (version > kRegistryFormatVersion)
    return core::Error{
        core::ErrorCode::kFormatVersion,
        "ModelRegistry: MANIFEST format " + std::to_string(version) +
            " is newer than this build's " +
            std::to_string(kRegistryFormatVersion)};

  entries_.clear();
  champion_.reset();
  previous_.reset();
  next_version_ = 1;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      return io_error("malformed MANIFEST line '" + line + "'");
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "next_version") {
      next_version_ = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "champion") {
      champion_ = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "previous") {
      previous_ = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "entry") {
      std::istringstream fields(value);
      RegistryEntry entry;
      fields >> entry.version;
      if (fields.fail())
        return io_error("malformed entry line '" + line + "'");
      std::getline(fields, entry.note);
      if (!entry.note.empty() && entry.note.front() == ' ')
        entry.note.erase(entry.note.begin());
      entries_.push_back(std::move(entry));
    } else {
      return io_error("unknown MANIFEST key '" + key + "'");
    }
  }
  return {};
}

core::Expected<void> ModelRegistry::evict_one() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const std::uint32_t v = entries_[i].version;
    if (champion_ && *champion_ == v) continue;
    if (previous_ && *previous_ == v) continue;
    std::error_code ec;
    fs::remove_all(directory_of(v), ec);
    if (ec)
      return io_error("cannot evict v" + std::to_string(v) + ": " +
                      ec.message());
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    return {};
  }
  return core::Error{
      core::ErrorCode::kUnavailable,
      "ModelRegistry: at capacity (" + std::to_string(capacity_) +
          ") and every retained version is champion or rollback target"};
}

core::Expected<std::uint32_t> ModelRegistry::publish(
    const core::DeshPipeline& pipeline, std::string note) {
  if (entries_.size() >= capacity_) {
    core::Expected<void> evicted = evict_one();
    if (!evicted) return evicted.error();
  }
  const std::uint32_t version = next_version_;
  core::Expected<void> saved =
      core::try_save_pipeline(pipeline, directory_of(version));
  if (!saved) return saved.error();
  ++next_version_;
  entries_.push_back({version, std::move(note)});
  core::Expected<void> manifest = write_manifest();
  if (!manifest) return manifest.error();
  return version;
}

core::Expected<void> ModelRegistry::promote(std::uint32_t version) {
  if (!has_version(version))
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "ModelRegistry: unknown version " +
                           std::to_string(version)};
  if (champion_ && *champion_ == version) return {};
  previous_ = champion_;
  champion_ = version;
  return write_manifest();
}

core::Expected<std::uint32_t> ModelRegistry::rollback() {
  if (!previous_)
    return core::Error{core::ErrorCode::kUnavailable,
                       "ModelRegistry: no previous champion to roll back to"};
  const std::uint32_t target = *previous_;
  champion_ = target;
  previous_.reset();  // no ping-pong: a second rollback needs a new promote
  core::Expected<void> manifest = write_manifest();
  if (!manifest) return manifest.error();
  return target;
}

core::Expected<core::DeshPipeline> ModelRegistry::load(
    std::uint32_t version) const {
  if (!has_version(version))
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "ModelRegistry: unknown version " +
                           std::to_string(version)};
  return core::try_load_pipeline(directory_of(version));
}

}  // namespace desh::adapt
