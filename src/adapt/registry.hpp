// ModelRegistry: versioned, persisted pipeline snapshots with a champion
// pointer — the audit trail and rollback substrate of desh::adapt.
//
// On-disk layout (root directory):
//   MANIFEST        — format stamp + entry list + champion/previous markers
//   v<N>/           — one core::try_save_pipeline directory per version
//                     (the PR-3 `desh-pipeline-2` format, unchanged)
//
// The MANIFEST has its own format stamp (`format=desh-registry-1`) so the
// registry layout can evolve independently of the pipeline snapshot format;
// a future-format manifest reports ErrorCode::kFormatVersion just like a
// future pipeline snapshot would.
//
// Retention: at most `capacity` versions. Publishing past capacity evicts
// the oldest version that is neither the champion nor the previous champion
// (both must survive for rollback); when every retained version is
// protected, publish() fails with kUnavailable instead of silently
// widening the registry.
//
// Threading: externally synchronized. The registry holds no lock of its own;
// AdaptController owns the only instance and guards it with its mu_
// (DESH_GUARDED_BY in controller.hpp). The registry() accessor documents the
// one sanctioned unsynchronized read path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/expected.hpp"
#include "core/pipeline.hpp"

namespace desh::adapt {

/// Manifest format stamped into new registries.
inline constexpr std::uint32_t kRegistryFormatVersion = 1;

struct RegistryEntry {
  std::uint32_t version = 0;
  std::string note;  // free-form provenance, e.g. "drift:oov_rate"
};

class ModelRegistry {
 public:
  /// Opens (or initializes) the registry rooted at `root`. An existing
  /// MANIFEST is loaded and validated; a fresh directory starts empty.
  /// Errors: kIo (unwritable root, corrupt manifest), kFormatVersion
  /// (manifest written by a future Desh), kInvalidArgument (capacity 0).
  [[nodiscard]] static core::Expected<ModelRegistry> open(
      std::string root, std::size_t capacity = 4);

  /// Persists `pipeline` as the next version (snapshot + manifest update)
  /// and returns its version number. Does NOT change the champion.
  /// Errors: kIo, kUnavailable (at capacity with nothing evictable), plus
  /// anything core::try_save_pipeline reports.
  [[nodiscard]] core::Expected<std::uint32_t> publish(
      const core::DeshPipeline& pipeline, std::string note);

  /// Marks `version` as champion; the old champion becomes the rollback
  /// target. Errors: kInvalidArgument (unknown version), kIo.
  [[nodiscard]] core::Expected<void> promote(std::uint32_t version);

  /// Reverts to the previous champion and returns its version. The
  /// rolled-back version stays in the registry (for the post-mortem) but
  /// loses its champion mark; the rollback target slot is cleared, so two
  /// rollbacks in a row fail rather than ping-pong.
  /// Errors: kUnavailable (no previous champion recorded), kIo.
  [[nodiscard]] core::Expected<std::uint32_t> rollback();

  /// Reconstructs the pipeline stored as `version`.
  /// Errors: kInvalidArgument (unknown version) + try_load_pipeline's.
  [[nodiscard]] core::Expected<core::DeshPipeline> load(
      std::uint32_t version) const;

  std::optional<std::uint32_t> champion() const { return champion_; }
  std::optional<std::uint32_t> previous_champion() const {
    return previous_;
  }
  /// Oldest-first; versions are strictly increasing but not contiguous
  /// after evictions.
  const std::vector<RegistryEntry>& entries() const { return entries_; }
  std::size_t capacity() const { return capacity_; }
  const std::string& root() const { return root_; }
  /// Snapshot directory of `version` (exists only for retained entries).
  std::string directory_of(std::uint32_t version) const;

 private:
  ModelRegistry(std::string root, std::size_t capacity)
      : root_(std::move(root)), capacity_(capacity) {}

  core::Expected<void> write_manifest() const;
  core::Expected<void> load_manifest();
  /// Drops the oldest unprotected entry; kUnavailable when all protected.
  core::Expected<void> evict_one();
  bool has_version(std::uint32_t version) const;

  std::string root_;
  std::size_t capacity_ = 4;
  std::uint32_t next_version_ = 1;
  std::vector<RegistryEntry> entries_;
  std::optional<std::uint32_t> champion_;
  std::optional<std::uint32_t> previous_;
};

}  // namespace desh::adapt
