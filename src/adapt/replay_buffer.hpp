// ReplayBuffer: the bounded FIFO of recent raw serve-path records the
// background retrainer learns from. Raw LogRecords (not phrase ids) are
// kept on purpose: the whole point of retraining is that the champion's
// vocabulary no longer covers the traffic, so the challenger must re-parse
// the messages and grow its own vocabulary from them.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <span>

#include "logs/record.hpp"

namespace desh::adapt {

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {}

  void append(const logs::LogRecord& record) {
    if (buffer_.size() == capacity_) buffer_.pop_front();
    buffer_.push_back(record);
  }

  void append(std::span<const logs::LogRecord> records) {
    for (const logs::LogRecord& r : records) append(r);
  }

  /// Copy of the whole buffer, oldest first — what a retrain snapshots
  /// before releasing the controller lock.
  logs::LogCorpus snapshot() const {
    return logs::LogCorpus(buffer_.begin(), buffer_.end());
  }

  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return buffer_.empty(); }
  void clear() { buffer_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<logs::LogRecord> buffer_;
};

/// Temporal train/holdout split for shadow evaluation: the most recent
/// `holdout_fraction` of `corpus` is the held-out window (never seen by the
/// challenger), the rest is its training data. At least one record lands on
/// each side when the corpus has two or more.
struct ReplaySplit {
  logs::LogCorpus train;
  logs::LogCorpus holdout;
};

inline ReplaySplit split_replay(const logs::LogCorpus& corpus,
                                double holdout_fraction) {
  ReplaySplit out;
  if (corpus.empty()) return out;
  std::size_t holdout_count = static_cast<std::size_t>(
      static_cast<double>(corpus.size()) * holdout_fraction);
  holdout_count = std::max<std::size_t>(holdout_count, 1);
  holdout_count = std::min(holdout_count, corpus.size() - 1);
  const std::size_t cut = corpus.size() - holdout_count;
  out.train.assign(corpus.begin(), corpus.begin() + cut);
  out.holdout.assign(corpus.begin() + cut, corpus.end());
  return out;
}

}  // namespace desh::adapt
