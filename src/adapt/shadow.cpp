#include "adapt/shadow.hpp"

#include "chains/parsed_log.hpp"
#include "logs/template_miner.hpp"
#include "logs/vocab.hpp"

namespace desh::adapt {

namespace {

struct ModelScore {
  double accuracy = 0.0;
  double coverage = 0.0;
};

ModelScore score_model(const core::DeshPipeline& pipeline,
                       const logs::LogCorpus& holdout) {
  ModelScore out;
  // Coverage under this model's (frozen) vocabulary.
  logs::PhraseVocab frozen = pipeline.vocab();
  std::size_t templates = 0, known = 0;
  for (const logs::LogRecord& r : holdout) {
    const std::string tmpl = logs::TemplateMiner::extract(r.message);
    if (tmpl.empty()) continue;
    ++templates;
    if (frozen.encode(tmpl) != logs::PhraseVocab::kUnknownId) ++known;
  }
  if (templates > 0)
    out.coverage =
        static_cast<double>(known) / static_cast<double>(templates);

  chains::ParsedLog parsed =
      chains::parse_corpus(holdout, frozen, /*grow_vocab=*/false);
  out.accuracy =
      pipeline.phase1().accuracy(parsed, pipeline.config().phase1.history);
  return out;
}

}  // namespace

ShadowReport shadow_evaluate(const core::DeshPipeline& champion,
                             const core::DeshPipeline& challenger,
                             const logs::LogCorpus& holdout,
                             const core::AdaptConfig& config) {
  ShadowReport report;
  report.holdout_records = holdout.size();
  // Too little evidence to dethrone the incumbent.
  if (holdout.size() < challenger.config().phase1.history + 2) return report;

  const ModelScore champ = score_model(champion, holdout);
  const ModelScore chall = score_model(challenger, holdout);
  report.champion_accuracy = champ.accuracy;
  report.challenger_accuracy = chall.accuracy;
  report.champion_coverage = champ.coverage;
  report.challenger_coverage = chall.coverage;
  const double w = config.oov_improvement_weight;
  report.champion_score = champ.accuracy + w * champ.coverage;
  report.challenger_score = chall.accuracy + w * chall.coverage;
  report.challenger_wins =
      report.challenger_score >
      report.champion_score + config.min_score_gain;
  return report;
}

}  // namespace desh::adapt
