// Shadow evaluation: champion vs challenger on a held-out recent window of
// live traffic, with no ground-truth failure labels required. Two scores a
// deployment can always compute are combined:
//
//   accuracy   — phase-1 next-phrase top-1 accuracy on the held-out window
//                (each model parses the window under its OWN vocabulary:
//                the question is "how well does this model speak the
//                current traffic", not "how well does it speak the other
//                model's encoding");
//   coverage   — 1 - OOV rate of the held-out templates under the model's
//                vocabulary (a model that maps live traffic to <unk>
//                cannot match chains no matter how sharp its LSTM is).
//
//   score = accuracy + oov_improvement_weight * coverage
//
// The challenger wins only when its score beats the champion's by at least
// `min_score_gain` — ties keep the incumbent, so a retrain that learned
// nothing new never churns the serving model.
#pragma once

#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "logs/record.hpp"

namespace desh::adapt {

struct ShadowReport {
  double champion_accuracy = 0.0;
  double challenger_accuracy = 0.0;
  double champion_coverage = 0.0;    // 1 - oov rate on the held-out window
  double challenger_coverage = 0.0;
  double champion_score = 0.0;
  double challenger_score = 0.0;
  std::size_t holdout_records = 0;
  bool challenger_wins = false;
};

/// Scores both fitted pipelines on `holdout`. An empty or too-short window
/// (fewer events than one phase-1 history+1) is no evidence: the challenger
/// loses by default.
ShadowReport shadow_evaluate(const core::DeshPipeline& champion,
                             const core::DeshPipeline& challenger,
                             const logs::LogCorpus& holdout,
                             const core::AdaptConfig& config);

}  // namespace desh::adapt
