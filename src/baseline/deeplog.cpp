#include "baseline/deeplog.hpp"

#include <algorithm>

#include "core/phase1.hpp"
#include "nn/inference_backend.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::baseline {

DeepLogDetector::DeepLogDetector(const DeepLogConfig& config,
                                 std::size_t vocab_size, util::Rng& rng)
    : config_(config),
      rng_(rng.fork(0xD1)),
      model_(nn::PhraseModelConfig{vocab_size, config.embed_dim,
                                   config.hidden_size, config.num_layers},
             rng_) {}

void DeepLogDetector::fit(const chains::ParsedLog& train) {
  // DeepLog trains 1-step next-key prediction over sliding windows.
  const std::size_t window_len = config_.history + 1;
  nn::Sgd optimizer(config_.learning_rate, config_.momentum);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto windows = core::Phase1Trainer::make_windows(
        train, window_len, config_.window_stride, config_.max_windows, rng_);
    util::require(!windows.empty(), "DeepLogDetector::fit: no windows");
    for (std::size_t start = 0; start < windows.size();
         start += config_.batch_size) {
      const std::size_t count =
          std::min(config_.batch_size, windows.size() - start);
      model_.train_batch(std::span(windows).subspan(start, count),
                         /*steps=*/1, optimizer);
    }
    optimizer.set_learning_rate(optimizer.learning_rate() * 0.7f);
  }
}

bool DeepLogDetector::entry_is_normal(std::span<const std::uint32_t> window,
                                      std::uint32_t next) const {
  const std::vector<float> probs =
      nn::ReferenceBackend(model_).predict_distribution(window);
  const auto best =
      tensor::topk(std::span<const float>(probs.data(), probs.size()),
                   std::min(config_.g, probs.size()));
  return std::find(best.begin(), best.end(), next) != best.end();
}

double DeepLogDetector::anomaly_fraction(
    const chains::CandidateSequence& candidate) const {
  // DeepLog's normality check uses windows of exactly h keys: entries with
  // less context than the trained window length are not scored.
  const auto& events = candidate.events;
  if (events.size() < config_.history + 1) return 0.0;
  std::size_t anomalous = 0, scored = 0;
  std::vector<std::uint32_t> ids(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) ids[i] = events[i].phrase;
  for (std::size_t t = config_.history; t < ids.size(); ++t) {
    std::span<const std::uint32_t> window(ids.data() + t - config_.history,
                                          config_.history);
    if (!entry_is_normal(window, ids[t])) ++anomalous;
    ++scored;
  }
  return static_cast<double>(anomalous) / static_cast<double>(scored);
}

bool DeepLogDetector::flags_candidate(
    const chains::CandidateSequence& candidate) const {
  const auto& events = candidate.events;
  if (events.size() < config_.history + 1) return false;
  std::vector<std::uint32_t> ids(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) ids[i] = events[i].phrase;
  std::size_t anomalous = 0;
  for (std::size_t t = config_.history; t < ids.size(); ++t) {
    std::span<const std::uint32_t> window(ids.data() + t - config_.history,
                                          config_.history);
    if (!entry_is_normal(window, ids[t])) {
      ++anomalous;
      if (anomalous >= config_.entry_threshold) return true;
    }
  }
  return false;
}

}  // namespace desh::baseline
