// DeepLog-style baseline (Du et al. [18]) for the Sec 4.5 comparison
// (Tables 10/11). DeepLog trains a stacked-LSTM next-log-key model on normal
// executions and declares a log entry anomalous when the actually observed
// key is absent from the top-g predicted keys. It detects per-entry
// anomalies — it has no notion of failure chains, lead times, or component
// location (Table 11 rows 2-4).
//
// For a node-failure-prediction comparison on equal footing, the detector is
// applied to the same candidate sequences Desh scores: a candidate is
// "flagged" when at least `entry_threshold` of its entries are per-entry
// anomalous. This reproduces the paper's observation that per-entry
// detection catches unusual activity indiscriminately — non-failure
// anomalous sequences are flagged just like real failures (low precision)
// and nothing distinguishes how *soon* the node will die.
#pragma once

#include <cstdint>

#include "chains/extractor.hpp"
#include "chains/parsed_log.hpp"
#include "nn/phrase_model.hpp"
#include "util/rng.hpp"

namespace desh::baseline {

struct DeepLogConfig {
  std::size_t embed_dim = 16;
  std::size_t hidden_size = 32;
  std::size_t num_layers = 2;
  std::size_t history = 5;   // DeepLog's window h (comparable to Desh HS=5)
  std::size_t g = 3;         // top-g normality cutoff
  std::size_t epochs = 2;
  std::size_t batch_size = 32;
  float learning_rate = 0.25f;
  float momentum = 0.9f;
  std::size_t window_stride = 2;
  std::size_t max_windows = 60000;
  /// Candidate-level decision: anomalous entries needed to flag.
  std::size_t entry_threshold = 1;
};

class DeepLogDetector {
 public:
  DeepLogDetector(const DeepLogConfig& config, std::size_t vocab_size,
                  util::Rng& rng);

  /// Trains the next-key model on the full training stream (normal traffic
  /// dominates, so rare-event transitions stay out of the top-g).
  void fit(const chains::ParsedLog& train);

  /// Per-entry check: is `next` within the top-g predictions after `window`?
  bool entry_is_normal(std::span<const std::uint32_t> window,
                       std::uint32_t next) const;

  /// Fraction of a candidate's scoreable entries that are anomalous.
  double anomaly_fraction(const chains::CandidateSequence& candidate) const;

  /// Candidate-level flag for the comparison harness.
  bool flags_candidate(const chains::CandidateSequence& candidate) const;

  const DeepLogConfig& config() const { return config_; }
  nn::PhraseModel& model() { return model_; }

 private:
  DeepLogConfig config_;
  util::Rng rng_;
  nn::PhraseModel model_;
};

}  // namespace desh::baseline
