#include "baseline/ngram.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace desh::baseline {

NgramDetector::NgramDetector(const NgramConfig& config, std::size_t vocab_size)
    : config_(config), vocab_size_(vocab_size), counts_(config.order + 1) {
  util::require(config.order >= 1, "NgramDetector: order must be >= 1");
  util::require(vocab_size > 1, "NgramDetector: vocab too small");
}

std::uint64_t NgramDetector::hash_context(
    std::span<const std::uint32_t> context) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint32_t id : context) {
    h ^= id;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void NgramDetector::fit(const chains::ParsedLog& train) {
  for (const logs::NodeId& node : train.sorted_nodes()) {
    const auto& events = train.by_node.at(node);
    std::vector<std::uint32_t> ids(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) ids[i] = events[i].phrase;
    for (std::size_t t = 0; t < ids.size(); ++t) {
      for (std::size_t len = 0; len <= config_.order && len <= t; ++len) {
        std::span<const std::uint32_t> context(ids.data() + t - len, len);
        counts_[len][hash_context(context)][ids[t]] += 1.0;
      }
    }
  }
}

double NgramDetector::probability(std::span<const std::uint32_t> context,
                                  std::uint32_t next) const {
  double factor = 1.0;
  const std::size_t start_len = std::min(context.size(), config_.order);
  for (std::size_t len = start_len;; --len) {
    std::span<const std::uint32_t> ctx = context.subspan(context.size() - len);
    auto cit = counts_[len].find(hash_context(ctx));
    if (cit != counts_[len].end()) {
      double total = 0;
      for (const auto& [id, count] : cit->second) total += count;
      auto nit = cit->second.find(next);
      if (nit != cit->second.end() && total > 0)
        return factor * nit->second / total;
    }
    if (len == 0) break;
    factor *= config_.backoff;
  }
  // Uniform floor for never-seen unigrams.
  return factor / static_cast<double>(vocab_size_);
}

std::vector<std::uint32_t> NgramDetector::topg(
    std::span<const std::uint32_t> context) const {
  // Collect continuation candidates from the longest matching context.
  const std::size_t start_len = std::min(context.size(), config_.order);
  for (std::size_t len = start_len;; --len) {
    std::span<const std::uint32_t> ctx = context.subspan(context.size() - len);
    auto cit = counts_[len].find(hash_context(ctx));
    if (cit != counts_[len].end() && !cit->second.empty()) {
      std::vector<std::pair<double, std::uint32_t>> ranked;
      ranked.reserve(cit->second.size());
      for (const auto& [id, count] : cit->second)
        ranked.emplace_back(count, id);
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      std::vector<std::uint32_t> out;
      for (std::size_t i = 0; i < std::min(config_.g, ranked.size()); ++i)
        out.push_back(ranked[i].second);
      return out;
    }
    if (len == 0) break;
  }
  return {};
}

bool NgramDetector::entry_is_normal(std::span<const std::uint32_t> context,
                                    std::uint32_t next) const {
  const auto best = topg(context);
  return std::find(best.begin(), best.end(), next) != best.end();
}

double NgramDetector::anomaly_fraction(
    const chains::CandidateSequence& candidate) const {
  const auto& events = candidate.events;
  if (events.size() < 2) return 0.0;
  std::vector<std::uint32_t> ids(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) ids[i] = events[i].phrase;
  std::size_t anomalous = 0, scored = 0;
  for (std::size_t t = 1; t < ids.size(); ++t) {
    const std::size_t start = t > config_.order ? t - config_.order : 0;
    std::span<const std::uint32_t> context(ids.data() + start, t - start);
    if (!entry_is_normal(context, ids[t])) ++anomalous;
    ++scored;
  }
  return static_cast<double>(anomalous) / static_cast<double>(scored);
}

bool NgramDetector::flags_candidate(
    const chains::CandidateSequence& candidate) const {
  const auto& events = candidate.events;
  if (events.size() < 2) return false;
  std::vector<std::uint32_t> ids(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) ids[i] = events[i].phrase;
  std::size_t anomalous = 0;
  for (std::size_t t = 1; t < ids.size(); ++t) {
    const std::size_t start = t > config_.order ? t - config_.order : 0;
    std::span<const std::uint32_t> context(ids.data() + start, t - start);
    if (!entry_is_normal(context, ids[t])) {
      ++anomalous;
      if (anomalous >= config_.entry_threshold) return true;
    }
  }
  return false;
}

}  // namespace desh::baseline
