// Classic n-gram language-model baseline (Sec 2 contrasts Desh's RNN with
// "traditional language modeling [using] frequency counts of variable length
// sequences"). Maximum-likelihood estimation with stupid-backoff to shorter
// contexts; the same top-g normality criterion as DeepLog makes the three
// detectors directly comparable.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "chains/extractor.hpp"
#include "chains/parsed_log.hpp"

namespace desh::baseline {

struct NgramConfig {
  std::size_t order = 3;  // context length (trigram model by default)
  std::size_t g = 3;      // top-g normality cutoff
  double backoff = 0.4;   // stupid-backoff factor
  std::size_t entry_threshold = 1;
};

class NgramDetector {
 public:
  NgramDetector(const NgramConfig& config, std::size_t vocab_size);

  void fit(const chains::ParsedLog& train);

  /// Backoff-smoothed conditional probability p(next | context).
  double probability(std::span<const std::uint32_t> context,
                     std::uint32_t next) const;
  /// The g most likely continuations of `context`.
  std::vector<std::uint32_t> topg(std::span<const std::uint32_t> context) const;

  bool entry_is_normal(std::span<const std::uint32_t> context,
                       std::uint32_t next) const;
  double anomaly_fraction(const chains::CandidateSequence& candidate) const;
  bool flags_candidate(const chains::CandidateSequence& candidate) const;

  const NgramConfig& config() const { return config_; }

 private:
  NgramConfig config_;
  std::size_t vocab_size_;
  // context-hash -> (next id -> count), one map per context length 0..order.
  std::vector<std::unordered_map<std::uint64_t,
                                 std::unordered_map<std::uint32_t, double>>>
      counts_;

  static std::uint64_t hash_context(std::span<const std::uint32_t> context);
};

}  // namespace desh::baseline
