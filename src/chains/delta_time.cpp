#include "chains/delta_time.hpp"

#include "util/error.hpp"

namespace desh::chains {

std::vector<double> DeltaTimeCalculator::delta_seconds(
    const CandidateSequence& candidate) {
  util::require(!candidate.events.empty(),
                "DeltaTimeCalculator: empty candidate");
  const double last = candidate.events.back().timestamp;
  std::vector<double> out;
  out.reserve(candidate.events.size());
  for (const ParsedEvent& e : candidate.events) out.push_back(last - e.timestamp);
  return out;
}

nn::ChainSequence DeltaTimeCalculator::to_chain_sequence_adjacent(
    const CandidateSequence& candidate) {
  util::require(!candidate.events.empty(),
                "DeltaTimeCalculator: empty candidate");
  nn::ChainSequence seq;
  seq.reserve(candidate.events.size());
  for (std::size_t i = 0; i < candidate.events.size(); ++i) {
    const double gap =
        i == 0 ? 0.0
               : candidate.events[i].timestamp - candidate.events[i - 1].timestamp;
    seq.push_back(nn::ChainStep{nn::ChainModel::normalize_dt(gap),
                                candidate.events[i].phrase});
  }
  return seq;
}

nn::ChainSequence DeltaTimeCalculator::to_chain_sequence(
    const CandidateSequence& candidate) {
  const std::vector<double> deltas = delta_seconds(candidate);
  nn::ChainSequence seq;
  seq.reserve(candidate.events.size());
  for (std::size_t i = 0; i < candidate.events.size(); ++i)
    seq.push_back(nn::ChainStep{nn::ChainModel::normalize_dt(deltas[i]),
                                candidate.events[i].phrase});
  return seq;
}

}  // namespace desh::chains
