// Cumulative deltaT calculation (Sec 3.2, Table 4): within a candidate
// sequence, every event's deltaT is the time difference to the *last*
// (highest-timestamped) event of the sequence — the terminal phrase for a
// failure chain. The last event gets deltaT = 0. These (deltaT, phrase)
// pairs are the phase-2/3 input vectors.
#pragma once

#include "chains/extractor.hpp"
#include "nn/chain_model.hpp"

namespace desh::chains {

class DeltaTimeCalculator {
 public:
  /// Converts a candidate into the phase-2/3 vector sequence, normalizing
  /// deltaT with nn::ChainModel::normalize_dt so data and model share units.
  static nn::ChainSequence to_chain_sequence(const CandidateSequence& candidate);

  /// Ablation variant (DESIGN.md decision 1): deltaT as the *adjacent*
  /// inter-arrival gap (t_i - t_{i-1}, first = 0) instead of the paper's
  /// cumulative time-to-terminal. Discards the direct lead-time signal —
  /// bench_ablation_design quantifies what that costs.
  static nn::ChainSequence to_chain_sequence_adjacent(
      const CandidateSequence& candidate);

  /// Raw (unnormalized) cumulative deltaTs in seconds, same order as events.
  static std::vector<double> delta_seconds(const CandidateSequence& candidate);
};

}  // namespace desh::chains
