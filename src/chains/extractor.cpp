#include "chains/extractor.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace desh::chains {

ChainExtractor::ChainExtractor(ExtractorConfig config) : config_(config) {
  util::require(config_.gap_seconds > 0, "ChainExtractor: bad gap_seconds");
  util::require(config_.min_length >= 2, "ChainExtractor: min_length < 2");
}

namespace {

// Collects the timestamps of terminal events per terminal phrase, across all
// nodes, so coordinated shutdown bursts can be recognized.
struct TerminalIndex {
  // phrase id -> sorted (time, node) pairs
  std::map<std::uint32_t, std::vector<std::pair<double, logs::NodeId>>> events;

  bool is_maintenance(std::uint32_t phrase, double time, double window,
                      std::size_t node_threshold) const {
    auto it = events.find(phrase);
    if (it == events.end()) return false;
    const auto& v = it->second;
    auto lo = std::lower_bound(
        v.begin(), v.end(), std::make_pair(time - window, logs::NodeId{}));
    std::vector<logs::NodeId> nodes;
    for (auto p = lo; p != v.end() && p->first <= time + window; ++p)
      nodes.push_back(p->second);
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    return nodes.size() >= node_threshold;
  }
};

}  // namespace

std::vector<CandidateSequence> ChainExtractor::extract(
    const ParsedLog& parsed, const PhraseLabeler& labeler) const {
  TerminalIndex terminals;
  for (const auto& [node, events] : parsed.by_node)
    for (const ParsedEvent& e : events)
      if (labeler.is_terminal(e.phrase))
        terminals.events[e.phrase].emplace_back(e.timestamp, node);
  for (auto& [phrase, v] : terminals.events) std::sort(v.begin(), v.end());

  std::vector<CandidateSequence> out;
  for (const logs::NodeId& node : parsed.sorted_nodes()) {
    const auto& events = parsed.by_node.at(node);
    CandidateSequence current;
    current.node = node;

    auto flush = [&] {
      if (current.events.size() >= config_.min_length) {
        const ParsedEvent& last = current.events.back();
        current.ends_with_terminal =
            labeler.is_terminal(last.phrase) &&
            !terminals.is_maintenance(last.phrase, last.timestamp,
                                      config_.maintenance_window_seconds,
                                      config_.maintenance_node_threshold);
        out.push_back(current);
      }
      current.events.clear();
      current.ends_with_terminal = false;
    };

    for (const ParsedEvent& e : events) {
      if (labeler.label(e.phrase) == logs::PhraseLabel::kSafe) continue;
      if (!current.events.empty() &&
          e.timestamp - current.events.back().timestamp > config_.gap_seconds)
        flush();
      current.events.push_back(e);
      // A terminal phrase hard-stops the sequence: whatever follows belongs
      // to the node's next life (post-reboot).
      if (labeler.is_terminal(e.phrase)) flush();
    }
    flush();
  }
  return out;
}

std::vector<CandidateSequence> ChainExtractor::failure_chains(
    std::vector<CandidateSequence> candidates) {
  std::erase_if(candidates, [](const CandidateSequence& c) {
    return !c.ends_with_terminal;
  });
  return candidates;
}

}  // namespace desh::chains
