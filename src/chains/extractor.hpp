// Failure-chain / candidate-sequence extraction (Sec 3.1 step 5, Sec 3.2).
//
// After Safe phrases are eliminated, each node's remaining Error/Unknown
// events are segmented into *candidate sequences*: maximal runs whose
// inter-event gaps stay below a threshold. A candidate ending in a terminal
// phrase is a failure chain (phase-2 training material and a phase-3
// positive); one that peters out without a terminal is exactly the
// "sequence of events similar to a target failure chain not leading to a
// failed node" the paper's FP analysis is about.
//
// Coordinated service shutdowns (many nodes emitting the same terminal
// phrase within a short window) are recognized and dropped: "large-scale
// node reboots clearly indicate service-oriented shutdowns" (Sec 2).
#pragma once

#include <vector>

#include "chains/labeler.hpp"
#include "chains/parsed_log.hpp"

namespace desh::chains {

struct CandidateSequence {
  logs::NodeId node;
  std::vector<ParsedEvent> events;  // Error/Unknown events, time-sorted
  bool ends_with_terminal = false;

  double start_time() const { return events.front().timestamp; }
  double end_time() const { return events.back().timestamp; }
};

struct ExtractorConfig {
  /// Maximum silence between two events of the same sequence.
  double gap_seconds = 420.0;
  /// Minimum events for a candidate (shorter runs carry no chain signal —
  /// the paper's history size of 5 needs history+1 events to score once).
  std::size_t min_length = 6;
  /// A terminal phrase echoed by at least this many distinct nodes within
  /// the maintenance window is treated as a service shutdown, not a failure.
  std::size_t maintenance_node_threshold = 8;
  double maintenance_window_seconds = 120.0;
};

class ChainExtractor {
 public:
  explicit ChainExtractor(ExtractorConfig config = {});

  /// Extracts all candidate sequences, deterministically ordered by
  /// (node, start time).
  std::vector<CandidateSequence> extract(const ParsedLog& parsed,
                                         const PhraseLabeler& labeler) const;

  /// Convenience filter: only the failure chains (terminal-ended).
  static std::vector<CandidateSequence> failure_chains(
      std::vector<CandidateSequence> candidates);

  const ExtractorConfig& config() const { return config_; }

 private:
  ExtractorConfig config_;
};

}  // namespace desh::chains
