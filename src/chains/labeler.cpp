#include "chains/labeler.hpp"

#include "util/strings.hpp"

namespace desh::chains {

using logs::PhraseCatalog;
using logs::PhraseLabel;

PhraseLabeler::PhraseLabeler(const logs::PhraseVocab& vocab) {
  labels_.resize(vocab.size());
  terminal_.resize(vocab.size(), false);
  for (std::uint32_t id = 0; id < vocab.size(); ++id) {
    const std::string& tmpl = vocab.decode(id);
    labels_[id] = label_template(tmpl);
    terminal_[id] = is_terminal_template(tmpl);
  }
  // The <unk> sentinel is by definition a message no expert has seen.
  labels_[logs::PhraseVocab::kUnknownId] = PhraseLabel::kUnknown;
}

PhraseLabel PhraseLabeler::label(std::uint32_t id) const {
  // Ids past the snapshot (grown vocab) default to Unknown — consistent
  // with how a deployment treats messages its experts never reviewed.
  if (id >= labels_.size()) return PhraseLabel::kUnknown;
  return labels_[id];
}

bool PhraseLabeler::is_terminal(std::uint32_t id) const {
  return id < terminal_.size() && terminal_[id];
}

PhraseLabel PhraseLabeler::label_template(std::string_view tmpl) {
  const PhraseCatalog& catalog = PhraseCatalog::instance();
  if (catalog.has_template(tmpl))
    return catalog.phrase(catalog.index_of(tmpl)).label;

  // Keyword fallback mirroring the expert intuition of Table 3: hard
  // malfunction words -> Error; suspicious words -> Unknown; else Safe.
  if (util::contains_ci(tmpl, "panic") || util::contains_ci(tmpl, "fatal") ||
      util::contains_ci(tmpl, "nmi") || util::contains_ci(tmpl, "trace") ||
      util::contains_ci(tmpl, "not responding") ||
      util::contains_ci(tmpl, "is down") || util::contains_ci(tmpl, "halted"))
    return PhraseLabel::kError;
  if (util::contains_ci(tmpl, "error") || util::contains_ci(tmpl, "fail") ||
      util::contains_ci(tmpl, "warn") || util::contains_ci(tmpl, "bug") ||
      util::contains_ci(tmpl, "killed") || util::contains_ci(tmpl, "timeout") ||
      util::contains_ci(tmpl, "fault") || util::contains_ci(tmpl, "stall"))
    return PhraseLabel::kUnknown;
  return PhraseLabel::kSafe;
}

bool PhraseLabeler::is_terminal_template(std::string_view tmpl) {
  const PhraseCatalog& catalog = PhraseCatalog::instance();
  if (catalog.has_template(tmpl))
    return catalog.phrase(catalog.index_of(tmpl)).terminal;
  return false;
}

}  // namespace desh::chains
