// Safe / Unknown / Error phrase labeling (Sec 3.1 "Phrase Labeling",
// Table 3). In the paper this grouping was produced in consultation with
// the system administrators; here the PhraseCatalog plays that role, with a
// keyword heuristic as fallback for templates outside the catalog (real
// deployments always contain long-tail messages no expert enumerated).
//
// Labeling deliberately happens AFTER vectorization/phase-1 training
// ("training is more robust with noise"); the labeler only gates chain
// formation for phase 2.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "logs/phrase_catalog.hpp"
#include "logs/vocab.hpp"

namespace desh::chains {

class PhraseLabeler {
 public:
  /// Precomputes labels for every id in `vocab` (snapshot: ids added to the
  /// vocabulary later are not covered — build the labeler after the
  /// training parse).
  explicit PhraseLabeler(const logs::PhraseVocab& vocab);

  logs::PhraseLabel label(std::uint32_t id) const;
  /// Terminal messages indicating a node went down (Sec 2: "identifiable by
  /// a terminal log message, verified in consultation with the sysadmins").
  bool is_terminal(std::uint32_t id) const;

  std::size_t vocab_size() const { return labels_.size(); }

  /// Stateless classification of a single template.
  static logs::PhraseLabel label_template(std::string_view tmpl);
  static bool is_terminal_template(std::string_view tmpl);

 private:
  std::vector<logs::PhraseLabel> labels_;
  std::vector<bool> terminal_;
};

}  // namespace desh::chains
