#include "chains/parsed_log.hpp"

#include <algorithm>

#include "logs/template_miner.hpp"

namespace desh::chains {

std::vector<logs::NodeId> ParsedLog::sorted_nodes() const {
  std::vector<logs::NodeId> nodes;
  nodes.reserve(by_node.size());
  for (const auto& [node, events] : by_node) nodes.push_back(node);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

ParsedLog parse_corpus(const logs::LogCorpus& corpus, logs::PhraseVocab& vocab,
                       bool grow_vocab) {
  ParsedLog out;
  for (const logs::LogRecord& record : corpus) {
    const std::string tmpl = logs::TemplateMiner::extract(record.message);
    if (tmpl.empty()) continue;
    const std::uint32_t id =
        grow_vocab ? vocab.add(tmpl) : vocab.encode(tmpl);
    out.by_node[record.node].push_back(ParsedEvent{record.timestamp, id});
    ++out.event_count;
  }
  for (auto& [node, events] : out.by_node)
    std::sort(events.begin(), events.end(),
              [](const ParsedEvent& a, const ParsedEvent& b) {
                return a.timestamp < b.timestamp;
              });
  return out;
}

}  // namespace desh::chains
