// Parsed view of a raw corpus: every record reduced to (timestamp, phrase
// id) and grouped per node in time order — the representation all three
// Desh phases consume (Sec 3.1: "the phrases with timestamps pertaining to
// specific nodes are separated").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "logs/node_id.hpp"
#include "logs/record.hpp"
#include "logs/vocab.hpp"

namespace desh::chains {

struct ParsedEvent {
  double timestamp = 0;
  std::uint32_t phrase = logs::PhraseVocab::kUnknownId;
};

struct ParsedLog {
  std::unordered_map<logs::NodeId, std::vector<ParsedEvent>> by_node;
  std::size_t event_count = 0;

  /// Nodes in a deterministic (sorted) order — unordered_map iteration
  /// order must never influence training or evaluation results.
  std::vector<logs::NodeId> sorted_nodes() const;
};

/// Parses `corpus` against `vocab`. With `grow_vocab` set, unseen templates
/// are added (training pass); otherwise they encode to kUnknownId (test
/// pass, so inference never sees ids the models were not trained on).
ParsedLog parse_corpus(const logs::LogCorpus& corpus, logs::PhraseVocab& vocab,
                       bool grow_vocab);

}  // namespace desh::chains
