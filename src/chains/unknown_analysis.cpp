#include "chains/unknown_analysis.hpp"

#include <unordered_map>

#include "logs/phrase_catalog.hpp"
#include "logs/template_miner.hpp"

namespace desh::chains {

std::vector<UnknownPhraseStat> UnknownPhraseAnalyzer::analyze(
    const logs::LogCorpus& corpus, const logs::GroundTruth& truth) {
  const logs::PhraseCatalog& catalog = logs::PhraseCatalog::instance();

  std::vector<UnknownPhraseStat> stats;
  std::unordered_map<std::string, std::size_t> stat_index;
  for (std::size_t idx : catalog.table8_phrases()) {
    const logs::CatalogPhrase& p = catalog.phrase(idx);
    stat_index[std::string(p.tmpl)] = stats.size();
    stats.push_back(UnknownPhraseStat{std::string(p.tmpl), 0, 0,
                                      *p.failure_contribution});
  }

  // Failure windows per node, sorted by start time for binary search.
  std::unordered_map<logs::NodeId, std::vector<std::pair<double, double>>>
      windows;
  for (const logs::FailureEvent& f : truth.failures)
    windows[f.node].emplace_back(f.start_time - 1.0, f.terminal_time + 1.0);

  for (const logs::LogRecord& record : corpus) {
    const std::string tmpl = logs::TemplateMiner::extract(record.message);
    auto it = stat_index.find(tmpl);
    if (it == stat_index.end()) continue;
    UnknownPhraseStat& stat = stats[it->second];
    ++stat.total;
    auto wit = windows.find(record.node);
    if (wit == windows.end()) continue;
    for (const auto& [start, end] : wit->second) {
      if (record.timestamp >= start && record.timestamp <= end) {
        ++stat.in_failures;
        break;
      }
    }
  }
  return stats;
}

}  // namespace desh::chains
