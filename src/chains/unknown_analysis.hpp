// Unknown-phrase analysis (Sec 4.3, Table 8, Fig 9): for each Unknown
// phrase, what fraction of its occurrences belongs to a node-failure chain?
// The paper uses this to show that anomalous-looking messages (software
// traps, critical hardware errors) frequently do NOT lead to node failures
// (Observations 5 and 6).
#pragma once

#include <string>
#include <vector>

#include "logs/generator.hpp"
#include "logs/record.hpp"

namespace desh::chains {

struct UnknownPhraseStat {
  std::string tmpl;             // static template
  std::size_t total = 0;        // occurrences in the corpus
  std::size_t in_failures = 0;  // occurrences inside a failure chain window
  double paper_contribution = 0;  // Table 8 column 3 (fraction)

  double measured_contribution() const {
    return total == 0 ? 0.0
                      : static_cast<double>(in_failures) /
                            static_cast<double>(total);
  }
};

class UnknownPhraseAnalyzer {
 public:
  /// Computes Table 8 / Fig 9 for the twelve calibrated phrases: an
  /// occurrence counts as "in a failure chain" when it falls on a failing
  /// node within [chain start, terminal] of a ground-truth failure.
  static std::vector<UnknownPhraseStat> analyze(
      const logs::LogCorpus& corpus, const logs::GroundTruth& truth);
};

}  // namespace desh::chains
