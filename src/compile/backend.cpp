#include "compile/backend.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "compile/emitter.hpp"
#include "compile/vm.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::compile {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

CompiledBackend::CompiledBackend(const nn::ChainModel& chain,
                                 const nn::PhraseModel* phrase,
                                 Program program)
    : chain_(&chain),
      program_(std::move(program)),
      vm_(program_),
      phrase_ref_(nullptr, phrase) {
  const nn::ChainModelConfig& config = chain.config();
  util::require(program_.vocab == config.vocab_size &&
                    program_.embed_dim == config.embed_dim &&
                    program_.hidden == config.hidden_size &&
                    program_.num_layers == config.num_layers,
                "CompiledBackend: program dims do not match the chain model");
}

std::string_view CompiledBackend::name() const {
  return program_.quant == core::QuantMode::kNone ? "compiled"
                                                  : "compiled+quantized";
}

const nn::ChainModelConfig& CompiledBackend::chain_config() const {
  return chain_->config();
}

std::vector<nn::ChainStepScore> CompiledBackend::score_sequence(
    const nn::ChainSequence& sequence, std::size_t min_pos) const {
  min_pos = std::max<std::size_t>(min_pos, 1);
  std::vector<nn::ChainStepScore> out;
  if (sequence.size() < min_pos + 1) return out;

  const Vm& vm = vm_;
  std::vector<float> arena = vm.make_arena();
  const std::size_t V = program_.vocab;
  const float time_weight = program_.time_weight;
  out.reserve(sequence.size() - min_pos);
  for (std::size_t t = min_pos; t < sequence.size(); ++t) {
    // Same windowing as the reference walk: fresh state, then the last
    // min(t, history) context steps.
    const std::size_t ctx = std::min(t, program_.history);
    vm.reset(arena);
    for (std::size_t i = t - ctx; i < t; ++i)
      vm.step(arena, sequence[i].dt_norm, sequence[i].phrase);
    const std::span<const float> pred = vm.run_head(arena);

    const nn::ChainStep& actual = sequence[t];
    nn::ChainStepScore s;
    s.position = t;
    s.predicted_dt =
        static_cast<float>(nn::ChainModel::denormalize_dt(pred[0]));
    s.predicted_phrase =
        static_cast<std::uint32_t>(tensor::argmax(pred.subspan(1, V)));
    const float dt_err = pred[0] - actual.dt_norm;
    s.score = time_weight * dt_err * dt_err +
              (s.predicted_phrase == actual.phrase ? 0.0f : 1.0f);
    out.push_back(s);
  }
  return out;
}

std::vector<std::vector<nn::ChainStepScore>> CompiledBackend::score_sequences(
    std::span<const nn::ChainSequence* const> sequences,
    std::size_t min_pos) const {
  std::vector<std::vector<nn::ChainStepScore>> out(sequences.size());
  if (sequences.empty()) return out;
  // Contract parity with the reference engine: batches are rectangular.
  const std::size_t L = sequences.front()->size();
  for (const nn::ChainSequence* seq : sequences)
    util::require(seq->size() == L,
                  "CompiledBackend::score_sequences: ragged batch");
  // Each row goes through the identical single-row VM path, so batch output
  // is bit-identical to per-row output — the replay-equivalence guarantee.
  for (std::size_t w = 0; w < sequences.size(); ++w)
    out[w] = score_sequence(*sequences[w], min_pos);
  return out;
}

std::vector<float> CompiledBackend::predict_distribution(
    std::span<const std::uint32_t> prefix) const {
  return phrase_ref_.predict_distribution(prefix);
}

std::vector<std::uint32_t> CompiledBackend::predict_steps(
    std::span<const std::uint32_t> prefix, std::size_t steps) const {
  return phrase_ref_.predict_steps(prefix, steps);
}

double CompiledBackend::evaluate_topg(
    std::span<const std::vector<std::uint32_t>> windows, std::size_t history,
    std::size_t g) const {
  return phrase_ref_.evaluate_topg(windows, history, g);
}

double mean_score_delta(const nn::InferenceBackend& a,
                        const nn::InferenceBackend& b,
                        std::span<const nn::ChainSequence> sequences) {
  double acc = 0.0;
  std::size_t n = 0;
  for (const nn::ChainSequence& seq : sequences) {
    const std::vector<nn::ChainStepScore> sa = a.score_sequence(seq);
    const std::vector<nn::ChainStepScore> sb = b.score_sequence(seq);
    util::require(sa.size() == sb.size(),
                  "compile::mean_score_delta: engines scored different "
                  "position counts");
    for (std::size_t i = 0; i < sa.size(); ++i) {
      acc += std::fabs(static_cast<double>(sa[i].score) -
                       static_cast<double>(sb[i].score));
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

core::Expected<std::shared_ptr<const nn::InferenceBackend>> compile_backend(
    const nn::ChainModel& chain, const nn::PhraseModel* phrase,
    const core::CompileConfig& config,
    std::span<const nn::ChainSequence> calibration) {
  if (config.backend == core::BackendKind::kReference) {
    if (config.quant != core::QuantMode::kNone)
      return core::Error{
          core::ErrorCode::kInvalidConfig,
          "compile.quant: " + std::string(core::to_string(config.quant)) +
              " quantization requires compile.backend = compiled"};
    return std::shared_ptr<const nn::InferenceBackend>(
        std::make_shared<nn::ReferenceBackend>(&chain, phrase));
  }

  auto& reg = obs::registry();
  const auto emit_start = std::chrono::steady_clock::now();
  Program program = emit_program(chain, config.quant);
  reg.histogram(obs::kCompileEmitSeconds).observe(seconds_since(emit_start));
  reg.counter(obs::kCompileProgramsTotal).add(1);
  reg.gauge(obs::kCompileProgramOps)
      .set(static_cast<double>(program.num_ops()));
  reg.gauge(obs::kCompilePackedBytes)
      .set(static_cast<double>(program.packed_bytes()));

  if (config.quant != core::QuantMode::kNone) {
    reg.counter(obs::kCompileQuantizedTotal).add(1);

    // Calibration: replay up to calibration_records sequences through both
    // engines and gate on the mean absolute score delta.
    const std::size_t take =
        std::min(calibration.size(), config.calibration_records);
    const auto cal_start = std::chrono::steady_clock::now();
    double delta = 0.0;
    bool certified = false;
    if (take > 0) {
      const nn::ReferenceBackend reference(chain);
      const CompiledBackend candidate(chain, phrase, program);
      delta = mean_score_delta(reference, candidate,
                               calibration.subspan(0, take));
      certified = delta <= config.max_accuracy_delta;
    }
    reg.histogram(obs::kCompileCalibrationSeconds)
        .observe(seconds_since(cal_start));
    reg.gauge(obs::kCompileCalibrationDelta).set(delta);

    if (!certified) {
      reg.counter(obs::kCompileCalibrationRejectsTotal).add(1);
      const std::string why =
          take == 0
              ? "no calibration sequences available"
              : "mean score delta " + std::to_string(delta) +
                    " exceeds compile.max_accuracy_delta " +
                    std::to_string(config.max_accuracy_delta);
      if (!config.fallback_on_reject)
        return core::Error{
            core::ErrorCode::kUnavailable,
            "compile.quant: " + std::string(core::to_string(config.quant)) +
                " program rejected by the calibration gate (" + why + ")"};
      // Fall back to the fp32 compiled program: serving stays fast and the
      // reject is visible in desh_compile_calibration_rejects_total.
      program = emit_program(chain, core::QuantMode::kNone);
      reg.counter(obs::kCompileProgramsTotal).add(1);
    }
  }

  return std::shared_ptr<const nn::InferenceBackend>(
      std::make_shared<CompiledBackend>(chain, phrase, std::move(program)));
}

}  // namespace desh::compile
