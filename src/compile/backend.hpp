// compile::CompiledBackend + compile_backend: the compiled engines behind
// the nn::InferenceBackend seam.
//
// CompiledBackend scores failure chains through the VM (compile/vm) over a
// pre-packed Program; the phrase-LM surface (phase 1 / DeepLog) delegates to
// the reference walk, which is off the serving hot path. Batched scoring
// loops each row through the same single-row VM, so batch results are
// bit-identical to single-row results by construction — the serve-vs-observe
// replay-equivalence contract holds on compiled engines for free.
//
// compile_backend is the validated factory every consumer goes through
// (DeshPipeline::make_backend wraps it): it emits the program, runs the
// quantization calibration pass against the reference engine, applies the
// accuracy-delta gate from core::CompileConfig, and records the
// desh_compile_* metrics. Callers validate the CompileConfig first
// (DeshConfig::validate / MonitorConfig::validate) — the factory re-checks
// only what it cannot proceed without.
#pragma once

#include <memory>
#include <span>

#include "compile/program.hpp"
#include "compile/vm.hpp"
#include "core/config.hpp"
#include "core/expected.hpp"
#include "nn/inference_backend.hpp"

namespace desh::compile {

class CompiledBackend final : public nn::InferenceBackend {
 public:
  /// Borrows the models (chain required, phrase optional), owns the program.
  /// The program must have been emitted from `chain` (same dims).
  CompiledBackend(const nn::ChainModel& chain, const nn::PhraseModel* phrase,
                  Program program);
  // vm_ borrows program_; copying would leave it aimed at the original.
  CompiledBackend(const CompiledBackend&) = delete;
  CompiledBackend& operator=(const CompiledBackend&) = delete;

  std::string_view name() const override;

  using nn::InferenceBackend::score_sequence;
  std::vector<nn::ChainStepScore> score_sequence(
      const nn::ChainSequence& sequence, std::size_t min_pos) const override;
  std::vector<std::vector<nn::ChainStepScore>> score_sequences(
      std::span<const nn::ChainSequence* const> sequences,
      std::size_t min_pos) const override;
  const nn::ChainModelConfig& chain_config() const override;

  std::vector<float> predict_distribution(
      std::span<const std::uint32_t> prefix) const override;
  std::vector<std::uint32_t> predict_steps(
      std::span<const std::uint32_t> prefix, std::size_t steps) const override;
  double evaluate_topg(std::span<const std::vector<std::uint32_t>> windows,
                       std::size_t history, std::size_t g) const override;

  const Program& program() const { return program_; }

 private:
  const nn::ChainModel* chain_;
  Program program_;
  Vm vm_;  // built once at compile time; must be declared after program_
  nn::ReferenceBackend phrase_ref_;  // phrase-LM surface delegation
};

/// Mean absolute per-step score delta between two engines over the given
/// sequences (the calibration statistic; also what bench_compile reports).
/// Sequences too short to score contribute nothing; no scored step at all
/// returns 0 for equal emptiness.
double mean_score_delta(const nn::InferenceBackend& a,
                        const nn::InferenceBackend& b,
                        std::span<const nn::ChainSequence> sequences);

/// Builds the engine selected by `config`:
///   kReference            -> nn::ReferenceBackend over the models;
///   kCompiled             -> CompiledBackend over an fp32 program;
///   kCompiled + quantized -> quantized program, calibrated over up to
///     config.calibration_records of `calibration` against the reference
///     engine; a delta above config.max_accuracy_delta rejects the program
///     (falls back to fp32 compiled, or errors in strict mode).
/// Errors (never throws): invalid backend/quant combination, or a strict
/// calibration rejection (kUnavailable with the measured delta).
core::Expected<std::shared_ptr<const nn::InferenceBackend>> compile_backend(
    const nn::ChainModel& chain, const nn::PhraseModel* phrase,
    const core::CompileConfig& config,
    std::span<const nn::ChainSequence> calibration);

}  // namespace desh::compile
