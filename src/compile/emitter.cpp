#include "compile/emitter.hpp"

#include <span>
#include <vector>

#include "compile/quant.hpp"
#include "tensor/matrix.hpp"

namespace desh::compile {

namespace {

/// Quantizes the already-packed fp32 rows in place of keeping them: the
/// fp32 staging vector is dropped after encoding.
template <typename Packed>
void encode_packed(Packed& p, std::vector<float>&& staged,
                   std::size_t rows, std::size_t cols, core::QuantMode quant) {
  switch (quant) {
    case core::QuantMode::kNone:
      p.rows = std::move(staged);
      return;
    case core::QuantMode::kInt8: {
      p.q8.resize(rows * cols);
      p.scales.resize(rows);
      for (std::size_t j = 0; j < rows; ++j)
        p.scales[j] = quantize_row(
            std::span<const float>(staged.data() + j * cols, cols),
            std::span<std::int8_t>(p.q8.data() + j * cols, cols));
      return;
    }
    case core::QuantMode::kInt16: {
      p.q16.resize(rows * cols);
      p.scales.resize(rows);
      for (std::size_t j = 0; j < rows; ++j)
        p.scales[j] = quantize_row(
            std::span<const float>(staged.data() + j * cols, cols),
            std::span<std::int16_t>(p.q16.data() + j * cols, cols));
      return;
    }
  }
}

OpCode lstm_step_op(core::QuantMode quant) {
  switch (quant) {
    case core::QuantMode::kInt8: return OpCode::kLstmStepQ8;
    case core::QuantMode::kInt16: return OpCode::kLstmStepQ16;
    default: return OpCode::kLstmStepF32;
  }
}

OpCode head_op(core::QuantMode quant) {
  switch (quant) {
    case core::QuantMode::kInt8: return OpCode::kHeadQ8;
    case core::QuantMode::kInt16: return OpCode::kHeadQ16;
    default: return OpCode::kHeadF32;
  }
}

}  // namespace

Program emit_program(const nn::ChainModel& model, core::QuantMode quant) {
  const nn::ChainModelConfig& config = model.config();
  Program p;
  p.quant = quant;
  p.embed_dim = config.embed_dim;
  p.input_width = 1 + config.embed_dim;
  p.hidden = config.hidden_size;
  p.num_layers = config.num_layers;
  p.vocab = config.vocab_size;
  p.head_out = 1 + config.vocab_size;
  p.history = config.history;
  p.time_weight = config.time_weight;

  // Embedding table, fp32 (quantizing it buys little: one row per step vs
  // the 4H GEMV rows, and dt/embedding inputs feed every downstream gate).
  p.embed.resize(p.vocab * p.embed_dim);
  for (std::size_t id = 0; id < p.vocab; ++id) {
    std::span<const float> v =
        model.embedding().vector(static_cast<std::uint32_t>(id));
    for (std::size_t c = 0; c < p.embed_dim; ++c)
      p.embed[id * p.embed_dim + c] = v[c];
  }

  // LSTM layers, packed input-row-major: packed row k holds the 4H gate
  // weights of input element k, [wx rows | wh rows] stacked. That is exactly
  // the training layout ((in x 4H) and (H x 4H) row-major), so packing is a
  // straight copy — and the VM's saxpy sweep walks each 4H-wide row
  // contiguously with no reduction dependency (compile/vm.cpp).
  p.layers.resize(p.num_layers);
  for (std::size_t l = 0; l < p.num_layers; ++l) {
    const nn::LstmLayer& layer = model.stack().layer(l);
    const tensor::Matrix& wx = layer.wx();
    const tensor::Matrix& wh = layer.wh();
    const std::size_t in_w = layer.input_size();
    const std::size_t H = layer.hidden_size();
    PackedLayer& out = p.layers[l];
    out.in_width = in_w;
    out.hidden = H;
    std::vector<float> staged((in_w + H) * 4 * H);
    for (std::size_t k = 0; k < in_w; ++k)
      for (std::size_t j = 0; j < 4 * H; ++j)
        staged[k * 4 * H + j] = wx(k, j);
    for (std::size_t k = 0; k < H; ++k)
      for (std::size_t j = 0; j < 4 * H; ++j)
        staged[(in_w + k) * 4 * H + j] = wh(k, j);
    out.bias.resize(4 * H);
    for (std::size_t j = 0; j < 4 * H; ++j) out.bias[j] = layer.bias()(0, j);
    encode_packed(out, std::move(staged), in_w + H, 4 * H, quant);
  }

  // Head: in_width rows of out_width, again the training layout of the
  // (H x 1+V) weight verbatim.
  {
    const tensor::Matrix& w = model.head().weight();
    const tensor::Matrix& b = model.head().bias();
    p.head.in_width = p.hidden;
    p.head.out_width = p.head_out;
    std::vector<float> staged(p.hidden * p.head_out);
    for (std::size_t k = 0; k < p.hidden; ++k)
      for (std::size_t j = 0; j < p.head_out; ++j)
        staged[k * p.head_out + j] = w(k, j);
    p.head.bias.resize(p.head_out);
    for (std::size_t j = 0; j < p.head_out; ++j) p.head.bias[j] = b(0, j);
    encode_packed(p.head, std::move(staged), p.hidden, p.head_out, quant);
  }

  p.reset_ops = {Op{OpCode::kResetState, 0}};
  p.step_ops.clear();
  p.step_ops.push_back(Op{OpCode::kLoadInput, 0});
  for (std::size_t l = 0; l < p.num_layers; ++l)
    p.step_ops.push_back(
        Op{lstm_step_op(quant), static_cast<std::uint32_t>(l)});
  p.head_ops = {Op{head_op(quant), 0}};
  return p;
}

}  // namespace desh::compile
