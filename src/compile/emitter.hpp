// compile::emit_program: the load-time model compiler. Lowers a fixed-shape
// nn::ChainModel — embedding + stacked LSTM + linear head — into a flat
// compile::Program the VM executes:
//
//   - weights are re-packed per gate row: row j of layer l becomes the
//     contiguous [wx^T[j] | wh^T[j]] the fused GEMV walks linearly (the
//     training layout strides columns 4H apart, which is what makes the
//     reference walk slow at batch 1);
//   - biases and the embedding table are copied fp32;
//   - under kInt8/kInt16 each packed row is symmetrically quantized with one
//     fp32 scale per row (compile/quant);
//   - the op lists are emitted from the model shape: one kLoadInput plus one
//     lstm-step op per layer for a context step, one head op for the read.
//
// Emission is pure (no metrics, no I/O): the compile_backend factory owns
// timing, calibration and telemetry.
#pragma once

#include "compile/program.hpp"
#include "core/config.hpp"
#include "nn/chain_model.hpp"

namespace desh::compile {

/// Compiles `model` into a self-contained program at the given quantization
/// mode. Deterministic: equal weights + mode produce byte-identical
/// to_text() output (the golden-file contract).
Program emit_program(const nn::ChainModel& model, core::QuantMode quant);

}  // namespace desh::compile
