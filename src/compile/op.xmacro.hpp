// The complete op table of the compiled-inference VM, as an x-macro so the
// opcode enum, the mnemonic table and the text-format parser stay in sync by
// construction (one row per op; adding an op without a mnemonic is a compile
// error at every expansion site).
//
//   DESH_COMPILE_OP(name, mnemonic)
//
// name     — enumerator in compile::OpCode (k-prefixed, ClangTidy style)
// mnemonic — stable token used by Program::to_text / from_text; renaming a
//            mnemonic breaks every serialized program, so treat them as a
//            persistence format (see FORMATS.md conventions).
//
// Op vocabulary: a program is three straight-line op lists (reset / step /
// head). Steps carry the layer index in Op::arg; everything else ignores it.
#ifndef DESH_COMPILE_OP_LIST
#define DESH_COMPILE_OP_LIST(X)                                        \
  /* zero every per-layer (h, c) state pair in the arena */            \
  X(kResetState, "reset_state")                                        \
  /* build the step input row [dt_norm | embed(phrase)] in the arena */ \
  X(kLoadInput, "load_input")                                          \
  /* fused gate GEMV + activations + cell update, fp32 packed rows */  \
  X(kLstmStepF32, "lstm_step_f32")                                     \
  /* same, int8 symmetric per-row quantized packed rows */             \
  X(kLstmStepQ8, "lstm_step_q8")                                       \
  /* same, int16 symmetric per-row quantized packed rows */            \
  X(kLstmStepQ16, "lstm_step_q16")                                     \
  /* output head GEMV from the top layer's hidden row, fp32 */         \
  X(kHeadF32, "head_f32")                                              \
  /* output head GEMV, int8 quantized */                               \
  X(kHeadQ8, "head_q8")                                                \
  /* output head GEMV, int16 quantized */                              \
  X(kHeadQ16, "head_q16")
#endif  // DESH_COMPILE_OP_LIST
