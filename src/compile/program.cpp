#include "compile/program.hpp"

#include <bit>
#include <cstdint>
#include <sstream>

namespace desh::compile {

namespace {

constexpr std::string_view kMagic = "desh-compile-program";
constexpr std::string_view kVersion = "v1";

// Floats travel as the hex of their IEEE-754 bit pattern so the text round
// trip is bit-exact (decimal formatting would round and break the golden
// test as well as replay equivalence across save/load).
std::string hex32(float f) {
  static const char* digits = "0123456789abcdef";
  std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  std::string out(8, '0');
  for (std::size_t i = 8; i-- > 0; bits >>= 4) out[i] = digits[bits & 0xF];
  return out;
}

/// Token-stream reader with section-tagged error reporting: every parse
/// failure names the section being read, so a truncated or hand-mangled
/// program file is diagnosable without a hex dump.
struct Reader {
  std::istringstream in;
  std::string section = "header";
  core::Error err;
  bool failed = false;

  explicit Reader(std::string_view text) : in(std::string(text)) {}

  core::Error fail(const std::string& what) {
    if (!failed) {
      failed = true;
      err = core::Error{core::ErrorCode::kInvalidArgument,
                        "compile::Program::from_text: " + section + ": " +
                            what};
    }
    return err;
  }

  std::string token() {
    std::string t;
    if (failed) return t;
    if (!(in >> t)) fail("unexpected end of input");
    return t;
  }

  void expect(std::string_view keyword) {
    const std::string t = token();
    if (!failed && t != keyword)
      fail("expected '" + std::string(keyword) + "', got '" + t + "'");
  }

  std::size_t size() {
    const std::string t = token();
    if (failed) return 0;
    std::size_t pos = 0;
    unsigned long long v = 0;
    try {
      v = std::stoull(t, &pos);
    } catch (...) {
      pos = 0;
    }
    if (pos != t.size()) {
      fail("expected unsigned integer, got '" + t + "'");
      return 0;
    }
    return static_cast<std::size_t>(v);
  }

  long long integer() {
    const std::string t = token();
    if (failed) return 0;
    std::size_t pos = 0;
    long long v = 0;
    try {
      v = std::stoll(t, &pos);
    } catch (...) {
      pos = 0;
    }
    if (pos != t.size()) {
      fail("expected integer, got '" + t + "'");
      return 0;
    }
    return v;
  }

  float f32() {
    const std::string t = token();
    if (failed) return 0.0f;
    if (t.size() != 8) {
      fail("expected 8 hex digits, got '" + t + "'");
      return 0.0f;
    }
    std::uint32_t bits = 0;
    for (char c : t) {
      std::uint32_t d = 0;
      if (c >= '0' && c <= '9') d = static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') d = static_cast<std::uint32_t>(c - 'a') + 10;
      else {
        fail("expected 8 hex digits, got '" + t + "'");
        return 0.0f;
      }
      bits = (bits << 4) | d;
    }
    return std::bit_cast<float>(bits);
  }
};

void write_f32s(std::ostringstream& out, const std::vector<float>& v) {
  for (std::size_t i = 0; i < v.size(); ++i)
    out << (i % 16 == 0 ? '\n' : ' ') << hex32(v[i]);
  out << '\n';
}

template <typename Int>
void write_ints(std::ostringstream& out, const std::vector<Int>& v) {
  for (std::size_t i = 0; i < v.size(); ++i)
    out << (i % 24 == 0 ? '\n' : ' ') << static_cast<long long>(v[i]);
  out << '\n';
}

void read_f32s(Reader& r, std::vector<float>& v, std::size_t n) {
  v.resize(n);
  for (std::size_t i = 0; i < n && !r.failed; ++i) v[i] = r.f32();
}

template <typename Int>
void read_ints(Reader& r, std::vector<Int>& v, std::size_t n) {
  v.resize(n);
  for (std::size_t i = 0; i < n && !r.failed; ++i) {
    const long long raw = r.integer();
    const Int cast = static_cast<Int>(raw);
    if (static_cast<long long>(cast) != raw) {
      r.fail("quantized code " + std::to_string(raw) + " out of range");
      return;
    }
    v[i] = cast;
  }
}

// Shared (de)serialization of the PackedLayer/PackedHead weight block:
// [bias] then, per quant mode, either fp32 rows or per-row "scale + codes".
template <typename Packed>
void write_packed(std::ostringstream& out, const Packed& p,
                  core::QuantMode quant, std::size_t rows, std::size_t cols) {
  out << "bias " << p.bias.size();
  write_f32s(out, p.bias);
  out << "rows " << rows << ' ' << cols;
  switch (quant) {
    case core::QuantMode::kNone:
      write_f32s(out, p.rows);
      break;
    case core::QuantMode::kInt8:
      out << "\nscales";
      write_f32s(out, p.scales);
      write_ints(out, p.q8);
      break;
    case core::QuantMode::kInt16:
      out << "\nscales";
      write_f32s(out, p.scales);
      write_ints(out, p.q16);
      break;
  }
}

template <typename Packed>
void read_packed(Reader& r, Packed& p, core::QuantMode quant,
                 std::size_t rows, std::size_t cols) {
  r.expect("bias");
  const std::size_t nbias = r.size();
  read_f32s(r, p.bias, nbias);
  r.expect("rows");
  const std::size_t got_rows = r.size();
  const std::size_t got_cols = r.size();
  if (!r.failed && (got_rows != rows || got_cols != cols)) {
    r.fail("packed shape " + std::to_string(got_rows) + "x" +
           std::to_string(got_cols) + " does not match dims " +
           std::to_string(rows) + "x" + std::to_string(cols));
    return;
  }
  switch (quant) {
    case core::QuantMode::kNone:
      read_f32s(r, p.rows, rows * cols);
      break;
    case core::QuantMode::kInt8:
      r.expect("scales");
      read_f32s(r, p.scales, rows);
      read_ints(r, p.q8, rows * cols);
      break;
    case core::QuantMode::kInt16:
      r.expect("scales");
      read_f32s(r, p.scales, rows);
      read_ints(r, p.q16, rows * cols);
      break;
  }
}

void write_ops(std::ostringstream& out, std::string_view keyword,
               const std::vector<Op>& ops) {
  out << keyword << ' ' << ops.size() << '\n';
  for (const Op& op : ops)
    out << mnemonic(op.code) << ' ' << op.arg << '\n';
}

void read_ops(Reader& r, std::string_view keyword, std::vector<Op>& ops) {
  r.section = std::string(keyword);
  r.expect(keyword);
  const std::size_t n = r.size();
  ops.clear();
  ops.reserve(n);
  for (std::size_t i = 0; i < n && !r.failed; ++i) {
    const std::string t = r.token();
    if (r.failed) return;
    core::Expected<OpCode> code = opcode_from_mnemonic(t);
    if (!code.ok()) {
      r.fail("unknown op mnemonic '" + t + "'");
      return;
    }
    Op op;
    op.code = code.value();
    op.arg = static_cast<std::uint32_t>(r.size());
    ops.push_back(op);
  }
}

}  // namespace

std::string_view mnemonic(OpCode code) {
  switch (code) {
#define DESH_COMPILE_OP(name, text) \
  case OpCode::name:                \
    return text;
    DESH_COMPILE_OP_LIST(DESH_COMPILE_OP)
#undef DESH_COMPILE_OP
  }
  return "?";
}

core::Expected<OpCode> opcode_from_mnemonic(std::string_view token) {
#define DESH_COMPILE_OP(name, text) \
  if (token == text) return OpCode::name;
  DESH_COMPILE_OP_LIST(DESH_COMPILE_OP)
#undef DESH_COMPILE_OP
  return core::Error{core::ErrorCode::kInvalidArgument,
                     "compile: unknown op mnemonic '" + std::string(token) +
                         "'"};
}

std::size_t Program::packed_bytes() const {
  auto block = [](const auto& p) {
    return p.rows.size() * sizeof(float) + p.q8.size() * sizeof(std::int8_t) +
           p.q16.size() * sizeof(std::int16_t) +
           p.scales.size() * sizeof(float) + p.bias.size() * sizeof(float);
  };
  std::size_t total = embed.size() * sizeof(float) + block(head);
  for (const PackedLayer& l : layers) total += block(l);
  return total;
}

std::string Program::to_text() const {
  std::ostringstream out;
  out << kMagic << ' ' << kVersion << '\n';
  out << "quant " << core::to_string(quant) << '\n';
  out << "dims input_width " << input_width << " embed_dim " << embed_dim
      << " hidden " << hidden << " layers " << num_layers << " vocab "
      << vocab << " head_out " << head_out << " history " << history << '\n';
  out << "time_weight " << hex32(time_weight) << '\n';
  out << "embed " << vocab << ' ' << embed_dim;
  write_f32s(out, embed);
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const PackedLayer& layer = layers[l];
    out << "layer " << l << " in_width " << layer.in_width << " hidden "
        << layer.hidden << '\n';
    write_packed(out, layer, quant, layer.in_width + layer.hidden,
                 4 * layer.hidden);
  }
  out << "head in_width " << head.in_width << " out_width " << head.out_width
      << '\n';
  write_packed(out, head, quant, head.in_width, head.out_width);
  write_ops(out, "reset_ops", reset_ops);
  write_ops(out, "step_ops", step_ops);
  write_ops(out, "head_ops", head_ops);
  out << "end\n";
  return out.str();
}

core::Expected<Program> Program::from_text(std::string_view text) {
  Reader r(text);
  Program p;

  r.expect(kMagic);
  const std::string version = r.token();
  if (!r.failed && version != kVersion)
    return core::Error{core::ErrorCode::kFormatVersion,
                       "compile::Program::from_text: unsupported version '" +
                           version + "' (expected " + std::string(kVersion) +
                           ")"};
  r.expect("quant");
  const std::string quant_token = r.token();
  if (!r.failed) {
    if (quant_token == "none") p.quant = core::QuantMode::kNone;
    else if (quant_token == "int8") p.quant = core::QuantMode::kInt8;
    else if (quant_token == "int16") p.quant = core::QuantMode::kInt16;
    else r.fail("unknown quant mode '" + quant_token + "'");
  }

  r.section = "dims";
  r.expect("dims");
  r.expect("input_width");
  p.input_width = r.size();
  r.expect("embed_dim");
  p.embed_dim = r.size();
  r.expect("hidden");
  p.hidden = r.size();
  r.expect("layers");
  p.num_layers = r.size();
  r.expect("vocab");
  p.vocab = r.size();
  r.expect("head_out");
  p.head_out = r.size();
  r.expect("history");
  p.history = r.size();
  r.expect("time_weight");
  p.time_weight = r.f32();
  if (!r.failed &&
      (p.input_width != 1 + p.embed_dim || p.head_out != 1 + p.vocab ||
       p.hidden == 0 || p.num_layers == 0 || p.vocab == 0 || p.history == 0))
    r.fail("inconsistent dims");
  if (r.failed) return r.err;

  r.section = "embed";
  r.expect("embed");
  const std::size_t ev = r.size();
  const std::size_t ee = r.size();
  if (!r.failed && (ev != p.vocab || ee != p.embed_dim))
    r.fail("embed shape does not match dims");
  read_f32s(r, p.embed, p.vocab * p.embed_dim);

  p.layers.resize(p.num_layers);
  for (std::size_t l = 0; l < p.num_layers && !r.failed; ++l) {
    r.section = "layer " + std::to_string(l);
    r.expect("layer");
    const std::size_t idx = r.size();
    if (!r.failed && idx != l) r.fail("layer index out of order");
    PackedLayer& layer = p.layers[l];
    r.expect("in_width");
    layer.in_width = r.size();
    r.expect("hidden");
    layer.hidden = r.size();
    const std::size_t want_in = l == 0 ? p.input_width : p.hidden;
    if (!r.failed && (layer.in_width != want_in || layer.hidden != p.hidden))
      r.fail("layer shape does not match dims");
    read_packed(r, layer, p.quant, layer.in_width + layer.hidden,
                4 * layer.hidden);
    if (!r.failed && layer.bias.size() != 4 * layer.hidden)
      r.fail("bias width does not match 4*hidden");
  }

  r.section = "head";
  r.expect("head");
  r.expect("in_width");
  p.head.in_width = r.size();
  r.expect("out_width");
  p.head.out_width = r.size();
  if (!r.failed &&
      (p.head.in_width != p.hidden || p.head.out_width != p.head_out))
    r.fail("head shape does not match dims");
  read_packed(r, p.head, p.quant, p.head.in_width, p.head.out_width);
  if (!r.failed && p.head.bias.size() != p.head.out_width)
    r.fail("head bias width does not match out_width");

  read_ops(r, "reset_ops", p.reset_ops);
  read_ops(r, "step_ops", p.step_ops);
  read_ops(r, "head_ops", p.head_ops);
  for (const std::vector<Op>* ops : {&p.reset_ops, &p.step_ops, &p.head_ops})
    for (const Op& op : *ops)
      if (!r.failed && (op.code == OpCode::kLstmStepF32 ||
                        op.code == OpCode::kLstmStepQ8 ||
                        op.code == OpCode::kLstmStepQ16) &&
          op.arg >= p.num_layers)
        r.fail("lstm step arg " + std::to_string(op.arg) +
               " out of range (layers = " + std::to_string(p.num_layers) +
               ")");

  r.section = "trailer";
  r.expect("end");
  if (r.failed) return r.err;
  return p;
}

}  // namespace desh::compile
