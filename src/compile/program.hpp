// compile::Program: the flat, self-contained artifact the model compiler
// (compile/emitter) lowers a fixed-shape ChainModel into, and the only thing
// the VM (compile/vm) ever executes.
//
// A program owns everything inference needs — pre-packed weights, the fp32
// embedding table, dims, and three straight-line op lists — so it can be
// serialized to text, diffed in a golden test, and executed without touching
// the nn graph it came from. Weights are packed input-row-major: packed row
// k holds the full output row (4H gate pre-activations, or 1+V head outputs)
// of input element k, which is the training graph's own layout, so the VM's
// inner loop is a contiguous saxpy sweep with no serial reduction — the
// structure compilers vectorize without fast-math (see compile/vm.cpp).
// Quantized modes (core::QuantMode) replace the fp32 rows with symmetric
// per-row int8/int16 codes plus one fp32 scale per packed (input) row, which
// the VM folds into the activation; biases and the embedding table always
// stay fp32.
//
// The text format round-trips bit-exactly: floats are serialized as the hex
// of their IEEE bit pattern, so to_text(from_text(t)) == t and a re-loaded
// program computes bit-identical results. Treat mnemonics and section
// keywords as a persistence format.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "compile/op.xmacro.hpp"
#include "core/config.hpp"
#include "core/expected.hpp"

namespace desh::compile {

enum class OpCode : std::uint8_t {
#define DESH_COMPILE_OP(name, mnemonic) name,
  DESH_COMPILE_OP_LIST(DESH_COMPILE_OP)
#undef DESH_COMPILE_OP
};

/// Stable text token for one opcode (the x-macro mnemonic column).
std::string_view mnemonic(OpCode code);
/// Inverse of mnemonic(); error on an unknown token.
core::Expected<OpCode> opcode_from_mnemonic(std::string_view token);

/// One VM instruction. LSTM step ops carry the layer index in `arg`;
/// every other op ignores it.
struct Op {
  OpCode code = OpCode::kResetState;
  std::uint32_t arg = 0;
};

/// One LSTM layer's weights, packed for the fused gate sweep:
/// (in_width + hidden) rows of width 4H — packed row k is input element k's
/// gate weights, [wx rows | wh rows] stacked in training-graph order.
/// Exactly one of {rows, q8, q16} is populated, matching the program's
/// quant mode.
struct PackedLayer {
  std::size_t in_width = 0;  // 1+E for layer 0, H for deeper layers
  std::size_t hidden = 0;
  std::vector<float> rows;         // fp32 packed rows (quant = kNone)
  std::vector<std::int8_t> q8;     // int8 codes (quant = kInt8)
  std::vector<std::int16_t> q16;   // int16 codes (quant = kInt16)
  std::vector<float> scales;       // one per packed row (quantized modes)
  std::vector<float> bias;         // 4H, always fp32
};

/// The output head, packed the same way: in_width rows of out_width (the
/// training graph's (H x 1+V) weight verbatim).
struct PackedHead {
  std::size_t in_width = 0;   // H
  std::size_t out_width = 0;  // 1 + vocab
  std::vector<float> rows;
  std::vector<std::int8_t> q8;
  std::vector<std::int16_t> q16;
  std::vector<float> scales;
  std::vector<float> bias;
};

struct Program {
  core::QuantMode quant = core::QuantMode::kNone;

  // Model dims + the scoring operating point, copied from ChainModelConfig
  // so the program scores without the model.
  std::size_t input_width = 0;  // 1 + embed_dim
  std::size_t embed_dim = 0;
  std::size_t hidden = 0;
  std::size_t num_layers = 0;
  std::size_t vocab = 0;
  std::size_t head_out = 0;  // 1 + vocab
  std::size_t history = 0;
  float time_weight = 0.0f;

  std::vector<float> embed;  // vocab x embed_dim, row-major, always fp32
  std::vector<PackedLayer> layers;
  PackedHead head;

  // Straight-line op lists: reset once per scored position, step once per
  // context element, head once to read the prediction.
  std::vector<Op> reset_ops;
  std::vector<Op> step_ops;
  std::vector<Op> head_ops;

  // --- scratch-arena layout (one flat float buffer per scoring call) ------
  // [ x: input_width | gates: 4H | pred: head_out | (h,c) x num_layers
  //   | act: staging for one packed sweep's activations ]
  std::size_t x_offset() const { return 0; }
  std::size_t gates_offset() const { return input_width; }
  std::size_t pred_offset() const { return input_width + 4 * hidden; }
  std::size_t state_offset() const { return pred_offset() + head_out; }
  std::size_t h_offset(std::size_t layer) const {
    return state_offset() + layer * 2 * hidden;
  }
  std::size_t c_offset(std::size_t layer) const {
    return h_offset(layer) + hidden;
  }
  /// Contiguous staging for a sweep's per-input-row activations ([x | h] for
  /// a gate step, with quant scales folded in), sized for the widest layer.
  std::size_t act_offset() const {
    return state_offset() + num_layers * 2 * hidden;
  }
  std::size_t act_size() const {
    return std::max(input_width, hidden) + hidden;
  }
  std::size_t arena_size() const { return act_offset() + act_size(); }

  std::size_t num_ops() const {
    return reset_ops.size() + step_ops.size() + head_ops.size();
  }
  /// Bytes of packed parameter data (weights + scales + biases + embedding).
  std::size_t packed_bytes() const;

  /// Serializes the whole program; floats as IEEE-754 bit-pattern hex so the
  /// round trip is bit-exact (golden-file friendly).
  std::string to_text() const;
  /// Parses to_text() output. All malformations are reported as errors with
  /// the offending section, never as UB at execution time.
  static core::Expected<Program> from_text(std::string_view text);
};

}  // namespace desh::compile
