#include "compile/quant.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace desh::compile {

namespace {

template <typename Int>
float quantize_row_impl(std::span<const float> w, std::span<Int> q,
                        float limit) {
  util::require(w.size() == q.size(),
                "compile::quantize_row: code span size mismatch");
  float max_abs = 0.0f;
  for (float v : w) max_abs = std::max(max_abs, std::fabs(v));
  if (max_abs == 0.0f) {
    std::fill(q.begin(), q.end(), Int{0});
    return 0.0f;
  }
  const float scale = max_abs / limit;
  const float inv = limit / max_abs;
  for (std::size_t k = 0; k < w.size(); ++k) {
    // round-to-nearest; the clamp guards the max element, whose quotient can
    // land epsilon above `limit` after the inverse-scale multiply.
    const float code = std::nearbyint(w[k] * inv);
    q[k] = static_cast<Int>(std::clamp(code, -limit, limit));
  }
  return scale;
}

template <typename Int>
void dequantize_row_impl(std::span<const Int> q, float scale,
                         std::span<float> out) {
  util::require(q.size() == out.size(),
                "compile::dequantize_row: output span size mismatch");
  for (std::size_t k = 0; k < q.size(); ++k)
    out[k] = static_cast<float>(q[k]) * scale;
}

}  // namespace

float quantize_row(std::span<const float> w, std::span<std::int8_t> q) {
  return quantize_row_impl(w, q, 127.0f);
}

float quantize_row(std::span<const float> w, std::span<std::int16_t> q) {
  return quantize_row_impl(w, q, 32767.0f);
}

void dequantize_row(std::span<const std::int8_t> q, float scale,
                    std::span<float> out) {
  dequantize_row_impl(q, scale, out);
}

void dequantize_row(std::span<const std::int16_t> q, float scale,
                    std::span<float> out) {
  dequantize_row_impl(q, scale, out);
}

}  // namespace desh::compile
