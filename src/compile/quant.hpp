// Symmetric per-row weight quantization for the compiled-inference VM.
//
// Weight-only: activations, biases and the embedding table stay fp32, so the
// VM's arithmetic is `acc = (sum_k in[k] * q[k]) * scale + bias` — the codes
// are folded back through one fp32 scale per packed row. Symmetric (no zero
// point) because LSTM weight rows are centered by Xavier init; per-row
// because gate rows differ in dynamic range by orders of magnitude (the
// forget-gate block starts biased) and one tensor-wide scale would crush the
// quiet rows.
//
// Codec guarantee (fuzzed in test_compile): for every element,
//   |w - dequantize(quantize(w))| <= scale / 2 + O(limit * 2^-23) * scale,
// with scale = max|row| / limit — the ideal half-step bound plus the fp32
// rounding of the encode-side reciprocal (only material at int16) — and an
// all-zero row round-trips exactly (scale 0 encodes all-zero codes).
#pragma once

#include <cstdint>
#include <span>

namespace desh::compile {

/// Quantizes one packed row into int8 codes. Returns the row scale
/// (max|w| / 127; 0 for an all-zero row). q.size() must equal w.size().
float quantize_row(std::span<const float> w, std::span<std::int8_t> q);
/// Same codec at int16 precision (limit 32767).
float quantize_row(std::span<const float> w, std::span<std::int16_t> q);

/// Inverse mapping: out[k] = q[k] * scale. Exact for scale 0.
void dequantize_row(std::span<const std::int8_t> q, float scale,
                    std::span<float> out);
void dequantize_row(std::span<const std::int16_t> q, float scale,
                    std::span<float> out);

}  // namespace desh::compile
