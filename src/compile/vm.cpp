#include "compile/vm.hpp"

#include <algorithm>
#include <cstring>

#include "tensor/ops.hpp"
#include "util/error.hpp"

// Same ISA dispatch as tensor/ops.cpp: the kernels compile once per ISA
// level and resolve at load time (ifunc), so the build stays baseline x86-64
// while AVX-512/AVX2 machines get full-width vectors — without this the
// reference walk's cloned GEMM outruns the VM on wide machines.
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define DESH_ISA_CLONES __attribute__((target_clones("avx512f", "avx2", "default")))
#endif
#endif
#ifndef DESH_ISA_CLONES
#define DESH_ISA_CLONES
#endif

namespace desh::compile {

namespace {

// --- fused kernels --------------------------------------------------------
// Weights are packed input-row-major (one row per input element, outputs
// contiguous), so every kernel is a saxpy sweep: out[j] += a * row[j] over a
// contiguous output row. Unlike a dot-product reduction, that inner loop has
// no serial accumulator dependency, so the compiler vectorizes it without
// fast-math — the same structure as tensor::gemm_accumulate, which is what
// the reference walk spends its time in. The sweep processes four input
// rows per pass of the output row, quartering the accumulator's load/store
// traffic (which otherwise exceeds the weight traffic); the per-(j) addition
// order is the same as four sequential single-row passes, so unrolling does
// not change a single bit of the result. The gate kernels then finish the
// whole LSTM step (activations + cell update) in the same pass so no
// intermediate ever leaves the arena. Bodies that must vectorize inside a
// cloned caller are force-inlined (an out-of-line callee would drop back to
// the baseline ISA).

/// out += sum over m packed rows of act[k] * row_k. Weight element j of
/// packed row k sits at rows[k * n + j] (fp32) or is static_cast from the
/// quantized code at the same index; `act` carries any quant scale already
/// folded in. Skips zero activations like the reference GEMM does (fresh
/// zero state makes whole rows free).
template <typename W>
[[gnu::always_inline]] inline void sweep(const W* rows, const float* act,
                                         std::size_t m,
                                         float* __restrict out,
                                         std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= m; k += 4) {
    const float a0 = act[k], a1 = act[k + 1];
    const float a2 = act[k + 2], a3 = act[k + 3];
    if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
    const W* r0 = rows + k * n;
    const W* r1 = r0 + n;
    const W* r2 = r1 + n;
    const W* r3 = r2 + n;
    for (std::size_t j = 0; j < n; ++j) {
      float v = out[j];
      v += a0 * static_cast<float>(r0[j]);
      v += a1 * static_cast<float>(r1[j]);
      v += a2 * static_cast<float>(r2[j]);
      v += a3 * static_cast<float>(r3[j]);
      out[j] = v;
    }
  }
  for (; k < m; ++k) {
    const float a = act[k];
    if (a == 0.0f) continue;
    const W* row = rows + k * n;
    for (std::size_t j = 0; j < n; ++j)
      out[j] += a * static_cast<float>(row[j]);
  }
}

/// Finishes one LSTM step from the filled (4H) gate pre-activations: i,f,o
/// sigmoid, g tanh, then c = f.c + i.g and h = o.tanh(c), all in one loop.
[[gnu::always_inline]] inline void activate_and_update(float* gates, float* h,
                                                       float* c,
                                                       std::size_t H) {
  for (std::size_t j = 0; j < H; ++j) {
    const float i = tensor::fast_sigmoid(gates[j]);
    const float f = tensor::fast_sigmoid(gates[H + j]);
    const float g = tensor::fast_tanh(gates[2 * H + j]);
    const float o = tensor::fast_sigmoid(gates[3 * H + j]);
    c[j] = f * c[j] + i * g;
    h[j] = o * tensor::fast_tanh(c[j]);
  }
}

/// Stages [in | h] contiguously (gate sweeps span both blocks), folding the
/// per-input-row quant scales in when present.
[[gnu::always_inline]] inline void stage_act(const PackedLayer& L,
                                             const float* in, const float* h,
                                             float* act) {
  if (L.scales.empty()) {
    std::memcpy(act, in, L.in_width * sizeof(float));
    std::memcpy(act + L.in_width, h, L.hidden * sizeof(float));
    return;
  }
  for (std::size_t k = 0; k < L.in_width; ++k) act[k] = in[k] * L.scales[k];
  for (std::size_t k = 0; k < L.hidden; ++k)
    act[L.in_width + k] = h[k] * L.scales[L.in_width + k];
}

template <typename W>
[[gnu::always_inline]] inline void lstm_step_impl(const PackedLayer& L,
                                                  const W* rows,
                                                  const float* in, float* h,
                                                  float* c, float* gates,
                                                  float* act) {
  const std::size_t H = L.hidden;
  std::memcpy(gates, L.bias.data(), 4 * H * sizeof(float));
  stage_act(L, in, h, act);
  sweep(rows, act, L.in_width + H, gates, 4 * H);
  activate_and_update(gates, h, c, H);
}

DESH_ISA_CLONES
void lstm_step_f32(const PackedLayer& L, const float* in, float* h, float* c,
                   float* gates, float* act) {
  lstm_step_impl(L, L.rows.data(), in, h, c, gates, act);
}

// kLstmStepQ8 executes through the VM's widened int16 image (see Vm ctor),
// so both quantized step ops share this kernel.
DESH_ISA_CLONES
void lstm_step_q(const PackedLayer& L, const std::int16_t* rows,
                 const float* in, float* h, float* c, float* gates,
                 float* act) {
  lstm_step_impl(L, rows, in, h, c, gates, act);
}

template <typename W>
[[gnu::always_inline]] inline void head_impl(const PackedHead& Hd,
                                             const W* rows, const float* in,
                                             float* out, float* act) {
  std::memcpy(out, Hd.bias.data(), Hd.out_width * sizeof(float));
  const float* a = in;
  if (!Hd.scales.empty()) {
    for (std::size_t k = 0; k < Hd.in_width; ++k)
      act[k] = in[k] * Hd.scales[k];
    a = act;
  }
  sweep(rows, a, Hd.in_width, out, Hd.out_width);
}

DESH_ISA_CLONES
void head_f32(const PackedHead& Hd, const float* in, float* out, float* act) {
  head_impl(Hd, Hd.rows.data(), in, out, act);
}

DESH_ISA_CLONES
void head_q(const PackedHead& Hd, const std::int16_t* rows, const float* in,
            float* out, float* act) {
  head_impl(Hd, rows, in, out, act);
}

}  // namespace

namespace {

std::vector<std::int16_t> widen(const std::vector<std::int8_t>& q8) {
  return std::vector<std::int16_t>(q8.begin(), q8.end());
}

}  // namespace

Vm::Vm(const Program& program) : program_(&program) {
  // Validate once so exec() can index layers unchecked: layer args in
  // range, and every op's weight encoding matching the program's quant mode
  // (a q8 op on a non-int8 program would read an empty widened image).
  for (const std::vector<Op>* ops :
       {&program.reset_ops, &program.step_ops, &program.head_ops})
    for (const Op& op : *ops) {
      if (op.code == OpCode::kLstmStepF32 || op.code == OpCode::kLstmStepQ8 ||
          op.code == OpCode::kLstmStepQ16)
        util::require(op.arg < program.layers.size(),
                      "compile::Vm: lstm step layer arg out of range");
      const core::QuantMode want =
          op.code == OpCode::kLstmStepQ8 || op.code == OpCode::kHeadQ8
              ? core::QuantMode::kInt8
          : op.code == OpCode::kLstmStepQ16 || op.code == OpCode::kHeadQ16
              ? core::QuantMode::kInt16
              : core::QuantMode::kNone;
      const bool weighted = op.code != OpCode::kResetState &&
                            op.code != OpCode::kLoadInput;
      util::require(!weighted || want == program.quant,
                    "compile::Vm: op '" + std::string(mnemonic(op.code)) +
                        "' does not match program quant mode");
    }
  if (program.quant == core::QuantMode::kInt8) {
    wide_layers_.reserve(program.layers.size());
    for (const PackedLayer& layer : program.layers)
      wide_layers_.push_back(widen(layer.q8));
    wide_head_ = widen(program.head.q8);
  }
}

std::vector<float> Vm::make_arena() const {
  return std::vector<float>(program_->arena_size(), 0.0f);
}

void Vm::reset(std::span<float> arena) const {
  exec(program_->reset_ops, arena, 0.0f, 0);
}

void Vm::step(std::span<float> arena, float dt_norm,
              std::uint32_t phrase) const {
  exec(program_->step_ops, arena, dt_norm, phrase);
}

std::span<const float> Vm::run_head(std::span<float> arena) const {
  exec(program_->head_ops, arena, 0.0f, 0);
  return arena.subspan(program_->pred_offset(), program_->head_out);
}

void Vm::exec(std::span<const Op> ops, std::span<float> arena, float dt_norm,
              std::uint32_t phrase) const {
  const Program& p = *program_;
  util::require(arena.size() >= p.arena_size(),
                "compile::Vm: arena too small for program");
  float* const base = arena.data();
  float* const x = base + p.x_offset();
  float* const gates = base + p.gates_offset();
  float* const act = base + p.act_offset();

  for (const Op& op : ops) {
    switch (op.code) {
      case OpCode::kResetState:
        std::fill(base + p.state_offset(), base + p.arena_size(), 0.0f);
        break;
      case OpCode::kLoadInput: {
        util::require(phrase < p.vocab,
                      "compile::Vm: phrase id out of vocabulary");
        x[0] = dt_norm;
        std::memcpy(x + 1, p.embed.data() + phrase * p.embed_dim,
                    p.embed_dim * sizeof(float));
        break;
      }
      case OpCode::kLstmStepF32:
      case OpCode::kLstmStepQ8:
      case OpCode::kLstmStepQ16: {
        const std::size_t l = op.arg;
        const PackedLayer& layer = p.layers[l];
        // Layer 0 reads the input row; deeper layers read the previous
        // layer's hidden state, already updated this step (ops run in
        // ascending layer order by construction).
        const float* in = l == 0 ? x : base + p.h_offset(l - 1);
        float* h = base + p.h_offset(l);
        float* c = base + p.c_offset(l);
        if (op.code == OpCode::kLstmStepF32)
          lstm_step_f32(layer, in, h, c, gates, act);
        else if (op.code == OpCode::kLstmStepQ8)
          lstm_step_q(layer, wide_layers_[l].data(), in, h, c, gates, act);
        else
          lstm_step_q(layer, layer.q16.data(), in, h, c, gates, act);
        break;
      }
      case OpCode::kHeadF32:
        head_f32(p.head, base + p.h_offset(p.num_layers - 1),
                 base + p.pred_offset(), act);
        break;
      case OpCode::kHeadQ8:
        head_q(p.head, wide_head_.data(),
               base + p.h_offset(p.num_layers - 1), base + p.pred_offset(),
               act);
        break;
      case OpCode::kHeadQ16:
        head_q(p.head, p.head.q16.data(),
               base + p.h_offset(p.num_layers - 1), base + p.pred_offset(),
               act);
        break;
    }
  }
}

}  // namespace desh::compile
