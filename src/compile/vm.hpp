// compile::Vm: the tiny register VM that executes a compile::Program.
//
// Execution model: the VM borrows a Program and interprets its three
// straight-line op lists over a caller-owned flat float arena
// ([x | gates | pred | (h,c) per layer], offsets from the Program). Dispatch
// is one switch per op — a handful of ops per context step — and every
// kernel is fused: the gate sweep accumulates wx*x and wh*h saxpy-style over
// contiguous input-major packed rows (vectorizable, no reduction
// dependency), and the activation + cell update happen in the same pass
// instead of four separate Matrix ops. Combined with the arena (zero
// allocations per step, versus the reference walk's per-step Matrix churn)
// this is where the bench_compile speedup comes from.
//
// Thread safety: the VM itself is immutable after construction; all mutable
// state lives in the arena, so one Program may be shared by any number of
// threads as long as each uses its own arena (make_arena per scoring call).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compile/program.hpp"

namespace desh::compile {

class Vm {
 public:
  /// Borrows `program`, which must outlive the VM. Validates that every op's
  /// layer arg is in range so execution needs no bounds checks, and builds
  /// the execution image: int8 programs are widened to int16 codes once here
  /// (identical values, bit-identical results), because byte->float
  /// conversion is shuffle-bound on x86 while word->float runs at full
  /// vector width. The stored program keeps the 4x-smaller codes; only the
  /// VM's working copy pays for speed with memory.
  explicit Vm(const Program& program);

  /// Zero-initialized scratch arena sized for this program. One per
  /// concurrent scoring call.
  std::vector<float> make_arena() const;

  /// Runs reset_ops: zeroes every layer's (h, c) state.
  void reset(std::span<float> arena) const;
  /// Runs step_ops: consumes one (dt_norm, phrase) context element.
  void step(std::span<float> arena, float dt_norm, std::uint32_t phrase) const;
  /// Runs head_ops and returns the prediction row [dt | phrase scores]
  /// (a view into the arena, valid until the next VM call on it).
  std::span<const float> run_head(std::span<float> arena) const;

  const Program& program() const { return *program_; }

 private:
  void exec(std::span<const Op> ops, std::span<float> arena, float dt_norm,
            std::uint32_t phrase) const;

  const Program* program_;
  // int8 execution image: per-layer + head q8 codes sign-extended to int16
  // at construction (empty for fp32/int16 programs).
  std::vector<std::vector<std::int16_t>> wide_layers_;
  std::vector<std::int16_t> wide_head_;
};

}  // namespace desh::compile
