#include "core/config.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace desh::core {

namespace {

/// Collects "field.path: problem" lines for one phase's shared knobs.
struct Checker {
  std::vector<std::string> out;

  void positive(const char* field, std::size_t v) {
    if (v == 0) out.push_back(std::string(field) + ": must be > 0");
  }
  void positive(const char* field, double v) {
    if (!(v > 0.0) || !std::isfinite(v))
      out.push_back(std::string(field) + ": must be positive and finite, got " +
                    util::format_fixed(v, 4));
  }
  void non_negative(const char* field, double v) {
    if (!(v >= 0.0) || !std::isfinite(v))
      out.push_back(std::string(field) +
                    ": must be non-negative and finite, got " +
                    util::format_fixed(v, 4));
  }
  void unit_interval(const char* field, double v) {
    if (!(v >= 0.0 && v <= 1.0))
      out.push_back(std::string(field) + ": must be within [0, 1], got " +
                    util::format_fixed(v, 4));
  }
};

}  // namespace

std::vector<std::string> WalConfig::validate(std::string_view prefix) const {
  std::vector<std::string> out;
  if (directory.empty()) return out;  // disabled: the other knobs are moot
  const std::string p(prefix);
  if (flush_every_records == 0)
    out.push_back(p + ".flush_every_records: must be > 0");
  if (keep_checkpoints == 0)
    out.push_back(p + ".keep_checkpoints: must be > 0");
  return out;
}

std::vector<std::string> FleetConfig::validate(std::string_view prefix) const {
  std::vector<std::string> out;
  const std::string p(prefix);
  if (shards == 0) out.push_back(p + ".shards: must be > 0");
  if (ring_points_per_shard == 0)
    out.push_back(p + ".ring_points_per_shard: must be > 0");
  if (at_risk_top_k == 0) out.push_back(p + ".at_risk_top_k: must be > 0");
  if (!(alert_horizon_seconds > 0.0) || !std::isfinite(alert_horizon_seconds))
    out.push_back(p + ".alert_horizon_seconds: must be positive and finite, "
                      "got " +
                  util::format_fixed(alert_horizon_seconds, 4));
  return out;
}

std::vector<std::string> IngestConfig::validate(
    std::string_view prefix) const {
  std::vector<std::string> out;
  const std::string p(prefix);
  if (chunk_bytes == 0) out.push_back(p + ".chunk_bytes: must be > 0");
  if (max_line_bytes == 0) out.push_back(p + ".max_line_bytes: must be > 0");
  if (!(retry_backoff_seconds >= 0.0) || !std::isfinite(retry_backoff_seconds))
    out.push_back(p +
                  ".retry_backoff_seconds: must be non-negative and finite, "
                  "got " +
                  util::format_fixed(retry_backoff_seconds, 4));
  if (drain_tree_depth == 0)
    out.push_back(p + ".drain_tree_depth: must be > 0");
  if (!(drain_similarity > 0.0 && drain_similarity <= 1.0))
    out.push_back(p + ".drain_similarity: must be within (0, 1], got " +
                  util::format_fixed(drain_similarity, 4));
  return out;
}

std::vector<std::string> CompileConfig::validate(
    std::string_view prefix) const {
  std::vector<std::string> out;
  const std::string p(prefix);
  if (quant != QuantMode::kNone && backend != BackendKind::kCompiled)
    out.push_back(p + ".quant: " + std::string(to_string(quant)) +
                  " quantization requires " + p + ".backend = compiled, got " +
                  std::string(to_string(backend)));
  if (quant != QuantMode::kNone) {
    if (calibration_records == 0)
      out.push_back(p + ".calibration_records: must be > 0 when " + p +
                    ".quant = " + std::string(to_string(quant)));
    if (!(max_accuracy_delta >= 0.0) || !std::isfinite(max_accuracy_delta))
      out.push_back(p +
                    ".max_accuracy_delta: must be non-negative and finite, "
                    "got " +
                    util::format_fixed(max_accuracy_delta, 4));
  }
  return out;
}

std::vector<std::string> DeshConfig::validate() const {
  Checker c;

  c.positive("phase1.embed_dim", phase1.embed_dim);
  c.positive("phase1.hidden_size", phase1.hidden_size);
  c.positive("phase1.num_layers", phase1.num_layers);
  c.positive("phase1.history", phase1.history);
  c.positive("phase1.steps", phase1.steps);
  c.positive("phase1.epochs", phase1.epochs);
  c.positive("phase1.batch_size", phase1.batch_size);
  c.positive("phase1.window_stride", phase1.window_stride);
  c.positive("phase1.grad_shard_size", phase1.grad_shard_size);
  c.positive("phase1.learning_rate",
             static_cast<double>(phase1.learning_rate));
  c.unit_interval("phase1.lr_decay_per_epoch",
                  static_cast<double>(phase1.lr_decay_per_epoch));
  c.unit_interval("phase1.momentum", static_cast<double>(phase1.momentum));

  c.positive("phase2.embed_dim", phase2.embed_dim);
  c.positive("phase2.hidden_size", phase2.hidden_size);
  c.positive("phase2.num_layers", phase2.num_layers);
  c.positive("phase2.history", phase2.history);
  c.positive("phase2.epochs", phase2.epochs);
  c.positive("phase2.batch_size", phase2.batch_size);
  c.positive("phase2.grad_shard_size", phase2.grad_shard_size);
  c.positive("phase2.learning_rate",
             static_cast<double>(phase2.learning_rate));
  c.non_negative("phase2.time_weight",
                 static_cast<double>(phase2.time_weight));

  c.unit_interval("phase3.mse_threshold",
                  static_cast<double>(phase3.mse_threshold));
  c.positive("phase3.min_position", phase3.min_position);
  // The lead-time window runs from min_position up to the decision point;
  // an inverted window would make phase 3 score zero positions.
  if (phase3.decision_position < phase3.min_position)
    c.out.push_back(
        "phase3.decision_position: lead-time window inverted (decision_"
        "position " +
        std::to_string(phase3.decision_position) + " < min_position " +
        std::to_string(phase3.min_position) + ")");

  c.positive("extractor.gap_seconds", extractor.gap_seconds);
  if (extractor.min_length < 2)
    c.out.push_back("extractor.min_length: must be >= 2, got " +
                    std::to_string(extractor.min_length));
  c.positive("extractor.maintenance_node_threshold",
             extractor.maintenance_node_threshold);
  c.positive("extractor.maintenance_window_seconds",
             extractor.maintenance_window_seconds);

  if (skipgram.enabled) c.positive("skipgram.epochs", skipgram.epochs);

  c.positive("adapt.oov_window", adapt.oov_window);
  c.positive("adapt.novelty_window", adapt.novelty_window);
  c.positive("adapt.calibration_window", adapt.calibration_window);
  c.positive("adapt.min_window_fill", adapt.min_window_fill);
  c.unit_interval("adapt.oov_trigger", adapt.oov_trigger);
  c.unit_interval("adapt.oov_clear", adapt.oov_clear);
  c.unit_interval("adapt.novelty_trigger", adapt.novelty_trigger);
  c.unit_interval("adapt.novelty_clear", adapt.novelty_clear);
  c.unit_interval("adapt.calibration_trigger", adapt.calibration_trigger);
  c.unit_interval("adapt.calibration_clear", adapt.calibration_clear);
  // Each latch needs a dead band: clear above trigger would re-latch the
  // instant the signal clears.
  auto dead_band = [&c](const char* field, double clear, double trigger) {
    if (clear > trigger)
      c.out.push_back(std::string(field) + ": clear threshold " +
                      util::format_fixed(clear, 4) + " must be <= trigger " +
                      util::format_fixed(trigger, 4));
  };
  dead_band("adapt.oov_clear", adapt.oov_clear, adapt.oov_trigger);
  dead_band("adapt.novelty_clear", adapt.novelty_clear,
            adapt.novelty_trigger);
  dead_band("adapt.calibration_clear", adapt.calibration_clear,
            adapt.calibration_trigger);
  c.positive("adapt.hysteresis", adapt.hysteresis);
  c.positive("adapt.replay_capacity", adapt.replay_capacity);
  c.positive("adapt.min_replay_records", adapt.min_replay_records);
  if (adapt.min_replay_records > adapt.replay_capacity)
    c.out.push_back(
        "adapt.min_replay_records: must be <= adapt.replay_capacity (" +
        std::to_string(adapt.replay_capacity) + "), got " +
        std::to_string(adapt.min_replay_records));
  if (!(adapt.holdout_fraction > 0.0 && adapt.holdout_fraction < 1.0))
    c.out.push_back("adapt.holdout_fraction: must be within (0, 1), got " +
                    util::format_fixed(adapt.holdout_fraction, 4));
  c.non_negative("adapt.min_score_gain", adapt.min_score_gain);
  c.non_negative("adapt.oov_improvement_weight",
                 adapt.oov_improvement_weight);
  c.positive("adapt.probation_records", adapt.probation_records);
  c.non_negative("adapt.regression_margin", adapt.regression_margin);
  c.positive("adapt.alert_horizon_seconds", adapt.alert_horizon_seconds);

  for (std::string& msg : compile.validate("compile"))
    c.out.push_back(std::move(msg));

  // Cross-section: a quantized compiled backend re-runs its calibration pass
  // against replayed records after every adapt hot-swap. Both sides of each
  // constraint are named so the reader knows which section to move.
  if (compile.backend == BackendKind::kCompiled &&
      compile.quant != QuantMode::kNone) {
    if (compile.calibration_records > adapt.replay_capacity)
      c.out.push_back(
          "compile.calibration_records: must be <= adapt.replay_capacity (" +
          std::to_string(adapt.replay_capacity) +
          ") or post-swap calibration can never fill, got " +
          std::to_string(compile.calibration_records));
    if (compile.calibration_records > adapt.min_replay_records)
      c.out.push_back(
          "compile.calibration_records: must be <= adapt.min_replay_records "
          "(" +
          std::to_string(adapt.min_replay_records) +
          ") so every retrain that fires has enough replayed records to "
          "recalibrate the quantized program, got " +
          std::to_string(compile.calibration_records));
  }

  return c.out;
}

}  // namespace desh::core
