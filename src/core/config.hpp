// Central configuration of the Desh pipeline. Defaults reproduce Table 5:
//   phase 1: 2 hidden layers, history size 8, 3-step prediction,
//            categorical cross-entropy + SGD;
//   phase 2: 2 hidden layers, history size 5, 1-step prediction, MSE +
//            RMSprop, (deltaT, phrase) 2-state input vectors;
//   phase 3: per-node inference with the MSE <= 0.5 failure-match threshold.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "chains/extractor.hpp"

namespace desh::core {

struct Phase1Config {
  std::size_t embed_dim = 16;
  std::size_t hidden_size = 32;
  std::size_t num_layers = 2;  // Table 5: #HL = 2
  std::size_t history = 8;     // Table 5: HS = 8
  std::size_t steps = 3;       // Table 5: 3-step prediction
  std::size_t epochs = 4;
  std::size_t batch_size = 32;
  float learning_rate = 0.25f;     // SGD (Table 5)
  float lr_decay_per_epoch = 0.7f;
  float momentum = 0.9f;
  std::size_t window_stride = 2;   // subsampling stride over node streams
  std::size_t max_windows = 60000; // cap per epoch (keeps runs bounded)
  /// Data-parallel workers (0 = DESH_THREADS env, then hardware).
  std::size_t threads = 0;
  /// Windows per gradient shard. Defines the deterministic reduction
  /// numerics; results are identical at any thread count for a fixed value.
  std::size_t grad_shard_size = 4;
};

struct Phase2Config {
  std::size_t embed_dim = 24;
  std::size_t hidden_size = 48;
  std::size_t num_layers = 2;  // Table 5: #HL = 2
  std::size_t history = 5;     // Table 5: HS = 5
  std::size_t epochs = 300;
  std::size_t batch_size = 16;
  float learning_rate = 0.005f;  // RMSprop (Table 5)
  float time_weight = 4.0f;      // weight of squared dt error in match score
  /// Data-parallel workers (0 = DESH_THREADS env, then hardware).
  std::size_t threads = 0;
  /// Windows per gradient shard (see Phase1Config::grad_shard_size).
  std::size_t grad_shard_size = 4;
};

struct Phase3Config {
  /// "We use a threshold of 0.5 for inferring node failures" (Sec 3.3).
  float mse_threshold = 0.5f;
  /// Earliest position at which a match may be scored. Three positions
  /// participate at the default decision point, so a single ambiguous
  /// early-context prediction cannot by itself push the mean over the
  /// threshold. decide_at() lowers the floor automatically when the Fig 8
  /// sweep asks for decisions earlier than this.
  std::size_t min_position = 2;
  /// Decision point: the 0-based index of the last phrase observed before
  /// deciding. The default 4 means "flag after checking 5 phrases" — the
  /// paper's history size. Fig 8 sweeps this to trade lead time vs FP rate.
  std::size_t decision_position = 4;
  /// deltaT encoding for phases 2 and 3: the paper's cumulative
  /// time-to-terminal (true) vs plain inter-arrival gaps (false, ablation).
  bool cumulative_dt = true;
};

struct SkipGramPretrainConfig {
  bool enabled = true;
  std::size_t epochs = 2;
};

/// Knobs for the online-adaptation loop (src/adapt): drift detection over
/// the live serve stream, bounded replay buffering, challenger shadow
/// evaluation and post-swap probation. Lives in core so DeshConfig can
/// carry + validate it without core depending on desh::adapt.
struct AdaptConfig {
  // --- drift windows (sliding, per-signal sample counts) ---
  /// Phrase OOV-rate window: one sample per tapped record with a non-empty
  /// template (1 = encoded to <unk> under the champion vocabulary).
  std::size_t oov_window = 512;
  /// Chain-novelty window: one sample per anomalous (non-Safe) phrase
  /// (1 = phrase absent from every trained failure chain).
  std::size_t novelty_window = 256;
  /// Lead-time calibration window: one sample per resolved or expired alert
  /// (relative |predicted - realized| lead error, clamped to [0, 1]).
  std::size_t calibration_window = 32;
  /// Minimum samples in a window before its signal may breach. An empty or
  /// barely-filled window never triggers drift.
  std::size_t min_window_fill = 64;

  // --- thresholds + hysteresis ---
  /// A signal breaches when its window statistic >= trigger; a latched
  /// signal clears when it falls back <= clear (clear <= trigger, so the
  /// latch has a dead band instead of flapping around one threshold).
  double oov_trigger = 0.25;
  double oov_clear = 0.10;
  double novelty_trigger = 0.35;
  double novelty_clear = 0.15;
  double calibration_trigger = 0.50;
  double calibration_clear = 0.25;
  /// Consecutive breached evaluations before a signal latches as drifting.
  std::size_t hysteresis = 3;

  // --- replay buffer + retrain policy ---
  /// Bounded FIFO of raw tapped records the challenger retrains on.
  std::size_t replay_capacity = 8192;
  /// Drift/scheduled retrains wait until the replay buffer holds at least
  /// this many records — a too-shallow window has no complete failure
  /// chains to learn from, so the fit would fail. A pending drift trigger
  /// survives the wait; force_retrain() bypasses it (ops override).
  std::size_t min_replay_records = 1024;
  /// Minimum tapped records between two retrain launches (drift or
  /// schedule), so a persistent breach cannot retrain in a tight loop.
  std::size_t retrain_cooldown_records = 1024;
  /// Scheduled retrain every N tapped records; 0 = drift-triggered only.
  std::size_t schedule_every_records = 0;
  /// true: retrain on a dedicated background thread (serving never stalls);
  /// false: retrain inline in the tap (deterministic replay / tests).
  bool background = true;

  // --- shadow evaluation + probation ---
  /// Most-recent fraction of the replay buffer held out from challenger
  /// training and used to score champion vs challenger.
  double holdout_fraction = 0.25;
  /// Challenger must beat the champion's shadow score by at least this.
  double min_score_gain = 0.0;
  /// Weight of OOV coverage (1 - oov_rate) next to phase-1 next-phrase
  /// accuracy in the shadow score.
  double oov_improvement_weight = 0.5;
  /// Tapped records after a swap during which the new champion is on
  /// probation: regression there rolls back to the previous version.
  std::size_t probation_records = 512;
  /// Probation OOV rate above (challenger holdout OOV + margin) = regress.
  double regression_margin = 0.10;
  /// Seconds after which an unresolved alert expires and contributes a
  /// full-scale (1.0) calibration error sample.
  double alert_horizon_seconds = 1800.0;
};

/// Knobs for the durable event log + checkpoint/restore layer (src/wal).
/// Lives in core so serve::ServeConfig can carry + validate it without
/// serve depending on desh::wal's internals. Durability is opt-in: an
/// empty directory disables the log entirely (zero write-path cost).
struct WalConfig {
  /// Log directory (segments + checkpoints). Empty = WAL disabled.
  std::string directory;
  /// Group-commit interval: the log flushes once this many records are
  /// staged. 1 = flush every record (smallest loss window, slowest).
  std::size_t flush_every_records = 64;
  /// Write a fuzzy checkpoint every N processed records. 0 = only on
  /// explicit wal_checkpoint_now() calls.
  std::size_t checkpoint_every_records = 8192;
  /// Checkpoints retained by GC; older ones and their fully-covered log
  /// segments are deleted.
  std::size_t keep_checkpoints = 2;

  /// Returns ALL violations as "<prefix>.field: problem" messages (empty =
  /// usable), mirroring MonitorConfig::validate(). ServeConfig::validate()
  /// reuses it with prefix "serve.wal". A default-constructed (disabled)
  /// config is always valid.
  [[nodiscard]] std::vector<std::string> validate(
      std::string_view prefix = "wal") const;
};

/// Knobs for sharded fleet-scale serving (src/fleet): how many independent
/// monitor/server shards a FleetController runs, the consistent-hash ring
/// geometry, per-shard durability, and the cluster-health view. Lives in
/// core so fleet::FleetOptions can carry + validate it without core
/// depending on desh::fleet (mirroring WalConfig / AdaptConfig).
struct FleetConfig {
  /// Independent shard replicas (InferenceServer + StreamingMonitor each).
  std::size_t shards = 4;
  /// Consistent-hash ring points per shard. More points = tighter balance
  /// (relative shard-load spread ~ 1/sqrt(points)) at a small routing-table
  /// cost; 128 keeps the worst shard within a few percent of the mean.
  std::size_t ring_points_per_shard = 128;
  /// Root directory for per-shard write-ahead logs (`<root>/shard-<i>`).
  /// Empty = durability off for every shard. When set, the per-shard
  /// ServeConfig template must leave its own wal.directory empty — the
  /// fleet derives each shard's directory from this root.
  std::string wal_root;
  /// Nodes reported in the cluster-health top-at-risk view.
  std::size_t at_risk_top_k = 16;
  /// Seconds after which an unrefreshed alert drops out of the at-risk
  /// view (measured in stream time, like adapt's alert horizon).
  double alert_horizon_seconds = 1800.0;

  /// Returns ALL violations as "<prefix>.field: problem" messages (empty =
  /// usable), mirroring WalConfig::validate(). fleet::FleetOptions reuses
  /// it with prefix "fleet".
  [[nodiscard]] std::vector<std::string> validate(
      std::string_view prefix = "fleet") const;
};

/// Knobs for the streaming raw-log frontend (src/ingest): chunked reading,
/// branch-light line splitting, the online Drain template tracker, and
/// backpressure-aware admission into a serving target. Lives in core
/// (mirroring WalConfig / FleetConfig / CompileConfig) so consumers can
/// carry + validate it without depending on desh::ingest.
struct IngestConfig {
  /// Bytes read from the source per chunk. Lines torn across chunk
  /// boundaries are reassembled in a dedicated carry buffer, so any
  /// chunk size is correct; bigger chunks amortize read overhead.
  std::size_t chunk_bytes = 64 * 1024;
  /// Longest line the splitter will assemble. Anything longer is dropped
  /// whole (counted in desh_ingest_oversize_lines_total) instead of
  /// ballooning the carry buffer — console logs with corrupt framing can
  /// contain megabyte "lines".
  std::size_t max_line_bytes = 8 * 1024;
  /// Attempts per record when the target's queue refuses admission
  /// (Admission::kQueueFull). 0 = retry until accepted; otherwise the pump
  /// gives up after this many retries and reports kUnavailable.
  std::size_t max_admission_retries = 0;
  /// On kQueueFull, drive the target's pump() inline to free queue space
  /// (manual-pump mode). Set false when a collector thread owns pumping —
  /// the pump then backs off retry_backoff_seconds instead.
  bool pump_on_queue_full = true;
  /// Sleep between admission retries when pump_on_queue_full is false.
  double retry_backoff_seconds = 0.0005;
  /// logs::DrainMiner routing-tree depth for the online template tracker.
  std::size_t drain_tree_depth = 2;
  /// logs::DrainMiner similarity threshold for joining a known template.
  double drain_similarity = 0.55;

  /// Returns ALL violations as "<prefix>.field: problem" messages (empty =
  /// usable), mirroring WalConfig::validate(). ingest::IngestPump rejects
  /// invalid configs up front with the full list.
  [[nodiscard]] std::vector<std::string> validate(
      std::string_view prefix = "ingest") const;
};

/// Which inference engine scores failure chains (see nn/inference_backend.hpp
/// for the seam, src/compile for the compiled engines).
enum class BackendKind : std::uint8_t {
  kReference = 0,  ///< step-by-step nn graph walk; the bit-exact baseline
  kCompiled = 1,   ///< load-time compiled flat op program run by the VM
};

/// Weight quantization applied by the model compiler (weights only;
/// activations and the embedding table stay fp32).
enum class QuantMode : std::uint8_t {
  kNone = 0,
  kInt8 = 1,   ///< symmetric per-row int8 (4x smaller packed weights)
  kInt16 = 2,  ///< symmetric per-row int16 (2x smaller, tighter numerics)
};

constexpr std::string_view to_string(BackendKind k) {
  return k == BackendKind::kReference ? "reference" : "compiled";
}
constexpr std::string_view to_string(QuantMode q) {
  switch (q) {
    case QuantMode::kInt8: return "int8";
    case QuantMode::kInt16: return "int16";
    default: return "none";
  }
}

/// Knobs for the load-time model compiler (src/compile): which engine a
/// consumer scores through, the quantization mode, and the calibration gate
/// that keeps quantized numerics honest. Lives in core (mirroring WalConfig /
/// FleetConfig) so MonitorConfig and DeshConfig can carry + validate it
/// without depending on desh::compile.
struct CompileConfig {
  BackendKind backend = BackendKind::kReference;
  /// Weight quantization; only meaningful with backend = kCompiled.
  QuantMode quant = QuantMode::kNone;
  /// Training chains replayed through reference vs quantized programs by the
  /// calibration pass. More records = tighter delta estimate, slower load.
  std::size_t calibration_records = 256;
  /// Calibration gate: the mean absolute per-step score delta between the
  /// reference and quantized engines must stay within this bound, or the
  /// quantized program is rejected at compile time.
  double max_accuracy_delta = 0.02;
  /// Rejected quantized program: fall back to the fp32 compiled program
  /// (true, serving stays up) or fail compilation (false, strict mode).
  bool fallback_on_reject = true;

  /// Returns ALL violations as "<prefix>.field: problem" messages (empty =
  /// usable), mirroring WalConfig::validate(). MonitorConfig reuses it with
  /// prefix "monitor.compile".
  [[nodiscard]] std::vector<std::string> validate(
      std::string_view prefix = "compile") const;
};

struct DeshConfig {
  Phase1Config phase1;
  Phase2Config phase2;
  Phase3Config phase3;
  chains::ExtractorConfig extractor;
  SkipGramPretrainConfig skipgram;
  AdaptConfig adapt;
  /// Default inference engine for pipeline-level scoring (predict/redecide)
  /// and the template each monitor shard starts from.
  CompileConfig compile;
  std::uint64_t seed = 7;
  /// Worker count applied to every stage (phase 1/2 training, skip-gram,
  /// phase-3 scoring) whose own `threads` is 0. 0 = DESH_THREADS env var,
  /// then hardware concurrency.
  std::size_t threads = 0;

  /// Checks every field and returns ALL violations (not just the first) as
  /// "field.path: problem" messages, e.g.
  ///   "phase3.mse_threshold: must be within [0, 1], got 1.5".
  /// Empty result = the config is usable. DeshPipeline and
  /// serve::InferenceServer reject invalid configs up front with this list
  /// instead of surfacing bad values as NaN losses mid-fit.
  [[nodiscard]] std::vector<std::string> validate() const;
};

}  // namespace desh::core
