// Central configuration of the Desh pipeline. Defaults reproduce Table 5:
//   phase 1: 2 hidden layers, history size 8, 3-step prediction,
//            categorical cross-entropy + SGD;
//   phase 2: 2 hidden layers, history size 5, 1-step prediction, MSE +
//            RMSprop, (deltaT, phrase) 2-state input vectors;
//   phase 3: per-node inference with the MSE <= 0.5 failure-match threshold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chains/extractor.hpp"

namespace desh::core {

struct Phase1Config {
  std::size_t embed_dim = 16;
  std::size_t hidden_size = 32;
  std::size_t num_layers = 2;  // Table 5: #HL = 2
  std::size_t history = 8;     // Table 5: HS = 8
  std::size_t steps = 3;       // Table 5: 3-step prediction
  std::size_t epochs = 4;
  std::size_t batch_size = 32;
  float learning_rate = 0.25f;     // SGD (Table 5)
  float lr_decay_per_epoch = 0.7f;
  float momentum = 0.9f;
  std::size_t window_stride = 2;   // subsampling stride over node streams
  std::size_t max_windows = 60000; // cap per epoch (keeps runs bounded)
  /// Data-parallel workers (0 = DESH_THREADS env, then hardware).
  std::size_t threads = 0;
  /// Windows per gradient shard. Defines the deterministic reduction
  /// numerics; results are identical at any thread count for a fixed value.
  std::size_t grad_shard_size = 4;
};

struct Phase2Config {
  std::size_t embed_dim = 24;
  std::size_t hidden_size = 48;
  std::size_t num_layers = 2;  // Table 5: #HL = 2
  std::size_t history = 5;     // Table 5: HS = 5
  std::size_t epochs = 300;
  std::size_t batch_size = 16;
  float learning_rate = 0.005f;  // RMSprop (Table 5)
  float time_weight = 4.0f;      // weight of squared dt error in match score
  /// Data-parallel workers (0 = DESH_THREADS env, then hardware).
  std::size_t threads = 0;
  /// Windows per gradient shard (see Phase1Config::grad_shard_size).
  std::size_t grad_shard_size = 4;
};

struct Phase3Config {
  /// "We use a threshold of 0.5 for inferring node failures" (Sec 3.3).
  float mse_threshold = 0.5f;
  /// Earliest position at which a match may be scored. Three positions
  /// participate at the default decision point, so a single ambiguous
  /// early-context prediction cannot by itself push the mean over the
  /// threshold. decide_at() lowers the floor automatically when the Fig 8
  /// sweep asks for decisions earlier than this.
  std::size_t min_position = 2;
  /// Decision point: the 0-based index of the last phrase observed before
  /// deciding. The default 4 means "flag after checking 5 phrases" — the
  /// paper's history size. Fig 8 sweeps this to trade lead time vs FP rate.
  std::size_t decision_position = 4;
  /// deltaT encoding for phases 2 and 3: the paper's cumulative
  /// time-to-terminal (true) vs plain inter-arrival gaps (false, ablation).
  bool cumulative_dt = true;
};

struct SkipGramPretrainConfig {
  bool enabled = true;
  std::size_t epochs = 2;
};

struct DeshConfig {
  Phase1Config phase1;
  Phase2Config phase2;
  Phase3Config phase3;
  chains::ExtractorConfig extractor;
  SkipGramPretrainConfig skipgram;
  std::uint64_t seed = 7;
  /// Worker count applied to every stage (phase 1/2 training, skip-gram,
  /// phase-3 scoring) whose own `threads` is 0. 0 = DESH_THREADS env var,
  /// then hardware concurrency.
  std::size_t threads = 0;

  /// Checks every field and returns ALL violations (not just the first) as
  /// "field.path: problem" messages, e.g.
  ///   "phase3.mse_threshold: must be within [0, 1], got 1.5".
  /// Empty result = the config is usable. DeshPipeline and
  /// serve::InferenceServer reject invalid configs up front with this list
  /// instead of surfacing bad values as NaN losses mid-fit.
  std::vector<std::string> validate() const;
};

}  // namespace desh::core
