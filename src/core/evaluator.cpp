#include "core/evaluator.hpp"

#include <cmath>
#include <unordered_map>

#include "util/error.hpp"

namespace desh::core {

SystemEvaluation Evaluator::evaluate(
    const std::vector<chains::CandidateSequence>& candidates,
    const std::vector<FailurePrediction>& predictions,
    const logs::GroundTruth& truth) {
  util::require(candidates.size() == predictions.size(),
                "Evaluator: candidates/predictions size mismatch");
  SystemEvaluation eval;

  // Index ground-truth test failures per node.
  struct TruthRef {
    const logs::FailureEvent* event;
    bool matched = false;
  };
  std::unordered_map<logs::NodeId, std::vector<TruthRef>> failures_by_node;
  for (const logs::FailureEvent& f : truth.failures) {
    if (f.terminal_time < truth.split_time) continue;  // training-window event
    ++eval.test_failures;
    if (f.novel) ++eval.novel_failures;
    failures_by_node[f.node].push_back(TruthRef{&f});
  }

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const chains::CandidateSequence& c = candidates[i];
    const FailurePrediction& p = predictions[i];
    if (c.end_time() < truth.split_time) continue;  // not a test-window event

    // Does this candidate correspond to a real failure?
    TruthRef* match = nullptr;
    auto it = failures_by_node.find(c.node);
    if (it != failures_by_node.end()) {
      for (TruthRef& ref : it->second) {
        if (std::abs(ref.event->terminal_time - c.end_time()) <=
            kMatchToleranceSeconds) {
          match = &ref;
          break;
        }
      }
    }

    if (match != nullptr) {
      match->matched = true;  // chain was extracted; FN only if unflagged
      if (p.flagged) {
        ++eval.counts.tp;
        eval.lead_times.add(p.lead_seconds);
        eval.predicted_lead_times.add(p.predicted_lead_seconds);
        eval.lead_by_class[static_cast<std::size_t>(
                               match->event->failure_class)]
            .add(p.lead_seconds);
      } else {
        ++eval.counts.fn;
      }
    } else {
      if (p.flagged)
        ++eval.counts.fp;
      else
        ++eval.counts.tn;
    }
  }

  // Failures whose chain never surfaced as a candidate at all were missed.
  for (const auto& [node, refs] : failures_by_node)
    for (const TruthRef& ref : refs)
      if (!ref.matched) ++eval.counts.fn;

  eval.metrics = Metrics::from_counts(eval.counts);
  return eval;
}

}  // namespace desh::core
