// Scores a phase-3 run against the generator's ground truth, producing the
// paper's evaluation artifacts: the Table 6 metrics (Figs 4/5), per-class
// lead-time statistics (Table 7 / Fig 6) and per-system lead times (Fig 7).
//
// Counting rules (Sec 4.1): correctly predicted failures are TP; flagged
// candidates with no matching real failure are FP; real test-period failures
// Desh never flagged (including those whose chain was never even extracted)
// are FN; unflagged non-failure candidates are TN.
#pragma once

#include <array>
#include <vector>

#include "core/metrics.hpp"
#include "core/phase3.hpp"
#include "logs/generator.hpp"
#include "util/stats.hpp"

namespace desh::core {

struct SystemEvaluation {
  ConfusionCounts counts;
  Metrics metrics;
  /// Lead-time samples of true positives, seconds (ground-truth deltaT at
  /// the decision point).
  util::SampleSet lead_times;
  /// Same, split by the matched failure's class (Table 7 / Fig 6).
  std::array<util::SampleSet, logs::kFailureClassCount> lead_by_class;
  /// Model-predicted lead times of true positives (deployable estimate).
  util::SampleSet predicted_lead_times;
  std::size_t test_failures = 0;   // ground-truth failures in the test window
  std::size_t novel_failures = 0;  // of which novel patterns
};

class Evaluator {
 public:
  /// `candidates`/`predictions` must be parallel vectors from one TestRun.
  /// Only ground-truth events in the test window (terminal/end time >=
  /// truth.split_time) participate.
  static SystemEvaluation evaluate(
      const std::vector<chains::CandidateSequence>& candidates,
      const std::vector<FailurePrediction>& predictions,
      const logs::GroundTruth& truth);

  /// Matching tolerance between a candidate's final event and a ground-truth
  /// terminal timestamp, seconds.
  static constexpr double kMatchToleranceSeconds = 5.0;
};

}  // namespace desh::core
