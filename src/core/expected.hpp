// Value-or-error result type for the redesigned public surface (desh.hpp).
//
// The original façade leaked util::IoError / util::InvalidArgument through
// every entry point, which forced callers to wrap the whole API in try/catch
// and made error taxonomy an exception-class detail. Expected<T> makes the
// failure mode part of the signature: persistence, config validation and the
// serve engine return Expected and never throw for I/O or config problems.
// Exceptions remain for genuine programming errors (violated preconditions
// such as reading value() from an errored Expected).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/error.hpp"

namespace desh::core {

/// Stable error taxonomy of the public API. Codes are coarse on purpose:
/// callers branch on the code and show `message` (which carries the detail,
/// e.g. the offending field path or file name) to a human.
enum class ErrorCode {
  kInvalidArgument,  // a documented precondition was violated by the caller
  kInvalidConfig,    // DeshConfig/ServeConfig validation failed
  kIo,               // filesystem problem (open/read/write/create)
  kFormatVersion,    // persisted artifact written by an incompatible version
  kUnavailable,      // the component is stopped / not ready for the call
};

constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kInvalidConfig: return "invalid_config";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kFormatVersion: return "format_version";
    case ErrorCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

/// One failure: a machine-checkable code plus a human-oriented message.
struct Error {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string message;
};

/// Value-or-Error. Implicitly constructible from either side so functions
/// `return value;` or `return Error{...};` directly.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Expected(Error error) : v_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// Accessing the wrong side is a programming error, reported through the
  /// usual precondition channel (util::InvalidArgument).
  T& value() & {
    util::require(ok(), "Expected::value: holds an error: " + error_text());
    return std::get<0>(v_);
  }
  const T& value() const& {
    util::require(ok(), "Expected::value: holds an error: " + error_text());
    return std::get<0>(v_);
  }
  T&& value() && {
    util::require(ok(), "Expected::value: holds an error: " + error_text());
    return std::get<0>(std::move(v_));
  }

  const Error& error() const {
    util::require(!ok(), "Expected::error: holds a value");
    return std::get<1>(v_);
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<0>(v_) : std::move(fallback);
  }

 private:
  std::string error_text() const {
    return ok() ? std::string() : std::get<1>(v_).message;
  }
  std::variant<T, Error> v_;
};

/// Success-or-Error for side-effecting entry points (save, swap, ...).
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() = default;  // success
  Expected(Error error) : error_(std::move(error)), ok_(false) {}

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  const Error& error() const {
    util::require(!ok_, "Expected::error: holds a value");
    return error_;
  }

 private:
  Error error_;
  bool ok_ = true;
};

}  // namespace desh::core
