#include "core/insights.hpp"

#include <algorithm>
#include <unordered_map>

namespace desh::core {

std::vector<PhraseInsight> failure_indicators(
    const chains::ParsedLog& corpus,
    const std::vector<chains::CandidateSequence>& candidates,
    const logs::PhraseVocab& vocab) {
  std::unordered_map<std::uint32_t, std::size_t> corpus_counts;
  std::size_t corpus_total = 0;
  for (const auto& [node, events] : corpus.by_node)
    for (const chains::ParsedEvent& e : events) {
      ++corpus_counts[e.phrase];
      ++corpus_total;
    }

  std::unordered_map<std::uint32_t, std::size_t> chain_counts;
  std::size_t chain_total = 0;
  for (const chains::CandidateSequence& c : candidates) {
    if (!c.ends_with_terminal) continue;
    for (const chains::ParsedEvent& e : c.events) {
      ++chain_counts[e.phrase];
      ++chain_total;
    }
  }
  if (corpus_total == 0 || chain_total == 0) return {};

  std::vector<PhraseInsight> out;
  out.reserve(chain_counts.size());
  for (const auto& [phrase, in_chain] : chain_counts) {
    PhraseInsight insight;
    insight.phrase = phrase;
    insight.tmpl = phrase < vocab.size() ? vocab.decode(phrase) : "<unknown>";
    insight.corpus_count = corpus_counts[phrase];
    insight.chain_count = in_chain;
    const double p_chain = (static_cast<double>(in_chain) + 1.0) /
                           (static_cast<double>(chain_total) + 1.0);
    const double p_corpus =
        (static_cast<double>(insight.corpus_count) + 1.0) /
        (static_cast<double>(corpus_total) + 1.0);
    insight.lift = p_chain / p_corpus;
    out.push_back(std::move(insight));
  }
  std::sort(out.begin(), out.end(),
            [](const PhraseInsight& a, const PhraseInsight& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.chain_count > b.chain_count;
            });
  return out;
}

}  // namespace desh::core
