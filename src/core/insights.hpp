// Failure-indicator insights (Sec 1: Desh "also gives insights as to what
// phrases indicate node failures based on this statistical analysis").
//
// Unlike the Table 8 analysis — which scores phrases against *ground truth*
// the paper's authors had from their sysadmins — this ranking needs nothing
// but Desh's own artifacts: the phrases' overall corpus frequencies versus
// their frequencies inside the extracted failure chains. The lift
//     P(phrase | failure chain) / P(phrase)
// surfaces which messages are genuinely failure-bound and which merely look
// scary (Observations 5/6), directly from unlabeled data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chains/extractor.hpp"
#include "chains/parsed_log.hpp"
#include "logs/vocab.hpp"

namespace desh::core {

struct PhraseInsight {
  std::uint32_t phrase = 0;
  std::string tmpl;
  std::size_t corpus_count = 0;  // occurrences in the whole training corpus
  std::size_t chain_count = 0;   // occurrences inside failure chains
  double lift = 0;               // relative over-representation in chains
};

/// Ranks every phrase occurring in at least one failure chain by lift,
/// descending; ties broken by chain_count. Laplace smoothing (+1) keeps
/// rare phrases from producing infinite lifts.
std::vector<PhraseInsight> failure_indicators(
    const chains::ParsedLog& corpus,
    const std::vector<chains::CandidateSequence>& candidates,
    const logs::PhraseVocab& vocab);

}  // namespace desh::core
