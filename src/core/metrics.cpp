#include "core/metrics.hpp"

namespace desh::core {

namespace {
double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

Metrics Metrics::from_counts(const ConfusionCounts& c) {
  Metrics m;
  m.recall = ratio(c.tp, c.tp + c.fn);
  m.precision = ratio(c.tp, c.tp + c.fp);
  m.accuracy = ratio(c.tp + c.tn, c.total());
  m.f1 = (m.recall + m.precision) > 0
             ? 2.0 * m.recall * m.precision / (m.recall + m.precision)
             : 0.0;
  m.fp_rate = ratio(c.fp, c.fp + c.tn);
  m.fn_rate = ratio(c.fn, c.tp + c.fn);
  return m;
}

}  // namespace desh::core
