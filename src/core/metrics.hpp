// The statistical metrics of Table 6 over a TP/FP/FN/TN confusion matrix.
#pragma once

#include <cstddef>

namespace desh::core {

struct ConfusionCounts {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t tn = 0;

  std::size_t total() const { return tp + fp + fn + tn; }
};

struct Metrics {
  double recall = 0;     // TP/(TP+FN)
  double precision = 0;  // TP/(TP+FP)
  double accuracy = 0;   // (TP+TN)/total
  double f1 = 0;         // 2PR/(P+R)
  double fp_rate = 0;    // FP/(FP+TN)
  double fn_rate = 0;    // FN/(TP+FN) = 1 - recall

  /// Computes every Table 6 formula; empty denominators yield 0.
  static Metrics from_counts(const ConfusionCounts& c);
};

}  // namespace desh::core
