#include "core/monitor.hpp"

#include "logs/template_miner.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace desh::core {

StreamingMonitor::StreamingMonitor(const DeshPipeline& pipeline,
                                   MonitorConfig config)
    : pipeline_(pipeline),
      config_(config),
      vocab_(pipeline.vocab()),
      predictor_(pipeline.phase2().model(), pipeline.config().phase3) {
  util::require(pipeline.fitted(), "StreamingMonitor: pipeline is not fitted");
  util::require(config_.gap_seconds > 0 && config_.rearm_seconds >= 0,
                "StreamingMonitor: bad config");
}

void StreamingMonitor::reset() { nodes_.clear(); }

std::optional<MonitorAlert> StreamingMonitor::observe(
    const logs::LogRecord& record) {
  ++records_seen_;
  const std::string tmpl = logs::TemplateMiner::extract(record.message);
  if (tmpl.empty()) return std::nullopt;
  const std::uint32_t phrase = vocab_.encode(tmpl);
  if (pipeline_.labeler().label(phrase) == logs::PhraseLabel::kSafe)
    return std::nullopt;

  NodeState& state = nodes_[record.node];
  if (!state.window.empty() &&
      record.timestamp - state.window.back().timestamp > config_.gap_seconds)
    state.window.clear();
  state.window.push_back({record.timestamp, phrase});

  const std::size_t needed =
      pipeline_.config().phase3.decision_position + 1;
  while (state.window.size() > needed) state.window.pop_front();
  if (record.timestamp < state.silenced_until) return std::nullopt;
  if (state.window.size() < needed) return std::nullopt;

  chains::CandidateSequence candidate;
  candidate.node = record.node;
  candidate.events.assign(state.window.begin(), state.window.end());
  const FailurePrediction prediction = predictor_.decide(candidate);
  if (!prediction.flagged) return std::nullopt;

  state.silenced_until = record.timestamp + config_.rearm_seconds;
  ++alerts_raised_;
  MonitorAlert alert;
  alert.node = record.node;
  alert.time = record.timestamp;
  alert.predicted_lead_seconds = prediction.predicted_lead_seconds;
  alert.score = prediction.score;
  alert.message =
      "In " + util::format_fixed(alert.predicted_lead_seconds / 60.0, 1) +
      " minutes, node " + record.node.to_string() + " located in " +
      record.node.location_description() + " is expected to fail";
  return alert;
}

}  // namespace desh::core
