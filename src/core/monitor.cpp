#include "core/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "logs/template_miner.hpp"
#include "obs/catalog.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace desh::core {

namespace {

// Process-wide monitor telemetry (OBSERVABILITY.md "streaming monitor").
// Cached references: registration takes the registry lock exactly once.
struct MonitorObs {
  obs::Counter& records = obs::registry().counter(obs::kMonitorRecordsTotal);
  obs::Counter& alerts = obs::registry().counter(obs::kMonitorAlertsTotal);
  obs::Gauge& nodes = obs::registry().gauge(obs::kMonitorNodesTracked);
  obs::Gauge& window_depth =
      obs::registry().gauge(obs::kMonitorWindowDepth);
  obs::Histogram& observe_seconds =
      obs::registry().histogram(obs::kMonitorObserveSeconds);
  obs::Histogram& batch_seconds =
      obs::registry().histogram(obs::kMonitorBatchSeconds);
  static MonitorObs& get() {
    static MonitorObs instance;
    return instance;
  }
};

}  // namespace

std::vector<std::string> MonitorConfig::validate(
    std::string_view prefix) const {
  std::vector<std::string> out;
  const std::string p(prefix);
  if (!(gap_seconds > 0) || !std::isfinite(gap_seconds))
    out.push_back(p + ".gap_seconds: must be positive and finite, got " +
                  util::format_fixed(gap_seconds, 4));
  if (!(rearm_seconds >= 0) || !std::isfinite(rearm_seconds))
    out.push_back(p + ".rearm_seconds: must be non-negative and finite, got " +
                  util::format_fixed(rearm_seconds, 4));
  for (std::string& v : compile.validate(p + ".compile"))
    out.push_back(std::move(v));
  return out;
}

namespace {

// Builds the inference engine config.compile selects. Runs from the
// constructor's initializer list — backend_ precedes predictor_, which
// borrows it — so the fitted-pipeline and full-config preconditions are
// checked here, before any member that depends on them.
std::shared_ptr<const nn::InferenceBackend> build_backend(
    const DeshPipeline& pipeline, const MonitorConfig& config) {
  util::require(pipeline.fitted(), "StreamingMonitor: pipeline is not fitted");
  // Report every violation, not just the first: a caller fixing fields one
  // rejection at a time gets the whole list up front.
  const std::vector<std::string> violations = config.validate();
  util::require(violations.empty(), "StreamingMonitor: invalid config: " +
                                        util::join(violations, "; "));
  // Compilation/calibration failures (e.g. the quantization gate rejecting
  // with fallback disabled) surface as the Error's own message.
  return pipeline.make_backend(config.compile).value();
}

}  // namespace

StreamingMonitor::StreamingMonitor(const DeshPipeline& pipeline,
                                   MonitorConfig config)
    : pipeline_(pipeline),
      config_(config),
      vocab_(pipeline.vocab()),
      backend_(build_backend(pipeline, config)),
      predictor_(*backend_, pipeline.config().phase3) {}

void StreamingMonitor::reset() { nodes_.clear(); }

namespace {
// Blob magic for serialize_state()/restore_state(). Versioned like every
// other on-disk format (core::kPipelineFormatVersion, the registry
// MANIFEST): a future layout change bumps the trailing digit and old
// blobs are rejected cleanly instead of misparsed.
constexpr std::string_view kMonitorBlobMagic = "DESHMON1";
}  // namespace

std::string StreamingMonitor::serialize_state() const {
  std::string out(kMonitorBlobMagic);
  util::put_u64(out, vocab_.size());
  util::put_u64(out, pipeline_.config().phase3.decision_position);
  util::put_u64(out, records_seen_);
  util::put_u64(out, alerts_raised_);
  // Sorted node order: the blob must be a pure function of the monitor
  // state, not of unordered_map iteration order, so that equal states
  // checkpoint to equal bytes.
  std::vector<const std::pair<const logs::NodeId, NodeState>*> entries;
  entries.reserve(nodes_.size());
  for (const auto& entry : nodes_) entries.push_back(&entry);
  const auto key = [](const logs::NodeId& n) {
    return std::make_tuple(n.cabinet_x, n.cabinet_y, n.chassis, n.slot,
                           n.node);
  };
  std::sort(entries.begin(), entries.end(),
            [&](const auto* a, const auto* b) {
              return key(a->first) < key(b->first);
            });
  util::put_u64(out, entries.size());
  for (const auto* entry : entries) {
    const logs::NodeId& node = entry->first;
    const NodeState& state = entry->second;
    util::put_u16(out, node.cabinet_x);
    util::put_u16(out, node.cabinet_y);
    util::put_u8(out, node.chassis);
    util::put_u8(out, node.slot);
    util::put_u8(out, node.node);
    util::put_f64(out, state.silenced_until);
    util::put_u32(out, static_cast<std::uint32_t>(state.window.size()));
    for (const chains::ParsedEvent& event : state.window) {
      util::put_f64(out, event.timestamp);
      util::put_u32(out, event.phrase);
    }
  }
  return out;
}

Expected<void> StreamingMonitor::restore_state(std::string_view blob) {
  const auto fail = [this](const char* what) -> Expected<void> {
    reset();  // never leave a half-restored monitor behind
    return Error{ErrorCode::kFormatVersion,
                 std::string("StreamingMonitor::restore_state: ") + what};
  };
  if (blob.size() < kMonitorBlobMagic.size() ||
      blob.substr(0, kMonitorBlobMagic.size()) != kMonitorBlobMagic)
    return fail("bad magic");
  util::ByteReader reader(blob.substr(kMonitorBlobMagic.size()));
  std::uint64_t vocab_size = 0;
  std::uint64_t decision_position = 0;
  std::uint64_t records_seen = 0;
  std::uint64_t alerts_raised = 0;
  std::uint64_t node_count = 0;
  if (!reader.get_u64(vocab_size) || !reader.get_u64(decision_position) ||
      !reader.get_u64(records_seen) || !reader.get_u64(alerts_raised) ||
      !reader.get_u64(node_count))
    return fail("truncated header");
  // Window contents are phrase ids under ONE vocabulary and are judged at
  // ONE decision depth; state from a different model would be silently
  // meaningless, so reject it (the caller falls back to full replay).
  if (vocab_size != vocab_.size())
    return fail("blob was taken under a different vocabulary");
  if (decision_position != pipeline_.config().phase3.decision_position)
    return fail("blob was taken under a different decision position");

  std::unordered_map<logs::NodeId, NodeState> restored;
  restored.reserve(node_count);
  for (std::uint64_t n = 0; n < node_count; ++n) {
    logs::NodeId node;
    NodeState state;
    std::uint32_t window_len = 0;
    if (!reader.get_u16(node.cabinet_x) || !reader.get_u16(node.cabinet_y) ||
        !reader.get_u8(node.chassis) || !reader.get_u8(node.slot) ||
        !reader.get_u8(node.node) || !reader.get_f64(state.silenced_until) ||
        !reader.get_u32(window_len))
      return fail("truncated node entry");
    for (std::uint32_t i = 0; i < window_len; ++i) {
      chains::ParsedEvent event;
      if (!reader.get_f64(event.timestamp) || !reader.get_u32(event.phrase))
        return fail("truncated window event");
      state.window.push_back(event);
    }
    restored[node] = std::move(state);
  }
  if (!reader.done()) return fail("trailing bytes");

  nodes_ = std::move(restored);
  records_seen_ = records_seen;
  alerts_raised_ = alerts_raised;
  return {};
}

util::ThreadPool& StreamingMonitor::pool() {
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  return *pool_;
}

std::optional<std::uint32_t> StreamingMonitor::encode_anomalous(
    const logs::LogRecord& record) const {
  const std::string tmpl = logs::TemplateMiner::extract(record.message);
  if (tmpl.empty()) return std::nullopt;
  const std::uint32_t phrase = vocab_.encode(tmpl);
  if (pipeline_.labeler().label(phrase) == logs::PhraseLabel::kSafe)
    return std::nullopt;
  return phrase;
}

std::optional<chains::CandidateSequence> StreamingMonitor::advance_window(
    NodeState& state, const logs::LogRecord& record,
    std::uint32_t phrase) const {
  if (!state.window.empty() &&
      record.timestamp - state.window.back().timestamp > config_.gap_seconds)
    state.window.clear();
  state.window.push_back({record.timestamp, phrase});

  const std::size_t needed =
      pipeline_.config().phase3.decision_position + 1;
  while (state.window.size() > needed) state.window.pop_front();
  // Last-writer-wins sample; with node-sharded batches concurrent writers
  // are expected and any of their values is a valid depth reading.
  MonitorObs::get().window_depth.set(
      static_cast<double>(state.window.size()));
  if (record.timestamp < state.silenced_until) return std::nullopt;
  if (state.window.size() < needed) return std::nullopt;

  chains::CandidateSequence candidate;
  candidate.node = record.node;
  candidate.events.assign(state.window.begin(), state.window.end());
  return candidate;
}

std::optional<MonitorAlert> StreamingMonitor::settle(
    NodeState& state, const logs::LogRecord& record,
    const FailurePrediction& prediction) const {
  if (!prediction.flagged) return std::nullopt;

  state.silenced_until = record.timestamp + config_.rearm_seconds;
  MonitorAlert alert;
  alert.node = record.node;
  alert.time = record.timestamp;
  alert.predicted_lead_seconds = prediction.predicted_lead_seconds;
  alert.score = prediction.score;
  alert.message =
      "In " + util::format_fixed(alert.predicted_lead_seconds / 60.0, 1) +
      " minutes, node " + record.node.to_string() + " located in " +
      record.node.location_description() + " is expected to fail";
  return alert;
}

std::optional<MonitorAlert> StreamingMonitor::advance(
    NodeState& state, const logs::LogRecord& record,
    std::uint32_t phrase) const {
  const std::optional<chains::CandidateSequence> candidate =
      advance_window(state, record, phrase);
  if (!candidate) return std::nullopt;
  return settle(state, record, predictor_.decide(*candidate));
}

std::size_t StreamingMonitor::window_depth(const logs::NodeId& node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.window.size();
}

std::optional<MonitorAlert> StreamingMonitor::observe(
    const logs::LogRecord& record) {
  MonitorObs& obs = MonitorObs::get();
  util::Stopwatch sw;
  ++records_seen_;
  obs.records.add();
  const std::optional<std::uint32_t> phrase = encode_anomalous(record);
  std::optional<MonitorAlert> alert;
  if (phrase) {
    alert = advance(nodes_[record.node], record, *phrase);
    if (alert) {
      ++alerts_raised_;
      obs.alerts.add();
    }
  }
  obs.nodes.set(static_cast<double>(nodes_.size()));
  obs.observe_seconds.observe(sw.elapsed_seconds());
  return alert;
}

std::vector<MonitorAlert> StreamingMonitor::observe_batch(
    std::span<const logs::LogRecord> records) {
  MonitorObs& obs = MonitorObs::get();
  util::Stopwatch sw;
  records_seen_ += records.size();
  obs.records.add(records.size());

  // (1) Parallel pre-pass: template extraction + vocabulary encoding is the
  // per-record CPU cost and touches no monitor state.
  std::vector<std::optional<std::uint32_t>> phrases(records.size());
  pool().parallel_for(records.size(), [&](std::size_t i, std::size_t) {
    phrases[i] = encode_anomalous(records[i]);
  });

  // (2) Group the anomalous records by node, preserving stream order inside
  // each group; materialize every node's state up front so the parallel
  // phase never rehashes the map.
  std::vector<logs::NodeId> node_order;
  std::unordered_map<logs::NodeId, std::vector<std::size_t>> by_node;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!phrases[i]) continue;
    auto [it, inserted] = by_node.try_emplace(records[i].node);
    if (inserted) {
      node_order.push_back(records[i].node);
      nodes_.try_emplace(records[i].node);
    }
    it->second.push_back(i);
  }

  // (3) Round-based replay. A node's decide() outcome feeds back into its
  // own state (re-arm silence), so records within a node stay strictly
  // sequential — but nodes never interact, so each round (a) advances every
  // active node's state machine to its next decide-ready window in
  // parallel, then (b) scores all pending candidates in one decide_batch
  // GEMM pass and applies the outcomes. Bit-identical to per-record
  // advance(), with model cost amortized across concurrently alive nodes.
  struct NodeCursor {
    std::size_t next = 0;  // position in the node's record-index list
    std::optional<chains::CandidateSequence> pending;
    std::size_t pending_record = 0;
  };
  std::vector<std::vector<std::pair<std::size_t, MonitorAlert>>> per_node(
      node_order.size());
  std::vector<NodeCursor> cursors(node_order.size());
  std::vector<std::size_t> active(node_order.size());
  for (std::size_t n = 0; n < node_order.size(); ++n) active[n] = n;
  while (!active.empty()) {
    pool().parallel_for(active.size(), [&](std::size_t a, std::size_t) {
      const std::size_t n = active[a];
      NodeCursor& cursor = cursors[n];
      NodeState& state = nodes_.at(node_order[n]);
      const std::vector<std::size_t>& indices = by_node.at(node_order[n]);
      while (cursor.next < indices.size()) {
        const std::size_t i = indices[cursor.next++];
        if (std::optional<chains::CandidateSequence> candidate =
                advance_window(state, records[i], *phrases[i])) {
          cursor.pending = std::move(candidate);
          cursor.pending_record = i;
          break;
        }
      }
    });

    std::vector<std::size_t> deciding;
    std::vector<const chains::CandidateSequence*> candidates;
    for (std::size_t n : active) {
      if (!cursors[n].pending) continue;  // exhausted: drops out this round
      deciding.push_back(n);
      candidates.push_back(&*cursors[n].pending);
    }
    if (deciding.empty()) break;
    const std::vector<FailurePrediction> outcomes =
        predictor_.decide_batch(candidates);
    for (std::size_t d = 0; d < deciding.size(); ++d) {
      const std::size_t n = deciding[d];
      const std::size_t i = cursors[n].pending_record;
      if (std::optional<MonitorAlert> alert =
              settle(nodes_.at(node_order[n]), records[i], outcomes[d]))
        per_node[n].emplace_back(i, std::move(*alert));
      cursors[n].pending.reset();
    }
    active = std::move(deciding);
  }

  // (4) Merge back into record order (deterministic regardless of sharding).
  std::vector<std::pair<std::size_t, MonitorAlert>> merged;
  for (std::vector<std::pair<std::size_t, MonitorAlert>>& alerts : per_node)
    for (auto& entry : alerts) merged.push_back(std::move(entry));
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<MonitorAlert> out;
  out.reserve(merged.size());
  for (auto& [index, alert] : merged) out.push_back(std::move(alert));
  alerts_raised_ += out.size();
  obs.alerts.add(out.size());
  obs.nodes.set(static_cast<double>(nodes_.size()));
  obs.batch_seconds.observe(sw.elapsed_seconds());
  return out;
}

}  // namespace desh::core
