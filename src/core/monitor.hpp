// StreamingMonitor: the online deployment surface of Desh (Sec 4.5).
//
// Offline evaluation (Phase3Predictor) knows each candidate's full future;
// a deployed monitor does not. StreamingMonitor consumes raw log records
// one at a time, in timestamp order, maintains a sliding window of
// anomalous (non-Safe) events per node, and raises an alert the moment a
// window matches a trained failure chain. The alert's lead time is the
// model's own deltaT forecast — the quantity an operator can actually act
// on ("In 2.5 minutes, node X located in Y is expected to fail").
//
// A node that alerted stays silenced until its window goes quiet (the
// re-arm period) so one failure does not spam one alert per log line.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/expected.hpp"
#include "core/pipeline.hpp"
#include "util/thread_pool.hpp"

namespace desh::core {

struct MonitorConfig {
  /// Silence that resets a node's window (defaults to the extractor gap).
  double gap_seconds = 420.0;
  /// Seconds a node stays silenced after alerting.
  double rearm_seconds = 600.0;
  /// Workers for observe_batch (0 = DESH_THREADS env, then hardware).
  std::size_t threads = 0;
  /// Inference engine the monitor scores through (nn/inference_backend.hpp):
  /// reference by default, or compiled / compiled+quantized. Per-shard
  /// selection in the fleet flows through ServeConfig.monitor.compile.
  CompileConfig compile;

  /// Returns ALL violations as "<prefix>.field: problem" messages (empty =
  /// usable), mirroring DeshConfig::validate(). ServeConfig::validate()
  /// reuses it with prefix "serve.monitor"; the StreamingMonitor
  /// constructor reports the full joined list instead of one opaque blob.
  [[nodiscard]] std::vector<std::string> validate(
      std::string_view prefix = "monitor") const;
};

struct MonitorAlert {
  logs::NodeId node;
  double time = 0;                    // timestamp of the triggering record
  double predicted_lead_seconds = 0;  // model's deltaT forecast
  double score = 0;                   // chain-match score (<= threshold)
  /// Operator-facing text, e.g. "In 2.5 minutes, node c0-0c1s4n2 located in
  /// cabinet 0-0, chassis 1, blade 4, node 2 is expected to fail".
  std::string message;
};

class StreamingMonitor {
 public:
  /// Borrows the fitted pipeline's models; the pipeline must outlive the
  /// monitor and must not be re-fitted while monitored.
  explicit StreamingMonitor(const DeshPipeline& pipeline,
                            MonitorConfig config = {});

  /// Feeds one record (timestamps must be non-decreasing overall). Returns
  /// an alert when this record completes a failure-chain match.
  std::optional<MonitorAlert> observe(const logs::LogRecord& record);

  /// Feeds a timestamp-ordered batch of records, sharding the work by node
  /// across the worker pool: per-node state machines are independent, so
  /// each node's records are replayed in order on one worker and the alert
  /// streams are merged back in record order. Chain-model evaluations are
  /// coalesced across nodes into GEMM-wide passes (Phase3Predictor::
  /// decide_batch), so per-record model cost amortizes with the number of
  /// concurrently advancing nodes. The result — alerts and all per-node
  /// state — is identical to calling observe() record by record, at any
  /// thread count and any batch width.
  std::vector<MonitorAlert> observe_batch(
      std::span<const logs::LogRecord> records);

  /// Drops all per-node state (e.g. at a log rotation boundary).
  void reset();

  /// Serializes the complete observable state — every node's window and
  /// silence deadline plus the lifetime counters — into an opaque blob for
  /// the durability layer's fuzzy checkpoints (src/wal). Deterministic:
  /// nodes are emitted in sorted NodeId order, doubles as exact bit
  /// images, so equal states yield equal blobs. The blob embeds the
  /// vocabulary size and decision position it was taken under; restore
  /// rejects a blob from a different model.
  std::string serialize_state() const;

  /// Inverse of serialize_state(): replaces all per-node state and
  /// counters with the blob's. Total — arbitrary bytes yield an error
  /// (kFormatVersion), never a crash; on error the monitor is left reset()
  /// so the caller can fall back to a full replay from the log.
  [[nodiscard]] Expected<void> restore_state(std::string_view blob);

  std::size_t records_seen() const { return records_seen_; }
  std::size_t alerts_raised() const { return alerts_raised_; }
  /// Current anomalous-window depth of `node` (0 when untracked) — the
  /// serve engine's risk signal for lowest-risk-first load shedding.
  std::size_t window_depth(const logs::NodeId& node) const;

 private:
  struct NodeState {
    std::deque<chains::ParsedEvent> window;
    double silenced_until = -1.0;
  };

  /// Template extraction + vocabulary/labeler gate (stateless, thread-safe).
  /// Returns the encoded phrase, or nullopt when the record is Safe/empty.
  std::optional<std::uint32_t> encode_anomalous(
      const logs::LogRecord& record) const;

  /// First half of the per-record state machine: slides the node's window,
  /// applies the gap/silence/depth gates, and — when the window is deep
  /// enough to decide — returns the candidate to score. No model call here,
  /// so observe_batch can coalesce many nodes' candidates into one
  /// decide_batch pass.
  std::optional<chains::CandidateSequence> advance_window(
      NodeState& state, const logs::LogRecord& record,
      std::uint32_t phrase) const;

  /// Second half: applies a decide() outcome to the node (re-arm silence)
  /// and renders the operator alert when the chain matched.
  std::optional<MonitorAlert> settle(NodeState& state,
                                     const logs::LogRecord& record,
                                     const FailurePrediction& prediction) const;

  /// advance_window + decide + settle — one record end to end, the
  /// sequential path used by observe().
  std::optional<MonitorAlert> advance(NodeState& state,
                                      const logs::LogRecord& record,
                                      std::uint32_t phrase) const;

  util::ThreadPool& pool();

  const DeshPipeline& pipeline_;
  MonitorConfig config_;
  logs::PhraseVocab vocab_;  // frozen snapshot of the training vocabulary
  /// The engine config_.compile selected; declared before predictor_, which
  /// borrows it.
  std::shared_ptr<const nn::InferenceBackend> backend_;
  Phase3Predictor predictor_;
  std::unordered_map<logs::NodeId, NodeState> nodes_;
  std::unique_ptr<util::ThreadPool> pool_;  // lazily built for observe_batch
  std::size_t records_seen_ = 0;
  std::size_t alerts_raised_ = 0;
};

}  // namespace desh::core
