#include "core/persistence.hpp"

#include <filesystem>
#include <fstream>
#include <map>

#include "nn/serialize.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace desh::core {

namespace {

namespace fs = std::filesystem;

void write_config(const DeshConfig& c, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw util::IoError("save_pipeline: cannot open " + path);
  os << "format=desh-pipeline-1\n"
     << "p1.embed_dim=" << c.phase1.embed_dim << "\n"
     << "p1.hidden_size=" << c.phase1.hidden_size << "\n"
     << "p1.num_layers=" << c.phase1.num_layers << "\n"
     << "p1.history=" << c.phase1.history << "\n"
     << "p1.steps=" << c.phase1.steps << "\n"
     << "p2.embed_dim=" << c.phase2.embed_dim << "\n"
     << "p2.hidden_size=" << c.phase2.hidden_size << "\n"
     << "p2.num_layers=" << c.phase2.num_layers << "\n"
     << "p2.history=" << c.phase2.history << "\n"
     << "p2.time_weight=" << c.phase2.time_weight << "\n"
     << "p3.mse_threshold=" << c.phase3.mse_threshold << "\n"
     << "p3.min_position=" << c.phase3.min_position << "\n"
     << "p3.decision_position=" << c.phase3.decision_position << "\n"
     << "ex.gap_seconds=" << c.extractor.gap_seconds << "\n"
     << "ex.min_length=" << c.extractor.min_length << "\n"
     << "ex.maintenance_node_threshold=" << c.extractor.maintenance_node_threshold
     << "\n"
     << "ex.maintenance_window_seconds=" << c.extractor.maintenance_window_seconds
     << "\n"
     << "seed=" << c.seed << "\n";
  if (!os) throw util::IoError("save_pipeline: write failed for " + path);
}

DeshConfig read_config(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw util::IoError("load_pipeline: cannot open " + path);
  std::map<std::string, std::string> kv;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  if (kv["format"] != "desh-pipeline-1")
    throw util::IoError("load_pipeline: unrecognized format in " + path);
  auto u = [&](const std::string& key) -> std::size_t {
    auto it = kv.find(key);
    if (it == kv.end())
      throw util::IoError("load_pipeline: missing key '" + key + "'");
    return static_cast<std::size_t>(std::stoull(it->second));
  };
  auto f = [&](const std::string& key) -> float {
    auto it = kv.find(key);
    if (it == kv.end())
      throw util::IoError("load_pipeline: missing key '" + key + "'");
    return std::stof(it->second);
  };
  DeshConfig c;
  c.phase1.embed_dim = u("p1.embed_dim");
  c.phase1.hidden_size = u("p1.hidden_size");
  c.phase1.num_layers = u("p1.num_layers");
  c.phase1.history = u("p1.history");
  c.phase1.steps = u("p1.steps");
  c.phase2.embed_dim = u("p2.embed_dim");
  c.phase2.hidden_size = u("p2.hidden_size");
  c.phase2.num_layers = u("p2.num_layers");
  c.phase2.history = u("p2.history");
  c.phase2.time_weight = f("p2.time_weight");
  c.phase3.mse_threshold = f("p3.mse_threshold");
  c.phase3.min_position = u("p3.min_position");
  c.phase3.decision_position = u("p3.decision_position");
  c.extractor.gap_seconds = f("ex.gap_seconds");
  c.extractor.min_length = u("ex.min_length");
  c.extractor.maintenance_node_threshold = u("ex.maintenance_node_threshold");
  c.extractor.maintenance_window_seconds = f("ex.maintenance_window_seconds");
  c.seed = u("seed");
  return c;
}

void write_chains(const std::vector<nn::ChainSequence>& chains,
                  const std::string& path) {
  std::ofstream os(path);
  if (!os) throw util::IoError("save_pipeline: cannot open " + path);
  os.precision(9);
  for (const nn::ChainSequence& chain : chains) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i) os << ' ';
      os << chain[i].dt_norm << ':' << chain[i].phrase;
    }
    os << '\n';
  }
  if (!os) throw util::IoError("save_pipeline: write failed for " + path);
}

std::vector<nn::ChainSequence> read_chains(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw util::IoError("load_pipeline: cannot open " + path);
  std::vector<nn::ChainSequence> chains;
  std::string line;
  while (std::getline(is, line)) {
    if (util::trim(line).empty()) continue;
    nn::ChainSequence chain;
    for (const std::string& token : util::split_whitespace(line)) {
      const std::size_t colon = token.find(':');
      util::require(colon != std::string::npos,
                    "load_pipeline: malformed chain step '" + token + "'");
      chain.push_back(nn::ChainStep{
          std::stof(token.substr(0, colon)),
          static_cast<std::uint32_t>(std::stoul(token.substr(colon + 1)))});
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

}  // namespace

void save_pipeline(const DeshPipeline& pipeline, const std::string& directory) {
  util::require(pipeline.fitted_, "save_pipeline: pipeline is not fitted");
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec)
    throw util::IoError("save_pipeline: cannot create directory " + directory);
  write_config(pipeline.config_, directory + "/config.txt");
  pipeline.vocab_.save(directory + "/vocab.txt");
  nn::save_parameters(pipeline.phase1_->model().parameters(),
                      directory + "/phase1.bin");
  nn::save_parameters(pipeline.phase2_->model().parameters(),
                      directory + "/phase2.bin");
  write_chains(pipeline.training_chains_, directory + "/chains.txt");
}

DeshPipeline load_pipeline(const std::string& directory) {
  const DeshConfig config = read_config(directory + "/config.txt");
  DeshPipeline pipeline(config);
  pipeline.vocab_ = logs::PhraseVocab::load(directory + "/vocab.txt");
  pipeline.labeler_.emplace(pipeline.vocab_);
  pipeline.phase1_ = std::make_unique<Phase1Trainer>(
      config.phase1, pipeline.vocab_.size(), pipeline.rng_);
  nn::load_parameters(pipeline.phase1_->model().parameters(),
                      directory + "/phase1.bin");
  pipeline.phase2_ = std::make_unique<Phase2Trainer>(
      config.phase2, pipeline.vocab_.size(), pipeline.rng_);
  nn::load_parameters(pipeline.phase2_->model().parameters(),
                      directory + "/phase2.bin");
  pipeline.training_chains_ = read_chains(directory + "/chains.txt");
  pipeline.fitted_ = true;
  return pipeline;
}

}  // namespace desh::core
