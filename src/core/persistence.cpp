#include "core/persistence.hpp"

#include <filesystem>
#include <fstream>
#include <map>

#include "nn/serialize.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace desh::core {

namespace {

namespace fs = std::filesystem;

constexpr const char* kFormatPrefix = "desh-pipeline-";

Expected<void> write_config(const DeshConfig& c, const std::string& path) {
  std::ofstream os(path);
  if (!os)
    return Error{ErrorCode::kIo, "save_pipeline: cannot open " + path};
  os << "format=" << kFormatPrefix << kPipelineFormatVersion << "\n"
     << "p1.embed_dim=" << c.phase1.embed_dim << "\n"
     << "p1.hidden_size=" << c.phase1.hidden_size << "\n"
     << "p1.num_layers=" << c.phase1.num_layers << "\n"
     << "p1.history=" << c.phase1.history << "\n"
     << "p1.steps=" << c.phase1.steps << "\n"
     << "p2.embed_dim=" << c.phase2.embed_dim << "\n"
     << "p2.hidden_size=" << c.phase2.hidden_size << "\n"
     << "p2.num_layers=" << c.phase2.num_layers << "\n"
     << "p2.history=" << c.phase2.history << "\n"
     << "p2.time_weight=" << c.phase2.time_weight << "\n"
     << "p3.mse_threshold=" << c.phase3.mse_threshold << "\n"
     << "p3.min_position=" << c.phase3.min_position << "\n"
     << "p3.decision_position=" << c.phase3.decision_position << "\n"
     // Version 2 additions: the phase-3 deltaT encoding flag, so an
     // adjacent-gap ablation model cannot be replayed with cumulative
     // semantics after a reload.
     << "p3.cumulative_dt=" << (c.phase3.cumulative_dt ? 1 : 0) << "\n"
     << "ex.gap_seconds=" << c.extractor.gap_seconds << "\n"
     << "ex.min_length=" << c.extractor.min_length << "\n"
     << "ex.maintenance_node_threshold=" << c.extractor.maintenance_node_threshold
     << "\n"
     << "ex.maintenance_window_seconds=" << c.extractor.maintenance_window_seconds
     << "\n"
     << "seed=" << c.seed << "\n";
  if (!os)
    return Error{ErrorCode::kIo, "save_pipeline: write failed for " + path};
  return {};
}

Expected<DeshConfig> read_config(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    return Error{ErrorCode::kIo, "load_pipeline: cannot open " + path};
  std::map<std::string, std::string> kv;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }

  const std::string format = kv["format"];
  if (format.rfind(kFormatPrefix, 0) != 0)
    return Error{ErrorCode::kIo,
                 "load_pipeline: unrecognized format '" + format + "' in " +
                     path};
  std::uint32_t version = 0;
  try {
    version = static_cast<std::uint32_t>(
        std::stoul(format.substr(std::string(kFormatPrefix).size())));
  } catch (const std::exception&) {
    return Error{ErrorCode::kIo,
                 "load_pipeline: unrecognized format '" + format + "' in " +
                     path};
  }
  if (version > kPipelineFormatVersion)
    return Error{ErrorCode::kFormatVersion,
                 "load_pipeline: " + path + " was written as format version " +
                     std::to_string(version) + "; this build reads versions " +
                     std::to_string(kOldestReadablePipelineFormat) + "-" +
                     std::to_string(kPipelineFormatVersion) +
                     " (upgrade Desh to load it)"};
  if (version < kOldestReadablePipelineFormat)
    return Error{ErrorCode::kFormatVersion,
                 "load_pipeline: " + path + " uses retired format version " +
                     std::to_string(version)};

  bool missing = false;
  std::string missing_key;
  auto u = [&](const std::string& key) -> std::size_t {
    auto it = kv.find(key);
    if (it == kv.end()) {
      if (!missing) missing_key = key;
      missing = true;
      return 0;
    }
    return static_cast<std::size_t>(std::stoull(it->second));
  };
  auto f = [&](const std::string& key) -> float {
    auto it = kv.find(key);
    if (it == kv.end()) {
      if (!missing) missing_key = key;
      missing = true;
      return 0;
    }
    return std::stof(it->second);
  };
  DeshConfig c;
  try {
    c.phase1.embed_dim = u("p1.embed_dim");
    c.phase1.hidden_size = u("p1.hidden_size");
    c.phase1.num_layers = u("p1.num_layers");
    c.phase1.history = u("p1.history");
    c.phase1.steps = u("p1.steps");
    c.phase2.embed_dim = u("p2.embed_dim");
    c.phase2.hidden_size = u("p2.hidden_size");
    c.phase2.num_layers = u("p2.num_layers");
    c.phase2.history = u("p2.history");
    c.phase2.time_weight = f("p2.time_weight");
    c.phase3.mse_threshold = f("p3.mse_threshold");
    c.phase3.min_position = u("p3.min_position");
    c.phase3.decision_position = u("p3.decision_position");
    // Version 1 predates the deltaT-encoding flag; those models were always
    // trained with the paper's cumulative encoding.
    c.phase3.cumulative_dt = version >= 2 ? u("p3.cumulative_dt") != 0 : true;
    c.extractor.gap_seconds = f("ex.gap_seconds");
    c.extractor.min_length = u("ex.min_length");
    c.extractor.maintenance_node_threshold =
        u("ex.maintenance_node_threshold");
    c.extractor.maintenance_window_seconds =
        f("ex.maintenance_window_seconds");
    c.seed = u("seed");
  } catch (const std::exception&) {
    return Error{ErrorCode::kIo,
                 "load_pipeline: corrupt numeric value in " + path};
  }
  if (missing)
    return Error{ErrorCode::kIo,
                 "load_pipeline: missing key '" + missing_key + "' in " + path};
  return c;
}

Expected<void> write_chains(const std::vector<nn::ChainSequence>& chains,
                            const std::string& path) {
  std::ofstream os(path);
  if (!os)
    return Error{ErrorCode::kIo, "save_pipeline: cannot open " + path};
  os.precision(9);
  for (const nn::ChainSequence& chain : chains) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i) os << ' ';
      os << chain[i].dt_norm << ':' << chain[i].phrase;
    }
    os << '\n';
  }
  if (!os)
    return Error{ErrorCode::kIo, "save_pipeline: write failed for " + path};
  return {};
}

std::vector<nn::ChainSequence> read_chains(const std::string& path) {
  std::ifstream is(path);
  // desh-lint: allow(throw-discipline) legacy throwing I/O helper
  if (!is) throw util::IoError("load_pipeline: cannot open " + path);
  std::vector<nn::ChainSequence> chains;
  std::string line;
  while (std::getline(is, line)) {
    if (util::trim(line).empty()) continue;
    nn::ChainSequence chain;
    for (const std::string& token : util::split_whitespace(line)) {
      const std::size_t colon = token.find(':');
      util::require(colon != std::string::npos,
                    "load_pipeline: malformed chain step '" + token + "'");
      chain.push_back(nn::ChainStep{
          std::stof(token.substr(0, colon)),
          static_cast<std::uint32_t>(std::stoul(token.substr(colon + 1)))});
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

/// Maps exceptions escaping the legacy serialization helpers (vocab and
/// parameter files throw util::IoError) onto the Expected taxonomy.
Error from_exception(const std::exception& e) {
  if (dynamic_cast<const util::InvalidArgument*>(&e))
    return {ErrorCode::kInvalidArgument, e.what()};
  return {ErrorCode::kIo, e.what()};
}

}  // namespace

Expected<void> try_save_pipeline(const DeshPipeline& pipeline,
                                 const std::string& directory) {
  if (!pipeline.fitted_)
    return Error{ErrorCode::kInvalidArgument,
                 "save_pipeline: pipeline is not fitted"};
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec)
    return Error{ErrorCode::kIo,
                 "save_pipeline: cannot create directory " + directory};
  if (Expected<void> r = write_config(pipeline.config_,
                                      directory + "/config.txt");
      !r)
    return r;
  if (Expected<void> r = pipeline.vocab_.save(directory + "/vocab.txt"); !r)
    return r;
  try {
    nn::save_parameters(pipeline.phase1_->model().parameters(),
                        directory + "/phase1.bin");
    nn::save_parameters(pipeline.phase2_->model().parameters(),
                        directory + "/phase2.bin");
  } catch (const std::exception& e) {
    return from_exception(e);
  }
  return write_chains(pipeline.training_chains_, directory + "/chains.txt");
}

Expected<DeshPipeline> try_load_pipeline(const std::string& directory) {
  Expected<DeshConfig> config = read_config(directory + "/config.txt");
  if (!config) return config.error();
  const std::vector<std::string> violations = config.value().validate();
  if (!violations.empty()) {
    std::string joined =
        "load_pipeline: stored config in " + directory + " is invalid:";
    for (const std::string& v : violations) joined += "\n  " + v;
    return Error{ErrorCode::kInvalidConfig, std::move(joined)};
  }
  Expected<logs::PhraseVocab> vocab =
      logs::PhraseVocab::load(directory + "/vocab.txt");
  if (!vocab) return vocab.error();
  try {
    DeshPipeline pipeline(config.value());
    pipeline.vocab_ = std::move(vocab).value();
    pipeline.labeler_.emplace(pipeline.vocab_);
    pipeline.phase1_ = std::make_unique<Phase1Trainer>(
        config.value().phase1, pipeline.vocab_.size(), pipeline.rng_);
    nn::load_parameters(pipeline.phase1_->model().parameters(),
                        directory + "/phase1.bin");
    pipeline.phase2_ = std::make_unique<Phase2Trainer>(
        config.value().phase2, pipeline.vocab_.size(), pipeline.rng_);
    nn::load_parameters(pipeline.phase2_->model().parameters(),
                        directory + "/phase2.bin");
    pipeline.training_chains_ = read_chains(directory + "/chains.txt");
    pipeline.fitted_ = true;
    return pipeline;
  } catch (const std::exception& e) {
    return from_exception(e);
  }
}

}  // namespace desh::core
