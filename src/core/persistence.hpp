// Whole-pipeline persistence: train once offline (phases 1-2 are "performed
// offline", Sec 4.4), then deploy the trained predictor without retraining.
//
// A saved pipeline is a directory holding:
//   config.txt    — the DeshConfig fields that shape the models
//   vocab.txt     — the phrase vocabulary (ids = line order)
//   phase1.bin    — PhraseModel parameters
//   phase2.bin    — ChainModel parameters
//   chains.txt    — the deltaT-augmented training chains (for audit/debug)
// Loading validates that the stored config matches the models' shapes; any
// drift fails loudly at load time rather than mis-predicting silently.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace desh::core {

/// Saves a fitted pipeline under `directory` (created if absent).
/// Throws util::InvalidArgument if the pipeline is not fitted and
/// util::IoError on filesystem problems.
void save_pipeline(const DeshPipeline& pipeline, const std::string& directory);

/// Reconstructs a fitted pipeline from `directory`. The returned pipeline
/// predicts identically to the one that was saved (bit-exact parameters).
DeshPipeline load_pipeline(const std::string& directory);

}  // namespace desh::core
