// Whole-pipeline persistence: train once offline (phases 1-2 are "performed
// offline", Sec 4.4), then deploy the trained predictor without retraining.
//
// A saved pipeline is a directory holding:
//   config.txt    — format version stamp + the DeshConfig fields that shape
//                   the models
//   vocab.txt     — the phrase vocabulary (ids = line order)
//   phase1.bin    — PhraseModel parameters
//   phase2.bin    — ChainModel parameters
//   chains.txt    — the deltaT-augmented training chains (for audit/debug)
// Loading validates that the stored config matches the models' shapes; any
// drift fails loudly at load time rather than mis-predicting silently.
//
// Format versioning: config.txt starts with `format=desh-pipeline-<N>`.
// The current writer emits version 2 (which added the phase-3 deltaT
// encoding flag); the loader accepts the current and the previous version
// and reports ErrorCode::kFormatVersion — not a generic "unrecognized
// format" — for artifacts written by a future Desh.
#pragma once

#include <cstdint>
#include <string>

#include "core/expected.hpp"
#include "core/pipeline.hpp"

namespace desh::core {

/// Version stamped into new saves.
inline constexpr std::uint32_t kPipelineFormatVersion = 2;
/// Oldest version the loader still accepts.
inline constexpr std::uint32_t kOldestReadablePipelineFormat = 1;

/// Saves a fitted pipeline under `directory` (created if absent).
/// Errors: kInvalidArgument (pipeline not fitted), kIo (filesystem).
[[nodiscard]] Expected<void> try_save_pipeline(const DeshPipeline& pipeline,
                                               const std::string& directory);

/// Reconstructs a fitted pipeline from `directory`. The returned pipeline
/// predicts identically to the one that was saved (bit-exact parameters).
/// Errors: kIo (missing/corrupt files), kFormatVersion (artifact newer than
/// this build), kInvalidConfig (stored config fails validation).
[[nodiscard]] Expected<DeshPipeline> try_load_pipeline(
    const std::string& directory);

}  // namespace desh::core
