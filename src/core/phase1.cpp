#include "core/phase1.hpp"

#include <algorithm>
#include <memory>

#include "nn/data_parallel.hpp"
#include "nn/inference_backend.hpp"
#include "nn/optimizer.hpp"
#include "obs/catalog.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace desh::core {

Phase1Trainer::Phase1Trainer(const Phase1Config& config,
                             std::size_t vocab_size, util::Rng& rng)
    : config_(config),
      rng_(rng.fork(0xF1)),
      model_(nn::PhraseModelConfig{vocab_size, config.embed_dim,
                                   config.hidden_size, config.num_layers},
             rng_) {}

std::vector<std::vector<std::uint32_t>> Phase1Trainer::make_windows(
    const chains::ParsedLog& parsed, std::size_t window_len,
    std::size_t stride, std::size_t max_windows, util::Rng& rng) {
  util::require(window_len >= 2, "Phase1Trainer::make_windows: window_len < 2");
  util::require(stride >= 1, "Phase1Trainer::make_windows: stride < 1");
  std::vector<std::vector<std::uint32_t>> windows;
  // Node-concatenated training (Fig 3a): node order is deterministic, and
  // windows never straddle two nodes' streams.
  for (const logs::NodeId& node : parsed.sorted_nodes()) {
    const auto& events = parsed.by_node.at(node);
    if (events.size() < window_len) continue;
    for (std::size_t start = 0; start + window_len <= events.size();
         start += stride) {
      std::vector<std::uint32_t> w(window_len);
      for (std::size_t i = 0; i < window_len; ++i)
        w[i] = events[start + i].phrase;
      windows.push_back(std::move(w));
    }
  }
  rng.shuffle(windows);
  if (windows.size() > max_windows) windows.resize(max_windows);
  return windows;
}

float Phase1Trainer::fit(const chains::ParsedLog& train) {
  obs::TraceSpan span("phase1.fit");
  static obs::Counter& obs_epochs =
      obs::registry().counter(obs::kPhase1EpochsTotal);
  static obs::Gauge& obs_epoch_loss =
      obs::registry().gauge(obs::kPhase1EpochLoss);
  const std::size_t window_len = config_.history + config_.steps;
  nn::Sgd optimizer(config_.learning_rate, config_.momentum);

  // Replica-per-worker engine, reused across every epoch of this fit. The
  // replicas only need matching architecture; their init weights are
  // overwritten by the master sync on each step.
  const nn::PhraseModelConfig model_config = model_.config();
  nn::DataParallelTrainer<nn::PhraseModel> engine(
      model_,
      [&model_config] {
        util::Rng scratch(0);
        return std::make_unique<nn::PhraseModel>(model_config, scratch);
      },
      config_.threads, config_.grad_shard_size);

  const std::size_t steps = config_.steps;
  float last_epoch_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto windows = make_windows(train, window_len, config_.window_stride,
                                config_.max_windows, rng_);
    util::require(!windows.empty(), "Phase1Trainer::fit: no training windows");
    double epoch_loss = 0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < windows.size();
         start += config_.batch_size) {
      const std::size_t count =
          std::min(config_.batch_size, windows.size() - start);
      epoch_loss += engine.train_step(
          std::span<const std::vector<std::uint32_t>>(windows).subspan(start,
                                                                       count),
          optimizer, 5.0f,
          [steps](nn::PhraseModel& replica,
                  std::span<const std::vector<std::uint32_t>> shard) {
            return replica.forward_backward(shard, steps);
          });
      ++batches;
    }
    if (batches > 0)
      last_epoch_loss = static_cast<float>(epoch_loss / static_cast<double>(batches));
    obs_epochs.add();
    obs_epoch_loss.set(static_cast<double>(last_epoch_loss));
    optimizer.set_learning_rate(optimizer.learning_rate() *
                                config_.lr_decay_per_epoch);
  }
  return last_epoch_loss;
}

double Phase1Trainer::accuracy(const chains::ParsedLog& data,
                               std::size_t history,
                               std::size_t max_windows) const {
  util::Rng rng(0xACCu);  // fixed seed: evaluation sampling is deterministic
  auto windows = make_windows(data, history + 1, /*stride=*/3, max_windows, rng);
  if (windows.empty()) return 0.0;
  return nn::ReferenceBackend(model_).evaluate_top1(windows, history);
}

}  // namespace desh::core
