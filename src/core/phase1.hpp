// Phase 1 (Sec 3.1): unsupervised language-model training over the phrase
// streams of all nodes, concatenated one node after another (Fig 3a). The
// LSTM learns what phrases follow what — the statistical backbone for
// recognizing chains — and its next-phrase accuracy is the paper's Sec 4.1
// "~85% accuracy" / history-size ablation subject.
#pragma once

#include <cstdint>
#include <vector>

#include "chains/parsed_log.hpp"
#include "core/config.hpp"
#include "nn/phrase_model.hpp"
#include "util/rng.hpp"

namespace desh::core {

class Phase1Trainer {
 public:
  Phase1Trainer(const Phase1Config& config, std::size_t vocab_size,
                util::Rng& rng);

  /// Builds fixed-length windows (history + steps tokens) from every node's
  /// stream with the configured stride, capped at max_windows per epoch.
  static std::vector<std::vector<std::uint32_t>> make_windows(
      const chains::ParsedLog& parsed, std::size_t window_len,
      std::size_t stride, std::size_t max_windows, util::Rng& rng);

  /// Trains for the configured epochs; returns the final-epoch mean loss.
  float fit(const chains::ParsedLog& train);

  /// Next-phrase top-1 accuracy with the given history (Sec 4.1 metric).
  double accuracy(const chains::ParsedLog& data, std::size_t history,
                  std::size_t max_windows = 4000) const;

  nn::PhraseModel& model() { return model_; }
  const nn::PhraseModel& model() const { return model_; }
  const Phase1Config& config() const { return config_; }

 private:
  Phase1Config config_;
  util::Rng rng_;
  nn::PhraseModel model_;
};

}  // namespace desh::core
