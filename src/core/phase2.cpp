#include "core/phase2.hpp"

#include <map>
#include <memory>

#include "nn/data_parallel.hpp"
#include "nn/optimizer.hpp"
#include "obs/catalog.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace desh::core {

Phase2Trainer::Phase2Trainer(const Phase2Config& config,
                             std::size_t vocab_size, util::Rng& rng)
    : config_(config),
      rng_(rng.fork(0xF2)),
      model_(nn::ChainModelConfig{vocab_size, config.embed_dim,
                                  config.hidden_size, config.num_layers,
                                  config.history, config.time_weight},
             rng_) {}

float Phase2Trainer::fit(const std::vector<nn::ChainSequence>& chains) {
  util::require(!chains.empty(), "Phase2Trainer::fit: no failure chains");
  seen_chains_ = chains;
  fitted_ = true;
  return train_epochs(chains, config_.epochs, config_.learning_rate);
}

float Phase2Trainer::update(const std::vector<nn::ChainSequence>& new_chains,
                            std::size_t epochs) {
  util::require(fitted_, "Phase2Trainer::update: fit() has not run");
  util::require(!new_chains.empty(), "Phase2Trainer::update: no new chains");
  // Fine-tune on new chains mixed with the replay buffer so the update does
  // not catastrophically forget the previously learned modes.
  std::vector<nn::ChainSequence> mixed = new_chains;
  mixed.insert(mixed.end(), seen_chains_.begin(), seen_chains_.end());
  seen_chains_.insert(seen_chains_.end(), new_chains.begin(),
                      new_chains.end());
  return train_epochs(mixed, epochs, config_.learning_rate * 0.5f);
}

float Phase2Trainer::train_epochs(const std::vector<nn::ChainSequence>& chains,
                                  std::size_t epochs, float learning_rate) {
  obs::TraceSpan span("phase2.train");
  static obs::Counter& obs_epochs =
      obs::registry().counter(obs::kPhase2EpochsTotal);
  static obs::Gauge& obs_epoch_loss =
      obs::registry().gauge(obs::kPhase2EpochLoss);

  // One training window per predictable position of every chain, with the
  // same windowing phase 3 scores with: position t is predicted from the
  // up-to-`history` steps before it. Early positions therefore train with
  // short contexts, which is what lets inference flag failures before a
  // full history has accumulated (and what the Fig 8 early-flag sweep
  // exercises). Windows are grouped by length since a batch must be
  // rectangular.
  // Windows are additionally grouped by their *phrase signature*: common
  // failure modes contribute hundreds of identical-phrase windows while a
  // rare variant may contribute a handful, and with a plain shuffle the
  // majority modes dominate every gradient step and the rare transitions
  // never converge. Capping each signature per epoch balances the modes
  // while still cycling through each signature's deltaT diversity.
  std::map<std::uint64_t, std::vector<nn::ChainSequence>> by_signature;
  for (const nn::ChainSequence& chain : chains) {
    for (std::size_t t = 1; t < chain.size(); ++t) {
      const std::size_t ctx = std::min(t, config_.history);
      nn::ChainSequence window(
          chain.begin() + static_cast<std::ptrdiff_t>(t - ctx),
          chain.begin() + static_cast<std::ptrdiff_t>(t + 1));
      std::uint64_t sig = 0xcbf29ce484222325ULL + window.size();
      for (const nn::ChainStep& s : window) {
        sig ^= s.phrase;
        sig *= 0x100000001b3ULL;
      }
      by_signature[sig].push_back(std::move(window));
    }
  }
  util::require(!by_signature.empty(), "Phase2Trainer: chains too short");

  constexpr std::size_t kPerSignaturePerEpoch = 4;
  nn::RmsProp optimizer(learning_rate);

  // Replica-per-worker engine, reused across all epochs of this fit/update.
  const nn::ChainModelConfig model_config = model_.config();
  nn::DataParallelTrainer<nn::ChainModel> engine(
      model_,
      [&model_config] {
        util::Rng scratch(0);
        return std::make_unique<nn::ChainModel>(model_config, scratch);
      },
      config_.threads, config_.grad_shard_size);

  float last_epoch_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    // Draw a balanced sample, then batch it by window length.
    std::map<std::size_t, std::vector<nn::ChainSequence>> by_length;
    for (auto& [sig, instances] : by_signature) {
      rng_.shuffle(instances);
      const std::size_t take =
          std::min(kPerSignaturePerEpoch, instances.size());
      for (std::size_t i = 0; i < take; ++i)
        by_length[instances[i].size()].push_back(instances[i]);
    }
    double epoch_loss = 0;
    std::size_t batches = 0;
    for (auto& [length, windows] : by_length) {
      rng_.shuffle(windows);
      for (std::size_t start = 0; start < windows.size();
           start += config_.batch_size) {
        const std::size_t count =
            std::min(config_.batch_size, windows.size() - start);
        epoch_loss += engine.train_step(
            std::span<const nn::ChainSequence>(windows).subspan(start, count),
            optimizer, 5.0f,
            [](nn::ChainModel& replica, std::span<const nn::ChainSequence> shard) {
              return replica.forward_backward(shard);
            });
        ++batches;
      }
    }
    last_epoch_loss =
        static_cast<float>(epoch_loss / static_cast<double>(batches));
    obs_epochs.add();
    obs_epoch_loss.set(static_cast<double>(last_epoch_loss));
  }
  return last_epoch_loss;
}

}  // namespace desh::core
