// Phase 2 (Sec 3.2): re-training on the extracted failure chains, augmented
// with cumulative deltaT to the terminal phrase. The model learns "how late
// the terminal phrase is expected to appear in the sequence based on the
// previously seen phrases" — the lead-time capability of Desh.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "nn/chain_model.hpp"
#include "util/rng.hpp"

namespace desh::core {

class Phase2Trainer {
 public:
  Phase2Trainer(const Phase2Config& config, std::size_t vocab_size,
                util::Rng& rng);

  /// Slides a (history + 1)-step window over every training failure chain
  /// (1-step prediction, Table 5) and trains with MSE + RMSprop.
  /// Returns the final-epoch mean loss.
  float fit(const std::vector<nn::ChainSequence>& chains);

  /// Online model update (the capability Table 11 credits to DeepLog):
  /// folds newly confirmed failure chains into the already-trained model
  /// with a short fine-tuning pass instead of retraining from scratch.
  /// Requires a prior fit(); returns the fine-tune loss.
  float update(const std::vector<nn::ChainSequence>& new_chains,
               std::size_t epochs);

  nn::ChainModel& model() { return model_; }
  const nn::ChainModel& model() const { return model_; }
  const Phase2Config& config() const { return config_; }

 private:
  Phase2Config config_;
  util::Rng rng_;
  nn::ChainModel model_;
  bool fitted_ = false;
  std::vector<nn::ChainSequence> seen_chains_;  // replay buffer for update()

  float train_epochs(const std::vector<nn::ChainSequence>& chains,
                     std::size_t epochs, float learning_rate);
};

}  // namespace desh::core
