#include "core/phase3.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace desh::core {

std::string FailurePrediction::warning_message() const {
  if (!flagged) return "node " + node.to_string() + ": healthy";
  const double minutes = predicted_lead_seconds / 60.0;
  return "In " + util::format_fixed(minutes, 1) + " minutes, node " +
         node.to_string() + " located in " + node.location_description() +
         " is expected to fail";
}

Phase3Predictor::Phase3Predictor(const nn::InferenceBackend& backend,
                                 Phase3Config config)
    : backend_(backend), config_(config) {
  util::require(config_.min_position >= 1, "Phase3Predictor: min_position < 1");
  util::require(config_.decision_position >= config_.min_position,
                "Phase3Predictor: decision_position < min_position");
}

Phase3Predictor::Phase3Predictor(const nn::ChainModel& model,
                                 Phase3Config config)
    : owned_(std::make_shared<nn::ReferenceBackend>(model)),
      backend_(*owned_),
      config_(config) {
  util::require(config_.min_position >= 1, "Phase3Predictor: min_position < 1");
  util::require(config_.decision_position >= config_.min_position,
                "Phase3Predictor: decision_position < min_position");
}

FailurePrediction Phase3Predictor::decide(
    const chains::CandidateSequence& candidate) const {
  return decide_at(candidate, config_.decision_position);
}

FailurePrediction Phase3Predictor::finalize(
    const chains::CandidateSequence& candidate, std::size_t k_eff,
    const std::vector<nn::ChainStepScore>& scores) const {
  FailurePrediction out;
  out.node = candidate.node;
  out.sequence_end_time = candidate.end_time();
  out.decision_position = k_eff;
  // Lead time comes from the raw timestamps so it stays meaningful under
  // either deltaT encoding.
  out.lead_seconds =
      candidate.end_time() - candidate.events[k_eff].timestamp;

  double acc = 0;
  std::size_t used = 0;
  for (const nn::ChainStepScore& s : scores) {
    if (s.position > k_eff) break;
    acc += s.score;
    ++used;
    out.predicted_lead_seconds = s.predicted_dt;
  }
  if (used == 0) {
    // Too short to score at all: cannot be matched to a trained chain.
    out.flagged = false;
    out.score = std::numeric_limits<double>::infinity();
    return out;
  }
  out.score = acc / static_cast<double>(used);
  out.flagged = out.score <= config_.mse_threshold;
  return out;
}

FailurePrediction Phase3Predictor::decide_at(
    const chains::CandidateSequence& candidate,
    std::size_t decision_position) const {
  util::require(!candidate.events.empty(), "Phase3Predictor: empty candidate");
  const nn::ChainSequence seq =
      config_.cumulative_dt
          ? chains::DeltaTimeCalculator::to_chain_sequence(candidate)
          : chains::DeltaTimeCalculator::to_chain_sequence_adjacent(candidate);
  const std::size_t k_eff =
      std::min(decision_position, seq.size() - 1);
  // An earlier-than-default decision point (Fig 8 sweep) must also score
  // earlier positions, accepting the extra ambiguity of short contexts.
  const std::size_t min_pos = std::min(config_.min_position, k_eff);
  return finalize(candidate, k_eff, backend_.score_sequence(seq, min_pos));
}

std::vector<FailurePrediction> Phase3Predictor::decide_batch(
    std::span<const chains::CandidateSequence* const> candidates) const {
  std::vector<FailurePrediction> out(candidates.size());
  // Convert every candidate once, then group by sequence length: k_eff and
  // min_pos are functions of the length, so one group shares one batched
  // GEMM scoring pass.
  std::vector<nn::ChainSequence> seqs(candidates.size());
  std::map<std::size_t, std::vector<std::size_t>> by_length;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    util::require(!candidates[i]->events.empty(),
                  "Phase3Predictor: empty candidate");
    seqs[i] =
        config_.cumulative_dt
            ? chains::DeltaTimeCalculator::to_chain_sequence(*candidates[i])
            : chains::DeltaTimeCalculator::to_chain_sequence_adjacent(
                  *candidates[i]);
    by_length[seqs[i].size()].push_back(i);
  }
  for (const auto& [length, indices] : by_length) {
    const std::size_t k_eff = std::min(config_.decision_position, length - 1);
    const std::size_t min_pos = std::min(config_.min_position, k_eff);
    std::vector<const nn::ChainSequence*> group;
    group.reserve(indices.size());
    for (std::size_t i : indices) group.push_back(&seqs[i]);
    const std::vector<std::vector<nn::ChainStepScore>> scored =
        backend_.score_sequences(group, min_pos);
    for (std::size_t j = 0; j < indices.size(); ++j)
      out[indices[j]] = finalize(*candidates[indices[j]], k_eff, scored[j]);
  }
  return out;
}

}  // namespace desh::core
