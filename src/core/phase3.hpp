// Phase 3 (Sec 3.3): per-node inference. Each candidate sequence from the
// test stream is scored against the trained failure chains; a mean match
// score <= the MSE threshold at the decision point flags an impending node
// failure, and the deltaT at that point is the lead time — "In 2.5 minutes,
// node X located in Y is expected to fail".
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "chains/delta_time.hpp"
#include "chains/extractor.hpp"
#include "core/config.hpp"
#include "nn/inference_backend.hpp"

namespace desh::core {

struct FailurePrediction {
  logs::NodeId node;
  bool flagged = false;
  /// Mean match score over the checked positions (low = failure-like).
  double score = 0.0;
  /// Position (phrase index) at which the decision was taken.
  std::size_t decision_position = 0;
  /// Offline-evaluation lead time: the ground deltaT from the decision
  /// phrase to the sequence's final phrase, in seconds.
  double lead_seconds = 0.0;
  /// The model's own estimate of the remaining time (deployable quantity —
  /// available without knowing the future, used by the streaming monitor).
  double predicted_lead_seconds = 0.0;
  /// Timestamp of the candidate's final event (terminal for true failures).
  double sequence_end_time = 0.0;

  /// Operator-facing warning line (Sec 4.5's headline capability).
  std::string warning_message() const;
};

class Phase3Predictor {
 public:
  /// Scores through any inference engine behind the pluggable seam —
  /// reference, compiled or compiled+quantized are interchangeable here
  /// (take one from DeshPipeline::make_backend). Borrows the backend.
  Phase3Predictor(const nn::InferenceBackend& backend, Phase3Config config);

  /// Deprecated shim, kept for one release: wraps `model` in an owned
  /// nn::ReferenceBackend. Prefer the backend constructor.
  [[deprecated(
      "construct over an nn::InferenceBackend (e.g. "
      "DeshPipeline::make_backend)")]]
  Phase3Predictor(const nn::ChainModel& model, Phase3Config config);

  /// Decision at the configured operating point.
  FailurePrediction decide(const chains::CandidateSequence& candidate) const;

  /// Batched decide over many candidates (one per node, in the serving
  /// micro-batcher): candidates of equal length share one batched scoring
  /// pass (InferenceBackend::score_sequences), so per-candidate cost
  /// amortizes with batch width. out[i] is bit-identical to
  /// decide(*candidates[i]) — every backend guarantees it.
  std::vector<FailurePrediction> decide_batch(
      std::span<const chains::CandidateSequence* const> candidates) const;

  /// Decision after checking exactly `decision_position` phrases — the
  /// Fig 8 lead-time/FP-rate sensitivity knob ("if failure is flagged after
  /// checking P2 or P1, we obtain 4 minutes lead time at the expense of an
  /// increasing false positive rate").
  FailurePrediction decide_at(const chains::CandidateSequence& candidate,
                              std::size_t decision_position) const;

  const Phase3Config& config() const { return config_; }

 private:
  /// Shared aggregation of per-position scores into a decision — keeps
  /// decide_at and decide_batch numerically identical by construction.
  FailurePrediction finalize(const chains::CandidateSequence& candidate,
                             std::size_t k_eff,
                             const std::vector<nn::ChainStepScore>& scores) const;

  /// Non-null only when constructed through the deprecated model shim; keeps
  /// the predictor copyable while the shimmed backend stays alive.
  std::shared_ptr<const nn::InferenceBackend> owned_;
  const nn::InferenceBackend& backend_;
  Phase3Config config_;
};

}  // namespace desh::core
