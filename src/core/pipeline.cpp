#include "core/pipeline.hpp"

#include "chains/delta_time.hpp"
#include "compile/backend.hpp"
#include "embed/skipgram.hpp"
#include "nn/warm_start.hpp"
#include "obs/catalog.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace desh::core {

namespace {

std::string join_violations(const std::vector<std::string>& violations) {
  std::string joined = "DeshConfig invalid:";
  for (const std::string& v : violations) joined += "\n  " + v;
  return joined;
}

}  // namespace

DeshPipeline::DeshPipeline(DeshConfig config)
    : config_(config), rng_(config.seed) {
  // Reject bad values before any model is built: a zero hidden size or an
  // out-of-range threshold used to surface only as NaN losses mid-fit.
  const std::vector<std::string> violations = config_.validate();
  util::require(violations.empty(), join_violations(violations));
  // The pipeline-wide thread count flows into every stage that has not set
  // its own; 0 everywhere defers to DESH_THREADS / the hardware at run time.
  if (config_.phase1.threads == 0) config_.phase1.threads = config_.threads;
  if (config_.phase2.threads == 0) config_.phase2.threads = config_.threads;
}

Expected<DeshPipeline> DeshPipeline::create(DeshConfig config) {
  const std::vector<std::string> violations = config.validate();
  if (!violations.empty())
    return Error{ErrorCode::kInvalidConfig, join_violations(violations)};
  return DeshPipeline(std::move(config));
}

const chains::PhraseLabeler& DeshPipeline::labeler() const {
  util::require(labeler_.has_value(), "DeshPipeline: fit() has not run");
  return *labeler_;
}

Phase1Trainer& DeshPipeline::phase1() {
  util::require(phase1_ != nullptr, "DeshPipeline: fit() has not run");
  return *phase1_;
}

const Phase1Trainer& DeshPipeline::phase1() const {
  util::require(phase1_ != nullptr, "DeshPipeline: fit() has not run");
  return *phase1_;
}

Phase2Trainer& DeshPipeline::phase2() {
  util::require(phase2_ != nullptr, "DeshPipeline: fit() has not run");
  return *phase2_;
}

const Phase2Trainer& DeshPipeline::phase2() const {
  util::require(phase2_ != nullptr, "DeshPipeline: fit() has not run");
  return *phase2_;
}

FitReport DeshPipeline::fit(const logs::LogCorpus& train_corpus) {
  return fit_impl(train_corpus, nullptr);
}

FitReport DeshPipeline::fit(const logs::LogCorpus& train_corpus,
                            const DeshPipeline& warm_from) {
  util::require(warm_from.fitted(),
                "DeshPipeline::fit: warm_from is not fitted");
  util::require(&warm_from != this,
                "DeshPipeline::fit: cannot warm-start from self");
  return fit_impl(train_corpus, &warm_from);
}

namespace {

/// challenger id -> champion id (kNoWarmSource when the champion never saw
/// the phrase). <unk> maps to <unk>: both sides reserve id 0 for it.
std::vector<std::uint32_t> build_warm_id_map(const logs::PhraseVocab& dst,
                                             const logs::PhraseVocab& src) {
  std::vector<std::uint32_t> map(dst.size(), nn::kNoWarmSource);
  map[logs::PhraseVocab::kUnknownId] = logs::PhraseVocab::kUnknownId;
  for (std::uint32_t id = 0; id < dst.size(); ++id) {
    if (id == logs::PhraseVocab::kUnknownId) continue;
    const std::uint32_t s = src.encode(dst.decode(id));
    if (s != logs::PhraseVocab::kUnknownId) map[id] = s;
  }
  return map;
}

}  // namespace

FitReport DeshPipeline::fit_impl(const logs::LogCorpus& train_corpus,
                                 const DeshPipeline* warm_from) {
  util::require(!train_corpus.empty(), "DeshPipeline::fit: empty corpus");
  // Child spans (skipgram.train, phase1.fit, phase2.train) nest under this
  // one, so a scrape shows the fit broken down by stage.
  obs::TraceSpan span("pipeline.fit");
  FitReport report;

  // (1) Parse the raw log: static/dynamic split + phrase encoding.
  chains::ParsedLog parsed =
      chains::parse_corpus(train_corpus, vocab_, /*grow_vocab=*/true);
  report.train_events = parsed.event_count;
  report.vocab_size = vocab_.size();

  // Warm start: ids are assigned in first-seen order, so the same template
  // almost never has the same id in this vocabulary and warm_from's — the
  // copy below remaps by template, not by index.
  std::vector<std::uint32_t> warm_map;
  if (warm_from != nullptr)
    warm_map = build_warm_id_map(vocab_, warm_from->vocab());

  // (2) Optional skip-gram pre-training of the phrase embedding space
  // (Sec 3.1: word2vec-style vectors with an asymmetric 8/3 window).
  tensor::Matrix pretrained;
  if (config_.skipgram.enabled) {
    util::Stopwatch sw;
    std::vector<std::vector<std::uint32_t>> sequences;
    for (const logs::NodeId& node : parsed.sorted_nodes()) {
      std::vector<std::uint32_t> ids;
      const auto& events = parsed.by_node.at(node);
      ids.reserve(events.size());
      for (const chains::ParsedEvent& e : events) ids.push_back(e.phrase);
      sequences.push_back(std::move(ids));
    }
    embed::SkipGramConfig sg_config;
    sg_config.vocab_size = vocab_.size();
    sg_config.dim = config_.phase1.embed_dim;
    sg_config.threads = config_.threads;
    embed::SkipGram skipgram(sg_config, rng_);
    skipgram.train(sequences, config_.skipgram.epochs);
    pretrained = skipgram.vectors();
    report.skipgram_seconds = sw.elapsed_seconds();
  }

  // (3) Phase 1: LSTM language model over node-concatenated phrase streams.
  {
    util::Stopwatch sw;
    phase1_ = std::make_unique<Phase1Trainer>(config_.phase1, vocab_.size(),
                                              rng_);
    if (!pretrained.empty()) phase1_->model().embedding().load_pretrained(pretrained);
    // Warm start wins over skip-gram init for phrases the champion trained
    // on; new phrases keep the skip-gram (or fresh) vectors.
    if (warm_from != nullptr)
      nn::warm_start_parameters(phase1_->model().parameters(),
                                warm_from->phase1().model().parameters(),
                                warm_map, vocab_.size(),
                                warm_from->vocab().size());
    report.phase1_loss = phase1_->fit(parsed);
    report.phase1_accuracy = phase1_->accuracy(parsed, config_.phase1.history);
    report.phase1_seconds = sw.elapsed_seconds();
  }

  // (4) Phrase labeling (Safe/Unknown/Error) + failure-chain formation.
  labeler_.emplace(vocab_);
  chains::ChainExtractor extractor(config_.extractor);
  auto candidates = extractor.extract(parsed, *labeler_);
  report.candidates = candidates.size();

  training_chains_.clear();
  for (const chains::CandidateSequence& c : candidates)
    if (c.ends_with_terminal)
      training_chains_.push_back(
          config_.phase3.cumulative_dt
              ? chains::DeltaTimeCalculator::to_chain_sequence(c)
              : chains::DeltaTimeCalculator::to_chain_sequence_adjacent(c));
  report.failure_chains = training_chains_.size();
  util::require(!training_chains_.empty(),
                "DeshPipeline::fit: no failure chains in the training window");

  // (5) Phase 2: deltaT-augmented retraining on the failure chains.
  {
    util::Stopwatch sw;
    phase2_ = std::make_unique<Phase2Trainer>(config_.phase2, vocab_.size(),
                                              rng_);
    if (!pretrained.empty() &&
        config_.phase2.embed_dim == config_.phase1.embed_dim)
      phase2_->model().embedding().load_pretrained(pretrained);
    if (warm_from != nullptr)
      nn::warm_start_parameters(phase2_->model().parameters(),
                                warm_from->phase2().model().parameters(),
                                warm_map, vocab_.size(),
                                warm_from->vocab().size());
    report.phase2_loss = phase2_->fit(training_chains_);
    report.phase2_seconds = sw.elapsed_seconds();
  }

  fitted_ = true;
  return report;
}

Expected<std::shared_ptr<const nn::InferenceBackend>>
DeshPipeline::make_backend(const CompileConfig& compile_config) const {
  util::require(fitted_, "DeshPipeline::make_backend: fit() has not run");
  const std::vector<std::string> violations = compile_config.validate();
  if (!violations.empty()) {
    std::string joined = "CompileConfig invalid:";
    for (const std::string& v : violations) joined += "\n  " + v;
    return Error{ErrorCode::kInvalidConfig, joined};
  }
  // Quantization calibrates against the phase-2 training chains: the same
  // distribution phase 3 scores in production.
  return compile::compile_backend(phase2_->model(), &phase1_->model(),
                                  compile_config, training_chains_);
}

TestRun DeshPipeline::predict(const logs::LogCorpus& test_corpus) const {
  util::require(fitted_, "DeshPipeline::predict: fit() has not run");
  obs::TraceSpan span("pipeline.predict");
  TestRun run;
  // Vocabulary is frozen: unseen test templates encode to <unk>.
  logs::PhraseVocab frozen = vocab_;
  chains::ParsedLog parsed =
      chains::parse_corpus(test_corpus, frozen, /*grow_vocab=*/false);
  chains::ChainExtractor extractor(config_.extractor);
  run.candidates = extractor.extract(parsed, *labeler_);

  // Candidate scoring is embarrassingly parallel: decide() is const and each
  // result lands in its own slot, so the output order is always the
  // candidate order regardless of thread count. Scoring goes through the
  // engine DeshConfig::compile selects (reference by default).
  std::shared_ptr<const nn::InferenceBackend> backend =
      make_backend().value();
  Phase3Predictor predictor(*backend, config_.phase3);
  run.predictions.resize(run.candidates.size());
  util::ThreadPool pool(config_.threads);
  util::Stopwatch score_timer;
  pool.parallel_for(run.candidates.size(), [&](std::size_t i, std::size_t) {
    run.predictions[i] = predictor.decide(run.candidates[i]);
  });
  obs::registry().counter(obs::kPredictCandidatesTotal)
      .add(run.candidates.size());
  obs::registry().histogram(obs::kPredictScoreSeconds)
      .observe(score_timer.elapsed_seconds());
  return run;
}

std::vector<FailurePrediction> DeshPipeline::redecide(
    const std::vector<chains::CandidateSequence>& candidates,
    std::size_t decision_position) const {
  util::require(fitted_, "DeshPipeline::redecide: fit() has not run");
  std::shared_ptr<const nn::InferenceBackend> backend =
      make_backend().value();
  Phase3Predictor predictor(*backend, config_.phase3);
  std::vector<FailurePrediction> out(candidates.size());
  util::ThreadPool pool(config_.threads);
  util::Stopwatch score_timer;
  pool.parallel_for(candidates.size(), [&](std::size_t i, std::size_t) {
    out[i] = predictor.decide_at(candidates[i], decision_position);
  });
  obs::registry().counter(obs::kPredictCandidatesTotal).add(candidates.size());
  obs::registry().histogram(obs::kPredictScoreSeconds)
      .observe(score_timer.elapsed_seconds());
  return out;
}

std::pair<logs::LogCorpus, logs::LogCorpus> split_corpus(
    const logs::LogCorpus& corpus, double split_time) {
  logs::LogCorpus train, test;
  for (const logs::LogRecord& r : corpus)
    (r.timestamp < split_time ? train : test).push_back(r);
  return {std::move(train), std::move(test)};
}

}  // namespace desh::core
