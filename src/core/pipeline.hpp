// DeshPipeline: the end-to-end system façade. Wires together the raw-log
// parser, phase-1 language modeling, expert labeling, failure-chain
// extraction, deltaT augmentation, phase-2 retraining and the phase-3
// predictor — Figure 2 of the paper as one object.
//
// Usage:
//   DeshPipeline pipeline(config);
//   pipeline.fit(train_corpus);             // phases 1 + 2 (offline)
//   auto run = pipeline.predict(test_corpus);  // phase 3
//   for (auto& p : run.predictions) if (p.flagged) alert(p.warning_message());
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "chains/extractor.hpp"
#include "chains/labeler.hpp"
#include "chains/parsed_log.hpp"
#include "core/config.hpp"
#include "core/expected.hpp"
#include "core/phase1.hpp"
#include "core/phase2.hpp"
#include "core/phase3.hpp"
#include "logs/record.hpp"
#include "logs/vocab.hpp"

namespace desh::core {

/// Summary of an offline training run (phases 1 and 2).
struct FitReport {
  std::size_t train_events = 0;
  std::size_t vocab_size = 0;
  std::size_t failure_chains = 0;   // extracted from the training window
  std::size_t candidates = 0;       // all anomalous candidates seen
  float phase1_loss = 0;
  float phase2_loss = 0;
  double phase1_accuracy = 0;       // next-phrase top-1 on training data
  double skipgram_seconds = 0;
  double phase1_seconds = 0;
  double phase2_seconds = 0;
};

/// One phase-3 pass over a test corpus.
struct TestRun {
  std::vector<chains::CandidateSequence> candidates;
  std::vector<FailurePrediction> predictions;  // parallel to candidates
};

class DeshPipeline {
 public:
  /// Validates `config` (DeshConfig::validate) and rejects bad values up
  /// front by throwing util::InvalidArgument listing every violation.
  /// Prefer create() on the supported surface — it reports the same
  /// violations as an Error value instead of an exception.
  explicit DeshPipeline(DeshConfig config = {});

  /// Non-throwing construction: ErrorCode::kInvalidConfig carrying all
  /// validation violations, or a ready-to-fit pipeline.
  [[nodiscard]] static Expected<DeshPipeline> create(DeshConfig config = {});

  /// Offline training on the raw training corpus (the paper's first 30% of
  /// each system's logs). Builds the vocabulary, optionally pre-trains
  /// skip-gram embeddings, trains phases 1 and 2.
  FitReport fit(const logs::LogCorpus& train_corpus);

  /// Warm-started fit for online adaptation (DESIGN.md "Online
  /// adaptation"): same stages as fit(), but after each model is built its
  /// weights are seeded from `warm_from`'s trained values via
  /// nn::warm_start_parameters — embedding rows and head columns are
  /// remapped across the two vocabularies (this pipeline's vocabulary is
  /// rebuilt from `train_corpus`, so ids differ), LSTM weights copy
  /// verbatim, and phrases `warm_from` never saw keep their fresh
  /// initialization. `warm_from` must be fitted. Deterministic: for a fixed
  /// corpus, config and warm_from, the result is bit-identical.
  FitReport fit(const logs::LogCorpus& train_corpus,
                const DeshPipeline& warm_from);

  /// Builds the inference engine `compile_config` selects over this
  /// pipeline's trained models (nn/inference_backend.hpp): reference,
  /// compiled, or compiled+quantized (calibrated against the reference
  /// engine over training_chains()). Requires fit() first (precondition,
  /// throws); config problems and calibration rejections come back as
  /// Errors. The backend borrows the pipeline's models — it must not
  /// outlive the pipeline, and a refit invalidates it.
  [[nodiscard]] Expected<std::shared_ptr<const nn::InferenceBackend>>
  make_backend(const CompileConfig& compile_config) const;
  /// The engine DeshConfig::compile selects (predict/redecide score
  /// through it).
  [[nodiscard]] Expected<std::shared_ptr<const nn::InferenceBackend>>
  make_backend() const {
    return make_backend(config_.compile);
  }

  /// Phase-3 inference over a raw test corpus. Requires fit() first.
  TestRun predict(const logs::LogCorpus& test_corpus) const;

  /// Re-decides an existing run at a different flag position (Fig 8 sweep)
  /// without re-extracting candidates.
  std::vector<FailurePrediction> redecide(
      const std::vector<chains::CandidateSequence>& candidates,
      std::size_t decision_position) const;

  bool fitted() const { return fitted_; }
  const DeshConfig& config() const { return config_; }
  const logs::PhraseVocab& vocab() const { return vocab_; }
  const chains::PhraseLabeler& labeler() const;
  Phase1Trainer& phase1();
  const Phase1Trainer& phase1() const;
  Phase2Trainer& phase2();
  const Phase2Trainer& phase2() const;
  /// Training failure chains (deltaT-augmented) — phase 2's input.
  const std::vector<nn::ChainSequence>& training_chains() const {
    return training_chains_;
  }

 private:
  friend Expected<void> try_save_pipeline(const DeshPipeline&,
                                          const std::string&);
  friend Expected<DeshPipeline> try_load_pipeline(const std::string&);

  FitReport fit_impl(const logs::LogCorpus& train_corpus,
                     const DeshPipeline* warm_from);

  DeshConfig config_;
  util::Rng rng_;
  logs::PhraseVocab vocab_;
  std::optional<chains::PhraseLabeler> labeler_;
  std::unique_ptr<Phase1Trainer> phase1_;
  std::unique_ptr<Phase2Trainer> phase2_;
  std::vector<nn::ChainSequence> training_chains_;
  bool fitted_ = false;
};

[[nodiscard]] Expected<void> try_save_pipeline(const DeshPipeline& pipeline,
                                               const std::string& directory);
[[nodiscard]] Expected<DeshPipeline> try_load_pipeline(
    const std::string& directory);

/// Splits a corpus at `split_time`: records strictly before it are training
/// (the paper's 30%/70% temporal split, Sec 4).
std::pair<logs::LogCorpus, logs::LogCorpus> split_corpus(
    const logs::LogCorpus& corpus, double split_time);

}  // namespace desh::core
