#include "core/sensitivity.hpp"

#include "util/error.hpp"

namespace desh::core {

std::vector<SensitivityPoint> lead_time_sensitivity(
    const DeshPipeline& pipeline, const TestRun& run,
    const logs::GroundTruth& truth, std::size_t min_position,
    std::size_t max_position) {
  util::require(min_position >= 1 && min_position <= max_position,
                "lead_time_sensitivity: bad position range");
  std::vector<SensitivityPoint> out;
  for (std::size_t k = min_position; k <= max_position; ++k) {
    const auto predictions = pipeline.redecide(run.candidates, k);
    const SystemEvaluation eval =
        Evaluator::evaluate(run.candidates, predictions, truth);
    SensitivityPoint point;
    point.decision_position = k;
    point.mean_lead_seconds = eval.lead_times.mean();
    point.fp_rate = eval.metrics.fp_rate * 100.0;
    point.recall = eval.metrics.recall * 100.0;
    point.tp = eval.counts.tp;
    point.fp = eval.counts.fp;
    out.push_back(point);
  }
  return out;
}

}  // namespace desh::core
