// Lead-time vs false-positive-rate sensitivity study (Fig 8): sweep the
// decision position (how many phrases are checked before flagging) and
// record, per operating point, the mean true-positive lead time and the
// false-positive rate. Earlier flags buy longer lead times at the expense
// of false positives (Observation 3's trade-off).
#pragma once

#include <vector>

#include "core/evaluator.hpp"
#include "core/pipeline.hpp"

namespace desh::core {

struct SensitivityPoint {
  std::size_t decision_position = 0;
  double mean_lead_seconds = 0;
  double fp_rate = 0;      // percent
  double recall = 0;       // percent
  std::size_t tp = 0, fp = 0;
};

/// Re-decides the candidates of `run` at every position in
/// [min_position, max_position] and evaluates each operating point.
std::vector<SensitivityPoint> lead_time_sensitivity(
    const DeshPipeline& pipeline, const TestRun& run,
    const logs::GroundTruth& truth, std::size_t min_position,
    std::size_t max_position);

}  // namespace desh::core
