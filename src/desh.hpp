// desh.hpp — the supported public surface of Desh, in one include.
//
// Everything exported here is stable API: configuration, the end-to-end
// pipeline, the streaming monitor, the serving engine, persistence, and
// telemetry control. Symbols in subsystem headers but NOT re-exported here
// (trainers, tensor ops, template mining, ...) are implementation surface
// and may change between releases.
//
// Error model: no entry point exported here throws for I/O or configuration
// errors — fallible operations return core::Expected<T> (a value or an
// Error{code, message}). Exceptions remain only for programmer errors
// (precondition violations) and in the [[deprecated]] migration wrappers.
//
//   #include "desh.hpp"
//   auto pipeline = desh::DeshPipeline::create(config);   // Expected
//   pipeline.value().fit(train_corpus);
//   auto server = desh::serve::InferenceServer::create(pipeline.value());
#pragma once

#include "adapt/controller.hpp"
#include "adapt/registry.hpp"
#include "compile/backend.hpp"
#include "core/config.hpp"
#include "core/expected.hpp"
#include "core/monitor.hpp"
#include "core/persistence.hpp"
#include "core/pipeline.hpp"
#include "fleet/controller.hpp"
#include "ingest/pump.hpp"
#include "logs/record.hpp"
#include "logs/syslog.hpp"
#include "nn/inference_backend.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace desh {

// --- errors ---------------------------------------------------------------
/// Machine-readable failure categories carried by every Error.
using core::ErrorCode;
/// The failure value: an ErrorCode plus a human-readable message.
using core::Error;
/// Value-or-Error result of every fallible supported entry point.
using core::Expected;

// --- configuration --------------------------------------------------------
/// Full system configuration (phases 1-3, extractor, skip-gram);
/// DeshConfig::validate() lists every violation with its field path.
using core::DeshConfig;

// --- inference engines -----------------------------------------------------
/// Engine-neutral scoring seam every serving consumer (StreamingMonitor,
/// serve::InferenceServer, adapt) goes through; implementations are the
/// reference model walk and the compiled VM (DESIGN.md §15).
using nn::InferenceBackend;
/// Engine selection + quantization policy (DeshConfig::compile): reference,
/// compiled, or compiled+quantized with a calibration accuracy gate.
using core::BackendKind;
using core::CompileConfig;
using core::QuantMode;

// --- the offline pipeline (phases 1-3, Figure 2) --------------------------
/// End-to-end system façade: fit() on a training corpus, predict() on a
/// test corpus. Construct via DeshPipeline::create() (non-throwing).
using core::DeshPipeline;
/// Summary of one fit() run (losses, vocabulary, chain counts, timings).
using core::FitReport;
/// One predict() pass: candidate sequences plus their per-node predictions.
using core::TestRun;
/// Phase-3 verdict for one candidate, including the operator warning line.
using core::FailurePrediction;

// --- persistence ----------------------------------------------------------
/// Writes a fitted pipeline to a directory. Errors: kIo, kInvalidArgument.
using core::try_save_pipeline;
/// Reads a pipeline saved by this or the previous format version. Errors:
/// kIo, kFormatVersion (future/retired formats), kInvalidConfig.
using core::try_load_pipeline;
/// Newest on-disk format written, and oldest still readable.
using core::kPipelineFormatVersion;
using core::kOldestReadablePipelineFormat;

// --- streaming deployment (Sec 4.5) ---------------------------------------
/// Online per-record monitor over a fitted pipeline: observe() raw records,
/// get lead-time alerts the moment a failure chain matches.
using core::StreamingMonitor;
/// StreamingMonitor tuning: window gap, alert re-arm, worker count.
using core::MonitorConfig;
/// One raised alert: node, time, predicted lead, operator message.
using core::MonitorAlert;

// --- raw log model --------------------------------------------------------
/// One console-log line: (timestamp, node, message).
using logs::LogRecord;
/// A timestamp-ordered vector of LogRecords.
using logs::LogCorpus;
/// Physical Cray node identifier (cA-BcCsSnN), carried through to alerts.
using logs::NodeId;

// --- telemetry ------------------------------------------------------------
/// Runtime switch and tuning for the desh::obs metric registry.
using obs::DeshObsConfig;
/// Enables/disables metric recording process-wide: obs::configure(...).
namespace observability = ::desh::obs;

// The serving engine is exported as the nested namespace desh::serve:
//   serve::InferenceServer — micro-batched online inference server
//                            (create / submit / poll_alerts / swap_model /
//                            set_tap)
//   serve::ServeConfig     — queue bound, batch width, shed policy
//   serve::Admission       — submit() outcome (explicit backpressure)
//   serve::ShedPolicy      — overload drop policy
//   serve::ServeStats      — lifetime counters snapshot

// Online adaptation is exported as the nested namespace desh::adapt:
//   adapt::AdaptController — drift detection + background retraining +
//                            validated swap, closed-loop around a server
//   adapt::AdaptOptions    — adapt knobs, challenger trainer config,
//                            registry root/capacity
//   adapt::AdaptStats      — lifecycle counters snapshot
//   adapt::DriftDetector   — standalone sliding-window drift signals
//   adapt::DriftStatus     — point-in-time signal view
//   adapt::ModelRegistry   — versioned snapshots, promote/rollback
//   adapt::ShadowReport    — champion-vs-challenger held-out scores
// The detection thresholds themselves live in core::AdaptConfig
// (DeshConfig::adapt), so they validate with every other config field.

// Fleet-scale serving is exported as the nested namespace desh::fleet:
//   fleet::FleetController — N consistent-hash-routed serving shards
//                            behind one submit/poll surface, with
//                            drain/restart-from-WAL per shard and rolling
//                            model reload with probation rollback
//   fleet::FleetOptions    — topology (core::FleetConfig) + the per-shard
//                            serve::ServeConfig template
//   fleet::ShardRouter     — the standalone consistent-hash ring
//   fleet::FleetAggregator — cluster-health merge (top-K at-risk nodes,
//                            per-shard admission/shed/latency stats)
//   fleet::FleetHealth     — the merged dashboard view
// The topology knobs live in core::FleetConfig so they validate with every
// other config field. FLEET.md is the operations handbook.

// The raw-log frontend is exported as the nested namespace desh::ingest:
//   ingest::IngestPump      — raw syslog bytes -> parse -> track -> submit
//                             to a server or fleet, backpressure-aware
//                             (create / feed_bytes / feed_file / finish)
//   ingest::IngestStats     — frontend counters (lines, torn, unparseable,
//                             oversize, novel templates, retries)
//   ingest::LineSplitter    — chunk stream -> lines, torn-line stitching,
//                             zero steady-state allocation
//   ingest::SyslogViewParser— allocation-free field parser, bit-identical
//                             acceptance with logs::parse_syslog_line
//   ingest::TemplateTracker — thread-safe online Drain template ids +
//                             incremental phrase vocabulary
// The chunking/retry knobs live in core::IngestConfig. Syslog text
// emitters (logs::render_syslog_text / save_syslog_file /
// canonicalize_syslog) come along via logs/syslog.hpp.

}  // namespace desh
