#include "embed/skipgram.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::embed {

SkipGram::SkipGram(const SkipGramConfig& config, util::Rng& rng)
    : config_(config),
      rng_(rng.fork(0x5169u)),
      w_in_(tensor::Matrix::uniform(config.vocab_size, config.dim,
                                    0.5f / static_cast<float>(config.dim),
                                    rng_)),
      w_out_(config.vocab_size, config.dim, 0.0f) {
  util::require(config.vocab_size > 1, "SkipGram: vocab_size must be > 1");
  util::require(config.dim > 0, "SkipGram: dim must be > 0");
}

void SkipGram::train_pair(std::uint32_t target, std::uint32_t context, float lr,
                          const util::AliasSampler& sampler) {
  const std::size_t E = config_.dim;
  float* vt = w_in_.data() + target * E;
  std::vector<float> grad_target(E, 0.0f);

  auto update = [&](std::uint32_t out_id, float label) {
    float* vo = w_out_.data() + out_id * E;
    float score = 0.0f;
    for (std::size_t c = 0; c < E; ++c) score += vt[c] * vo[c];
    const float pred = 1.0f / (1.0f + std::exp(-score));
    const float g = lr * (label - pred);
    for (std::size_t c = 0; c < E; ++c) {
      grad_target[c] += g * vo[c];
      vo[c] += g * vt[c];
    }
  };

  update(context, 1.0f);
  for (std::size_t n = 0; n < config_.negatives; ++n) {
    const auto neg = static_cast<std::uint32_t>(sampler.sample(rng_));
    if (neg == context) continue;
    update(neg, 0.0f);
  }
  for (std::size_t c = 0; c < E; ++c) vt[c] += grad_target[c];
}

void SkipGram::train(std::span<const std::vector<std::uint32_t>> sequences,
                     std::size_t epochs) {
  util::require(epochs >= 1, "SkipGram::train: epochs must be >= 1");

  // Unigram^(3/4) negative-sampling distribution from the corpus.
  std::vector<double> counts(config_.vocab_size, 0.0);
  std::size_t total_tokens = 0;
  for (const auto& seq : sequences)
    for (std::uint32_t id : seq) {
      util::require(id < config_.vocab_size, "SkipGram::train: id out of vocab");
      counts[id] += 1.0;
      ++total_tokens;
    }
  util::require(total_tokens > 1, "SkipGram::train: corpus too small");
  for (double& c : counts) c = std::pow(c + 1.0, 0.75);  // +1 smooths unseen ids
  util::AliasSampler sampler(counts);

  const std::size_t total_steps = epochs * total_tokens;
  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& seq : sequences) {
      const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(seq.size());
      for (std::ptrdiff_t t = 0; t < n; ++t, ++step) {
        // Linear learning-rate decay across the whole run.
        const float frac =
            static_cast<float>(step) / static_cast<float>(total_steps);
        const float lr = std::max(
            config_.min_learning_rate,
            config_.learning_rate * (1.0f - frac));
        const std::ptrdiff_t lo =
            std::max<std::ptrdiff_t>(0, t - static_cast<std::ptrdiff_t>(
                                             config_.window_before));
        const std::ptrdiff_t hi =
            std::min(n - 1, t + static_cast<std::ptrdiff_t>(config_.window_after));
        for (std::ptrdiff_t c = lo; c <= hi; ++c) {
          if (c == t) continue;
          train_pair(seq[static_cast<std::size_t>(t)],
                     seq[static_cast<std::size_t>(c)], lr, sampler);
        }
      }
    }
  }
}

float SkipGram::cosine(std::uint32_t a, std::uint32_t b) const {
  util::require(a < config_.vocab_size && b < config_.vocab_size,
                "SkipGram::cosine: id out of vocab");
  std::span<const float> va = w_in_.row(a);
  std::span<const float> vb = w_in_.row(b);
  const float na = std::sqrt(tensor::dot(va, va));
  const float nb = std::sqrt(tensor::dot(vb, vb));
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return tensor::dot(va, vb) / (na * nb);
}

std::vector<std::pair<std::uint32_t, float>> SkipGram::most_similar(
    std::uint32_t id, std::size_t k) const {
  util::require(id < config_.vocab_size, "SkipGram::most_similar: bad id");
  std::vector<std::pair<std::uint32_t, float>> sims;
  sims.reserve(config_.vocab_size - 1);
  for (std::uint32_t other = 0; other < config_.vocab_size; ++other) {
    if (other == id) continue;
    sims.emplace_back(other, cosine(id, other));
  }
  const std::size_t take = std::min(k, sims.size());
  std::partial_sort(sims.begin(),
                    sims.begin() + static_cast<std::ptrdiff_t>(take), sims.end(),
                    [](const auto& x, const auto& y) { return x.second > y.second; });
  sims.resize(take);
  return sims;
}

}  // namespace desh::embed
