#include "embed/skipgram.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/catalog.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace desh::embed {

namespace {

/// One shard's pending row updates: parallel arrays of (row id, table id,
/// dim-wide delta). Applied to the weight tables in emission order after the
/// block barrier — the deterministic shard-ordered reduction.
struct UpdateList {
  std::vector<std::uint32_t> rows;
  std::vector<std::uint8_t> tables;  // 0 = w_in (targets), 1 = w_out
  std::vector<float> deltas;         // rows.size() x dim, flattened

  void clear() {
    rows.clear();
    tables.clear();
    deltas.clear();
  }
};

/// A shard's private view of the rows it has touched this block: reads see
/// the shard's own prior writes (sequential online-SGD semantics within a
/// shard), while other shards' writes stay invisible until the block
/// barrier. Without this, repeated pairs inside one shard would all compute
/// the same full-lr step from stale weights and their sum would diverge.
class RowOverlay {
 public:
  void reset(const tensor::Matrix* base, std::size_t dim) {
    base_ = base;
    dim_ = dim;
    rows_.clear();
  }

  float* row(std::uint32_t r) {
    auto [it, inserted] = rows_.try_emplace(r);
    if (inserted)
      it->second.assign(base_->data() + r * dim_,
                        base_->data() + (r + 1) * dim_);
    return it->second.data();
  }

 private:
  const tensor::Matrix* base_ = nullptr;
  std::size_t dim_ = 0;
  std::unordered_map<std::uint32_t, std::vector<float>> rows_;
};

}  // namespace

SkipGram::SkipGram(const SkipGramConfig& config, util::Rng& rng)
    : config_(config),
      rng_(rng.fork(0x5169u)),
      w_in_(tensor::Matrix::uniform(config.vocab_size, config.dim,
                                    0.5f / static_cast<float>(config.dim),
                                    rng_)),
      w_out_(config.vocab_size, config.dim, 0.0f) {
  util::require(config.vocab_size > 1, "SkipGram: vocab_size must be > 1");
  util::require(config.dim > 0, "SkipGram: dim must be > 0");
}

void SkipGram::train(std::span<const std::vector<std::uint32_t>> sequences,
                     std::size_t epochs) {
  util::require(epochs >= 1, "SkipGram::train: epochs must be >= 1");
  obs::TraceSpan obs_span("skipgram.train");
  static obs::Counter& obs_pairs =
      obs::registry().counter(obs::kSkipgramPairsTotal);
  static obs::Counter& obs_positions =
      obs::registry().counter(obs::kSkipgramPositionsTotal);
  const std::uint64_t pairs_before = obs_pairs.value();
  util::Stopwatch obs_timer;

  // Unigram^(3/4) negative-sampling distribution from the corpus.
  std::vector<double> counts(config_.vocab_size, 0.0);
  std::size_t total_tokens = 0;
  for (const auto& seq : sequences)
    for (std::uint32_t id : seq) {
      util::require(id < config_.vocab_size, "SkipGram::train: id out of vocab");
      counts[id] += 1.0;
      ++total_tokens;
    }
  util::require(total_tokens > 1, "SkipGram::train: corpus too small");
  for (double& c : counts) c = std::pow(c + 1.0, 0.75);  // +1 smooths unseen ids
  util::AliasSampler sampler(counts);

  // Flatten the corpus into (sequence, offset) positions so blocks and
  // shards are plain index ranges; the position index doubles as the
  // learning-rate decay step, matching the sequential schedule.
  struct Position {
    std::uint32_t seq;
    std::uint32_t offset;
  };
  std::vector<Position> positions;
  positions.reserve(total_tokens);
  for (std::size_t si = 0; si < sequences.size(); ++si)
    for (std::size_t t = 0; t < sequences[si].size(); ++t)
      positions.push_back({static_cast<std::uint32_t>(si),
                           static_cast<std::uint32_t>(t)});

  const std::size_t E = config_.dim;
  const std::size_t block = std::max<std::size_t>(1, config_.block_positions);
  const std::size_t shard = std::min(
      std::max<std::size_t>(1, config_.shard_positions), block);
  const std::size_t slots = (block + shard - 1) / shard;

  // One negative-sampling stream per shard slot. Slot s serves the s-th
  // shard of every block; blocks are separated by a barrier, so each stream
  // is consumed by exactly one task at a time, in block order, regardless of
  // which pool worker runs it.
  std::vector<util::Rng> shard_rngs;
  shard_rngs.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s)
    shard_rngs.push_back(rng_.fork(0x5EED0000ULL + s));

  util::ThreadPool pool(config_.threads);
  std::vector<UpdateList> updates(slots);
  std::vector<std::vector<float>> grad_scratch(slots,
                                               std::vector<float>(E, 0.0f));
  std::vector<RowOverlay> in_overlays(slots);
  std::vector<RowOverlay> out_overlays(slots);

  const std::size_t total_steps = epochs * total_tokens;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    for (std::size_t base = 0; base < positions.size(); base += block) {
      const std::size_t block_n = std::min(block, positions.size() - base);
      const std::size_t active = (block_n + shard - 1) / shard;

      pool.parallel_for(active, [&](std::size_t s, std::size_t) {
        std::size_t local_pairs = 0;  // batched into the counter per shard
        UpdateList& out = updates[s];
        out.clear();
        util::Rng& neg_rng = shard_rngs[s];
        std::vector<float>& grad_target = grad_scratch[s];
        RowOverlay& local_in = in_overlays[s];
        RowOverlay& local_out = out_overlays[s];
        local_in.reset(&w_in_, E);
        local_out.reset(&w_out_, E);
        const std::size_t begin = base + s * shard;
        const std::size_t end = std::min(begin + shard, base + block_n);
        for (std::size_t p = begin; p < end; ++p) {
          const auto& seq = sequences[positions[p].seq];
          const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(seq.size());
          const std::ptrdiff_t t =
              static_cast<std::ptrdiff_t>(positions[p].offset);
          // Linear learning-rate decay across the whole run.
          const float frac =
              static_cast<float>(epoch * total_tokens + p) /
              static_cast<float>(total_steps);
          const float lr = std::max(config_.min_learning_rate,
                                    config_.learning_rate * (1.0f - frac));
          const std::uint32_t target = seq[static_cast<std::size_t>(t)];

          const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(
              0, t - static_cast<std::ptrdiff_t>(config_.window_before));
          const std::ptrdiff_t hi = std::min(
              n - 1, t + static_cast<std::ptrdiff_t>(config_.window_after));
          for (std::ptrdiff_t c = lo; c <= hi; ++c) {
            if (c == t) continue;
            ++local_pairs;
            const std::uint32_t context = seq[static_cast<std::size_t>(c)];
            std::fill(grad_target.begin(), grad_target.end(), 0.0f);
            // Re-fetched per pair: the previous pair's target update must be
            // visible, and local_in may rehash when new rows are touched.
            float* vt = local_in.row(target);

            auto emit = [&](std::uint32_t out_id, float label) {
              float* vo = local_out.row(out_id);
              float score = 0.0f;
              for (std::size_t k = 0; k < E; ++k) score += vt[k] * vo[k];
              const float pred = 1.0f / (1.0f + std::exp(-score));
              const float g = lr * (label - pred);
              out.rows.push_back(out_id);
              out.tables.push_back(1);
              for (std::size_t k = 0; k < E; ++k) {
                const float d = g * vt[k];
                out.deltas.push_back(d);
                grad_target[k] += g * vo[k];
                vo[k] += d;
              }
            };

            emit(context, 1.0f);
            for (std::size_t neg = 0; neg < config_.negatives; ++neg) {
              const auto id =
                  static_cast<std::uint32_t>(sampler.sample(neg_rng));
              if (id == context) continue;
              emit(id, 0.0f);
            }
            out.rows.push_back(target);
            out.tables.push_back(0);
            for (std::size_t k = 0; k < E; ++k) {
              out.deltas.push_back(grad_target[k]);
              vt[k] += grad_target[k];
            }
          }
        }
        obs_pairs.add(local_pairs);
      });

      // Shard-ordered reduction: apply every shard's update list in emission
      // order, scaled by 1/active — parameter mixing (each shard ran a full
      // sequential walk from the block-start weights; the merged tables are
      // the average of the shard results). The sum without the 1/active
      // factor overshoots and diverges when shards touch the same rows.
      // The application sequence and scale are a pure function of the data
      // and the block/shard sizes — never of the thread count; one active
      // shard degenerates to exact sequential SGD.
      const float mix = 1.0f / static_cast<float>(active);
      for (std::size_t s = 0; s < active; ++s) {
        const UpdateList& out = updates[s];
        const float* d = out.deltas.data();
        for (std::size_t i = 0; i < out.rows.size(); ++i, d += E) {
          tensor::Matrix& table = out.tables[i] == 0 ? w_in_ : w_out_;
          float* dst = table.data() + out.rows[i] * E;
          for (std::size_t k = 0; k < E; ++k) dst[k] += mix * d[k];
        }
      }
    }
  }
  obs_positions.add(total_steps);
  const double elapsed = obs_timer.elapsed_seconds();
  if (elapsed > 0)
    obs::registry().gauge(obs::kSkipgramPairsPerSecond)
        .set(static_cast<double>(obs_pairs.value() - pairs_before) / elapsed);
}

float SkipGram::cosine(std::uint32_t a, std::uint32_t b) const {
  util::require(a < config_.vocab_size && b < config_.vocab_size,
                "SkipGram::cosine: id out of vocab");
  std::span<const float> va = w_in_.row(a);
  std::span<const float> vb = w_in_.row(b);
  const float na = std::sqrt(tensor::dot(va, va));
  const float nb = std::sqrt(tensor::dot(vb, vb));
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return tensor::dot(va, vb) / (na * nb);
}

std::vector<std::pair<std::uint32_t, float>> SkipGram::most_similar(
    std::uint32_t id, std::size_t k) const {
  util::require(id < config_.vocab_size, "SkipGram::most_similar: bad id");
  std::vector<std::pair<std::uint32_t, float>> sims;
  sims.reserve(config_.vocab_size - 1);
  for (std::uint32_t other = 0; other < config_.vocab_size; ++other) {
    if (other == id) continue;
    sims.emplace_back(other, cosine(id, other));
  }
  const std::size_t take = std::min(k, sims.size());
  std::partial_sort(sims.begin(),
                    sims.begin() + static_cast<std::ptrdiff_t>(take), sims.end(),
                    [](const auto& x, const auto& y) { return x.second > y.second; });
  sims.resize(take);
  return sims;
}

}  // namespace desh::embed
