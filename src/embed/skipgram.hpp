// Skip-gram word embeddings with negative sampling (Mikolov et al. [34]),
// reproducing the paper's vectorization step (Sec 3.1): encoded phrases are
// embedded using an *asymmetric* context window of 8 phrases to the left and
// 3 to the right of the target, so that semantically related phrases
// (Lustre, LNet, hwerr, ...) land close together in vector space. The
// trained table seeds the LSTM embedding layers.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace desh::embed {

struct SkipGramConfig {
  std::size_t vocab_size = 0;
  std::size_t dim = 16;
  std::size_t window_before = 8;  // paper: 8 phrases left of the target
  std::size_t window_after = 3;   // paper: 3 phrases right of the target
  std::size_t negatives = 5;      // negative samples per positive pair
  float learning_rate = 0.05f;
  float min_learning_rate = 0.005f;
  /// Data-parallel workers (0 = DESH_THREADS env, then hardware).
  std::size_t threads = 0;
  /// Corpus positions per update block. All pairs inside a block read the
  /// block-start weights (deterministic mini-batch SGD); the block size,
  /// not the thread count, defines the numerics.
  std::size_t block_positions = 256;
  /// Positions per shard within a block. Each shard slot owns a forked
  /// Rng stream for negative sampling, so draws never depend on threads.
  std::size_t shard_positions = 32;
};

class SkipGram {
 public:
  SkipGram(const SkipGramConfig& config, util::Rng& rng);

  /// Trains for `epochs` passes over the node-wise phrase sequences.
  /// The negative-sampling distribution is rebuilt from the corpus unigram
  /// counts raised to 3/4 on the first call.
  ///
  /// Training is deterministic data-parallel mini-batch SGD: the corpus is
  /// walked in fixed blocks of `block_positions`; within a block every
  /// (target, context) pair computes its update against the block-start
  /// weights, shards accumulate update lists independently (per-shard forked
  /// negative-sampling streams), and the lists are applied in shard order.
  /// Results are bit-identical at any thread count.
  void train(std::span<const std::vector<std::uint32_t>> sequences,
             std::size_t epochs);

  /// Input (target) vectors — one row per phrase id.
  const tensor::Matrix& vectors() const { return w_in_; }

  float cosine(std::uint32_t a, std::uint32_t b) const;
  /// k nearest phrases by cosine similarity (excluding `id` itself).
  std::vector<std::pair<std::uint32_t, float>> most_similar(
      std::uint32_t id, std::size_t k) const;

  const SkipGramConfig& config() const { return config_; }

 private:
  SkipGramConfig config_;
  util::Rng rng_;
  tensor::Matrix w_in_;   // V x E target vectors
  tensor::Matrix w_out_;  // V x E context vectors
};

}  // namespace desh::embed
