#include "fleet/aggregator.hpp"

#include <algorithm>
#include <utility>

namespace desh::fleet {

namespace {

/// Stable ordering for health views: soonest predicted failure first,
/// NodeId fields as the deterministic tie-break.
bool at_risk_before(const AtRiskNode& a, const AtRiskNode& b) {
  if (a.predicted_failure_time != b.predicted_failure_time)
    return a.predicted_failure_time < b.predicted_failure_time;
  return a.node < b.node;
}

/// Upper-bound quantile over prometheus-style cumulative-by-bucket counts:
/// the bound of the first bucket whose cumulative count reaches q*total.
/// The +Inf bucket reports the last finite bound (the estimate saturates).
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (static_cast<double>(cum) >= target)
      return i < bounds.size() ? bounds[i] : bounds.back();
  }
  return bounds.back();
}

}  // namespace

const std::vector<double>& submit_latency_bounds() {
  // 1 us .. 1 s in a 1-2-5 ladder: submit() is a queue admission (lock +
  // push), so the action lives well under a millisecond; the top decades
  // only catch pathological contention.
  static const std::vector<double> bounds{
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4,
      5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 1.0};
  return bounds;
}

FleetAggregator::FleetAggregator(core::FleetConfig config)
    : config_(std::move(config)) {}

void FleetAggregator::on_batch(std::size_t shard,
                               std::span<const logs::LogRecord> records,
                               std::span<const core::MonitorAlert> alerts) {
  if (records.empty() && alerts.empty()) return;
  util::LockGuard lk(mu_);
  if (!records.empty())
    stream_time_ = std::max(stream_time_, records.back().timestamp);
  for (const core::MonitorAlert& alert : alerts) {
    AtRiskNode entry;
    entry.node = alert.node;
    entry.shard = shard;
    entry.alert_time = alert.time;
    entry.predicted_lead_seconds = alert.predicted_lead_seconds;
    entry.predicted_failure_time = alert.time + alert.predicted_lead_seconds;
    entry.message = alert.message;
    table_[alert.node] = std::move(entry);  // re-alert replaces
    stream_time_ = std::max(stream_time_, alert.time);
  }
}

std::vector<AtRiskNode> FleetAggregator::shard_at_risk(
    std::size_t shard) const {
  std::vector<AtRiskNode> out;
  {
    util::LockGuard lk(mu_);
    for (const auto& [node, entry] : table_) {
      if (entry.shard != shard) continue;
      if (stream_time_ - entry.alert_time > config_.alert_horizon_seconds)
        continue;  // expired: the predicted window has long passed
      out.push_back(entry);
    }
  }
  std::sort(out.begin(), out.end(), at_risk_before);
  return out;
}

void FleetAggregator::forget_shard(std::size_t shard) {
  util::LockGuard lk(mu_);
  for (auto it = table_.begin(); it != table_.end();)
    it = it->second.shard == shard ? table_.erase(it) : std::next(it);
}

FleetHealth FleetAggregator::merge(const core::FleetConfig& config,
                                   std::vector<ShardHealth> shards) {
  FleetHealth out;
  out.shards = shards.size();
  std::vector<std::uint64_t> latency(submit_latency_bounds().size() + 1, 0);
  for (ShardHealth& s : shards) {
    if (s.active) ++out.active_shards;
    out.totals.admitted += s.serve.admitted;
    out.totals.rejected += s.serve.rejected;
    out.totals.shed += s.serve.shed;
    out.totals.processed += s.serve.processed;
    out.totals.alerts += s.serve.alerts;
    out.totals.batches += s.serve.batches;
    out.totals.reloads += s.serve.reloads;
    out.totals.queue_depth += s.serve.queue_depth;
    out.wal_committed_records += s.wal.committed_seq;
    out.wal_replayed_records += s.wal.replayed;
    for (std::size_t i = 0;
         i < latency.size() && i < s.submit_latency_counts.size(); ++i)
      latency[i] += s.submit_latency_counts[i];
    for (AtRiskNode& n : s.at_risk) out.top_at_risk.push_back(std::move(n));
    s.at_risk.clear();
  }
  out.submit_p50_seconds =
      bucket_quantile(submit_latency_bounds(), latency, 0.50);
  out.submit_p99_seconds =
      bucket_quantile(submit_latency_bounds(), latency, 0.99);
  std::sort(out.top_at_risk.begin(), out.top_at_risk.end(), at_risk_before);
  if (out.top_at_risk.size() > config.at_risk_top_k)
    out.top_at_risk.resize(config.at_risk_top_k);
  out.per_shard = std::move(shards);
  return out;
}

}  // namespace desh::fleet
