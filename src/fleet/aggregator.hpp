// FleetAggregator: cluster-health views over N serving shards.
//
// Two halves, deliberately separable:
//
//   - A live tracker fed by every shard's post-batch tap: it maintains the
//     fleet-wide at-risk table (one entry per node with an unexpired
//     failure alert, keyed on the alert's own stream time so the view works
//     on replayed history as well as live traffic) and the stream clock.
//   - A pure merge: given per-shard health snapshots (serve counters, WAL
//     counters, submit-latency buckets, at-risk contributions), produce the
//     single FleetHealth a dashboard renders — summed counters, merged
//     latency quantiles, and the top-K soonest predicted failures across
//     the whole machine. merge() is static and side-effect-free so its
//     correctness is table-driven testable without running any server.
//
// Threading: on_batch() is called concurrently from every shard's collector
// thread; the tracker guards its table with its own mutex and NEVER calls
// back into the fleet/serve layer (lock order: controller -> aggregator,
// never the reverse).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/monitor.hpp"
#include "logs/node_id.hpp"
#include "logs/record.hpp"
#include "serve/server.hpp"
#include "util/sync.hpp"

namespace desh::fleet {

/// One node in the at-risk view: the alert that put it there, and when the
/// model expects the failure.
struct AtRiskNode {
  logs::NodeId node;
  std::size_t shard = 0;
  double alert_time = 0.0;               // stream time of the alert
  double predicted_lead_seconds = 0.0;   // model's deltaT forecast
  double predicted_failure_time = 0.0;   // alert_time + lead
  std::string message;                   // operator-facing alert line
};

/// Upper bounds (seconds) of the submit-latency buckets every shard
/// records; the last implicit bucket is +Inf. Fixed here (not taken from
/// desh::obs) so FleetHealth works identically with telemetry compiled out.
const std::vector<double>& submit_latency_bounds();

/// Point-in-time health of one shard, as assembled by FleetController.
struct ShardHealth {
  std::size_t shard = 0;
  bool active = true;  // false while drained out of the ring
  serve::ServeStats serve;
  serve::InferenceServer::WalStats wal;
  /// submit() wall-time counts per submit_latency_bounds() bucket
  /// (+Inf last, so size = bounds + 1).
  std::vector<std::uint64_t> submit_latency_counts;
  /// This shard's unexpired alert-backed nodes.
  std::vector<AtRiskNode> at_risk;
};

/// The merged cluster view.
struct FleetHealth {
  std::size_t shards = 0;
  std::size_t active_shards = 0;
  /// Field-wise sums of every shard's ServeStats.
  serve::ServeStats totals;
  /// Records durable across all shard WALs (sum of committed seqs) and
  /// records replayed by shard restarts — the fleet's durability pulse.
  std::uint64_t wal_committed_records = 0;
  std::uint64_t wal_replayed_records = 0;
  /// Upper-bound quantile estimates over the merged submit-latency
  /// histogram (0 when nothing was measured).
  double submit_p50_seconds = 0.0;
  double submit_p99_seconds = 0.0;
  /// The K nodes with the soonest predicted failures, fleet-wide, sorted
  /// by predicted_failure_time (ties: NodeId order).
  std::vector<AtRiskNode> top_at_risk;
  std::vector<ShardHealth> per_shard;
};

class FleetAggregator {
 public:
  explicit FleetAggregator(core::FleetConfig config);

  /// Tap feed from shard `shard`: advances the stream clock to the batch's
  /// last timestamp and upserts one at-risk entry per alert (a re-alerting
  /// node replaces its previous entry). Thread-safe.
  void on_batch(std::size_t shard,
                std::span<const logs::LogRecord> records,
                std::span<const core::MonitorAlert> alerts);

  /// `shard`'s unexpired at-risk entries (alert younger than the horizon at
  /// the current stream clock), sorted by predicted_failure_time.
  std::vector<AtRiskNode> shard_at_risk(std::size_t shard) const;

  /// Drops `shard`'s entries — a restarted shard's window state is gone,
  /// so its stale alerts must not linger in the view.
  void forget_shard(std::size_t shard);

  /// The pure merge: counters summed, latency buckets added then read as
  /// upper-bound quantiles, at-risk lists k-way merged and truncated to
  /// config.at_risk_top_k.
  static FleetHealth merge(const core::FleetConfig& config,
                           std::vector<ShardHealth> shards);

 private:
  const core::FleetConfig config_;
  mutable util::Mutex mu_;
  double stream_time_ DESH_GUARDED_BY(mu_) = 0.0;
  std::unordered_map<logs::NodeId, AtRiskNode> table_ DESH_GUARDED_BY(mu_);
};

}  // namespace desh::fleet
