#include "fleet/controller.hpp"

#include <chrono>
#include <iterator>

#include "obs/catalog.hpp"
#include "util/strings.hpp"

namespace desh::fleet {

namespace {

// Call sites cache the registry lookups in function-local statics (the
// registry idiom: registration locks once, recording never does).
obs::Gauge& shards_active_gauge() {
  static obs::Gauge& g = obs::registry().gauge(obs::kFleetShardsActive);
  return g;
}
obs::Counter& routed_total() {
  static obs::Counter& c = obs::registry().counter(obs::kFleetRoutedTotal);
  return c;
}
obs::Counter& rerouted_total() {
  static obs::Counter& c = obs::registry().counter(obs::kFleetReroutedTotal);
  return c;
}
obs::Counter& drains_total() {
  static obs::Counter& c = obs::registry().counter(obs::kFleetDrainsTotal);
  return c;
}
obs::Counter& restarts_total() {
  static obs::Counter& c = obs::registry().counter(obs::kFleetRestartsTotal);
  return c;
}
obs::Counter& reloads_total() {
  static obs::Counter& c = obs::registry().counter(obs::kFleetReloadsTotal);
  return c;
}
obs::Counter& reload_rollbacks_total() {
  static obs::Counter& c =
      obs::registry().counter(obs::kFleetReloadRollbacksTotal);
  return c;
}
obs::Histogram& submit_seconds() {
  static obs::Histogram& h =
      obs::registry().histogram(obs::kFleetSubmitSeconds,
                                submit_latency_bounds());
  return h;
}
obs::Gauge& at_risk_gauge() {
  static obs::Gauge& g = obs::registry().gauge(obs::kFleetAtRiskNodes);
  return g;
}

}  // namespace

std::vector<std::string> FleetOptions::validate() const {
  std::vector<std::string> out = fleet.validate("fleet");
  for (std::string& v : shard.validate())
    out.push_back("shard." + std::move(v));
  if (!fleet.wal_root.empty() && !shard.wal.directory.empty())
    out.push_back(
        "fleet.wal_root: mutually exclusive with shard.wal.directory "
        "(per-shard directories are derived from wal_root)");
  if (fleet.wal_root.empty() && !shard.wal.directory.empty() &&
      fleet.shards > 1)
    out.push_back(
        "shard.wal.directory: " + std::to_string(fleet.shards) +
        " shards cannot share one WAL directory; set fleet.wal_root and "
        "each shard gets its own");
  return out;
}

FleetController::FleetController(
    FleetOptions options, std::shared_ptr<const core::DeshPipeline> pipeline)
    : options_(std::move(options)),
      aggregator_(options_.fleet),
      router_(options_.fleet.shards, options_.fleet.ring_points_per_shard),
      pipeline_(std::move(pipeline)),
      submit_latency_(options_.fleet.shards,
                      std::vector<std::uint64_t>(
                          submit_latency_bounds().size() + 1, 0)) {
  shards_active_gauge().set(static_cast<double>(options_.fleet.shards));
}

FleetController::~FleetController() { stop(); }

core::Expected<std::unique_ptr<FleetController>> FleetController::create(
    std::shared_ptr<const core::DeshPipeline> pipeline, FleetOptions options) {
  const std::vector<std::string> violations = options.validate();
  if (!violations.empty())
    return core::Error{core::ErrorCode::kInvalidConfig,
                       "invalid FleetOptions:\n  - " +
                           util::join(violations, "\n  - ")};
  std::unique_ptr<FleetController> fleet(
      new FleetController(std::move(options), pipeline));
  {
    util::LockGuard lk(fleet->mu_);
    fleet->servers_.reserve(fleet->options_.fleet.shards);
    for (std::size_t shard = 0; shard < fleet->options_.fleet.shards;
         ++shard) {
      core::Expected<std::unique_ptr<serve::InferenceServer>> server =
          // desh-analyze: allow(blocking-under-lock) WAL open at
          // construction; no other thread can see this fleet yet
          fleet->make_server(shard, pipeline);
      if (!server) return server.error();
      fleet->servers_.push_back(std::move(server).value());
    }
  }
  return fleet;
}

std::string FleetController::shard_wal_dir(std::size_t shard) const {
  return options_.fleet.wal_root + "/shard-" + std::to_string(shard);
}

core::Expected<std::unique_ptr<serve::InferenceServer>>
FleetController::make_server(
    std::size_t shard, std::shared_ptr<const core::DeshPipeline> pipeline) {
  serve::ServeConfig config = options_.shard;
  if (!options_.fleet.wal_root.empty())
    config.wal.directory = shard_wal_dir(shard);
  core::Expected<std::unique_ptr<serve::InferenceServer>> server =
      serve::InferenceServer::create(std::move(pipeline), std::move(config));
  if (!server)
    return core::Error{server.error().code,
                       "fleet shard " + std::to_string(shard) + ": " +
                           server.error().message};
  server.value()->set_tap(
      [this, shard](std::span<const logs::LogRecord> records,
                    std::span<const core::MonitorAlert> alerts) {
        // Collector-thread context. Touch only the aggregator's own mutex
        // and the leaf tap_mu_ — NEVER mu_ (see the header's lock order:
        // drain_shard holds mu_ while waiting for this very pump).
        aggregator_.on_batch(shard, records, alerts);
        ShardTap tap;
        {
          util::LockGuard lk(tap_mu_);
          tap = user_tap_;
        }
        if (tap) tap(shard, records, alerts);
      });
  return server;
}

serve::Admission FleetController::submit(const logs::LogRecord& record) {
  util::LockGuard lk(mu_);
  if (stopped_) return serve::Admission::kStopped;
  const Placement placement = router_.place(record.node);
  const auto start = std::chrono::steady_clock::now();
  const serve::Admission admission = servers_[placement.shard]->submit(record);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  record_submit_locked(placement.shard, placement.failover, seconds);
  return admission;
}

std::size_t FleetController::submit_batch(
    std::span<const logs::LogRecord> records) {
  std::size_t accepted = 0;
  for (const logs::LogRecord& record : records) {
    const serve::Admission admission = submit(record);
    if (admission == serve::Admission::kAccepted)
      ++accepted;
    else if (admission == serve::Admission::kStopped)
      break;
  }
  return accepted;
}

void FleetController::record_submit_locked(std::size_t shard, bool failover,
                                           double seconds) {
  routed_total().add();
  if (failover) rerouted_total().add();
  submit_seconds().observe(seconds);
  const std::vector<double>& bounds = submit_latency_bounds();
  std::size_t bucket = bounds.size();  // +Inf unless a bound catches it
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (seconds <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++submit_latency_[shard][bucket];
}

std::vector<core::MonitorAlert> FleetController::poll_alerts() {
  util::LockGuard lk(mu_);
  std::vector<core::MonitorAlert> out;
  for (const std::unique_ptr<serve::InferenceServer>& server : servers_) {
    std::vector<core::MonitorAlert> alerts = server->poll_alerts();
    out.insert(out.end(), std::make_move_iterator(alerts.begin()),
               std::make_move_iterator(alerts.end()));
  }
  return out;
}

void FleetController::drain() {
  util::LockGuard lk(mu_);
  for (const std::unique_ptr<serve::InferenceServer>& server : servers_)
    // desh-analyze: allow(blocking-under-lock) deliberate: drain is a
    // lifecycle barrier and holding mu_ keeps routing frozen while it lands
    server->drain();
}

void FleetController::stop() {
  util::LockGuard lk(mu_);
  if (stopped_) return;
  stopped_ = true;
  for (const std::unique_ptr<serve::InferenceServer>& server : servers_)
    // desh-analyze: allow(blocking-under-lock) stop joins collector threads
    // under mu_ on purpose — no route may resurrect a stopping shard
    server->stop();
}

std::size_t FleetController::pump() {
  util::LockGuard lk(mu_);
  std::size_t processed = 0;
  for (const std::unique_ptr<serve::InferenceServer>& server : servers_)
    // desh-analyze: allow(blocking-under-lock) manual-pump mode: the caller
    // IS the worker; pool teardown in the chain only happens at shutdown
    processed += server->pump();
  return processed;
}

std::size_t FleetController::shard_count() const {
  util::LockGuard lk(mu_);
  return router_.shard_count();
}

std::size_t FleetController::active_count() const {
  util::LockGuard lk(mu_);
  return router_.active_count();
}

bool FleetController::is_active(std::size_t shard) const {
  util::LockGuard lk(mu_);
  return shard < router_.shard_count() && router_.is_active(shard);
}

std::size_t FleetController::shard_of(const logs::NodeId& node) const {
  util::LockGuard lk(mu_);
  return router_.shard_for(node);
}

core::Expected<void> FleetController::drain_shard(std::size_t shard) {
  util::LockGuard lk(mu_);
  if (shard >= servers_.size())
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "fleet.drain_shard: no shard " + std::to_string(shard)};
  if (!router_.is_active(shard))
    return core::Error{core::ErrorCode::kUnavailable,
                       "fleet.drain_shard: shard " + std::to_string(shard) +
                           " is already drained"};
  if (!router_.deactivate(shard))
    return core::Error{core::ErrorCode::kUnavailable,
                       "fleet.drain_shard: refusing to drain the last "
                       "active shard"};
  // desh-analyze: allow(blocking-under-lock) deliberate: the shard must be
  // empty before drain_shard returns, and mu_ keeps it out of the ring
  servers_[shard]->drain();
  drains_total().add();
  shards_active_gauge().set(static_cast<double>(router_.active_count()));
  return {};
}

core::Expected<void> FleetController::restart_shard(std::size_t shard) {
  util::LockGuard lk(mu_);
  if (shard >= servers_.size())
    return core::Error{
        core::ErrorCode::kInvalidArgument,
        "fleet.restart_shard: no shard " + std::to_string(shard)};
  if (router_.is_active(shard))
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "fleet.restart_shard: shard " + std::to_string(shard) +
                           " is still in the ring; drain_shard it first"};
  // Stop the incumbent so its WAL is committed and closed before the
  // successor opens the same directory for restore + replay.
  // desh-analyze: allow(blocking-under-lock) restart is an operator action;
  // holding mu_ across stop + WAL reopen keeps the handoff atomic
  servers_[shard]->stop();
  core::Expected<std::unique_ptr<serve::InferenceServer>> next =
      // desh-analyze: allow(blocking-under-lock) same handoff, see stop above
      make_server(shard, pipeline_);
  if (!next)
    // The shard stays out of the ring with its old server stopped; the
    // operator fixes the cause and retries (stop() is idempotent).
    return core::Error{next.error().code,
                       "fleet.restart_shard: " + next.error().message};
  servers_[shard] = std::move(next).value();
  // The shard's at-risk entries describe the pre-restart monitor; drop
  // them, then re-seed from what the WAL tail replay re-raised (alert
  // re-delivery itself stays the driver's call, per serve's contract).
  aggregator_.forget_shard(shard);
  const std::vector<std::pair<std::uint64_t, core::MonitorAlert>>& replayed =
      servers_[shard]->wal_replayed_alerts();
  if (!replayed.empty()) {
    std::vector<core::MonitorAlert> alerts;
    alerts.reserve(replayed.size());
    for (const auto& [seq, alert] : replayed) alerts.push_back(alert);
    aggregator_.on_batch(shard, {}, alerts);
  }
  router_.activate(shard);
  restarts_total().add();
  shards_active_gauge().set(static_cast<double>(router_.active_count()));
  return {};
}

core::Expected<void> FleetController::reload_shard_locked(
    std::size_t shard, std::shared_ptr<const core::DeshPipeline> pipeline) {
  core::Expected<void> staged =
      // desh-analyze: allow(blocking-under-lock) rolling reload holds mu_ so
      // the fleet never serves a model mix; staging may touch disk
      servers_[shard]->swap_model(std::move(pipeline));
  if (!staged)
    return core::Error{staged.error().code,
                       "fleet shard " + std::to_string(shard) + ": " +
                           staged.error().message};
  // desh-analyze: allow(blocking-under-lock) lands the install at a batch
  // boundary; part of the same no-model-mix barrier as the swap above
  servers_[shard]->drain();
  return {};
}

core::Expected<void> FleetController::rolling_reload(
    std::shared_ptr<const core::DeshPipeline> next, const Probe& probe) {
  if (!next)
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "fleet.rolling_reload: null pipeline"};
  util::LockGuard lk(mu_);
  if (stopped_)
    return core::Error{core::ErrorCode::kUnavailable,
                       "fleet.rolling_reload: fleet is stopped"};
  const std::shared_ptr<const core::DeshPipeline> prev = pipeline_;
  for (std::size_t shard = 0; shard < servers_.size(); ++shard) {
    // desh-analyze: allow(blocking-under-lock) the whole rolling reload runs
    // under mu_ by design — FLEET.md "Rolling model reload"
    core::Expected<void> outcome = reload_shard_locked(shard, next);
    if (outcome && probe) {
      core::Expected<void> probation = probe(shard, *servers_[shard]);
      if (!probation)
        outcome = core::Error{core::ErrorCode::kUnavailable,
                              "fleet.rolling_reload: shard " +
                                  std::to_string(shard) +
                                  " failed probation: " +
                                  probation.error().message};
    }
    if (!outcome) {
      // Roll every shard reloaded so far — including the failing one —
      // back to the previous model, so the fleet never serves a mix.
      std::string message = outcome.error().message;
      for (std::size_t back = 0; back <= shard; ++back) {
        // desh-analyze: allow(blocking-under-lock) rollback leg of the same
        // under-mu_ reload barrier
        core::Expected<void> restored = reload_shard_locked(back, prev);
        if (!restored)
          message += "; rollback of shard " + std::to_string(back) +
                     " also failed: " + restored.error().message;
      }
      reload_rollbacks_total().add();
      return core::Error{outcome.error().code, std::move(message)};
    }
  }
  pipeline_ = std::move(next);
  reloads_total().add();
  return {};
}

void FleetController::set_shard_tap(ShardTap tap) {
  util::LockGuard lk(tap_mu_);
  user_tap_ = std::move(tap);
}

ShardHealth FleetController::shard_health_locked(std::size_t shard) const {
  ShardHealth out;
  out.shard = shard;
  out.active = router_.is_active(shard);
  out.serve = servers_[shard]->stats();
  out.wal = servers_[shard]->wal_stats();
  out.submit_latency_counts = submit_latency_[shard];
  out.at_risk = aggregator_.shard_at_risk(shard);
  return out;
}

FleetHealth FleetController::health() const {
  std::vector<ShardHealth> shards;
  {
    util::LockGuard lk(mu_);
    shards.reserve(servers_.size());
    for (std::size_t shard = 0; shard < servers_.size(); ++shard)
      shards.push_back(shard_health_locked(shard));
  }
  FleetHealth merged =
      FleetAggregator::merge(options_.fleet, std::move(shards));
  std::size_t at_risk = 0;
  for (const ShardHealth& s : merged.per_shard) at_risk += s.at_risk.size();
  at_risk_gauge().set(static_cast<double>(at_risk));
  return merged;
}

std::shared_ptr<const core::DeshPipeline> FleetController::pipeline() const {
  util::LockGuard lk(mu_);
  return pipeline_;
}

std::vector<std::pair<std::uint64_t, core::MonitorAlert>>
FleetController::shard_replayed_alerts(std::size_t shard) const {
  util::LockGuard lk(mu_);
  if (shard >= servers_.size()) return {};
  return servers_[shard]->wal_replayed_alerts();
}

}  // namespace desh::fleet
