// FleetController: N independent serving shards behind one front door.
//
// One InferenceServer + StreamingMonitor pair holds the window state of one
// shard's nodes; the controller owns N of them plus the ShardRouter that
// consistent-hashes every record's NodeId to its shard. Because a node's
// whole stream flows through exactly one shard in order, the fleet inherits
// serve's replay-equivalence contract per shard: with no sheds, each
// shard's alert stream is byte-identical to feeding that shard's substream
// through a lone StreamingMonitor (tests/test_fleet.cpp pins this,
// including across a rolling model reload).
//
// Lifecycle operations (the FLEET.md runbook surface):
//   - drain_shard(): pull a shard out of the ring (its nodes fail over to
//     clockwise neighbors) and wait until its queue is empty.
//   - restart_shard(): stop a drained shard's server and recreate it over
//     the shard's own WAL directory — restore + tail replay, exactly the
//     single-server crash-recovery path — then return it to the ring.
//   - rolling_reload(): install a new model shard by shard (stage + drain
//     so the swap lands at a batch boundary), run the caller's probation
//     probe against the reloaded shard, and on the first probe failure
//     roll every already-reloaded shard back to the previous model.
//
// Locking (the order is load-bearing; see DESIGN.md "Fleet architecture"):
//   - mu_ guards the router, the shard servers and the latency buckets.
//     Server calls are made WHILE HOLDING mu_ (order: fleet -> serve) so a
//     concurrent restart_shard can never free a server under a submit.
//   - The per-shard tap runs on each shard's collector thread and feeds
//     the aggregator (its own mutex) and the user tap (tap_mu_). It must
//     NEVER take mu_: drain_shard holds mu_ while waiting for the shard's
//     queue to empty, and emptying the queue requires pumping, which calls
//     the tap — tap -> mu_ would deadlock the drain.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/expected.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/router.hpp"
#include "logs/record.hpp"
#include "serve/server.hpp"
#include "util/sync.hpp"

namespace desh::fleet {

/// Fleet topology plus the per-shard serving template. When
/// `fleet.wal_root` is set, each shard serves over its own WAL directory
/// `<wal_root>/shard-<i>`; `shard.wal.directory` must then stay empty (N
/// shards sharing one log would corrupt each other's recovery).
struct FleetOptions {
  core::FleetConfig fleet;
  serve::ServeConfig shard;

  /// All violations as "field.path: problem" strings; empty when valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

class FleetController {
 public:
  /// Post-batch observer over the whole fleet: the per-shard tap feed with
  /// the shard index attached. Runs on shard collector threads (or the
  /// pump() caller in manual mode); must not call back into the controller.
  using ShardTap = std::function<void(std::size_t shard,
                                      std::span<const logs::LogRecord>,
                                      std::span<const core::MonitorAlert>)>;

  /// Probation check run against each shard right after its reload.
  /// Returning an error rolls the whole fleet back to the previous model.
  /// Runs with the fleet lock held: the server reference is stable for the
  /// duration, and the probe may use it freely (submit/pump/drain/
  /// poll_alerts) but must not call back into the controller.
  using Probe = std::function<core::Expected<void>(
      std::size_t shard, serve::InferenceServer& server)>;

  /// Builds the router and one InferenceServer per shard, all serving
  /// `pipeline`. Shards with a WAL directory restore + replay exactly like
  /// a standalone server. Errors: kInvalidConfig (FleetOptions violations),
  /// plus anything serve::InferenceServer::create returns, prefixed with
  /// the failing shard.
  [[nodiscard]] static core::Expected<std::unique_ptr<FleetController>>
  create(std::shared_ptr<const core::DeshPipeline> pipeline,
         FleetOptions options = {});

  ~FleetController();  // stop()s if the owner has not

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  /// Routes one record to its shard and offers it there. The admission
  /// outcome is the shard server's (kQueueFull is per-shard backpressure).
  /// Records of one node must arrive in timestamp order, as with a single
  /// server.
  serve::Admission submit(const logs::LogRecord& record);

  /// submit() in order for each record; returns how many were accepted.
  std::size_t submit_batch(std::span<const logs::LogRecord> records);

  /// Takes all alerts raised since the last poll, grouped by shard in
  /// shard-index order (each group in that shard's processing order).
  std::vector<core::MonitorAlert> poll_alerts();

  /// Blocks until every shard's queue is empty and staged swaps installed.
  void drain();

  /// Stops every shard. Idempotent; called by the destructor.
  void stop();

  /// Manual-pump mode only: pumps one micro-batch on every shard; returns
  /// total records processed. Single caller at a time.
  std::size_t pump();

  std::size_t shard_count() const;
  std::size_t active_count() const;
  bool is_active(std::size_t shard) const;
  /// The active shard currently owning `node`.
  std::size_t shard_of(const logs::NodeId& node) const;

  /// Pulls `shard` out of the ring and drains its queue. Its nodes fail
  /// over to their clockwise ring neighbors (fresh window state there — a
  /// failover is a monitor restart for those nodes, never a wrong-order
  /// merge). Errors: kInvalidArgument (bad index), kUnavailable (already
  /// drained, or it is the last active shard).
  [[nodiscard]] core::Expected<void> drain_shard(std::size_t shard);

  /// Recreates a DRAINED shard's server over its WAL directory (restore +
  /// tail replay when durable) serving the fleet's current pipeline, drops
  /// the shard's stale at-risk entries, and returns it to the ring.
  /// Errors: kInvalidArgument (bad index / shard not drained), or the
  /// server-create error — the shard then stays out of the ring with its
  /// old server stopped, and restart_shard may be retried.
  [[nodiscard]] core::Expected<void> restart_shard(std::size_t shard);

  /// Installs `next` shard by shard: stage via swap_model, drain to land
  /// the install at a batch boundary, then run `probe` (when given) as
  /// probation. On the first failure every already-reloaded shard is
  /// rolled back to the previous model and the error is returned
  /// (kUnavailable naming the failing shard, wrapping the probe's
  /// message). Serialized with all other lifecycle calls.
  [[nodiscard]] core::Expected<void> rolling_reload(
      std::shared_ptr<const core::DeshPipeline> next, const Probe& probe = {});

  /// Installs (or clears, with nullptr) the fleet-wide post-batch tap.
  void set_shard_tap(ShardTap tap);

  /// Merged cluster view: per-shard serve/WAL counters, fleet submit
  /// latency quantiles, and the top-K soonest predicted failures.
  FleetHealth health() const;

  /// The pipeline the fleet currently serves (the last successful
  /// rolling_reload's model, or the create()-time one).
  std::shared_ptr<const core::DeshPipeline> pipeline() const;

  /// The alerts `shard`'s last restart replayed from its WAL tail, paired
  /// with the originating record seqs (see InferenceServer's re-delivery
  /// contract).
  std::vector<std::pair<std::uint64_t, core::MonitorAlert>>
  shard_replayed_alerts(std::size_t shard) const;

 private:
  FleetController(FleetOptions options,
                  std::shared_ptr<const core::DeshPipeline> pipeline);

  std::string shard_wal_dir(std::size_t shard) const;
  /// Builds one shard server (per-shard WAL directory applied) and wires
  /// its tap. Not locked: used at create() time and under mu_ by
  /// restart_shard (the new server is not visible to other threads yet).
  [[nodiscard]] core::Expected<std::unique_ptr<serve::InferenceServer>>
  make_server(std::size_t shard,
              std::shared_ptr<const core::DeshPipeline> pipeline);
  /// swap + drain one shard so the install lands at a batch boundary.
  [[nodiscard]] core::Expected<void> reload_shard_locked(
      std::size_t shard, std::shared_ptr<const core::DeshPipeline> pipeline)
      DESH_REQUIRES(mu_);
  void record_submit_locked(std::size_t shard, bool failover, double seconds)
      DESH_REQUIRES(mu_);
  ShardHealth shard_health_locked(std::size_t shard) const DESH_REQUIRES(mu_);

  const FleetOptions options_;
  /// Fed by shard taps on collector threads; own mutex (see file comment).
  FleetAggregator aggregator_;

  mutable util::Mutex tap_mu_;  // leaf lock of the tap path
  ShardTap user_tap_ DESH_GUARDED_BY(tap_mu_);

  mutable util::Mutex mu_;
  ShardRouter router_ DESH_GUARDED_BY(mu_);
  std::shared_ptr<const core::DeshPipeline> pipeline_ DESH_GUARDED_BY(mu_);
  /// Per-shard submit-latency counts over submit_latency_bounds()
  /// (+Inf last) — kept here, not in desh::obs, so FleetHealth quantiles
  /// survive DESH_OBS=OFF.
  std::vector<std::vector<std::uint64_t>> submit_latency_
      DESH_GUARDED_BY(mu_);
  bool stopped_ DESH_GUARDED_BY(mu_) = false;
  /// Declared last: destroyed first, so collector threads (which call the
  /// taps referencing aggregator_/tap_mu_) are joined before anything the
  /// taps touch goes away.
  std::vector<std::unique_ptr<serve::InferenceServer>> servers_
      DESH_GUARDED_BY(mu_);
};

}  // namespace desh::fleet
