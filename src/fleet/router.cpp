#include "fleet/router.hpp"

#include <algorithm>

namespace desh::fleet {

namespace {

/// splitmix64 finalizer: a fixed, well-mixed 64-bit permutation. The ring
/// must hash identically on every platform forever — per-shard WAL
/// directories outlive processes — so no std::hash here.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t pack(const logs::NodeId& node) {
  return (static_cast<std::uint64_t>(node.cabinet_x) << 48) |
         (static_cast<std::uint64_t>(node.cabinet_y) << 32) |
         (static_cast<std::uint64_t>(node.chassis) << 16) |
         (static_cast<std::uint64_t>(node.slot) << 8) |
         static_cast<std::uint64_t>(node.node);
}

}  // namespace

std::uint64_t ShardRouter::node_point(const logs::NodeId& node) {
  return mix64(pack(node));
}

ShardRouter::ShardRouter(std::size_t shards,
                         std::size_t ring_points_per_shard) {
  if (shards == 0) shards = 1;
  if (ring_points_per_shard == 0) ring_points_per_shard = 1;
  active_.assign(shards, true);
  active_count_ = shards;
  ring_.reserve(shards * ring_points_per_shard);
  for (std::size_t s = 0; s < shards; ++s)
    for (std::size_t p = 0; p < ring_points_per_shard; ++p)
      // Point identity is (shard, replica) — stable under shard-count-
      // independent seeds so shard s's arcs never depend on how many other
      // shards exist... except through ring interleaving, which is the
      // consistent-hashing deal.
      ring_.push_back({mix64((static_cast<std::uint64_t>(s) << 32) | p),
                       static_cast<std::uint32_t>(s)});
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

bool ShardRouter::deactivate(std::size_t shard) {
  if (shard >= active_.size() || !active_[shard]) return false;
  if (active_count_ == 1) return false;  // never black-hole the fleet
  active_[shard] = false;
  --active_count_;
  return true;
}

bool ShardRouter::activate(std::size_t shard) {
  if (shard >= active_.size() || active_[shard]) return false;
  active_[shard] = true;
  ++active_count_;
  return true;
}

Placement ShardRouter::place(const logs::NodeId& node) const {
  const std::uint64_t h = node_point(node);
  // First ring point clockwise from h (wrapping), then walk past points of
  // inactive shards. active_count_ >= 1 always, so the walk terminates.
  std::size_t i = static_cast<std::size_t>(
      std::lower_bound(ring_.begin(), ring_.end(), h,
                       [](const Point& p, std::uint64_t value) {
                         return p.hash < value;
                       }) -
      ring_.begin());
  Placement out;
  for (std::size_t step = 0; step < ring_.size(); ++step, ++i) {
    if (i == ring_.size()) i = 0;
    if (active_[ring_[i].shard]) {
      out.shard = ring_[i].shard;
      return out;
    }
    out.failover = true;  // the ring-home (first clockwise) shard was out
  }
  out.shard = 0;  // unreachable: active_count_ >= 1
  return out;
}

}  // namespace desh::fleet
