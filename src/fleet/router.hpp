// ShardRouter: consistent-hash placement of node-ids onto shard replicas.
//
// A real site watches 10^5-10^6 nodes; one StreamingMonitor cannot hold
// that much window state, so desh::fleet partitions the node space across N
// independent shards. The router is the partition function, and it must
// satisfy two contracts the rest of the fleet leans on:
//
//   - Affinity. A node maps to exactly one shard for as long as the
//     topology is unchanged, so every record of a node's stream flows
//     through the same monitor in order — the property that makes per-shard
//     serving byte-equivalent to per-shard sequential observe().
//   - Minimal disruption. Deactivating a shard (drain) remaps ONLY the
//     nodes that shard owned; every other node keeps its placement. This
//     is the classic consistent-hashing guarantee: each shard owns
//     `ring_points_per_shard` pseudo-random arcs of a 64-bit hash ring, a
//     node belongs to the first active point clockwise from its own hash,
//     and removing one shard's points only hands its arcs to the clockwise
//     neighbors.
//
// Hashing is a fixed splitmix64 finalizer over the packed NodeId — fully
// deterministic across runs, platforms and standard libraries (std::hash is
// deliberately not used), so a fleet restarted tomorrow routes exactly like
// the fleet that wrote yesterday's per-shard WALs.
//
// Threading: externally synchronized. FleetController owns the only
// instance and guards it with its own mutex; the standalone class is
// const-queryable from one thread at a time.
#pragma once

#include <cstdint>
#include <vector>

#include "logs/node_id.hpp"

namespace desh::fleet {

/// Where a record was placed and why — submit() telemetry distinguishes
/// ring-home routing from failover while the home shard is draining.
struct Placement {
  std::size_t shard = 0;  // the shard that receives the record
  bool failover = false;  // true when the ring-home shard was inactive
};

class ShardRouter {
 public:
  /// Builds the ring. Counts are clamped to >= 1 (FleetConfig::validate()
  /// rejects zeros before a controller ever constructs a router).
  ShardRouter(std::size_t shards, std::size_t ring_points_per_shard);

  std::size_t shard_count() const { return active_.size(); }
  std::size_t active_count() const { return active_count_; }
  bool is_active(std::size_t shard) const { return active_[shard]; }

  /// Removes `shard`'s ring points from routing (its nodes fail over to
  /// their clockwise neighbors). No-op when already inactive. The LAST
  /// active shard cannot be deactivated (the fleet would black-hole).
  /// Returns false when refused.
  bool deactivate(std::size_t shard);
  /// Restores `shard`'s ring points; its original nodes come home. No-op
  /// (returning false) when already active.
  bool activate(std::size_t shard);

  /// The active shard owning `node`, plus whether that took a failover hop.
  Placement place(const logs::NodeId& node) const;
  /// Shorthand for place().shard.
  std::size_t shard_for(const logs::NodeId& node) const {
    return place(node).shard;
  }

  /// Deterministic 64-bit point of a node on the ring (exposed so tests
  /// can reason about arc ownership directly).
  static std::uint64_t node_point(const logs::NodeId& node);

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };

  std::vector<Point> ring_;  // sorted by hash; ties broken by shard
  std::vector<bool> active_;
  std::size_t active_count_ = 0;
};

}  // namespace desh::fleet
