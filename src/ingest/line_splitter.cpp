#include "ingest/line_splitter.hpp"

#include <cstring>

namespace desh::ingest {

LineSplitter::LineSplitter(std::size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes) {
  carry_.reserve(max_line_bytes_);
  assembled_.reserve(max_line_bytes_);
}

void LineSplitter::begin_chunk(std::string_view chunk) {
  chunk_ = chunk;
  pos_ = 0;
  stats_.bytes += chunk.size();
}

bool LineSplitter::next(std::string_view& line) {
  while (pos_ < chunk_.size()) {
    const char* base = chunk_.data() + pos_;
    const std::size_t remaining = chunk_.size() - pos_;
    const void* nl = std::memchr(base, '\n', remaining);

    if (nl == nullptr) {
      // No newline left in this chunk: the tail is torn. Carry it unless we
      // are already skipping an oversize line or carrying it would blow the
      // bound (then the whole line is doomed — switch to skip mode).
      if (!skipping_) {
        if (carry_.size() + remaining > max_line_bytes_) {
          ++stats_.oversize_lines;
          carry_.clear();
          skipping_ = true;
        } else {
          carry_.append(base, remaining);
        }
      }
      pos_ = chunk_.size();
      return false;
    }

    const std::size_t len =
        static_cast<std::size_t>(static_cast<const char*>(nl) - base);
    pos_ += len + 1;  // step past the newline

    if (skipping_) {  // the oversize line just ended; resume normally
      skipping_ = false;
      continue;
    }

    if (!carry_.empty()) {
      if (carry_.size() + len > max_line_bytes_) {
        ++stats_.oversize_lines;
        carry_.clear();
        continue;
      }
      // Stitch into assembled_ so the view survives clearing the carry.
      assembled_.assign(carry_);
      assembled_.append(base, len);
      carry_.clear();
      ++stats_.torn_lines;
      ++stats_.lines;
      line = assembled_;
      return true;
    }

    if (len > max_line_bytes_) {
      ++stats_.oversize_lines;
      continue;
    }
    ++stats_.lines;
    line = std::string_view(base, len);
    return true;
  }
  return false;
}

bool LineSplitter::finish(std::string_view& line) {
  chunk_ = {};
  pos_ = 0;
  if (skipping_) {  // oversize line ran off the end of the stream
    skipping_ = false;
    return false;
  }
  if (carry_.empty()) return false;
  assembled_.assign(carry_);
  carry_.clear();
  ++stats_.torn_lines;
  ++stats_.lines;
  line = assembled_;
  return true;
}

}  // namespace desh::ingest
