// LineSplitter: chunked byte stream -> complete lines, zero heap allocation
// on the steady-state path. The splitter scans each chunk with memchr (one
// branch per line, not per byte), hands back string_views into the caller's
// chunk for lines fully contained in it, and stitches lines torn across
// chunk boundaries through a pre-reserved carry buffer. Oversize lines
// (longer than max_line_bytes) are dropped whole — the remainder of the
// line is skipped without buffering, so a single runaway line can never
// balloon memory.
//
// Usage (single caller; the splitter is a stateful scanner, not a queue):
//   LineSplitter splitter(config.max_line_bytes);
//   while (read chunk) {
//     splitter.begin_chunk(chunk);
//     std::string_view line;
//     while (splitter.next(line)) consume(line);
//   }
//   std::string_view tail;
//   if (splitter.finish(tail)) consume(tail);  // final unterminated line
//
// Views returned by next()/finish() are valid until the next call into the
// splitter (they point into the current chunk or the internal buffers).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace desh::ingest {

class LineSplitter {
 public:
  struct Stats {
    std::uint64_t lines = 0;           // complete lines delivered
    std::uint64_t torn_lines = 0;      // lines stitched across chunks
    std::uint64_t oversize_lines = 0;  // lines dropped for length
    std::uint64_t bytes = 0;           // bytes scanned (incl. newlines)
  };

  /// `max_line_bytes` bounds both delivered lines and internal buffering;
  /// it is fully reserved up front so steady state never reallocates.
  explicit LineSplitter(std::size_t max_line_bytes);

  /// Starts scanning `chunk`. The previous chunk must be exhausted (next()
  /// returned false); any unterminated tail was moved to the carry buffer.
  /// `chunk` must stay alive until the next begin_chunk()/finish().
  void begin_chunk(std::string_view chunk);

  /// Next complete line of the current chunk, without its newline. Returns
  /// false when the chunk is exhausted (a torn tail, if any, is carried).
  bool next(std::string_view& line);

  /// End of stream: delivers the final unterminated line, if one is
  /// buffered and within bounds. Idempotent; resets the carry state.
  bool finish(std::string_view& line);

  const Stats& stats() const { return stats_; }

 private:
  std::size_t max_line_bytes_;
  std::string_view chunk_;
  std::size_t pos_ = 0;
  /// Unterminated tail of previous chunks (reserved to max_line_bytes_).
  std::string carry_;
  /// Assembly target for stitched lines: the returned view must outlive
  /// carry_.clear(), so torn lines are composed here instead.
  std::string assembled_;
  /// Inside an oversize line, dropping bytes until the next newline.
  bool skipping_ = false;
  Stats stats_;
};

}  // namespace desh::ingest
