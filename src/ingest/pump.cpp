#include "ingest/pump.hpp"

#include <chrono>
#include <fstream>
#include <thread>
#include <vector>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace desh::ingest {

namespace {

core::Expected<void> validated(const core::IngestConfig& config) {
  const std::vector<std::string> violations = config.validate();
  if (violations.empty()) return {};
  std::string joined = "IngestPump::create: invalid config:";
  for (const std::string& v : violations) joined += "\n  " + v;
  return core::Error{core::ErrorCode::kInvalidConfig, std::move(joined)};
}

}  // namespace

IngestPump::IngestPump(serve::InferenceServer* server,
                       fleet::FleetController* fleet,
                       core::IngestConfig config)
    : config_(config),
      server_(server),
      fleet_(fleet),
      tracker_(TemplateTracker::Options{config.drain_tree_depth,
                                        config.drain_similarity}),
      splitter_(config.max_line_bytes) {}

core::Expected<std::unique_ptr<IngestPump>> IngestPump::create(
    serve::InferenceServer& server, core::IngestConfig config) {
  if (core::Expected<void> v = validated(config); !v) return v.error();
  return std::unique_ptr<IngestPump>(
      new IngestPump(&server, nullptr, config));
}

core::Expected<std::unique_ptr<IngestPump>> IngestPump::create(
    fleet::FleetController& fleet, core::IngestConfig config) {
  if (core::Expected<void> v = validated(config); !v) return v.error();
  return std::unique_ptr<IngestPump>(new IngestPump(nullptr, &fleet, config));
}

core::Expected<void> IngestPump::feed_bytes(std::string_view bytes) {
  util::Stopwatch watch;
  util::LockGuard lock(mu_);
  obs::registry().counter(obs::kIngestBytesTotal).add(bytes.size());
  splitter_.begin_chunk(bytes);
  std::string_view line;
  core::Expected<void> result;
  while (splitter_.next(line)) {
    // desh-analyze: allow(blocking-under-lock) single-writer pump: mu_ only
    // fences feed/finish/stats, and backoff inside is the documented design
    if (core::Expected<void> r = process_line(line); !r) {
      result = std::move(r);
      break;
    }
  }
  // Fold the splitter's absolute counters into the snapshot (they are the
  // source of truth for line/byte accounting).
  const LineSplitter::Stats& s = splitter_.stats();
  obs::registry().counter(obs::kIngestLinesTotal).add(s.lines - stats_.lines);
  obs::registry()
      .counter(obs::kIngestTornLinesTotal)
      .add(s.torn_lines - stats_.torn_lines);
  obs::registry()
      .counter(obs::kIngestOversizeLinesTotal)
      .add(s.oversize_lines - stats_.oversize_lines);
  stats_.bytes = s.bytes;
  stats_.lines = s.lines;
  stats_.torn_lines = s.torn_lines;
  stats_.oversize_lines = s.oversize_lines;
  obs::registry()
      .histogram(obs::kIngestFeedSeconds)
      .observe(watch.elapsed_seconds());
  return result;
}

core::Expected<void> IngestPump::feed_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    return core::Error{core::ErrorCode::kIo,
                       "IngestPump::feed_file: cannot open " + path};
  util::Stopwatch watch;
  std::vector<char> buffer(config_.chunk_bytes);
  std::uint64_t total = 0;
  while (is) {
    is.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::streamsize got = is.gcount();
    if (got <= 0) break;
    total += static_cast<std::uint64_t>(got);
    if (core::Expected<void> r = feed_bytes(
            std::string_view(buffer.data(), static_cast<std::size_t>(got)));
        !r)
      return r;
  }
  if (is.bad())
    return core::Error{core::ErrorCode::kIo,
                       "IngestPump::feed_file: read failed for " + path};
  if (core::Expected<void> r = finish(); !r) return r;
  const double elapsed = watch.elapsed_seconds();
  if (elapsed > 0)
    obs::registry()
        .gauge(obs::kIngestBytesPerSecond)
        .set(static_cast<double>(total) / elapsed);
  return {};
}

core::Expected<void> IngestPump::finish() {
  util::LockGuard lock(mu_);
  std::string_view tail;
  core::Expected<void> result;
  // desh-analyze: allow(blocking-under-lock) single-writer pump, see
  // feed_bytes
  if (splitter_.finish(tail)) result = process_line(tail);
  const LineSplitter::Stats& s = splitter_.stats();
  obs::registry().counter(obs::kIngestLinesTotal).add(s.lines - stats_.lines);
  obs::registry()
      .counter(obs::kIngestTornLinesTotal)
      .add(s.torn_lines - stats_.torn_lines);
  obs::registry()
      .counter(obs::kIngestOversizeLinesTotal)
      .add(s.oversize_lines - stats_.oversize_lines);
  stats_.lines = s.lines;
  stats_.torn_lines = s.torn_lines;
  stats_.oversize_lines = s.oversize_lines;
  return result;
}

core::Expected<void> IngestPump::process_line(std::string_view line) {
  ParsedLine parsed;
  if (!parser_.parse(line, parsed)) {
    ++stats_.unparseable_lines;
    obs::registry().counter(obs::kIngestUnparseableLinesTotal).add(1);
    return {};  // real console logs always contain junk — count and move on
  }
  const TemplateTracker::Observation seen = tracker_.observe(parsed.message);
  if (seen.novel) {
    ++stats_.new_templates;
    obs::registry().counter(obs::kIngestNewTemplatesTotal).add(1);
  }
  const logs::LogRecord record = SyslogViewParser::to_record(parsed);
  // desh-analyze: allow(blocking-under-lock) admission backoff under mu_ is
  // the documented single-writer design, see submit_with_retry
  if (core::Expected<void> r = submit_with_retry(record); !r) return r;
  ++stats_.records;
  obs::registry().counter(obs::kIngestRecordsTotal).add(1);
  return {};
}

core::Expected<void> IngestPump::submit_with_retry(
    const logs::LogRecord& record) {
  std::size_t attempts = 0;
  while (true) {
    const serve::Admission admission =
        server_ ? server_->submit(record) : fleet_->submit(record);
    if (admission == serve::Admission::kAccepted) return {};
    if (admission == serve::Admission::kStopped)
      return core::Error{core::ErrorCode::kUnavailable,
                         "IngestPump: sink stopped while feeding"};
    // kQueueFull: explicit backpressure — relieve it or back off.
    ++stats_.admission_retries;
    obs::registry().counter(obs::kIngestAdmissionRetriesTotal).add(1);
    ++attempts;
    if (config_.max_admission_retries != 0 &&
        attempts > config_.max_admission_retries)
      return core::Error{
          core::ErrorCode::kUnavailable,
          "IngestPump: sink queue still full after " +
              std::to_string(config_.max_admission_retries) + " retries"};
    if (config_.pump_on_queue_full) {
      // Manual-pump sink: the feeder doubles as the pumper, so draining a
      // batch inline is both legal and the fastest way to free capacity.
      if (server_)
        // desh-analyze: allow(blocking-under-lock) inline drain: the feeder
        // doubles as the pumper in manual-pump mode (comment above)
        server_->pump();
      else
        // desh-analyze: allow(blocking-under-lock) inline drain, same as the
        // server_ branch above
        fleet_->pump();
    } else if (config_.retry_backoff_seconds > 0) {
      // desh-analyze: allow(blocking-under-lock) bounded admission backoff;
      // only the feeding thread ever holds pump_mu
      std::this_thread::sleep_for(std::chrono::duration<double>(
          config_.retry_backoff_seconds));
    }
  }
}

IngestStats IngestPump::stats() const {
  util::LockGuard lock(mu_);
  return stats_;
}

}  // namespace desh::ingest
