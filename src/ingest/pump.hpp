// IngestPump: the bridge from raw syslog bytes to live predictions. Feeds
// chunks (or whole files) through the LineSplitter -> SyslogViewParser ->
// TemplateTracker chain and submits every parsed record to a serving sink
// (serve::InferenceServer or fleet::FleetController), honoring the sink's
// backpressure contract: Admission::kQueueFull is retried — by pumping the
// sink inline when `pump_on_queue_full` is set (manual-pump sinks), or by
// backing off `retry_backoff_seconds` (collector-threaded sinks) — so no
// record is ever silently dropped between the wire and the queue.
//
// Equivalence contract (tests/test_ingest.cpp): feeding
// render_syslog_text(corpus) through an IngestPump into a manual-pump
// server yields the same decision stream as feeding
// canonicalize_syslog(corpus) through StreamingMonitor::observe directly,
// at any monitor thread count.
//
// Threading: one feeder at a time (like InferenceServer::pump()); stats()
// and tracker() may be called from other threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/config.hpp"
#include "core/expected.hpp"
#include "fleet/controller.hpp"
#include "ingest/line_splitter.hpp"
#include "ingest/syslog_view.hpp"
#include "ingest/template_tracker.hpp"
#include "serve/server.hpp"
#include "util/sync.hpp"

namespace desh::ingest {

/// Lifetime counters (also exported as the desh_ingest_* metric family).
struct IngestStats {
  std::uint64_t bytes = 0;              // raw bytes scanned
  std::uint64_t lines = 0;              // complete lines seen
  std::uint64_t records = 0;            // parsed + admitted records
  std::uint64_t torn_lines = 0;         // lines stitched across chunks
  std::uint64_t unparseable_lines = 0;  // lines the parser rejected
  std::uint64_t oversize_lines = 0;     // lines dropped for length
  std::uint64_t new_templates = 0;      // first-sight drain templates
  std::uint64_t admission_retries = 0;  // kQueueFull retry loops taken
};

class IngestPump {
 public:
  /// Builds a pump over a server the caller keeps alive. Errors:
  /// kInvalidConfig (all core::IngestConfig violations, field-path
  /// messages).
  [[nodiscard]] static core::Expected<std::unique_ptr<IngestPump>> create(
      serve::InferenceServer& server, core::IngestConfig config = {});

  /// Same, over a whole fleet (records fan out via the fleet's router).
  [[nodiscard]] static core::Expected<std::unique_ptr<IngestPump>> create(
      fleet::FleetController& fleet, core::IngestConfig config = {});

  IngestPump(const IngestPump&) = delete;
  IngestPump& operator=(const IngestPump&) = delete;

  /// Scans one chunk of raw bytes; a trailing torn line is carried into the
  /// next call. Errors: kUnavailable (sink stopped, or queue still full
  /// after max_admission_retries).
  [[nodiscard]] core::Expected<void> feed_bytes(std::string_view bytes);

  /// Streams a whole file through feed_bytes in chunk_bytes reads and
  /// finishes the final line. Errors: kIo (open/read), plus feed_bytes'.
  [[nodiscard]] core::Expected<void> feed_file(const std::string& path);

  /// End of stream: flushes the final unterminated line, if any. The sink
  /// is NOT drained — that stays the caller's call.
  [[nodiscard]] core::Expected<void> finish();

  IngestStats stats() const;
  TemplateTracker& tracker() { return tracker_; }

 private:
  IngestPump(serve::InferenceServer* server, fleet::FleetController* fleet,
             core::IngestConfig config);

  [[nodiscard]] core::Expected<void> process_line(std::string_view line)
      DESH_REQUIRES(mu_);
  [[nodiscard]] core::Expected<void> submit_with_retry(
      const logs::LogRecord& record) DESH_REQUIRES(mu_);

  core::IngestConfig config_;
  serve::InferenceServer* server_;  // exactly one of these is non-null
  fleet::FleetController* fleet_;
  TemplateTracker tracker_;  // own lock; safe to read while feeding

  mutable util::Mutex mu_;  // serializes feeders; stats() reads under it
  LineSplitter splitter_ DESH_GUARDED_BY(mu_);
  SyslogViewParser parser_ DESH_GUARDED_BY(mu_);
  IngestStats stats_ DESH_GUARDED_BY(mu_);
};

}  // namespace desh::ingest
