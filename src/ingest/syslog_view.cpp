#include "ingest/syslog_view.hpp"

#include <cctype>

#include "logs/syslog.hpp"

namespace desh::ingest {

namespace {

inline bool is_ws(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// Advances past leading whitespace and returns the next token, or an empty
/// view when the line is exhausted. Mirrors util::split_whitespace's token
/// boundaries (std::isspace) without materializing anything.
std::string_view next_token(std::string_view line, std::size_t& pos) {
  while (pos < line.size() && is_ws(line[pos])) ++pos;
  const std::size_t start = pos;
  while (pos < line.size() && !is_ws(line[pos])) ++pos;
  return line.substr(start, pos - start);
}

}  // namespace

SyslogViewParser::SyslogViewParser() { scratch_.reserve(256); }

bool SyslogViewParser::parse(std::string_view line, ParsedLine& out) {
  std::size_t pos = 0;
  const std::string_view month_tok = next_token(line, pos);
  const int month = logs::syslog_fields::month_index(month_tok);
  if (month < 0) return false;

  int day = 0, hh = 0, mm = 0, ss = 0;
  if (!logs::syslog_fields::parse_day(next_token(line, pos), day))
    return false;
  if (!logs::syslog_fields::parse_clock(next_token(line, pos), hh, mm, ss))
    return false;

  logs::NodeId node;
  if (!logs::NodeId::try_parse(next_token(line, pos), node)) return false;

  // Message = whitespace-normalized remainder; must be non-empty (the batch
  // parser requires >= 5 tokens).
  while (pos < line.size() && is_ws(line[pos])) ++pos;
  if (pos >= line.size()) return false;
  std::size_t end = line.size();
  while (end > pos && is_ws(line[end - 1])) --end;

  // Fast path: already normalized (single spaces only) — borrow the input.
  bool normalized = true;
  for (std::size_t i = pos; i < end; ++i) {
    const char c = line[i];
    if (c == ' ' ? (line[i - 1] == ' ') : is_ws(c)) {
      normalized = false;
      break;
    }
  }
  if (normalized) {
    out.message = line.substr(pos, end - pos);
  } else {
    scratch_.clear();
    bool in_ws = false;
    for (std::size_t i = pos; i < end; ++i) {
      if (is_ws(line[i])) {
        in_ws = true;
        continue;
      }
      if (in_ws) scratch_.push_back(' ');
      in_ws = false;
      scratch_.push_back(line[i]);
    }
    out.message = scratch_;
  }

  out.timestamp = logs::syslog_fields::timestamp_from(month, day, hh, mm, ss);
  out.node = node;
  return true;
}

logs::LogRecord SyslogViewParser::to_record(const ParsedLine& parsed) {
  logs::LogRecord record;
  record.timestamp = parsed.timestamp;
  record.node = parsed.node;
  record.message.assign(parsed.message);
  return record;
}

}  // namespace desh::ingest
