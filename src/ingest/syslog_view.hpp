// Allocation-free streaming counterpart of logs::parse_syslog_line. One
// parser instance owns a pre-reserved scratch buffer; parse() tokenizes the
// line in place (string_view walk, no vector, no per-token strings) and
// produces exactly the record the batch parser would: same field validation
// (shared logs::syslog_fields helpers), same whitespace-normalized message.
// When the raw message tail is already normalized — single spaces, no
// leading/trailing whitespace, which is what format_syslog_line emits — the
// message is a view into the input line; otherwise it is normalized into
// the scratch buffer. Either way the view dies at the next parse() call.
#pragma once

#include <string>
#include <string_view>

#include "logs/node_id.hpp"
#include "logs/record.hpp"

namespace desh::ingest {

/// One parsed line; `message` is a borrowed view (see header comment).
struct ParsedLine {
  double timestamp = 0.0;
  logs::NodeId node;
  std::string_view message;
};

class SyslogViewParser {
 public:
  SyslogViewParser();

  /// Parses "Mon DD HH:MM:SS <node-id> <message>". Returns false for lines
  /// logs::parse_syslog_line would reject; acceptance is bit-for-bit
  /// identical (tests/test_ingest.cpp fuzzes the agreement).
  bool parse(std::string_view line, ParsedLine& out);

  /// Copies a parse result into an owning LogRecord (this is where the
  /// message string is finally materialized, off the tokenize hot path).
  static logs::LogRecord to_record(const ParsedLine& parsed);

 private:
  std::string scratch_;  // message normalization target, reserved up front
};

}  // namespace desh::ingest
