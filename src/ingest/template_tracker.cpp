#include "ingest/template_tracker.hpp"

namespace desh::ingest {

TemplateTracker::TemplateTracker() : TemplateTracker(Options{}) {}

TemplateTracker::TemplateTracker(Options options)
    : miner_(logs::DrainMiner::Config{options.tree_depth,
                                      options.similarity_threshold,
                                      /*premask_numbers=*/true}) {}

TemplateTracker::Observation TemplateTracker::observe(
    std::string_view message) {
  util::LockGuard lock(mu_);
  const std::uint32_t drain_id = miner_.add(message);
  Observation obs;
  obs.drain_id = drain_id;
  if (drain_id >= drain_to_vocab_.size()) {
    // First sighting: bind the template's first-sight text to a fresh
    // vocab id. DrainMiner issues ids densely, so this appends exactly one.
    const std::uint32_t vocab_id = vocab_.add(miner_.template_text(drain_id));
    drain_to_vocab_.resize(drain_id + 1, logs::PhraseVocab::kUnknownId);
    drain_to_vocab_[drain_id] = vocab_id;
    obs.novel = true;
    ++novel_;
  }
  obs.vocab_id = drain_to_vocab_[drain_id];
  return obs;
}

std::size_t TemplateTracker::template_count() const {
  util::LockGuard lock(mu_);
  return miner_.template_count();
}

std::uint64_t TemplateTracker::novel_count() const {
  util::LockGuard lock(mu_);
  return novel_;
}

logs::PhraseVocab TemplateTracker::vocab_snapshot() const {
  util::LockGuard lock(mu_);
  return vocab_;
}

std::string TemplateTracker::template_text(std::uint32_t drain_id) const {
  util::LockGuard lock(mu_);
  return miner_.template_text(drain_id);
}

}  // namespace desh::ingest
