// TemplateTracker: thread-safe online template-id assignment for the raw
// stream. Wraps a logs::DrainMiner (online template learning, stable ids)
// and maintains an incremental template -> phrase-vocab mapping, so the
// raw-log frontend exposes the same (drain id, vocab id) coordinates the
// batch pipeline derives offline. The `novel` flag marks the first sighting
// of a drain template — that is the signal desh::adapt's OOV drift detector
// corroborates when a deployment starts emitting messages the champion's
// vocabulary has never encoded.
//
// Note on vocab ids: DrainMiner templates *generalize* over time (tokens
// become '*'), so the vocab entry registered at first sight may differ from
// the template's later text. The tracker keeps the first-sight binding —
// ids must stay stable for downstream consumers, exactly like drain ids.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "logs/drain_miner.hpp"
#include "logs/vocab.hpp"
#include "util/sync.hpp"

namespace desh::ingest {

class TemplateTracker {
 public:
  struct Options {
    std::size_t tree_depth = 2;
    double similarity_threshold = 0.55;
  };

  TemplateTracker();  // default Options
  explicit TemplateTracker(Options options);

  struct Observation {
    std::uint32_t drain_id = 0;  // DrainMiner id (stable)
    std::uint32_t vocab_id = 0;  // PhraseVocab id (stable, never kUnknownId)
    bool novel = false;          // first sighting of this template
  };

  /// Learns from one raw message and returns its coordinates. Thread-safe.
  Observation observe(std::string_view message);

  std::size_t template_count() const;
  std::uint64_t novel_count() const;

  /// Copy of the incrementally built vocabulary (template text at first
  /// sight, ids aligned with Observation::vocab_id).
  logs::PhraseVocab vocab_snapshot() const;

  /// Current (possibly generalized) template text for a drain id.
  std::string template_text(std::uint32_t drain_id) const;

 private:
  mutable util::Mutex mu_;
  logs::DrainMiner miner_ DESH_GUARDED_BY(mu_);
  logs::PhraseVocab vocab_ DESH_GUARDED_BY(mu_);
  /// drain id -> vocab id, appended when a new template is issued.
  std::vector<std::uint32_t> drain_to_vocab_ DESH_GUARDED_BY(mu_);
  std::uint64_t novel_ DESH_GUARDED_BY(mu_) = 0;
};

}  // namespace desh::ingest
