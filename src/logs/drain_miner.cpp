#include "logs/drain_miner.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace desh::logs {

DrainMiner::DrainMiner() : DrainMiner(Config{}) {}

DrainMiner::DrainMiner(Config config) : config_(config) {
  util::require(config_.tree_depth >= 1, "DrainMiner: tree_depth < 1");
  util::require(config_.similarity_threshold > 0.0 &&
                    config_.similarity_threshold <= 1.0,
                "DrainMiner: similarity_threshold out of (0,1]");
}

namespace {
bool looks_numeric(std::string_view token) {
  // Drain's preprocessing: tokens dominated by digits or hex markers are
  // variables; mask them before routing so number-bearing variants of one
  // message land in the same leaf.
  if (token.find("0x") != std::string_view::npos ||
      token.find("0X") != std::string_view::npos)
    return true;
  std::size_t digits = 0;
  for (char c : token)
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  return digits * 2 >= token.size() && digits > 0;
}
}  // namespace

std::vector<std::string> DrainMiner::preprocess(std::string_view message) const {
  std::vector<std::string> tokens = util::split_whitespace(message);
  if (config_.premask_numbers)
    for (std::string& token : tokens)
      if (looks_numeric(token)) token = "*";
  return tokens;
}

std::string DrainMiner::leaf_key_tokens(
    const std::vector<std::string>& tokens) const {
  std::string key;
  for (std::size_t i = 0; i < std::min(config_.tree_depth, tokens.size());
       ++i) {
    // Wildcards never key the tree (they would fragment one template into
    // many leaves).
    key += tokens[i] == "*" ? std::string("<w>") : tokens[i];
    key += '\x1f';
  }
  return key;
}

double DrainMiner::similarity(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  std::size_t equal = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] == b[i] || a[i] == "*" || b[i] == "*") ++equal;
  return static_cast<double>(equal) / static_cast<double>(a.size());
}

std::uint32_t DrainMiner::add(std::string_view message) {
  std::vector<std::string> tokens = preprocess(message);
  util::require(!tokens.empty(), "DrainMiner::add: empty message");
  auto& leaf = leaves_[{tokens.size(), leaf_key_tokens(tokens)}];

  std::uint32_t best = kNoMatch;
  double best_sim = 0;
  for (std::uint32_t id : leaf) {
    const double sim = similarity(tokens, templates_[id].tokens);
    if (sim > best_sim) {
      best_sim = sim;
      best = id;
    }
  }
  if (best != kNoMatch && best_sim >= config_.similarity_threshold) {
    // Generalize the stored template where this message disagrees.
    TemplateGroup& group = templates_[best];
    for (std::size_t i = 0; i < tokens.size(); ++i)
      if (group.tokens[i] != tokens[i]) group.tokens[i] = "*";
    ++group.count;
    return best;
  }
  const auto id = static_cast<std::uint32_t>(templates_.size());
  templates_.push_back(TemplateGroup{std::move(tokens), 1});
  leaf.push_back(id);
  return id;
}

std::uint32_t DrainMiner::match(std::string_view message) const {
  const std::vector<std::string> tokens = preprocess(message);
  if (tokens.empty()) return kNoMatch;
  auto it = leaves_.find({tokens.size(), leaf_key_tokens(tokens)});
  if (it == leaves_.end()) return kNoMatch;
  std::uint32_t best = kNoMatch;
  double best_sim = 0;
  for (std::uint32_t id : it->second) {
    const double sim = similarity(tokens, templates_[id].tokens);
    if (sim > best_sim) {
      best_sim = sim;
      best = id;
    }
  }
  return best_sim >= config_.similarity_threshold ? best : kNoMatch;
}

std::string DrainMiner::template_text(std::uint32_t id) const {
  util::require(id < templates_.size(), "DrainMiner::template_text: bad id");
  // Collapse runs of '*' like TemplateMiner so texts are comparable.
  std::string out;
  bool previous_wild = false;
  for (const std::string& token : templates_[id].tokens) {
    const bool wild = token == "*";
    if (wild && previous_wild) continue;
    if (!out.empty()) out += ' ';
    out += token;
    previous_wild = wild;
  }
  return out;
}

}  // namespace desh::logs
