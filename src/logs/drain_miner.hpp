// DrainMiner: an online fixed-depth-tree log parser in the style of Drain
// (He et al., ICWS 2017) — the family of "log parsing methods [26]" the
// paper situates itself against. Unlike the rule-based TemplateMiner (which
// needs token-shape heuristics), Drain *learns* templates online: messages
// are routed by token count and leading tokens to a leaf group, matched
// against the leaf's known templates by token similarity, and the best
// match is generalized token-wise (mismatching positions become '*').
//
// Provided as an alternative front end so the pipeline can be driven from
// logs whose dynamic-content shapes the heuristic was never tuned for;
// bench_parser_comparison measures both parsers' grouping accuracy against
// the generator's ground-truth templates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace desh::logs {

class DrainMiner {
 public:
  struct Config {
    /// Leading tokens used as tree keys below the length level (Drain
    /// keeps this shallow so variable tokens past the preamble cannot
    /// fragment a template into many leaves).
    std::size_t tree_depth = 2;
    /// Minimum fraction of equal tokens to join an existing template.
    double similarity_threshold = 0.55;
    /// Tokens made of digits/hex are pre-masked before routing, like
    /// Drain's domain-knowledge preprocessing step.
    bool premask_numbers = true;
  };

  DrainMiner();  // default Config
  explicit DrainMiner(Config config);

  /// Learns from one raw message and returns its template id (stable for
  /// the lifetime of the miner; templates may *generalize* over time —
  /// tokens can turn into '*' — but never change id).
  std::uint32_t add(std::string_view message);

  /// Lookup without learning; returns the id of the best-matching known
  /// template or kNoMatch when nothing clears the similarity threshold.
  static constexpr std::uint32_t kNoMatch = ~std::uint32_t{0};
  std::uint32_t match(std::string_view message) const;

  /// The current normalized template text for an id.
  std::string template_text(std::uint32_t id) const;
  std::size_t template_count() const { return templates_.size(); }

 private:
  struct TemplateGroup {
    std::vector<std::string> tokens;  // '*' marks generalized positions
    std::size_t count = 0;
  };

  Config config_;
  std::vector<TemplateGroup> templates_;
  // Routing tree flattened into a map: (token count, joined leading tokens)
  // -> candidate template ids.
  std::map<std::pair<std::size_t, std::string>, std::vector<std::uint32_t>>
      leaves_;

  std::vector<std::string> preprocess(std::string_view message) const;
  std::string leaf_key_tokens(const std::vector<std::string>& tokens) const;
  static double similarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);
};

}  // namespace desh::logs
