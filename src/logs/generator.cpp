#include "logs/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace desh::logs {

std::size_t GroundTruth::test_failure_count() const {
  std::size_t n = 0;
  for (const FailureEvent& f : failures)
    if (f.terminal_time >= split_time) ++n;
  return n;
}

std::size_t GroundTruth::test_lookalike_count() const {
  std::size_t n = 0;
  for (const LookalikeEvent& l : lookalikes)
    if (l.end_time >= split_time) ++n;
  return n;
}

SyntheticCraySource::SyntheticCraySource(SystemProfile profile)
    : profile_(std::move(profile)) {
  util::require(profile_.node_count >= 4,
                "SyntheticCraySource: need at least 4 nodes");
  util::require(profile_.duration_hours > 0,
                "SyntheticCraySource: duration must be positive");
  // Cray XC packaging: 4 nodes per blade, 16 blades per chassis, 3 chassis
  // per cabinet; cabinets tile a row.
  nodes_.reserve(profile_.node_count);
  std::uint16_t cab_x = 0;
  while (nodes_.size() < profile_.node_count) {
    for (std::uint8_t chassis = 0;
         chassis < 3 && nodes_.size() < profile_.node_count; ++chassis)
      for (std::uint8_t slot = 0;
           slot < 16 && nodes_.size() < profile_.node_count; ++slot)
        for (std::uint8_t n = 0; n < 4 && nodes_.size() < profile_.node_count;
             ++n)
          nodes_.push_back(NodeId{cab_x, 0, chassis, slot, n});
    ++cab_x;
  }
}

namespace {

std::string random_hex_blob(util::Rng& rng) {
  static constexpr const char* kForms[] = {
      "[%u]:0x%x, Info1=0x%x:", "0x%x Info2=0x%x:", ":Info1=0x%x: Info3=0x%x",
      "status=0x%x code=%u"};
  char buffer[96];
  const char* form = kForms[rng.uniform_index(4)];
  std::snprintf(buffer, sizeof(buffer), form,
                static_cast<unsigned>(rng.uniform_index(99999)),
                static_cast<unsigned>(rng.uniform_index(0xffff)),
                static_cast<unsigned>(rng.uniform_index(0xffff)));
  return buffer;
}

std::string random_path(util::Rng& rng) {
  static constexpr const char* kPaths[] = {
      "/etc/sysctl.conf", "/var/spool/slurm/job", "/proc/cray_xt/cstate",
      "/lus/scratch/project", "/dvs/mount/point"};
  std::string p = kPaths[rng.uniform_index(5)];
  p += std::to_string(rng.uniform_index(9000) + 1000);
  return p;
}

// Two injected anomalies on one node must stay further apart than the
// extractor's sequence gap (420 s), or they would merge into one corrupted
// candidate; reservations therefore pad well beyond that gap.
constexpr double kAnomalyPadSeconds = 600.0;

// Scheduling bookkeeping: per-node busy windows so two injected anomalies
// never interleave on the same node.
struct BusyMap {
  std::unordered_map<NodeId, std::vector<std::pair<double, double>>> windows;

  bool conflicts(const NodeId& node, double start, double end) const {
    auto it = windows.find(node);
    if (it == windows.end()) return false;
    for (const auto& [s, e] : it->second)
      if (start < e && s < end) return true;
    return false;
  }
  void reserve(const NodeId& node, double start, double end) {
    windows[node].emplace_back(start, end);
  }
};

// Lognormal lead-time anchor per class, mean = Table 7 target (cv ~ 0.25).
double sample_lead_anchor(FailureClass c, double scale, util::Rng& rng) {
  const double mean = paper_lead_time_seconds(c) * scale;
  const double sigma = 0.25;
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return rng.lognormal(mu, sigma);
}

// Phrase timestamps for an n-phrase chain ending at `terminal_time`.
// The phrase at the *anchor index* (index 4 — the decision point after the
// paper's history of 5 observed phrases) sits `lead` seconds before the
// terminal; later
// phrases compress quadratically toward the terminal (Table 4's dense
// tail), earlier phrases stretch backwards with exponential gaps (the extra
// lead an earlier flag can buy, Fig 8).
std::vector<double> chain_times(std::size_t n, double terminal_time,
                                double lead, double early_gap_mean,
                                util::Rng& rng) {
  std::vector<double> t(n);
  const std::size_t anchor = std::min<std::size_t>(4, n - 2);
  t[n - 1] = terminal_time;
  for (std::size_t i = anchor; i + 1 < n; ++i) {
    const double frac = static_cast<double>(n - 1 - i) /
                        static_cast<double>(n - 1 - anchor);
    t[i] = terminal_time - lead * frac * frac;
  }
  double cursor = terminal_time - lead;
  for (std::size_t i = anchor; i-- > 0;) {
    cursor -= rng.exponential(1.0 / early_gap_mean);
    t[i] = cursor;
  }
  // Sub-second jitter, preserving order.
  for (std::size_t i = 0; i + 1 < n; ++i)
    t[i] += rng.uniform(0.0, 0.2);
  std::sort(t.begin(), t.end());
  return t;
}

}  // namespace

std::string SyntheticCraySource::render_message(const CatalogPhrase& phrase,
                                                util::Rng& rng) {
  std::string out;
  out.reserve(phrase.tmpl.size() + 32);
  for (std::size_t i = 0; i < phrase.tmpl.size(); ++i) {
    if (phrase.tmpl[i] != '*') {
      out += phrase.tmpl[i];
      continue;
    }
    switch (phrase.dynamic) {
      case DynamicKind::kNone:
      case DynamicKind::kHexCode:
        out += random_hex_blob(rng);
        break;
      case DynamicKind::kNumber:
        out += std::to_string(rng.uniform_index(100000));
        break;
      case DynamicKind::kNodeRef: {
        NodeId nid{static_cast<std::uint16_t>(rng.uniform_index(4)), 0,
                   static_cast<std::uint8_t>(rng.uniform_index(3)),
                   static_cast<std::uint8_t>(rng.uniform_index(16)),
                   static_cast<std::uint8_t>(rng.uniform_index(4))};
        out += nid.to_string();
        break;
      }
      case DynamicKind::kPath:
        out += random_path(rng);
        break;
      case DynamicKind::kMixed:
        out += rng.chance(0.5) ? random_path(rng) : random_hex_blob(rng);
        break;
    }
  }
  return out;
}

SyntheticLog SyntheticCraySource::generate() const {
  const PhraseCatalog& catalog = PhraseCatalog::instance();
  util::Rng rng(profile_.seed);
  SyntheticLog log;
  const double duration = profile_.duration_hours * 3600.0;
  log.truth.duration_seconds = duration;
  log.truth.split_time = duration * profile_.train_fraction;

  auto emit = [&](double time, const NodeId& node, std::size_t phrase_index,
                  util::Rng& r) {
    log.records.push_back(LogRecord{
        time, node, render_message(catalog.phrase(phrase_index), r)});
  };

  BusyMap busy;
  // Occurrence bookkeeping for the Table 8 contribution calibration.
  std::map<std::size_t, std::size_t> failure_occurrences;
  std::map<std::size_t, std::size_t> nonfailure_occurrences;

  // ------------------------------------------------------------------
  // 1. Benign background: per-node motifs (boot, jobs, health checks).
  // ------------------------------------------------------------------
  {
    util::Rng bg = rng.fork(1);
    const std::size_t boot_len = 5;
    const std::size_t boot[boot_len] = {
        catalog.index_of("init: entering runlevel *"),
        catalog.index_of("Running * using values from *"),
        catalog.index_of("Wait4Boot"),
        catalog.index_of("ec_boot: node boot completed"),
        catalog.index_of("All threads awake")};
    const std::size_t health_motif[2] = {
        catalog.index_of("RAS: node health check passed"),
        catalog.index_of("Console heartbeat ok")};
    const std::size_t mount_motif[3] = {
        catalog.index_of("Mounting NID specific"),
        catalog.index_of("DVS: mount completed"),
        catalog.index_of("Lustre: * connected to *")};
    // Long service motifs: four variants that open with a distinct phrase,
    // share a three-phrase middle, and close with a variant-keyed pair. The
    // phrase at index 4 is only predictable from the opener four steps
    // back — the long-range dependency behind the paper's Sec 4.1 finding
    // that shrinking the phase-1 history from 8/5 to 3 costs 10-14%
    // accuracy ("patterns evolve over varying intervals of time that have
    // to be remembered", Sec 2).
    const std::size_t long_motif_open[4] = {
        catalog.index_of("Job * started by user *"),
        catalog.index_of("init: entering runlevel *"),
        catalog.index_of("Power: cabinet power status nominal"),
        catalog.index_of("Warm boot initiated by operator")};
    const std::size_t long_motif_middle[3] = {
        catalog.index_of("ALPS: apinit launch confirmed"),
        catalog.index_of("Accepting connections on port *"),
        catalog.index_of("ntpd: time synchronized with *")};
    const std::size_t long_motif_close[4][2] = {
        {catalog.index_of("Job * completed successfully"),
         catalog.index_of("Setting flag")},
        {catalog.index_of("All threads awake"),
         catalog.index_of("ec_boot: node boot completed")},
        {catalog.index_of("startproc: nss_ldap service started"),
         catalog.index_of("nscd: nss_ldap reconnected")},
        {catalog.index_of("Sending ec node info with boot code"),
         catalog.index_of("slurmd: Registered with controller")}};

    for (const NodeId& node : nodes_) {
      // Boot sequence near trace start.
      double t = bg.uniform(0.0, 120.0);
      for (std::size_t i = 0; i < boot_len; ++i) {
        emit(t, node, boot[i], bg);
        t += bg.uniform(0.5, 5.0);
      }
      // Ongoing background motifs as a Poisson process.
      const double expected = profile_.benign_events_per_node_hour *
                              profile_.duration_hours / 4.8;  // ~4.8 phrases/motif
      const std::uint64_t motifs = bg.poisson(expected);
      for (std::uint64_t m = 0; m < motifs; ++m) {
        double mt = bg.uniform(150.0, duration);
        // 70% long service motifs (the learnable long-range structure),
        // the rest short health/mount chatter and singleton noise.
        const std::uint64_t kind = bg.uniform_index(10);
        if (kind < 7) {
          const std::size_t variant = bg.uniform_index(4);
          auto step = [&](std::size_t phrase) {
            emit(mt, node, phrase, bg);
            mt += bg.uniform(1.0, 8.0);
          };
          step(long_motif_open[variant]);
          for (std::size_t i = 0; i < 3; ++i) step(long_motif_middle[i]);
          step(long_motif_close[variant][0]);
          step(long_motif_close[variant][1]);
        } else if (kind == 7) {
          for (std::size_t i = 0; i < 2; ++i, mt += bg.uniform(0.5, 5.0))
            emit(mt, node, health_motif[i], bg);
        } else if (kind == 8) {
          for (std::size_t i = 0; i < 3; ++i, mt += bg.uniform(1.0, 10.0))
            emit(mt, node, mount_motif[i], bg);
        } else {
          const auto safe = catalog.safe_indices();
          emit(mt, node, safe[bg.uniform_index(safe.size())], bg);
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // 2. Anomalous node failures.
  // ------------------------------------------------------------------
  {
    util::Rng fr = rng.fork(2);
    std::span<const double> mix(profile_.class_mix.data(),
                                profile_.class_mix.size());

    // Pattern coverage: schedule one instance of every (class, variant) in
    // the training period so phase 2 can learn every mode it will be asked
    // to recognize; the paper's training window likewise spans all modes.
    struct PlannedFailure {
      FailureClass cls;
      std::size_t variant;
      bool force_train;
    };
    std::vector<PlannedFailure> planned;
    for (std::size_t c = 0; c < kFailureClassCount; ++c) {
      const auto cls = static_cast<FailureClass>(c);
      for (std::size_t v = 0; v < catalog.failure_patterns(cls).size(); ++v)
        planned.push_back({cls, v, true});
    }
    while (planned.size() < profile_.failure_count) {
      const auto cls = static_cast<FailureClass>(fr.discrete(mix));
      const std::size_t v =
          fr.uniform_index(catalog.failure_patterns(cls).size());
      planned.push_back({cls, v, false});
    }

    // First pass: placement (node + terminal time) for every planned
    // failure. Emission is deferred so the novel-pattern flags can be
    // assigned as an *exact count* of the test-period failures — per-event
    // coin flips would add binomial noise straight into the recall metric.
    struct PlacedFailure {
      PlannedFailure plan;
      NodeId node;
      double terminal_time = 0;
      double lead = 0;
      bool novel = false;
    };
    std::vector<PlacedFailure> placed_failures;
    for (const PlannedFailure& pf : planned) {
      const double lead = sample_lead_anchor(pf.cls, profile_.lead_time_scale, fr);
      // Chains need ~lead + early-gap headroom after trace start.
      const double head = lead + 8.0 * profile_.early_gap_mean_seconds + 60.0;
      double terminal_time = 0;
      NodeId node;
      const bool in_train = pf.force_train;
      bool placed = false;
      for (int attempt = 0; attempt < 200 && !placed; ++attempt) {
        terminal_time = in_train
                            ? fr.uniform(head, log.truth.split_time)
                            : fr.uniform(head, duration);
        node = nodes_[fr.uniform_index(nodes_.size())];
        if (!busy.conflicts(node, terminal_time - head, terminal_time + 60.0))
          placed = true;
      }
      if (!placed) continue;  // trace saturated; drop this failure
      busy.reserve(node, terminal_time - head - kAnomalyPadSeconds,
                   terminal_time + kAnomalyPadSeconds);
      placed_failures.push_back(PlacedFailure{pf, node, terminal_time, lead});
    }

    // Exact novel-count assignment among test-period failures.
    std::vector<std::size_t> test_indices;
    for (std::size_t i = 0; i < placed_failures.size(); ++i)
      if (placed_failures[i].terminal_time >= log.truth.split_time)
        test_indices.push_back(i);
    fr.shuffle(test_indices);
    const auto novel_count = static_cast<std::size_t>(
        std::round(profile_.novel_failure_fraction *
                   static_cast<double>(test_indices.size())));
    for (std::size_t i = 0; i < novel_count && i < test_indices.size(); ++i)
      placed_failures[test_indices[i]].novel = true;

    for (const PlacedFailure& placed : placed_failures) {
      const PlannedFailure& pf = placed.plan;
      const auto& patterns = catalog.failure_patterns(pf.cls);
      const double lead = placed.lead;
      const double terminal_time = placed.terminal_time;
      const NodeId node = placed.node;
      const bool novel = placed.novel;

      std::vector<std::size_t> phrases;
      if (novel) {
        // A failure mode never seen in training: random unknown prelude,
        // one error, a terminal phrase.
        const auto unknowns = catalog.unknown_indices();
        const auto errors = catalog.error_indices();
        const auto terminals = catalog.terminal_indices();
        const std::size_t prelude = 5 + fr.uniform_index(4);
        for (std::size_t i = 0; i < prelude; ++i)
          phrases.push_back(unknowns[fr.uniform_index(unknowns.size())]);
        phrases.push_back(errors[fr.uniform_index(errors.size())]);
        phrases.push_back(terminals[fr.uniform_index(terminals.size())]);
      } else {
        phrases = patterns[pf.variant].phrases;
      }

      const auto times =
          chain_times(phrases.size(), terminal_time, lead,
                      profile_.early_gap_mean_seconds, fr);
      for (std::size_t i = 0; i < phrases.size(); ++i) {
        emit(times[i], node, phrases[i], fr);
        if (catalog.phrase(phrases[i]).failure_contribution)
          ++failure_occurrences[phrases[i]];
      }
      log.truth.failures.push_back(FailureEvent{node, terminal_time,
                                                times.front(), pf.cls, novel,
                                                pf.variant});
    }
  }

  // ------------------------------------------------------------------
  // 3. Non-failure lookalike sequences (Table 9 right columns).
  // ------------------------------------------------------------------
  {
    util::Rng lr = rng.fork(3);
    std::span<const double> mix(profile_.class_mix.data(),
                                profile_.class_mix.size());
    // Exact hard-lookalike count (the FP rate is too small a denominator to
    // tolerate per-event coin-flip noise).
    std::vector<bool> hardness(profile_.lookalike_count, false);
    const auto hard_count = static_cast<std::size_t>(
        std::round(profile_.hard_lookalike_fraction *
                   static_cast<double>(profile_.lookalike_count)));
    for (std::size_t i = 0; i < hard_count && i < hardness.size(); ++i)
      hardness[i] = true;
    lr.shuffle(hardness);
    for (std::size_t k = 0; k < profile_.lookalike_count; ++k) {
      const auto cls = static_cast<FailureClass>(lr.discrete(mix));
      const auto& patterns = catalog.lookalike_patterns(cls);
      const bool hard = hardness[k];
      // Variant 0 is the hard (full-prefix) lookalike by catalog convention.
      const std::size_t variant =
          hard ? 0 : 1 + lr.uniform_index(patterns.size() - 1);
      const auto& phrases = patterns[variant].phrases;

      const double lead = sample_lead_anchor(cls, profile_.lead_time_scale, lr);
      const double head = lead + 8.0 * profile_.early_gap_mean_seconds + 60.0;
      double end_time = 0;
      NodeId node;
      bool placed = false;
      for (int attempt = 0; attempt < 200 && !placed; ++attempt) {
        end_time = lr.uniform(head, duration);
        node = nodes_[lr.uniform_index(nodes_.size())];
        if (!busy.conflicts(node, end_time - head, end_time + 60.0))
          placed = true;
      }
      if (!placed) continue;

      const auto times = chain_times(phrases.size(), end_time, lead,
                                     profile_.early_gap_mean_seconds, lr);
      for (std::size_t i = 0; i < phrases.size(); ++i) {
        emit(times[i], node, phrases[i], lr);
        if (catalog.phrase(phrases[i]).failure_contribution)
          ++nonfailure_occurrences[phrases[i]];
      }
      busy.reserve(node, times.front() - kAnomalyPadSeconds,
                   end_time + kAnomalyPadSeconds);
      log.truth.lookalikes.push_back(LookalikeEvent{
          node, times.front(), end_time, cls, hard, variant});
    }
  }

  // ------------------------------------------------------------------
  // 4. Table 8 calibration backfill: singleton unknown-phrase occurrences
  // outside any failure chain, sized so that the fraction of occurrences
  // inside failure chains matches the paper's contribution column.
  // ------------------------------------------------------------------
  {
    util::Rng br = rng.fork(4);
    for (std::size_t idx : catalog.table8_phrases()) {
      const double target = *catalog.phrase(idx).failure_contribution;
      const double in_failures =
          static_cast<double>(failure_occurrences[idx]);
      if (in_failures == 0) continue;
      const double needed_nonfailure = in_failures * (1.0 - target) / target;
      const double have = static_cast<double>(nonfailure_occurrences[idx]);
      const auto backfill = static_cast<std::size_t>(
          std::max(0.0, std::round(needed_nonfailure - have)));
      for (std::size_t i = 0; i < backfill; ++i) {
        const NodeId node = nodes_[br.uniform_index(nodes_.size())];
        const double t = br.uniform(150.0, duration);
        if (busy.conflicts(node, t - kAnomalyPadSeconds, t + kAnomalyPadSeconds)) continue;
        emit(t, node, idx, br);
      }
    }
  }

  // ------------------------------------------------------------------
  // 5. Maintenance shutdowns: coordinated, many nodes, simple pattern.
  // ------------------------------------------------------------------
  {
    util::Rng mr = rng.fork(5);
    const std::size_t open_idx =
        catalog.index_of("Service: scheduled maintenance window opened");
    const std::size_t warm_idx = catalog.index_of("Warm boot initiated by operator");
    const std::size_t halt_idx = catalog.index_of("System: halted");
    const std::size_t boot_idx = catalog.index_of("ec_boot: node boot completed");
    const std::size_t close_idx =
        catalog.index_of("Service: scheduled maintenance window closed");
    for (std::size_t w = 0; w < profile_.maintenance_windows; ++w) {
      const double t0 = mr.uniform(duration * 0.1, duration * 0.9);
      MaintenanceEvent event;
      event.time = t0;
      for (const NodeId& node : nodes_) {
        if (!mr.chance(0.3)) continue;
        if (busy.conflicts(node, t0 - 300.0, t0 + 600.0)) continue;
        const double jitter = mr.uniform(0.0, 30.0);
        emit(t0 + jitter, node, open_idx, mr);
        emit(t0 + jitter + 5.0, node, warm_idx, mr);
        emit(t0 + jitter + 10.0, node, halt_idx, mr);
        emit(t0 + jitter + 120.0, node, boot_idx, mr);
        emit(t0 + jitter + 130.0, node, close_idx, mr);
        busy.reserve(node, t0 - 60.0, t0 + 200.0);
        event.nodes.push_back(node);
      }
      log.truth.maintenance.push_back(std::move(event));
    }
  }

  std::stable_sort(log.records.begin(), log.records.end());
  return log;
}

}  // namespace desh::logs
