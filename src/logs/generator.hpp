// SyntheticCraySource: the statistical stand-in for the paper's 584 GB of
// production Cray console logs (Table 1), which are vendor-controlled and
// unavailable. See DESIGN.md section 1 for the substitution argument.
//
// The source emits a raw, unstructured, noise-interleaved log stream plus a
// ground-truth side channel (used ONLY by the evaluator, never by Desh):
//  - per-node benign background traffic in small motifs (boot sequences,
//    job lifecycles, health checks) so phase-1 language modeling has real
//    sequential structure to learn;
//  - anomalous node failures: class-stratified chains (Table 7 mix) drawn
//    from the catalog's pattern variants with class-specific lead-time
//    anchors; a configurable fraction of test-period failures are novel
//    (never-trained) patterns;
//  - non-failure lookalike sequences sharing failure prefixes (Table 9);
//  - singleton unknown-phrase backfill calibrated so each Table 8 phrase's
//    failure-chain contribution matches the paper's percentage;
//  - coordinated maintenance shutdowns ("simpler patterns", Sec 2) which a
//    predictor must not count as anomalous failures.
#pragma once

#include <vector>

#include "logs/phrase_catalog.hpp"
#include "logs/record.hpp"
#include "logs/system_profile.hpp"
#include "util/rng.hpp"

namespace desh::logs {

/// Ground truth for one anomalous node failure.
struct FailureEvent {
  NodeId node;
  double terminal_time = 0;  // timestamp of the terminal phrase
  double start_time = 0;     // timestamp of the first chain phrase
  FailureClass failure_class = FailureClass::kPanic;
  bool novel = false;        // pattern unseen in the training period
  std::size_t variant = 0;   // catalog pattern variant (novel: meaningless)
};

/// Ground truth for one non-failure anomalous sequence.
struct LookalikeEvent {
  NodeId node;
  double start_time = 0;
  double end_time = 0;
  FailureClass failure_class = FailureClass::kPanic;
  bool hard = false;  // replicates a failure chain up to the final phrase
  std::size_t variant = 0;
};

/// A coordinated service shutdown affecting many nodes at once.
struct MaintenanceEvent {
  double time = 0;
  std::vector<NodeId> nodes;
};

struct GroundTruth {
  std::vector<FailureEvent> failures;
  std::vector<LookalikeEvent> lookalikes;
  std::vector<MaintenanceEvent> maintenance;
  double split_time = 0;        // records before this form the training set
  double duration_seconds = 0;

  /// Failures/lookalikes whose activity lies in the test period (the
  /// population the paper's Figs 4/5 metrics are computed over).
  std::size_t test_failure_count() const;
  std::size_t test_lookalike_count() const;
};

struct SyntheticLog {
  LogCorpus records;  // globally sorted by timestamp
  GroundTruth truth;
};

class SyntheticCraySource {
 public:
  explicit SyntheticCraySource(SystemProfile profile);

  /// Generates the full trace; deterministic for a given profile (seed
  /// included). Safe to call repeatedly — each call returns the same log.
  SyntheticLog generate() const;

  const std::vector<NodeId>& nodes() const { return nodes_; }
  const SystemProfile& profile() const { return profile_; }

  /// Renders one raw message for a catalog phrase (template with its
  /// dynamic component filled in). Exposed for parser round-trip tests.
  static std::string render_message(const CatalogPhrase& phrase,
                                    util::Rng& rng);

 private:
  SystemProfile profile_;
  std::vector<NodeId> nodes_;
};

}  // namespace desh::logs
