#include "logs/io.hpp"

#include <cstdio>
#include <fstream>

#include "util/strings.hpp"

namespace desh::logs {

core::Expected<void> save_corpus(const LogCorpus& corpus,
                                 const std::string& path) {
  std::ofstream os(path);
  if (!os)
    return core::Error{core::ErrorCode::kIo,
                       "save_corpus: cannot open " + path};
  char ts[32];
  for (const LogRecord& record : corpus) {
    std::snprintf(ts, sizeof(ts), "%.6f", record.timestamp);
    os << ts << ' ' << record.node.to_string() << ' ' << record.message
       << '\n';
  }
  if (!os)
    return core::Error{core::ErrorCode::kIo,
                       "save_corpus: write failed for " + path};
  return {};
}

core::Expected<LogCorpus> load_corpus(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    return core::Error{core::ErrorCode::kIo,
                       "load_corpus: cannot open " + path};
  LogCorpus corpus;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (util::trim(line).empty()) continue;
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos)
      return core::Error{core::ErrorCode::kInvalidArgument,
                         "load_corpus: malformed line " +
                             std::to_string(line_no) + " in " + path};
    LogRecord record;
    record.timestamp = std::strtod(line.substr(0, sp1).c_str(), nullptr);
    NodeId node;
    if (!NodeId::try_parse(line.substr(sp1 + 1, sp2 - sp1 - 1), node))
      return core::Error{core::ErrorCode::kInvalidArgument,
                         "load_corpus: malformed node id on line " +
                             std::to_string(line_no) + " in " + path};
    record.node = node;
    record.message = line.substr(sp2 + 1);
    corpus.push_back(std::move(record));
  }
  return corpus;
}

}  // namespace desh::logs
