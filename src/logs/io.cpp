#include "logs/io.hpp"

#include <cstdio>
#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace desh::logs {

void save_corpus(const LogCorpus& corpus, const std::string& path) {
  std::ofstream os(path);
  // desh-lint: allow(throw-discipline) legacy throwing I/O helper
  if (!os) throw util::IoError("save_corpus: cannot open " + path);
  char ts[32];
  for (const LogRecord& record : corpus) {
    std::snprintf(ts, sizeof(ts), "%.6f", record.timestamp);
    os << ts << ' ' << record.node.to_string() << ' ' << record.message
       << '\n';
  }
  // desh-lint: allow(throw-discipline) legacy throwing I/O helper
  if (!os) throw util::IoError("save_corpus: write failed for " + path);
}

LogCorpus load_corpus(const std::string& path) {
  std::ifstream is(path);
  // desh-lint: allow(throw-discipline) legacy throwing I/O helper
  if (!is) throw util::IoError("load_corpus: cannot open " + path);
  LogCorpus corpus;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (util::trim(line).empty()) continue;
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    util::require(sp2 != std::string::npos,
                  "load_corpus: malformed line " + std::to_string(line_no) +
                      " in " + path);
    LogRecord record;
    record.timestamp = std::strtod(line.substr(0, sp1).c_str(), nullptr);
    record.node = NodeId::parse(line.substr(sp1 + 1, sp2 - sp1 - 1));
    record.message = line.substr(sp2 + 1);
    corpus.push_back(std::move(record));
  }
  return corpus;
}

}  // namespace desh::logs
