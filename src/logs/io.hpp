// Plain-text log persistence in the console-log style of Table 2:
//   <HH:MM:SS.micro> <node-id> <message...>
// plus an absolute-seconds prefix so round-trips are lossless.
#pragma once

#include <string>

#include "core/expected.hpp"
#include "logs/record.hpp"

namespace desh::logs {

/// Writes one record per line: "<seconds> <node> <message>".
/// Errors: kIo (open/write failure).
[[nodiscard]] core::Expected<void> save_corpus(const LogCorpus& corpus,
                                               const std::string& path);

/// Reads a corpus written by save_corpus. Errors: kIo (open failure),
/// kInvalidArgument (malformed line, message names the line number).
[[nodiscard]] core::Expected<LogCorpus> load_corpus(const std::string& path);

}  // namespace desh::logs
