// Plain-text log persistence in the console-log style of Table 2:
//   <HH:MM:SS.micro> <node-id> <message...>
// plus an absolute-seconds prefix so round-trips are lossless.
#pragma once

#include <string>

#include "logs/record.hpp"

namespace desh::logs {

/// Writes one record per line: "<seconds> <node> <message>".
void save_corpus(const LogCorpus& corpus, const std::string& path);

/// Reads a corpus written by save_corpus; throws util::IoError on failure
/// and util::InvalidArgument on malformed lines.
LogCorpus load_corpus(const std::string& path);

}  // namespace desh::logs
