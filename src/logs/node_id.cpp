#include "logs/node_id.hpp"

#include <cctype>
#include <charconv>

#include "util/error.hpp"

namespace desh::logs {

namespace {
// Parses an unsigned integer starting at text[pos]; advances pos past it.
bool parse_uint(std::string_view text, std::size_t& pos, unsigned& out) {
  if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos])))
    return false;
  unsigned value = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    value = value * 10 + static_cast<unsigned>(text[pos] - '0');
    ++pos;
  }
  out = value;
  return true;
}
}  // namespace

std::string NodeId::to_string() const {
  std::string out = "c";
  out += std::to_string(cabinet_x);
  out += '-';
  out += std::to_string(cabinet_y);
  out += 'c';
  out += std::to_string(chassis);
  out += 's';
  out += std::to_string(slot);
  out += 'n';
  out += std::to_string(node);
  return out;
}

bool NodeId::try_parse(std::string_view text, NodeId& out) {
  std::size_t pos = 0;
  unsigned cx, cy, ch, sl, nd;
  auto expect = [&](char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  };
  if (!expect('c') || !parse_uint(text, pos, cx)) return false;
  if (!expect('-') || !parse_uint(text, pos, cy)) return false;
  if (!expect('c') || !parse_uint(text, pos, ch)) return false;
  if (!expect('s') || !parse_uint(text, pos, sl)) return false;
  if (!expect('n') || !parse_uint(text, pos, nd)) return false;
  if (pos != text.size()) return false;
  if (cx > 0xffff || cy > 0xffff || ch > 0xff || sl > 0xff || nd > 0xff)
    return false;
  out = NodeId{static_cast<std::uint16_t>(cx), static_cast<std::uint16_t>(cy),
               static_cast<std::uint8_t>(ch), static_cast<std::uint8_t>(sl),
               static_cast<std::uint8_t>(nd)};
  return true;
}

NodeId NodeId::parse(std::string_view text) {
  NodeId out;
  util::require(try_parse(text, out),
                "NodeId::parse: malformed node id '" + std::string(text) + "'");
  return out;
}

std::string NodeId::location_description() const {
  std::string out = "cabinet ";
  out += std::to_string(cabinet_x);
  out += '-';
  out += std::to_string(cabinet_y);
  out += ", chassis ";
  out += std::to_string(chassis);
  out += ", blade ";
  out += std::to_string(slot);
  out += ", node ";
  out += std::to_string(node);
  return out;
}

}  // namespace desh::logs
