// Cray physical node identifiers. The paper (Sec 4.5) stresses that the node
// id cA-BcCsSnN carries the exact failure location: cabinet column A, cabinet
// row B, chassis C, blade/slot S, node N — e.g. "c1-0c1s1n0" in Table 2.
// Desh tracks these through phase 3 so a warning names the failing node and
// where it physically sits.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace desh::logs {

struct NodeId {
  std::uint16_t cabinet_x = 0;  // cabinet column
  std::uint16_t cabinet_y = 0;  // cabinet row
  std::uint8_t chassis = 0;     // chassis within the cabinet (0..2 on XC)
  std::uint8_t slot = 0;        // blade slot within the chassis (0..15)
  std::uint8_t node = 0;        // node on the blade (0..3)

  auto operator<=>(const NodeId&) const = default;

  /// Renders the canonical Cray form, e.g. "c1-0c1s1n0".
  std::string to_string() const;

  /// Parses the canonical form; throws util::InvalidArgument on malformed
  /// input. Accepts exactly the format produced by to_string().
  static NodeId parse(std::string_view text);
  /// Non-throwing variant; returns false on malformed input.
  static bool try_parse(std::string_view text, NodeId& out);

  /// Human-readable location phrase for operator warnings (Sec 4.5):
  /// "cabinet 1-0, chassis 1, blade 1, node 0".
  std::string location_description() const;
};

}  // namespace desh::logs

template <>
struct std::hash<desh::logs::NodeId> {
  std::size_t operator()(const desh::logs::NodeId& id) const noexcept {
    std::size_t h = id.cabinet_x;
    h = h * 131 + id.cabinet_y;
    h = h * 131 + id.chassis;
    h = h * 131 + id.slot;
    h = h * 131 + id.node;
    return h;
  }
};
