#include "logs/phrase_catalog.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace desh::logs {

std::string_view failure_class_name(FailureClass c) {
  switch (c) {
    case FailureClass::kJob: return "Job";
    case FailureClass::kMce: return "MCE";
    case FailureClass::kFileSystem: return "FS";
    case FailureClass::kTraps: return "Traps";
    case FailureClass::kHardware: return "H/W";
    case FailureClass::kPanic: return "Panic";
  }
  return "?";
}

double paper_lead_time_seconds(FailureClass c) {
  // Table 7, column "Avg. Lead Times (secs)".
  switch (c) {
    case FailureClass::kJob: return 81.52;
    case FailureClass::kMce: return 160.29;
    case FailureClass::kFileSystem: return 119.32;
    case FailureClass::kTraps: return 115.74;
    case FailureClass::kHardware: return 124.29;
    case FailureClass::kPanic: return 58.87;
  }
  return 0.0;
}

const PhraseCatalog& PhraseCatalog::instance() {
  static const PhraseCatalog catalog;
  return catalog;
}

const CatalogPhrase& PhraseCatalog::phrase(std::size_t index) const {
  util::require(index < phrases_.size(), "PhraseCatalog::phrase: bad index");
  return phrases_[index];
}

std::size_t PhraseCatalog::index_of(std::string_view tmpl) const {
  for (std::size_t i = 0; i < phrases_.size(); ++i)
    if (phrases_[i].tmpl == tmpl) return i;
  util::require(false, "PhraseCatalog::index_of: unknown template '" +
                           std::string(tmpl) + "'");
  return 0;  // unreachable: require() reports the precondition violation
}

bool PhraseCatalog::has_template(std::string_view tmpl) const {
  for (const CatalogPhrase& p : phrases_)
    if (p.tmpl == tmpl) return true;
  return false;
}

std::span<const ChainPattern> PhraseCatalog::failure_patterns(
    FailureClass c) const {
  return failure_patterns_[static_cast<std::size_t>(c)];
}

std::span<const ChainPattern> PhraseCatalog::lookalike_patterns(
    FailureClass c) const {
  return lookalike_patterns_[static_cast<std::size_t>(c)];
}

PhraseCatalog::PhraseCatalog() {
  failure_patterns_.resize(kFailureClassCount);
  lookalike_patterns_.resize(kFailureClassCount);

  auto add = [&](std::string_view tmpl, PhraseLabel label, DynamicKind dyn,
                 bool terminal = false,
                 std::optional<double> contribution = std::nullopt) {
    phrases_.push_back(CatalogPhrase{tmpl, label, dyn, terminal, contribution});
    const std::size_t idx = phrases_.size() - 1;
    switch (label) {
      case PhraseLabel::kSafe: safe_.push_back(idx); break;
      case PhraseLabel::kUnknown: unknown_.push_back(idx); break;
      case PhraseLabel::kError: error_.push_back(idx); break;
    }
    if (terminal) terminal_.push_back(idx);
    return idx;
  };

  // ------------------------------------------------------------------
  // Safe phrases (Table 3 column 1 plus routine Cray/Linux chatter).
  // ------------------------------------------------------------------
  const std::size_t sMountNid = add("Mounting NID specific", PhraseLabel::kSafe,
                                    DynamicKind::kNone);
  const std::size_t sApicTimer =
      add("cpu * apic_timer_irqs", PhraseLabel::kSafe, DynamicKind::kNumber);
  const std::size_t sSettingFlag =
      add("Setting flag", PhraseLabel::kSafe, DynamicKind::kNone);
  const std::size_t sWait4Boot =
      add("Wait4Boot", PhraseLabel::kSafe, DynamicKind::kNone);
  const std::size_t sEcNodeInfo = add("Sending ec node info with boot code",
                                      PhraseLabel::kSafe, DynamicKind::kNone);
  const std::size_t sSysctl =
      add("Running * using values from *", PhraseLabel::kSafe,
          DynamicKind::kPath);
  const std::size_t sLnetQuiesce = add("LNet: hardware quiesce *",
                                       PhraseLabel::kSafe, DynamicKind::kHexCode);
  const std::size_t sThreadsAwake =
      add("All threads awake", PhraseLabel::kSafe, DynamicKind::kNone);
  const std::size_t sNtp = add("ntpd: time synchronized with *",
                               PhraseLabel::kSafe, DynamicKind::kNumber);
  const std::size_t sSlurmReg = add("slurmd: Registered with controller",
                                    PhraseLabel::kSafe, DynamicKind::kNone);
  const std::size_t sLustreConn = add("Lustre: * connected to *",
                                      PhraseLabel::kSafe, DynamicKind::kMixed);
  const std::size_t sAccept = add("Accepting connections on port *",
                                  PhraseLabel::kSafe, DynamicKind::kNumber);
  const std::size_t sHealthOk = add("RAS: node health check passed",
                                    PhraseLabel::kSafe, DynamicKind::kNone);
  const std::size_t sHeartbeat = add("Console heartbeat ok", PhraseLabel::kSafe,
                                     DynamicKind::kNone);
  const std::size_t sJobStart = add("Job * started by user *",
                                    PhraseLabel::kSafe, DynamicKind::kNumber);
  const std::size_t sJobDone = add("Job * completed successfully",
                                   PhraseLabel::kSafe, DynamicKind::kNumber);
  const std::size_t sDvsMount = add("DVS: mount completed", PhraseLabel::kSafe,
                                    DynamicKind::kNone);
  const std::size_t sBootDone = add("ec_boot: node boot completed",
                                    PhraseLabel::kSafe, DynamicKind::kNone);
  const std::size_t sPower = add("Power: cabinet power status nominal",
                                 PhraseLabel::kSafe, DynamicKind::kNone);
  const std::size_t sAlps = add("ALPS: apinit launch confirmed",
                                PhraseLabel::kSafe, DynamicKind::kNumber);
  const std::size_t sWarmBoot = add("Warm boot initiated by operator",
                                    PhraseLabel::kSafe, DynamicKind::kNone);
  const std::size_t sMaintOpen =
      add("Service: scheduled maintenance window opened", PhraseLabel::kSafe,
          DynamicKind::kNone);
  const std::size_t sMaintClose =
      add("Service: scheduled maintenance window closed", PhraseLabel::kSafe,
          DynamicKind::kNone);
  const std::size_t sRunlevel = add("init: entering runlevel *",
                                    PhraseLabel::kSafe, DynamicKind::kNumber);
  const std::size_t sNscd = add("nscd: nss_ldap reconnected",
                                PhraseLabel::kSafe, DynamicKind::kNone);
  const std::size_t sLdapOk = add("startproc: nss_ldap service started",
                                  PhraseLabel::kSafe, DynamicKind::kNone);

  // ------------------------------------------------------------------
  // Unknown phrases. The first twelve are Table 8's P1..P12, with the
  // paper's "contribution to node failures" percentages as calibration.
  // ------------------------------------------------------------------
  const std::size_t uLustreError =
      add("LustreError *", PhraseLabel::kUnknown, DynamicKind::kMixed, false,
          0.56);  // P1
  const std::size_t uOomKilled =
      add("Out of memory: Killed process *", PhraseLabel::kUnknown,
          DynamicKind::kNumber, false, 0.15);  // P2
  const std::size_t uLnetCritical =
      add("LNet: Critical hardware error *", PhraseLabel::kUnknown,
          DynamicKind::kHexCode, false, 0.36);  // P3
  const std::size_t uSlurmCtl =
      add("Slurm load partitions error: Unable to contact slurm controller",
          PhraseLabel::kUnknown, DynamicKind::kNone, false, 0.42);  // P4
  const std::size_t uAerBadTlp =
      add("hwerr * Correctable AER_BAD_TLP Error *", PhraseLabel::kUnknown,
          DynamicKind::kHexCode, false, 0.12);  // P5
  const std::size_t uLlmrd =
      add("Sent shutdown to llmrd at process *", PhraseLabel::kUnknown,
          DynamicKind::kNumber, false, 0.17);  // P6
  const std::size_t uAerMulti =
      add("AER: Multiple corrected error recvd *", PhraseLabel::kUnknown,
          DynamicKind::kHexCode, false, 0.21);  // P7
  const std::size_t uTrapCode =
      add("Trap invalid code * Error *", PhraseLabel::kUnknown,
          DynamicKind::kHexCode, false, 0.08);  // P8
  const std::size_t uModprobe =
      add("modprobe: Fatal: Module * not found *", PhraseLabel::kUnknown,
          DynamicKind::kMixed, false, 0.27);  // P9
  const std::size_t uNodeHealthExit =
      add("<node_health> * Warning: program * returned with exit code *",
          PhraseLabel::kUnknown, DynamicKind::kNumber, false, 0.29);  // P10
  const std::size_t uDvsVerify =
      add("DVS: Verify Filesystem *", PhraseLabel::kUnknown,
          DynamicKind::kPath, false, 0.60);  // P11
  const std::size_t uNullDeref =
      add("BUG: unable to handle kernel NULL pointer dereference",
          PhraseLabel::kUnknown, DynamicKind::kNone, false, 0.25);  // P12
  table8_ = {uLustreError, uOomKilled,      uLnetCritical, uSlurmCtl,
             uAerBadTlp,   uLlmrd,          uAerMulti,     uTrapCode,
             uModprobe,    uNodeHealthExit, uDvsVerify,    uNullDeref};

  // Remaining unknown phrases (Tables 2, 4 and 9).
  const std::size_t uMce = add("CPU * Machine Check Exception: *",
                               PhraseLabel::kUnknown, DynamicKind::kHexCode);
  const std::size_t uMcelog =
      add("[Hardware Error]: Run the above through mcelog --ascii",
          PhraseLabel::kUnknown, DynamicKind::kNone);
  const std::size_t uRip = add("[Hardware Error]: RIP !INEXACT! *",
                               PhraseLabel::kUnknown, DynamicKind::kHexCode);
  const std::size_t uCorrPage = add("Corrected Memory Errors on Page *",
                                    PhraseLabel::kUnknown, DynamicKind::kHexCode);
  const std::size_t uMceIrq = add("mce_notify_irq: *", PhraseLabel::kUnknown,
                                  DynamicKind::kHexCode);
  const std::size_t uSsidRsp =
      add("hwerr * ssid rsp a status msg protocol err error *",
          PhraseLabel::kUnknown, DynamicKind::kHexCode);
  const std::size_t uAerReplay =
      add("hwerr * Correctable aer replay timer timeout error *",
          PhraseLabel::kUnknown, DynamicKind::kHexCode);
  const std::size_t uPcie = add("PCIe Bus Error: severity=Corrected *",
                                PhraseLabel::kUnknown, DynamicKind::kHexCode);
  const std::size_t uErrSeverity = add("ERROR: Type: * Severity: *",
                                       PhraseLabel::kUnknown,
                                       DynamicKind::kNumber);
  const std::size_t uGnilndReaper =
      add("LNet: * gnilnd:kgnilnd reaper dgram check", PhraseLabel::kUnknown,
          DynamicKind::kHexCode);
  const std::size_t uGnilndNoTraffic =
      add("LNet: No gnilnd traffic received from *", PhraseLabel::kUnknown,
          DynamicKind::kNodeRef);
  const std::size_t uOomInvoked = add("* invoked oom killer",
                                      PhraseLabel::kUnknown, DynamicKind::kNumber);
  const std::size_t uNodeHealthFail =
      add("<node_health> * failures: *", PhraseLabel::kUnknown,
          DynamicKind::kNumber);
  const std::size_t uDvsNoServers =
      add("DVS: * no servers functioning properly", PhraseLabel::kUnknown,
          DynamicKind::kNumber);
  const std::size_t uLustreSkipBin = add("Lustre: * binary skipped *",
                                         PhraseLabel::kUnknown,
                                         DynamicKind::kMixed);
  const std::size_t uLdapFail =
      add("startproc: nss_ldap: failed to connect *", PhraseLabel::kUnknown,
          DynamicKind::kNumber);
  const std::size_t uSlurmdStop = add("Slurmd Stopped", PhraseLabel::kUnknown,
                                      DynamicKind::kNone);
  const std::size_t uGsockets =
      add("Gsockets debug: critical hardware error *", PhraseLabel::kUnknown,
          DynamicKind::kHexCode);
  const std::size_t uDimm = add("Corrected DIMM Memory Errors *",
                                PhraseLabel::kUnknown, DynamicKind::kNumber);
  const std::size_t uLustreSkipped =
      add("LustreError: Skipped * previous similar messages",
          PhraseLabel::kUnknown, DynamicKind::kNumber);
  const std::size_t uMceLogged = add("HW Error: MCE Logged *",
                                     PhraseLabel::kUnknown, DynamicKind::kHexCode);
  const std::size_t uLustreMount = add("Lustre: mount * failed with *",
                                       PhraseLabel::kUnknown, DynamicKind::kMixed);
  const std::size_t uDvsTimeout = add("DVS: file system request timed out *",
                                      PhraseLabel::kUnknown, DynamicKind::kNumber);
  const std::size_t uSegfault = add("segfault at * ip * sp * error *",
                                    PhraseLabel::kUnknown, DynamicKind::kHexCode);
  const std::size_t uTrapOpcode = add("Trap invalid opcode *",
                                      PhraseLabel::kUnknown, DynamicKind::kHexCode);
  const std::size_t uTestsFailed = add("The following tests * failed",
                                       PhraseLabel::kUnknown, DynamicKind::kNumber);
  const std::size_t uPktProto = add("Packet protocol error on link *",
                                    PhraseLabel::kUnknown, DynamicKind::kHexCode);

  // ------------------------------------------------------------------
  // Error phrases (Table 3 column 3); terminals mark a node going down.
  // ------------------------------------------------------------------
  const std::size_t ePanic = add("Kernel panic - not syncing *",
                                 PhraseLabel::kError, DynamicKind::kMixed);
  const std::size_t eCallTrace =
      add("Call Trace:", PhraseLabel::kError, DynamicKind::kNone);
  const std::size_t eStackTrace = add("Stack Trace: *", PhraseLabel::kError,
                                      DynamicKind::kHexCode);
  const std::size_t eCbNodeUnavail = add("cb_node_unavailable",
                                         PhraseLabel::kError, DynamicKind::kNone,
                                         /*terminal=*/true);
  const std::size_t eNodeDown =
      add("WARNING: Node * is down", PhraseLabel::kError, DynamicKind::kNodeRef,
          /*terminal=*/true);
  const std::size_t eDebugNmi = add("Debug NMI detected", PhraseLabel::kError,
                                    DynamicKind::kNone);
  const std::size_t eStopNmi = add("Stop NMI detected", PhraseLabel::kError,
                                   DynamicKind::kNone, /*terminal=*/true);
  const std::size_t eHeartbeatFault =
      add("node heartbeat fault: node * not responding", PhraseLabel::kError,
          DynamicKind::kNodeRef);
  const std::size_t eNmiFault = add("NMI: critical hardware fault detected *",
                                    PhraseLabel::kError, DynamicKind::kHexCode);
  const std::size_t eCpuStall =
      add("CPU stall detected: rcu_sched self-detected stall *",
          PhraseLabel::kError, DynamicKind::kNumber);
  const std::size_t eFatalTrap =
      add("Fatal trap: invalid opcode in kernel mode *", PhraseLabel::kError,
          DynamicKind::kHexCode);
  const std::size_t eHalted = add("System: halted", PhraseLabel::kError,
                                  DynamicKind::kNone, /*terminal=*/true);
  const std::size_t eSlurmDown =
      add("slurmctld: error: Nodes * not responding, setting DOWN",
          PhraseLabel::kError, DynamicKind::kNodeRef);

  (void)sMountNid; (void)sApicTimer; (void)sSettingFlag; (void)sWait4Boot;
  (void)sEcNodeInfo; (void)sSysctl; (void)sLnetQuiesce; (void)sThreadsAwake;
  (void)sNtp; (void)sSlurmReg; (void)sLustreConn; (void)sAccept;
  (void)sHealthOk; (void)sHeartbeat; (void)sJobStart; (void)sJobDone;
  (void)sDvsMount; (void)sBootDone; (void)sPower; (void)sAlps;
  (void)sWarmBoot; (void)sMaintOpen; (void)sMaintClose; (void)sRunlevel;
  (void)sNscd; (void)sLdapOk;

  // ------------------------------------------------------------------
  // Failure-chain patterns (Table 4 and Sec 4.2/4.3). Each class has
  // several variants; every variant ends with a terminal phrase.
  // ------------------------------------------------------------------
  auto fail = [&](FailureClass c, std::vector<std::size_t> seq) {
    failure_patterns_[static_cast<std::size_t>(c)].push_back(
        ChainPattern{c, std::move(seq)});
  };
  auto look = [&](FailureClass c, std::vector<std::size_t> seq) {
    lookalike_patterns_[static_cast<std::size_t>(c)].push_back(
        ChainPattern{c, std::move(seq)});
  };

  // --- Job: slurm controller / application failures (Table 7 row 1).
  fail(FailureClass::kJob,
       {uSlurmCtl, uNodeHealthExit, uOomInvoked, uOomKilled, uLlmrd,
        uSlurmdStop, eSlurmDown, eNodeDown});
  fail(FailureClass::kJob,
       {uNodeHealthExit, uSlurmCtl, uLdapFail, uOomInvoked, uOomKilled,
        uNodeHealthFail, eSlurmDown, eHalted});
  fail(FailureClass::kJob,
       {uSlurmCtl, uModprobe, uNodeHealthExit, uNodeHealthFail, uSlurmdStop,
        eSlurmDown, eNodeDown});

  // --- MCE: machine check exceptions / memory faults (Table 4's chain).
  fail(FailureClass::kMce,
       {uMce, uMcelog, uRip, uMceLogged, uCorrPage, uMceIrq, ePanic,
        eCallTrace, eCbNodeUnavail});
  fail(FailureClass::kMce,
       {uCorrPage, uDimm, uMce, uMcelog, uMceLogged, uMceIrq, uRip, ePanic,
        eCbNodeUnavail});
  fail(FailureClass::kMce,
       {uMceLogged, uMce, uDimm, uMceIrq, uCorrPage, eCpuStall, ePanic,
        eCallTrace, eStopNmi});

  // --- FileSystem: Lustre / DVS / packet-protocol errors.
  fail(FailureClass::kFileSystem,
       {uLustreError, uLustreSkipped, uDvsVerify, uDvsNoServers, uLustreMount,
        uDvsTimeout, eSlurmDown, eNodeDown});
  fail(FailureClass::kFileSystem,
       {uDvsVerify, uLustreError, uLustreMount, uLustreSkipBin, uDvsTimeout,
        uPktProto, uLlmrd, eNodeDown});
  fail(FailureClass::kFileSystem,
       {uLustreError, uDvsVerify, uPktProto, uDvsNoServers, uLustreSkipped,
        uErrSeverity, eHalted});

  // --- Traps: segfaults, invalid opcodes, kernel bugs.
  fail(FailureClass::kTraps,
       {uSegfault, uTrapOpcode, uTrapCode, uNullDeref, eFatalTrap, eStackTrace,
        eStopNmi});
  fail(FailureClass::kTraps,
       {uTrapOpcode, uSegfault, uModprobe, uNullDeref, uTrapCode, eFatalTrap,
        eDebugNmi, eStopNmi});
  fail(FailureClass::kTraps,
       {uNullDeref, uSegfault, uTrapOpcode, uTestsFailed, eStackTrace,
        eFatalTrap, eHalted});

  // --- Hardware: NMI faults, interconnect, AER, heartbeat errors.
  fail(FailureClass::kHardware,
       {uLnetCritical, uGsockets, uAerBadTlp, uAerMulti, uSsidRsp, uPcie,
        eNmiFault, eHeartbeatFault, eCbNodeUnavail});
  fail(FailureClass::kHardware,
       {uAerMulti, uAerBadTlp, uAerReplay, uLnetCritical, uGnilndNoTraffic,
        uGnilndReaper, eHeartbeatFault, eStopNmi});
  fail(FailureClass::kHardware,
       {uGnilndNoTraffic, uLnetCritical, uSsidRsp, uPcie, uAerReplay,
        uNodeHealthFail, eNmiFault, eCbNodeUnavail});

  // --- Panic: immediate kernel panics with stack traces (short chains).
  fail(FailureClass::kPanic,
       {uNullDeref, uMceIrq, ePanic, eCallTrace, eStackTrace, eDebugNmi,
        eCbNodeUnavail});
  fail(FailureClass::kPanic,
       {uMceIrq, uErrSeverity, ePanic, eStackTrace, eCallTrace, eStopNmi});
  fail(FailureClass::kPanic,
       {uTestsFailed, uNullDeref, ePanic, eCallTrace, eDebugNmi, eHalted});

  // ------------------------------------------------------------------
  // Lookalike (non-failure) patterns: the Table 9 "Not Failure" columns.
  // Variant 0 of each class is *hard*: identical to failure variant 0 up to
  // the final position, then recovery instead of the terminal phrase.
  // Later variants diverge earlier (easier to reject).
  // ------------------------------------------------------------------
  // Job lookalikes: jobs killed, traps, protocol errors — node survives.
  look(FailureClass::kJob,
       {uSlurmCtl, uNodeHealthExit, uOomInvoked, uOomKilled, uLlmrd,
        uSlurmdStop, eSlurmDown, sSlurmReg});
  look(FailureClass::kJob,
       {uNodeHealthExit, uOomInvoked, uOomKilled, uTrapCode, uSsidRsp,
        uNodeHealthFail, sNscd});
  // MCE lookalikes: corrected MCEs/DIMM errors that never escalate.
  look(FailureClass::kMce,
       {uMce, uMcelog, uRip, uMceLogged, uCorrPage, uMceIrq, ePanic,
        eCallTrace, sHealthOk});
  look(FailureClass::kMce,
       {uMceLogged, uCorrPage, uDimm, uMceIrq, uMce, uDimm, sNscd, sHealthOk});
  // FileSystem lookalikes: Lustre errors endured without node loss.
  look(FailureClass::kFileSystem,
       {uLustreError, uLustreSkipped, uDvsVerify, uDvsNoServers, uLustreMount,
        uDvsTimeout, eSlurmDown, sLustreConn});
  look(FailureClass::kFileSystem,
       {uLustreSkipped, uLustreError, uDvsVerify, uLustreSkipBin, uDimm,
        uCorrPage, sLustreConn, sDvsMount});
  // Traps lookalikes: traps and killed processes, node survives (Table 9 col 3).
  look(FailureClass::kTraps,
       {uSegfault, uTrapOpcode, uTrapCode, uNullDeref, eFatalTrap, eStackTrace,
        sHealthOk});
  look(FailureClass::kTraps,
       {uTrapOpcode, uTrapCode, uOomKilled, uOomInvoked, uLustreSkipBin,
        uLdapFail, sNscd});
  // Hardware lookalikes: critical hardware errors later quiesced.
  look(FailureClass::kHardware,
       {uLnetCritical, uGsockets, uAerBadTlp, uAerMulti, uSsidRsp, uPcie,
        eNmiFault, eHeartbeatFault, sLnetQuiesce});
  look(FailureClass::kHardware,
       {uGnilndNoTraffic, uAerMulti, uAerBadTlp, uPcie, uAerReplay, uSsidRsp,
        sLnetQuiesce, sHealthOk});
  // Panic lookalikes: scary but non-fatal panic-adjacent chatter.
  look(FailureClass::kPanic,
       {uNullDeref, uMceIrq, ePanic, eCallTrace, eStackTrace, eDebugNmi,
        sHealthOk});
  look(FailureClass::kPanic,
       {uMceIrq, uNullDeref, uTestsFailed, uErrSeverity, uLdapFail, uModprobe,
        sRunlevel});
}

}  // namespace desh::logs
