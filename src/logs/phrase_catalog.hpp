// The Cray message taxonomy behind the synthetic log source.
//
// The paper works with real vendor logs whose phrase population, expert
// labels (Table 3), failure-chain structure (Table 4), failure classes
// (Table 7) and unknown-phrase statistics (Table 8/9) are all reported. This
// catalog encodes that same population: every phrase the generator can emit,
// its Safe/Unknown/Error label, whether it is a terminal "node went down"
// message, the shape of its dynamic (variable) component, and — for the
// twelve phrases of Table 8 — the paper's measured probability that an
// occurrence belongs to a node-failure chain.
//
// The catalog is the single source of truth: the generator renders raw
// messages from it, the PhraseLabeler mirrors its labels (playing the role
// of the paper's system administrators), and the benches compare measured
// statistics against its calibration targets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace desh::logs {

/// Expert phrase labels, Table 3.
enum class PhraseLabel : std::uint8_t { kSafe, kUnknown, kError };

/// Node-failure classes, Table 7.
enum class FailureClass : std::uint8_t {
  kJob = 0,
  kMce,
  kFileSystem,
  kTraps,
  kHardware,
  kPanic,
};
inline constexpr std::size_t kFailureClassCount = 6;
std::string_view failure_class_name(FailureClass c);
/// Average lead time in seconds that the paper reports per class (Table 7).
double paper_lead_time_seconds(FailureClass c);

/// Shape of a phrase's dynamic component — what the generator substitutes
/// for '*' when rendering raw text (the TemplateMiner must strip it back out).
enum class DynamicKind : std::uint8_t {
  kNone,     // template has no '*'
  kHexCode,  // "[28451]:0x6624, Info1=0x500:"-style machine codes
  kNumber,   // counters, pids, exit codes
  kNodeRef,  // a Cray node id like c0-0c1s4n2
  kPath,     // filesystem path
  kMixed,    // combination of the above
};

struct CatalogPhrase {
  std::string_view tmpl;  // normalized static template ('*' = dynamic slot)
  PhraseLabel label = PhraseLabel::kSafe;
  DynamicKind dynamic = DynamicKind::kNone;
  bool terminal = false;  // terminal message marking the node going down
  /// Table 8 calibration: fraction of this phrase's occurrences that belong
  /// to node-failure chains (unset for phrases not in Table 8).
  std::optional<double> failure_contribution;
};

/// A chain pattern: the phrase scaffold of one failure (or lookalike) mode.
struct ChainPattern {
  FailureClass failure_class = FailureClass::kPanic;
  /// Catalog indices, in order: unknown preludes, then error escalation,
  /// ending with a terminal phrase for failure patterns.
  std::vector<std::size_t> phrases;
};

class PhraseCatalog {
 public:
  /// The process-wide catalog (immutable after construction).
  static const PhraseCatalog& instance();

  std::span<const CatalogPhrase> phrases() const { return phrases_; }
  const CatalogPhrase& phrase(std::size_t index) const;
  std::size_t size() const { return phrases_.size(); }

  /// Index lookup by template text; throws if absent.
  std::size_t index_of(std::string_view tmpl) const;
  bool has_template(std::string_view tmpl) const;

  /// Failure-chain pattern variants for a class (the generator samples one
  /// per injected failure; the training split sees every variant).
  std::span<const ChainPattern> failure_patterns(FailureClass c) const;
  /// Non-failure lookalike patterns: share a failure prefix, then diverge
  /// into recovery instead of a terminal phrase (Table 9 right columns).
  std::span<const ChainPattern> lookalike_patterns(FailureClass c) const;

  /// Indices of the twelve Table 8 unknown phrases, in P1..P12 order.
  std::span<const std::size_t> table8_phrases() const { return table8_; }

  /// All indices carrying a given label.
  std::span<const std::size_t> safe_indices() const { return safe_; }
  std::span<const std::size_t> unknown_indices() const { return unknown_; }
  std::span<const std::size_t> error_indices() const { return error_; }
  std::span<const std::size_t> terminal_indices() const { return terminal_; }

 private:
  PhraseCatalog();

  std::vector<CatalogPhrase> phrases_;
  std::vector<std::size_t> safe_, unknown_, error_, terminal_, table8_;
  std::vector<std::vector<ChainPattern>> failure_patterns_;   // per class
  std::vector<std::vector<ChainPattern>> lookalike_patterns_; // per class
};

}  // namespace desh::logs
