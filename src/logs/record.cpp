#include "logs/record.hpp"

#include <cmath>
#include <cstdio>

namespace desh::logs {

std::string format_timestamp(double seconds) {
  const double day = std::fmod(std::max(0.0, seconds), 86400.0);
  const int h = static_cast<int>(day / 3600.0);
  const int m = static_cast<int>(std::fmod(day / 60.0, 60.0));
  const double s = std::fmod(day, 60.0);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%02d:%02d:%09.6f", h, m, s);
  return buffer;
}

}  // namespace desh::logs
