// The raw unit of a Cray-style console log: (timestamp, node id, message).
// Matches the paper's Table 2 row structure; timestamps are seconds since
// the start of the simulated trace with microsecond resolution.
#pragma once

#include <string>
#include <vector>

#include "logs/node_id.hpp"

namespace desh::logs {

struct LogRecord {
  double timestamp = 0.0;  // seconds since trace start
  NodeId node;
  std::string message;  // raw text including dynamic parts

  bool operator<(const LogRecord& other) const {
    return timestamp < other.timestamp;
  }
};

using LogCorpus = std::vector<LogRecord>;

/// Formats the timestamp like the console logs in Table 2 (HH:MM:SS.micro),
/// wrapping at 24h for display purposes only.
std::string format_timestamp(double seconds);

}  // namespace desh::logs
