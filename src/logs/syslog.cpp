#include "logs/syslog.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace desh::logs {

namespace {
constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
// Cumulative days before each month (non-leap year).
constexpr std::array<int, 12> kMonthStart = {0,   31,  59,  90,  120, 151,
                                             181, 212, 243, 273, 304, 334};

int month_index(std::string_view name) {
  for (std::size_t i = 0; i < kMonths.size(); ++i)
    if (kMonths[i] == name) return static_cast<int>(i);
  return -1;
}
}  // namespace

std::optional<LogRecord> parse_syslog_line(std::string_view line) {
  const std::vector<std::string> tokens = util::split_whitespace(line);
  if (tokens.size() < 5) return std::nullopt;
  const int month = month_index(tokens[0]);
  if (month < 0) return std::nullopt;

  int day = 0, hh = 0, mm = 0, ss = 0;
  if (std::sscanf(tokens[1].c_str(), "%d", &day) != 1 || day < 1 || day > 31)
    return std::nullopt;
  if (std::sscanf(tokens[2].c_str(), "%d:%d:%d", &hh, &mm, &ss) != 3)
    return std::nullopt;
  if (hh < 0 || hh > 23 || mm < 0 || mm > 59 || ss < 0 || ss > 60)
    return std::nullopt;

  NodeId node;
  if (!NodeId::try_parse(tokens[3], node)) return std::nullopt;

  LogRecord record;
  record.timestamp =
      ((kMonthStart[static_cast<std::size_t>(month)] + day - 1) * 24.0 + hh) *
          3600.0 +
      mm * 60.0 + ss;
  record.node = node;
  // Message = everything after the node-id token, original spacing lost
  // (syslog tooling normalizes whitespace anyway).
  std::vector<std::string> message(tokens.begin() + 4, tokens.end());
  record.message = util::join(message, " ");
  return record;
}

std::string format_syslog_line(const LogRecord& record) {
  double t = std::max(0.0, record.timestamp);
  const int day_of_year =
      std::min(364, static_cast<int>(t / 86400.0));
  int month = 11;
  while (month > 0 && kMonthStart[static_cast<std::size_t>(month)] > day_of_year)
    --month;
  const int day = day_of_year - kMonthStart[static_cast<std::size_t>(month)] + 1;
  const double in_day = t - day_of_year * 86400.0;
  const int hh = static_cast<int>(in_day / 3600.0) % 24;
  const int mm = static_cast<int>(in_day / 60.0) % 60;
  const int ss = static_cast<int>(in_day) % 60;
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%s %2d %02d:%02d:%02d",
                std::string(kMonths[static_cast<std::size_t>(month)]).c_str(),
                day, hh, mm, ss);
  return std::string(stamp) + " " + record.node.to_string() + " " +
         record.message;
}

LogCorpus load_syslog_file(const std::string& path) {
  std::ifstream is(path);
  // desh-lint: allow(throw-discipline) legacy throwing I/O helper
  if (!is) throw util::IoError("load_syslog_file: cannot open " + path);
  LogCorpus corpus;
  std::string line;
  while (std::getline(is, line))
    if (auto record = parse_syslog_line(line))
      corpus.push_back(std::move(*record));
  std::stable_sort(corpus.begin(), corpus.end());
  return corpus;
}

}  // namespace desh::logs
