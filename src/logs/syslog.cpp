#include "logs/syslog.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>

#include "util/strings.hpp"

namespace desh::logs {

namespace {
constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
// Cumulative days before each month (non-leap year).
constexpr std::array<int, 12> kMonthStart = {0,   31,  59,  90,  120, 151,
                                             181, 212, 243, 273, 304, 334};

/// Strict decimal field: the whole token must be 1..max_digits digits.
/// (sscanf "%d" would accept "12abc" as 12 — the asymmetry that let parse
/// accept lines format_syslog_line can never produce.)
bool parse_digits(std::string_view token, std::size_t max_digits, int& out) {
  if (token.empty() || token.size() > max_digits) return false;
  int value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  out = value;
  return true;
}
}  // namespace

namespace syslog_fields {

int month_index(std::string_view token) {
  for (std::size_t i = 0; i < kMonths.size(); ++i)
    if (kMonths[i] == token) return static_cast<int>(i);
  return -1;
}

bool parse_day(std::string_view token, int& day) {
  return parse_digits(token, 2, day) && day >= 1 && day <= 31;
}

bool parse_clock(std::string_view token, int& hh, int& mm, int& ss) {
  const std::size_t c1 = token.find(':');
  if (c1 == std::string_view::npos) return false;
  const std::size_t c2 = token.find(':', c1 + 1);
  if (c2 == std::string_view::npos) return false;
  if (!parse_digits(token.substr(0, c1), 2, hh) ||
      !parse_digits(token.substr(c1 + 1, c2 - c1 - 1), 2, mm) ||
      !parse_digits(token.substr(c2 + 1), 2, ss))
    return false;
  return hh <= 23 && mm <= 59 && ss <= 60;
}

double timestamp_from(int month, int day, int hh, int mm, int ss) {
  return ((kMonthStart[static_cast<std::size_t>(month)] + day - 1) * 24.0 +
          hh) *
             3600.0 +
         mm * 60.0 + ss;
}

}  // namespace syslog_fields

std::optional<LogRecord> parse_syslog_line(std::string_view line) {
  const std::vector<std::string> tokens = util::split_whitespace(line);
  if (tokens.size() < 5) return std::nullopt;
  const int month = syslog_fields::month_index(tokens[0]);
  if (month < 0) return std::nullopt;

  int day = 0, hh = 0, mm = 0, ss = 0;
  if (!syslog_fields::parse_day(tokens[1], day)) return std::nullopt;
  if (!syslog_fields::parse_clock(tokens[2], hh, mm, ss)) return std::nullopt;

  NodeId node;
  if (!NodeId::try_parse(tokens[3], node)) return std::nullopt;

  LogRecord record;
  record.timestamp = syslog_fields::timestamp_from(month, day, hh, mm, ss);
  record.node = node;
  // Message = everything after the node-id token, original spacing lost
  // (syslog tooling normalizes whitespace anyway).
  std::vector<std::string> message(tokens.begin() + 4, tokens.end());
  record.message = util::join(message, " ");
  return record;
}

std::string format_syslog_line(const LogRecord& record) {
  double t = std::max(0.0, record.timestamp);
  const int day_of_year =
      std::min(364, static_cast<int>(t / 86400.0));
  int month = 11;
  while (month > 0 && kMonthStart[static_cast<std::size_t>(month)] > day_of_year)
    --month;
  const int day = day_of_year - kMonthStart[static_cast<std::size_t>(month)] + 1;
  const double in_day = t - day_of_year * 86400.0;
  const int hh = static_cast<int>(in_day / 3600.0) % 24;
  const int mm = static_cast<int>(in_day / 60.0) % 60;
  const int ss = static_cast<int>(in_day) % 60;
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%s %2d %02d:%02d:%02d",
                std::string(kMonths[static_cast<std::size_t>(month)]).c_str(),
                day, hh, mm, ss);
  return std::string(stamp) + " " + record.node.to_string() + " " +
         record.message;
}

core::Expected<LogCorpus> load_syslog_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    return core::Error{core::ErrorCode::kIo,
                       "load_syslog_file: cannot open " + path};
  LogCorpus corpus;
  std::string line;
  while (std::getline(is, line))
    if (auto record = parse_syslog_line(line))
      corpus.push_back(std::move(*record));
  std::stable_sort(corpus.begin(), corpus.end());
  return corpus;
}

std::string render_syslog_text(const LogCorpus& corpus) {
  std::string text;
  for (const LogRecord& record : corpus) {
    text += format_syslog_line(record);
    text += '\n';
  }
  return text;
}

core::Expected<void> save_syslog_file(const LogCorpus& corpus,
                                      const std::string& path) {
  std::ofstream os(path);
  if (!os)
    return core::Error{core::ErrorCode::kIo,
                       "save_syslog_file: cannot open " + path};
  for (const LogRecord& record : corpus) os << format_syslog_line(record)
                                            << '\n';
  if (!os)
    return core::Error{core::ErrorCode::kIo,
                       "save_syslog_file: write failed for " + path};
  return {};
}

LogCorpus canonicalize_syslog(const LogCorpus& corpus) {
  // Definitionally the round trip itself: whatever format emits and parse
  // accepts survives; records syslog cannot carry (e.g. empty messages,
  // which format to a 4-token line) drop out — exactly as they would
  // streaming through desh::ingest.
  LogCorpus out;
  out.reserve(corpus.size());
  for (const LogRecord& record : corpus)
    if (auto round = parse_syslog_line(format_syslog_line(record)))
      out.push_back(std::move(*round));
  return out;
}

}  // namespace desh::logs
