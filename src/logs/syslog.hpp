// Adapter for classic BSD-syslog-formatted console logs — the on-disk form
// of real Cray /var/log streams ("Mar 15 10:47:39 c0-0c0s0n2 message...").
// Lets a deployment feed actual log files into the pipeline without
// converting to the repository's native format first, and renders synthetic
// corpora back into that raw form so desh::ingest has ground-truth-labeled
// raw text to chew on.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/expected.hpp"
#include "logs/record.hpp"

namespace desh::logs {

/// Parses one syslog line "Mon DD HH:MM:SS <node-id> <message>". Timestamps
/// become seconds since Jan 1 (non-leap year). Returns nullopt on lines that
/// do not match (continuation lines, corrupt input) — callers typically
/// skip those, as real console logs always contain some. Day and time
/// tokens must be pure digits: "12abc" is rejected, not read as 12, so
/// parse accepts exactly the forms format_syslog_line can emit.
std::optional<LogRecord> parse_syslog_line(std::string_view line);

/// Renders a record in the same format (inverse of parse_syslog_line up to
/// sub-second precision, which syslog cannot carry).
std::string format_syslog_line(const LogRecord& record);

/// Loads a whole syslog file, skipping unparseable lines; returns records
/// sorted by timestamp. Errors: kIo when the file cannot be read.
[[nodiscard]] core::Expected<LogCorpus> load_syslog_file(
    const std::string& path);

/// Renders a corpus as raw syslog text, one line per record in corpus
/// order — the raw-text emitter the ingest benches and tests feed from
/// (record messages come from SyntheticCraySource::render_message).
std::string render_syslog_text(const LogCorpus& corpus);

/// render_syslog_text straight to a file. Errors: kIo (open/write).
[[nodiscard]] core::Expected<void> save_syslog_file(const LogCorpus& corpus,
                                                    const std::string& path);

/// What a format -> parse round trip preserves of a record: timestamps are
/// floored to whole seconds (and clamped to the syslog year), messages are
/// whitespace-normalized. Feeding canonicalize_syslog(corpus) to a monitor
/// and render_syslog_text(corpus) to desh::ingest must yield bit-identical
/// decision streams. The floor is monotone, so record order is preserved.
LogCorpus canonicalize_syslog(const LogCorpus& corpus);

/// The exact field-level building blocks of parse_syslog_line, exposed so
/// the allocation-free streaming parser in src/ingest shares one definition
/// of "valid syslog field" with the batch path (divergence here would break
/// the ingest-vs-preparsed equivalence contract). All are allocation-free.
namespace syslog_fields {

/// Index of an abbreviated month name ("Jan".."Dec"), or -1.
int month_index(std::string_view token);

/// Strict 1-2 pure-digit day in [1, 31].
bool parse_day(std::string_view token, int& day);

/// Strict "H[H]:M[M]:S[S]" with hh<=23, mm<=59, ss<=60 (leap second).
bool parse_clock(std::string_view token, int& hh, int& mm, int& ss);

/// Seconds since Jan 1 (non-leap year) — parse_syslog_line's formula.
double timestamp_from(int month, int day, int hh, int mm, int ss);

}  // namespace syslog_fields

}  // namespace desh::logs
