// Adapter for classic BSD-syslog-formatted console logs — the on-disk form
// of real Cray /var/log streams ("Mar 15 10:47:39 c0-0c0s0n2 message...").
// Lets a deployment feed actual log files into the pipeline without
// converting to the repository's native format first.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "logs/record.hpp"

namespace desh::logs {

/// Parses one syslog line "Mon DD HH:MM:SS <node-id> <message>". Timestamps
/// become seconds since Jan 1 (non-leap year). Returns nullopt on lines that
/// do not match (continuation lines, corrupt input) — callers typically
/// skip those, as real console logs always contain some.
std::optional<LogRecord> parse_syslog_line(std::string_view line);

/// Renders a record in the same format (inverse of parse_syslog_line up to
/// sub-second precision, which syslog cannot carry).
std::string format_syslog_line(const LogRecord& record);

/// Loads a whole syslog file, skipping unparseable lines; returns records
/// sorted by timestamp. Throws util::IoError if the file cannot be read.
LogCorpus load_syslog_file(const std::string& path);

}  // namespace desh::logs
