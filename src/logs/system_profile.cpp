#include "logs/system_profile.hpp"

namespace desh::logs {

// Calibration notes: the failure/lookalike counts and hard/novel fractions
// below are solved from the paper's reported metrics. E.g. for M1 (Fig 4/5:
// recall 85.1, precision 95.2, FP rate 25): with ~105 test failures, TP ~ 89
// requires novel fraction ~0.149; precision 95.2 needs FP ~ 4.5, and FP rate
// 25% then fixes TN ~ 13.5, i.e. ~18 test lookalikes of which a quarter are
// hard. The same algebra produced every profile.

SystemProfile profile_m1() {
  SystemProfile p;
  p.name = "M1";
  p.machine_type = "Cray XC30";
  p.paper_duration = "10 months";
  p.paper_size = "373GB";
  p.paper_nodes = 5600;
  p.node_count = 140;
  p.duration_hours = 72.0;
  p.failure_count = 150;
  p.lookalike_count = 26;
  p.novel_failure_fraction = 0.13;
  p.hard_lookalike_fraction = 0.15;
  p.class_mix = {0.10, 0.22, 0.20, 0.15, 0.13, 0.20};
  p.seed = 101;
  p.paper = {85.1, 95.2, 83.6, 89.8, 25.0, 14.89};
  return p;
}

SystemProfile profile_m2() {
  SystemProfile p;
  p.name = "M2";
  p.machine_type = "Cray XE6";
  p.paper_duration = "12 months";
  p.paper_size = "150GB";
  p.paper_nodes = 6400;
  p.node_count = 160;
  p.duration_hours = 72.0;
  p.failure_count = 130;
  p.lookalike_count = 60;
  p.novel_failure_fraction = 0.11;
  p.hard_lookalike_fraction = 0.12;
  // M2: more Hardware + FileSystem failures, fewer kernel panics (Sec 4.2),
  // which is why its average lead time tops Fig 7.
  p.class_mix = {0.08, 0.20, 0.27, 0.10, 0.27, 0.08};
  p.seed = 202;
  p.paper = {87.5, 92.1, 85.7, 89.7, 16.66, 12.5};
  return p;
}

SystemProfile profile_m3() {
  SystemProfile p;
  p.name = "M3";
  p.machine_type = "Cray XC40";
  p.paper_duration = "8 months";
  p.paper_size = "39GB";
  p.paper_nodes = 2100;
  p.node_count = 104;
  p.duration_hours = 72.0;
  p.failure_count = 140;
  p.lookalike_count = 18;
  p.novel_failure_fraction = 0.11;
  p.hard_lookalike_fraction = 0.17;
  p.class_mix = {0.12, 0.25, 0.18, 0.15, 0.15, 0.15};
  p.seed = 303;
  p.paper = {86.9, 97.5, 86.5, 91.9, 17.39, 13.04};
  return p;
}

SystemProfile profile_m4() {
  SystemProfile p;
  p.name = "M4";
  p.machine_type = "Cray XC40/XC30";
  p.paper_duration = "10 months";
  p.paper_size = "22GB";
  p.paper_nodes = 1872;
  p.node_count = 96;
  p.duration_hours = 72.0;
  p.failure_count = 140;
  p.lookalike_count = 125;
  p.novel_failure_fraction = 0.10;
  p.hard_lookalike_fraction = 0.11;
  p.class_mix = {0.15, 0.15, 0.22, 0.18, 0.15, 0.15};
  p.seed = 404;
  p.paper = {87.5, 84.0, 85.1, 85.7, 18.75, 12.5};
  return p;
}

std::array<SystemProfile, 4> all_system_profiles() {
  return {profile_m1(), profile_m2(), profile_m3(), profile_m4()};
}

SystemProfile profile_tiny(std::uint64_t seed) {
  SystemProfile p;
  p.name = "tiny";
  p.machine_type = "Cray XC-test";
  p.paper_duration = "n/a";
  p.paper_size = "n/a";
  p.paper_nodes = 0;
  p.node_count = 24;
  p.duration_hours = 12.0;
  p.benign_events_per_node_hour = 2.0;
  p.failure_count = 40;
  p.lookalike_count = 12;
  p.maintenance_windows = 1;
  p.novel_failure_fraction = 0.15;
  p.hard_lookalike_fraction = 0.25;
  p.seed = seed;
  return p;
}

}  // namespace desh::logs
