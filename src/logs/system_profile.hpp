// Per-system workload profiles mirroring the four production machines of
// Table 1 (M1..M4), scaled so a full evaluation runs on one workstation
// while preserving the statistics Desh depends on: the failure-class mix
// (Sec 4.2: "M2 features more node failures caused by Hardware and
// Filesystem classes and fewer kernel panics"), the ratio of real failures
// to non-failure lookalike sequences (which drives the paper's FP/TN
// accounting), the fraction of novel/unseen failure modes (which bounds
// recall), and the per-class lead-time distributions of Table 7.
//
// Every profile also records the paper's reported numbers for that system so
// the benches can print paper-vs-measured side by side.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "logs/phrase_catalog.hpp"

namespace desh::logs {

/// The paper's reported evaluation results for one system (Figs 4, 5, 7).
struct PaperResults {
  double recall = 0;     // percent
  double precision = 0;  // percent
  double accuracy = 0;   // percent
  double f1 = 0;         // percent
  double fp_rate = 0;    // percent
  double fn_rate = 0;    // percent
};

struct SystemProfile {
  std::string name;          // "M1"
  std::string machine_type;  // "Cray XC30"

  // --- Table 1 (paper scale, reported verbatim in bench_table1) ---------
  std::string paper_duration;  // "10 months"
  std::string paper_size;      // "373GB"
  std::size_t paper_nodes = 0;

  // --- Simulated scale ---------------------------------------------------
  std::size_t node_count = 128;
  double duration_hours = 72.0;
  double train_fraction = 0.3;  // Sec 4: 30% train / 70% test

  // --- Event population ----------------------------------------------------
  double benign_events_per_node_hour = 3.0;
  std::size_t failure_count = 140;    // anomalous node failures in the trace
  std::size_t lookalike_count = 30;   // non-failure anomalous sequences
  std::size_t maintenance_windows = 2;

  /// Fraction of *test-period* failures whose chain is a novel pattern never
  /// seen in training (bounds recall from above; Sec 4.1 "new patterns or
  /// unknown failures are rare").
  double novel_failure_fraction = 0.13;
  /// Fraction of lookalikes that replicate a failure chain up to the final
  /// phrase (indistinguishable at the default decision point -> FPs).
  double hard_lookalike_fraction = 0.2;

  /// Failure-class weights in FailureClass order (Job, MCE, FS, Traps,
  /// H/W, Panic).
  std::array<double, kFailureClassCount> class_mix{1, 1, 1, 1, 1, 1};

  /// Scales every class's lead-time anchor (Table 7 targets are scale 1.0).
  double lead_time_scale = 1.0;
  /// Mean of the exponential inter-phrase gaps *before* the decision anchor
  /// (controls how much extra lead an earlier flag buys, Fig 8).
  double early_gap_mean_seconds = 80.0;

  std::uint64_t seed = 1;

  PaperResults paper;
};

/// The four evaluation systems of Table 1.
SystemProfile profile_m1();
SystemProfile profile_m2();
SystemProfile profile_m3();
SystemProfile profile_m4();
/// All four, in order.
std::array<SystemProfile, 4> all_system_profiles();
/// A miniature profile for unit/integration tests (seconds to generate,
/// small corpus, all mechanisms active).
SystemProfile profile_tiny(std::uint64_t seed = 42);

}  // namespace desh::logs
