#include "logs/template_miner.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace desh::logs {

bool TemplateMiner::is_dynamic_token(std::string_view token) {
  if (token.empty()) return false;
  if (token == "*") return true;  // already masked upstream
  if (token.front() == '/') return true;  // filesystem path
  if (token.find("0x") != std::string_view::npos ||
      token.find("0X") != std::string_view::npos)
    return true;

  std::size_t digits = 0, run = 0, longest_run = 0;
  for (char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++digits;
      ++run;
      longest_run = std::max(longest_run, run);
    } else {
      run = 0;
    }
  }
  if (digits == 0) return false;
  if (longest_run >= 2) return true;  // error codes, addresses, counters
  const double fraction =
      static_cast<double>(digits) / static_cast<double>(token.size());
  return fraction >= 0.3;  // short digit-dense ids like "P1", "n3"
}

std::string TemplateMiner::extract(std::string_view message) {
  std::string out;
  bool previous_dynamic = false;
  for (const std::string& token : util::split_whitespace(message)) {
    const bool dynamic = is_dynamic_token(token);
    if (dynamic && previous_dynamic) continue;  // collapse runs into one '*'
    if (!out.empty()) out += ' ';
    out += dynamic ? "*" : token;
    previous_dynamic = dynamic;
  }
  return out;
}

}  // namespace desh::logs
