// Static/dynamic phrase splitting (Sec 3.1, Table 2): every raw log message
// is segregated into its constant sub-phrase (the template) and its variable
// component (error codes, addresses, node ids, hex dumps), which is
// discarded. The surviving template is encoded to a stable integer phrase id
// via PhraseVocab.
#pragma once

#include <string>
#include <string_view>

namespace desh::logs {

/// Heuristic token classifier + template normalizer. A token is *dynamic* if
/// it looks machine-generated: contains a hex marker ("0x"), is a filesystem
/// path, is digit-dense (>= 30% digits), or carries a run of >= 2 digits
/// (ids, error codes, addresses). Runs of dynamic tokens collapse to one '*'.
class TemplateMiner {
 public:
  /// Returns the normalized static template of `message`: single-spaced
  /// tokens with dynamic content replaced by '*'.
  static std::string extract(std::string_view message);

  /// Classification of a single whitespace-delimited token.
  static bool is_dynamic_token(std::string_view token);
};

}  // namespace desh::logs
