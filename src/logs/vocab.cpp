#include "logs/vocab.hpp"

#include <fstream>

#include "util/error.hpp"

namespace desh::logs {

PhraseVocab::PhraseVocab() {
  id_to_template_.emplace_back(kUnknownTemplate);
  template_to_id_.emplace(std::string(kUnknownTemplate), kUnknownId);
}

std::uint32_t PhraseVocab::add(std::string_view tmpl) {
  util::require(!tmpl.empty(), "PhraseVocab::add: empty template");
  auto it = template_to_id_.find(std::string(tmpl));
  if (it != template_to_id_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(id_to_template_.size());
  id_to_template_.emplace_back(tmpl);
  template_to_id_.emplace(std::string(tmpl), id);
  return id;
}

std::uint32_t PhraseVocab::encode(std::string_view tmpl) const {
  auto it = template_to_id_.find(std::string(tmpl));
  return it == template_to_id_.end() ? kUnknownId : it->second;
}

bool PhraseVocab::contains(std::string_view tmpl) const {
  return template_to_id_.count(std::string(tmpl)) != 0;
}

const std::string& PhraseVocab::decode(std::uint32_t id) const {
  util::require(id < id_to_template_.size(), "PhraseVocab::decode: bad id");
  return id_to_template_[id];
}

core::Expected<void> PhraseVocab::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os)
    return core::Error{core::ErrorCode::kIo,
                       "PhraseVocab::save: cannot open " + path};
  // Skip the <unk> sentinel (id 0); load() re-creates it.
  for (std::size_t i = 1; i < id_to_template_.size(); ++i)
    os << id_to_template_[i] << '\n';
  if (!os)
    return core::Error{core::ErrorCode::kIo,
                       "PhraseVocab::save: write failed for " + path};
  return {};
}

core::Expected<PhraseVocab> PhraseVocab::load(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    return core::Error{core::ErrorCode::kIo,
                       "PhraseVocab::load: cannot open " + path};
  PhraseVocab vocab;
  std::string line;
  while (std::getline(is, line))
    if (!line.empty()) vocab.add(line);
  return vocab;
}

}  // namespace desh::logs
