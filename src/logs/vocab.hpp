// Phrase vocabulary: bijection between normalized templates and dense
// integer phrase ids ("once the constant messages are extracted they are
// encoded to a uniquely identifiable number", Sec 3.1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/expected.hpp"

namespace desh::logs {

class PhraseVocab {
 public:
  /// Id reserved for templates never seen during vocabulary construction.
  static constexpr std::uint32_t kUnknownId = 0;
  static constexpr std::string_view kUnknownTemplate = "<unk>";

  PhraseVocab();

  /// Returns the id for `tmpl`, inserting it if new.
  std::uint32_t add(std::string_view tmpl);
  /// Returns the id for `tmpl` or kUnknownId when absent.
  std::uint32_t encode(std::string_view tmpl) const;
  bool contains(std::string_view tmpl) const;
  /// Inverse mapping; throws util::InvalidArgument for out-of-range ids.
  const std::string& decode(std::uint32_t id) const;

  std::size_t size() const { return id_to_template_.size(); }

  /// Plain-text persistence (one template per line, line number = id - the
  /// <unk> sentinel occupies line 0). Errors: kIo (open/write failure).
  [[nodiscard]] core::Expected<void> save(const std::string& path) const;
  [[nodiscard]] static core::Expected<PhraseVocab> load(
      const std::string& path);

 private:
  std::unordered_map<std::string, std::uint32_t> template_to_id_;
  std::vector<std::string> id_to_template_;
};

}  // namespace desh::logs
