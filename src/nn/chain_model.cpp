#include "nn/chain_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nn/inference_backend.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::nn {

namespace {
// Chains rarely stretch past ten minutes (Table 7 tops out near 160 s mean);
// 600 s maps the working range onto ~[0,1] for the regression head.
constexpr double kDtScaleSeconds = 600.0;
// Reference width for the phrase-block gradient normalization (see
// train_batch); chosen so classification and regression gradients stay
// comparable at typical Cray template-vocabulary sizes.
constexpr std::size_t kPhraseGradWidth = 16;
}  // namespace

ChainModel::ChainModel(const ChainModelConfig& config, util::Rng& rng)
    : config_(config),
      embed_(config.vocab_size, config.embed_dim, rng, "chain.embed"),
      stack_(1 + config.embed_dim, config.hidden_size, config.num_layers, rng,
             "chain.lstm"),
      head_(config.hidden_size, 1 + config.vocab_size, rng, "chain.head") {
  util::require(config.vocab_size > 1, "ChainModel: vocab_size must be > 1");
  util::require(config.history >= 1, "ChainModel: history must be >= 1");
}

float ChainModel::normalize_dt(double seconds) {
  return static_cast<float>(seconds / kDtScaleSeconds);
}

double ChainModel::denormalize_dt(float norm) {
  return std::max(0.0, static_cast<double>(norm) * kDtScaleSeconds);
}

float ChainModel::train_batch(std::span<const ChainSequence> windows,
                              Optimizer& optimizer, float clip_norm) {
  const float loss = forward_backward(windows);
  ParameterList params = parameters();
  clip_global_norm(params, clip_norm);
  optimizer.step(params);
  zero_grads(params);
  return loss;
}

float ChainModel::forward_backward(std::span<const ChainSequence> windows) {
  util::require(!windows.empty(), "ChainModel::train_batch: empty batch");
  util::require(windows.front().size() >= 2,
                "ChainModel::train_batch: window needs >= 2 steps");
  // Batches are rectangular: context length = window length - 1, capped by
  // the configured history upstream. The final step is the 1-step target.
  const std::size_t H = windows.front().size() - 1;
  const std::size_t B = windows.size();
  const std::size_t V = config_.vocab_size;
  const std::size_t E = config_.embed_dim;
  for (const ChainSequence& w : windows)
    util::require(w.size() == H + 1,
                  "ChainModel::train_batch: ragged batch");

  // One embedding forward for all (t, b) phrase ids, t-major.
  std::vector<std::uint32_t> flat_ids(H * B);
  for (std::size_t t = 0; t < H; ++t)
    for (std::size_t b = 0; b < B; ++b) flat_ids[t * B + b] = windows[b][t].phrase;
  tensor::Matrix flat_emb;
  embed_.forward(flat_ids, flat_emb);

  std::vector<tensor::Matrix> inputs(H);
  for (std::size_t t = 0; t < H; ++t) {
    inputs[t].resize(B, 1 + E);
    for (std::size_t b = 0; b < B; ++b) {
      float* row = inputs[t].data() + b * (1 + E);
      row[0] = windows[b][t].dt_norm;
      const float* src = flat_emb.data() + (t * B + b) * E;
      for (std::size_t c = 0; c < E; ++c) row[1 + c] = src[c];
    }
  }

  LstmStack::Cache cache;
  std::vector<tensor::Matrix> hidden_seq;
  stack_.forward(inputs, cache, hidden_seq);

  tensor::Matrix pred;
  head_.forward(hidden_seq.back(), pred);  // B x (1 + V)

  // Block-normalized MSE: the dt block averages over the batch; the phrase
  // block averages over batch x a fixed reference width rather than the full
  // vocabulary, so the classification gradient does not shrink as the
  // vocabulary grows (with a 1/V normalizer, rare chain variants never
  // converge and phase 3 misses their failures).
  const float phrase_block_norm =
      static_cast<float>(B) * static_cast<float>(kPhraseGradWidth);
  tensor::Matrix dpred(B, 1 + V);
  double loss_dt = 0, loss_phrase = 0;
  for (std::size_t b = 0; b < B; ++b) {
    const ChainStep& target = windows[b][H];
    const float* pr = pred.data() + b * (1 + V);
    float* dr = dpred.data() + b * (1 + V);
    const float dt_diff = pr[0] - target.dt_norm;
    loss_dt += static_cast<double>(dt_diff) * dt_diff;
    dr[0] = 2.0f * dt_diff / static_cast<float>(B);
    for (std::size_t v = 0; v < V; ++v) {
      const float want = (v == target.phrase) ? 1.0f : 0.0f;
      const float diff = pr[1 + v] - want;
      loss_phrase += static_cast<double>(diff) * diff;
      dr[1 + v] = 2.0f * diff / phrase_block_norm;
    }
  }
  const float loss = static_cast<float>(loss_dt / static_cast<double>(B) +
                                        loss_phrase / static_cast<double>(B * V));

  tensor::Matrix dhidden_last;
  head_.backward(dpred, dhidden_last);

  std::vector<tensor::Matrix> dhidden(H);
  for (std::size_t t = 0; t < H; ++t) dhidden[t].resize(B, config_.hidden_size);
  dhidden.back() = dhidden_last;

  std::vector<tensor::Matrix> dinputs;
  stack_.backward(cache, dhidden, dinputs);

  // Split dinputs: column 0 is the (non-trainable) dt scalar; the rest flows
  // back into the embedding table.
  tensor::Matrix dflat_emb(H * B, E);
  for (std::size_t t = 0; t < H; ++t)
    for (std::size_t b = 0; b < B; ++b) {
      const float* src = dinputs[t].data() + b * (1 + E) + 1;
      float* dst = dflat_emb.data() + (t * B + b) * E;
      for (std::size_t c = 0; c < E; ++c) dst[c] = src[c];
    }
  embed_.backward(dflat_emb);
  return loss;
}

// Deprecated forwarding shims: the implementations moved verbatim into
// nn::ReferenceBackend (inference_backend.cpp), so results stay bit-identical
// through the shim for the one release it survives.
std::vector<ChainStepScore> ChainModel::score_sequence(
    const ChainSequence& sequence, std::size_t min_pos) const {
  return ReferenceBackend(*this).score_sequence(sequence, min_pos);
}

std::vector<ChainStepScore> ChainModel::score_sequence(
    const ChainSequence& sequence) const {
  return ReferenceBackend(*this).score_sequence(sequence, config_.history);
}

std::vector<std::vector<ChainStepScore>> ChainModel::score_sequences(
    std::span<const ChainSequence* const> sequences,
    std::size_t min_pos) const {
  return ReferenceBackend(*this).score_sequences(sequences, min_pos);
}

float ChainModel::sequence_mse(const ChainSequence& sequence) const {
  return ReferenceBackend(*this).sequence_mse(sequence);
}

ParameterList ChainModel::parameters() {
  ParameterList out = embed_.parameters();
  for (Parameter* p : stack_.parameters()) out.push_back(p);
  for (Parameter* p : head_.parameters()) out.push_back(p);
  return out;
}

ConstParameterList ChainModel::parameters() const {
  // Same stable order as the mutable overload, re-exposed read-only.
  ParameterList p = const_cast<ChainModel*>(this)->parameters();
  return ConstParameterList(p.begin(), p.end());
}

}  // namespace desh::nn
