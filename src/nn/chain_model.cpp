#include "nn/chain_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::nn {

namespace {
// Chains rarely stretch past ten minutes (Table 7 tops out near 160 s mean);
// 600 s maps the working range onto ~[0,1] for the regression head.
constexpr double kDtScaleSeconds = 600.0;
// Reference width for the phrase-block gradient normalization (see
// train_batch); chosen so classification and regression gradients stay
// comparable at typical Cray template-vocabulary sizes.
constexpr std::size_t kPhraseGradWidth = 16;
}  // namespace

ChainModel::ChainModel(const ChainModelConfig& config, util::Rng& rng)
    : config_(config),
      embed_(config.vocab_size, config.embed_dim, rng, "chain.embed"),
      stack_(1 + config.embed_dim, config.hidden_size, config.num_layers, rng,
             "chain.lstm"),
      head_(config.hidden_size, 1 + config.vocab_size, rng, "chain.head") {
  util::require(config.vocab_size > 1, "ChainModel: vocab_size must be > 1");
  util::require(config.history >= 1, "ChainModel: history must be >= 1");
}

float ChainModel::normalize_dt(double seconds) {
  return static_cast<float>(seconds / kDtScaleSeconds);
}

double ChainModel::denormalize_dt(float norm) {
  return std::max(0.0, static_cast<double>(norm) * kDtScaleSeconds);
}

void ChainModel::build_input(const ChainStep& step, tensor::Matrix& x) const {
  x.resize(1, 1 + config_.embed_dim);
  x(0, 0) = step.dt_norm;
  std::span<const float> v = embed_.vector(step.phrase);
  for (std::size_t c = 0; c < config_.embed_dim; ++c) x(0, 1 + c) = v[c];
}

float ChainModel::train_batch(std::span<const ChainSequence> windows,
                              Optimizer& optimizer, float clip_norm) {
  const float loss = forward_backward(windows);
  ParameterList params = parameters();
  clip_global_norm(params, clip_norm);
  optimizer.step(params);
  zero_grads(params);
  return loss;
}

float ChainModel::forward_backward(std::span<const ChainSequence> windows) {
  util::require(!windows.empty(), "ChainModel::train_batch: empty batch");
  util::require(windows.front().size() >= 2,
                "ChainModel::train_batch: window needs >= 2 steps");
  // Batches are rectangular: context length = window length - 1, capped by
  // the configured history upstream. The final step is the 1-step target.
  const std::size_t H = windows.front().size() - 1;
  const std::size_t B = windows.size();
  const std::size_t V = config_.vocab_size;
  const std::size_t E = config_.embed_dim;
  for (const ChainSequence& w : windows)
    util::require(w.size() == H + 1,
                  "ChainModel::train_batch: ragged batch");

  // One embedding forward for all (t, b) phrase ids, t-major.
  std::vector<std::uint32_t> flat_ids(H * B);
  for (std::size_t t = 0; t < H; ++t)
    for (std::size_t b = 0; b < B; ++b) flat_ids[t * B + b] = windows[b][t].phrase;
  tensor::Matrix flat_emb;
  embed_.forward(flat_ids, flat_emb);

  std::vector<tensor::Matrix> inputs(H);
  for (std::size_t t = 0; t < H; ++t) {
    inputs[t].resize(B, 1 + E);
    for (std::size_t b = 0; b < B; ++b) {
      float* row = inputs[t].data() + b * (1 + E);
      row[0] = windows[b][t].dt_norm;
      const float* src = flat_emb.data() + (t * B + b) * E;
      for (std::size_t c = 0; c < E; ++c) row[1 + c] = src[c];
    }
  }

  LstmStack::Cache cache;
  std::vector<tensor::Matrix> hidden_seq;
  stack_.forward(inputs, cache, hidden_seq);

  tensor::Matrix pred;
  head_.forward(hidden_seq.back(), pred);  // B x (1 + V)

  // Block-normalized MSE: the dt block averages over the batch; the phrase
  // block averages over batch x a fixed reference width rather than the full
  // vocabulary, so the classification gradient does not shrink as the
  // vocabulary grows (with a 1/V normalizer, rare chain variants never
  // converge and phase 3 misses their failures).
  const float phrase_block_norm =
      static_cast<float>(B) * static_cast<float>(kPhraseGradWidth);
  tensor::Matrix dpred(B, 1 + V);
  double loss_dt = 0, loss_phrase = 0;
  for (std::size_t b = 0; b < B; ++b) {
    const ChainStep& target = windows[b][H];
    const float* pr = pred.data() + b * (1 + V);
    float* dr = dpred.data() + b * (1 + V);
    const float dt_diff = pr[0] - target.dt_norm;
    loss_dt += static_cast<double>(dt_diff) * dt_diff;
    dr[0] = 2.0f * dt_diff / static_cast<float>(B);
    for (std::size_t v = 0; v < V; ++v) {
      const float want = (v == target.phrase) ? 1.0f : 0.0f;
      const float diff = pr[1 + v] - want;
      loss_phrase += static_cast<double>(diff) * diff;
      dr[1 + v] = 2.0f * diff / phrase_block_norm;
    }
  }
  const float loss = static_cast<float>(loss_dt / static_cast<double>(B) +
                                        loss_phrase / static_cast<double>(B * V));

  tensor::Matrix dhidden_last;
  head_.backward(dpred, dhidden_last);

  std::vector<tensor::Matrix> dhidden(H);
  for (std::size_t t = 0; t < H; ++t) dhidden[t].resize(B, config_.hidden_size);
  dhidden.back() = dhidden_last;

  std::vector<tensor::Matrix> dinputs;
  stack_.backward(cache, dhidden, dinputs);

  // Split dinputs: column 0 is the (non-trainable) dt scalar; the rest flows
  // back into the embedding table.
  tensor::Matrix dflat_emb(H * B, E);
  for (std::size_t t = 0; t < H; ++t)
    for (std::size_t b = 0; b < B; ++b) {
      const float* src = dinputs[t].data() + b * (1 + E) + 1;
      float* dst = dflat_emb.data() + (t * B + b) * E;
      for (std::size_t c = 0; c < E; ++c) dst[c] = src[c];
    }
  embed_.backward(dflat_emb);
  return loss;
}

std::vector<ChainStepScore> ChainModel::score_sequence(
    const ChainSequence& sequence, std::size_t min_pos) const {
  min_pos = std::max<std::size_t>(min_pos, 1);
  std::vector<ChainStepScore> out;
  if (sequence.size() < min_pos + 1) return out;

  // Windowed re-evaluation: position t is predicted from the up-to-`history`
  // steps before it, starting from a fresh state — exactly the windows the
  // model trained on (Table 5: history size 5, 1-step prediction).
  std::vector<tensor::Matrix> hs, cs;
  tensor::Matrix x, top, pred;
  for (std::size_t t = min_pos; t < sequence.size(); ++t) {
    const std::size_t ctx = std::min(t, config_.history);
    stack_.make_state(hs, cs, 1);
    for (std::size_t i = t - ctx; i < t; ++i) {
      build_input(sequence[i], x);
      stack_.step_inference(x, hs, cs, top);
    }
    head_.forward_inference(top, pred);
    const ChainStep& actual = sequence[t];
    ChainStepScore s;
    s.position = t;
    s.predicted_dt = static_cast<float>(denormalize_dt(pred(0, 0)));
    std::span<const float> phrase_block(pred.data() + 1, config_.vocab_size);
    s.predicted_phrase =
        static_cast<std::uint32_t>(tensor::argmax(phrase_block));
    const float dt_err = pred(0, 0) - actual.dt_norm;
    s.score = config_.time_weight * dt_err * dt_err +
              (s.predicted_phrase == actual.phrase ? 0.0f : 1.0f);
    out.push_back(s);
  }
  return out;
}

std::vector<std::vector<ChainStepScore>> ChainModel::score_sequences(
    std::span<const ChainSequence* const> sequences,
    std::size_t min_pos) const {
  std::vector<std::vector<ChainStepScore>> out(sequences.size());
  if (sequences.empty()) return out;
  const std::size_t W = sequences.size();
  if (W == 1) {
    out[0] = score_sequence(*sequences[0], min_pos);
    return out;
  }
  const std::size_t L = sequences.front()->size();
  for (const ChainSequence* seq : sequences)
    util::require(seq->size() == L,
                  "ChainModel::score_sequences: ragged batch");
  min_pos = std::max<std::size_t>(min_pos, 1);
  if (L < min_pos + 1) return out;

  const std::size_t E = config_.embed_dim;
  const std::size_t V = config_.vocab_size;
  std::vector<tensor::Matrix> hs, cs;
  tensor::Matrix x, top, pred;
  for (std::size_t t = min_pos; t < L; ++t) {
    const std::size_t ctx = std::min(t, config_.history);
    stack_.make_state(hs, cs, W);
    for (std::size_t i = t - ctx; i < t; ++i) {
      x.resize(W, 1 + E);
      for (std::size_t w = 0; w < W; ++w) {
        const ChainStep& step = (*sequences[w])[i];
        float* row = x.data() + w * (1 + E);
        row[0] = step.dt_norm;
        std::span<const float> v = embed_.vector(step.phrase);
        for (std::size_t c = 0; c < E; ++c) row[1 + c] = v[c];
      }
      stack_.step_inference(x, hs, cs, top);
    }
    head_.forward_inference(top, pred);  // W x (1 + V)
    for (std::size_t w = 0; w < W; ++w) {
      const float* pr = pred.data() + w * (1 + V);
      const ChainStep& actual = (*sequences[w])[t];
      ChainStepScore s;
      s.position = t;
      s.predicted_dt = static_cast<float>(denormalize_dt(pr[0]));
      std::span<const float> phrase_block(pr + 1, V);
      s.predicted_phrase =
          static_cast<std::uint32_t>(tensor::argmax(phrase_block));
      const float dt_err = pr[0] - actual.dt_norm;
      s.score = config_.time_weight * dt_err * dt_err +
                (s.predicted_phrase == actual.phrase ? 0.0f : 1.0f);
      out[w].push_back(s);
    }
  }
  return out;
}

float ChainModel::sequence_mse(const ChainSequence& sequence) const {
  const auto scores = score_sequence(sequence);
  if (scores.empty()) return std::numeric_limits<float>::infinity();
  double acc = 0;
  for (const ChainStepScore& s : scores) acc += s.score;
  return static_cast<float>(acc / static_cast<double>(scores.size()));
}

ParameterList ChainModel::parameters() {
  ParameterList out = embed_.parameters();
  for (Parameter* p : stack_.parameters()) out.push_back(p);
  for (Parameter* p : head_.parameters()) out.push_back(p);
  return out;
}

ConstParameterList ChainModel::parameters() const {
  // Same stable order as the mutable overload, re-exposed read-only.
  ParameterList p = const_cast<ChainModel*>(this)->parameters();
  return ConstParameterList(p.begin(), p.end());
}

}  // namespace desh::nn
