// ChainModel: the phase-2/3 network of Desh. Consumes 2-state vectors
// (cumulative deltaT to the terminal phrase, phrase id) — Table 4 / Table 5
// rows 2-3 — and performs 1-step prediction of the next vector, trained with
// MSE + RMSprop over a history window of 5.
//
// The phrase id enters through an embedding (Sec 3.1 word vectors) plus the
// scalar deltaT, so a timestep input is [dt_norm | embed(p)] of width 1+E.
// The output head predicts [dt_next_norm | one-hot(p_next)]; the two blocks
// are trained with separately normalized MSE so the scalar time target is not
// drowned by the V-wide phrase block.
//
// Inference (phase 3) computes, per step, the match score
//     score = time_weight * (dt_pred - dt_actual)^2 + [argmax != p_actual]
// which reproduces the paper's "MSE <= 0.5" failure-chain match criterion:
// a window matches a trained failure chain only when most next-phrase
// predictions are exact and the predicted lead times are close.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/dense.hpp"
#include "nn/embedding.hpp"
#include "nn/lstm.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace desh::nn {

/// One timestep of a phase-2/3 sequence: normalized cumulative deltaT plus
/// the encoded phrase (Table 4 "Phrase Vector" column).
struct ChainStep {
  float dt_norm = 0.0f;     // deltaT scaled to ~[0,1]; see DeltaTimeCalculator
  std::uint32_t phrase = 0;  // encoded phrase id
};

using ChainSequence = std::vector<ChainStep>;

struct ChainModelConfig {
  std::size_t vocab_size = 0;
  std::size_t embed_dim = 16;
  std::size_t hidden_size = 32;
  std::size_t num_layers = 2;   // paper: 2 hidden layers
  std::size_t history = 5;      // paper: history size 5
  float time_weight = 4.0f;     // weight of the squared dt error in the score
};

/// Per-step phase-3 output: the match score against the learned chains and
/// the model's own lead-time estimate (used by the streaming monitor, where
/// the true time-to-failure is unknowable).
struct ChainStepScore {
  std::size_t position = 0;    // index of the compared (actual) step
  float score = 0.0f;          // low = matches a trained failure chain
  float predicted_dt = 0.0f;   // de-normalized predicted next deltaT (seconds)
  std::uint32_t predicted_phrase = 0;
};

class ChainModel {
 public:
  ChainModel(const ChainModelConfig& config, util::Rng& rng);

  /// Trains 1-step prediction on a batch of equally long windows
  /// (history + 1 steps each; the last step is the target). Returns MSE.
  float train_batch(std::span<const ChainSequence> windows,
                    Optimizer& optimizer, float clip_norm = 5.0f);

  /// Forward + backward only: accumulates gradients and returns the batch
  /// loss without an optimizer step — the shard kernel of the data-parallel
  /// engine (nn/data_parallel).
  float forward_backward(std::span<const ChainSequence> windows);

  /// Deprecated forwarding shims, kept for one release: windowed scoring
  /// moved behind the pluggable inference seam (nn/inference_backend.hpp).
  /// Construct an nn::ReferenceBackend over this model — or take a backend
  /// from core::DeshPipeline::make_backend so compiled/quantized engines
  /// stay interchangeable — instead of scoring through the concrete class.
  [[deprecated("score through nn::InferenceBackend (nn/inference_backend.hpp)")]]
  std::vector<ChainStepScore> score_sequence(const ChainSequence& sequence,
                                             std::size_t min_pos) const;
  [[deprecated("score through nn::InferenceBackend (nn/inference_backend.hpp)")]]
  std::vector<ChainStepScore> score_sequence(const ChainSequence& sequence) const;
  [[deprecated("score through nn::InferenceBackend (nn/inference_backend.hpp)")]]
  std::vector<std::vector<ChainStepScore>> score_sequences(
      std::span<const ChainSequence* const> sequences,
      std::size_t min_pos) const;
  [[deprecated("score through nn::InferenceBackend (nn/inference_backend.hpp)")]]
  float sequence_mse(const ChainSequence& sequence) const;

  /// deltaT normalization: seconds -> ~[0,1] and back. Shared with training
  /// data preparation so models and data agree on units.
  static float normalize_dt(double seconds);
  static double denormalize_dt(float norm);

  Embedding& embedding() { return embed_; }
  /// Read-only component views for the inference backends (the reference
  /// backend walks them step by step; the compiler re-packs their weights).
  const Embedding& embedding() const { return embed_; }
  const LstmStack& stack() const { return stack_; }
  const Dense& head() const { return head_; }
  const ChainModelConfig& config() const { return config_; }
  ParameterList parameters();
  ConstParameterList parameters() const;

 private:
  ChainModelConfig config_;
  Embedding embed_;
  LstmStack stack_;
  Dense head_;  // hidden -> 1 + vocab (dt block | phrase block)
};

}  // namespace desh::nn
