#include "nn/data_parallel.hpp"

#include <algorithm>

namespace desh::nn {

void copy_parameter_values(const ParameterList& dst, const ParameterList& src) {
  util::require(dst.size() == src.size(),
                "copy_parameter_values: parameter count mismatch");
  for (std::size_t p = 0; p < dst.size(); ++p) {
    util::require(dst[p]->value.same_shape(src[p]->value),
                  "copy_parameter_values: shape mismatch for " + dst[p]->name);
    std::copy_n(src[p]->value.data(), src[p]->value.size(),
                dst[p]->value.data());
  }
}

}  // namespace desh::nn
