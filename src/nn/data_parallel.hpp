// Deterministic data-parallel gradient-accumulation engine.
//
// Each worker owns a full model replica; an epoch's windows are cut into
// fixed-size contiguous shards, every shard's gradients are computed on some
// replica and copied into a per-shard buffer, and the buffers are reduced
// into the master model's gradients in shard-index order before a single
// optimizer step. Because the shard decomposition and the reduction order
// are functions of the data (shard_size) and never of the worker count, a
// training run is bit-identical at 1, 2 or N threads.
//
// What this engine does NOT promise: bit-identity with the legacy unsharded
// train_batch path — sharding fixes a different (but equally deterministic)
// floating-point summation order. The shard size, not the thread count, is
// the numerics-defining knob (see DESIGN.md "Threading model").
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "nn/optimizer.hpp"
#include "nn/parameter.hpp"
#include "obs/catalog.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace desh::nn {

/// Copies parameter values between two models with identical architecture
/// (same parameter order and shapes, e.g. master model and a replica).
void copy_parameter_values(const ParameterList& dst, const ParameterList& src);

/// Model: any type exposing ParameterList parameters(). Replicas are created
/// once per engine (not per step) and synchronized from the master before
/// every train_step.
template <typename Model>
class DataParallelTrainer {
 public:
  using ReplicaFactory = std::function<std::unique_ptr<Model>()>;

  /// `master` must outlive the engine. `make_replica` builds an
  /// architecture-identical model (its initial weights are irrelevant — they
  /// are overwritten on every step). `threads` = 0 resolves via
  /// util::resolve_threads; `shard_size` is the number of windows per
  /// gradient shard and defines the reduction numerics.
  DataParallelTrainer(Model& master, ReplicaFactory make_replica,
                      std::size_t threads, std::size_t shard_size)
      : master_(master),
        pool_(threads),
        shard_size_(shard_size),
        master_params_(master.parameters()) {
    util::require(shard_size_ >= 1,
                  "DataParallelTrainer: shard_size must be >= 1");
    replicas_.reserve(pool_.size());
    replica_params_.reserve(pool_.size());
    for (std::size_t w = 0; w < pool_.size(); ++w) {
      replicas_.push_back(make_replica());
      replica_params_.push_back(replicas_.back()->parameters());
      util::require(replica_params_.back().size() == master_params_.size(),
                    "DataParallelTrainer: replica architecture mismatch");
    }
  }

  std::size_t threads() const { return pool_.size(); }
  std::size_t shard_size() const { return shard_size_; }
  util::ThreadPool& pool() { return pool_; }

  /// One optimizer step over `batch`: shard -> per-replica forward/backward
  /// (`fwd_bwd(model, shard_span) -> float loss`) -> shard-ordered weighted
  /// gradient reduction -> clip -> step. Returns the batch-mean loss
  /// (shard losses combined with weights shard_count/batch_count, matching
  /// the unsharded batch-mean semantics).
  template <typename Item, typename FwdBwd>
  float train_step(std::span<const Item> batch, Optimizer& optimizer,
                   float clip_norm, FwdBwd&& fwd_bwd) {
    util::require(!batch.empty(), "DataParallelTrainer: empty batch");
    // Telemetry observes only (timers + counters on the step boundary);
    // shard decomposition and reduction order are untouched, preserving
    // bit-identical results at any thread count.
    static obs::Counter& obs_steps =
        obs::registry().counter(obs::kTrainStepsTotal);
    static obs::Counter& obs_clips =
        obs::registry().counter(obs::kTrainGradClipTotal);
    static obs::Histogram& obs_step_seconds =
        obs::registry().histogram(obs::kTrainStepSeconds);
    static obs::Gauge& obs_grad_norm =
        obs::registry().gauge(obs::kTrainGradNorm);
    util::Stopwatch step_timer;
    const std::size_t shards = (batch.size() + shard_size_ - 1) / shard_size_;
    ensure_shard_buffers(shards);

    // Replicas read master weights; sync them all before dispatch (the
    // master stepped since the previous call).
    for (const ParameterList& params : replica_params_)
      copy_parameter_values(params, master_params_);

    pool_.parallel_for(shards, [&](std::size_t s, std::size_t w) {
      const std::size_t begin = s * shard_size_;
      const std::size_t count = std::min(shard_size_, batch.size() - begin);
      const ParameterList& params = replica_params_[w];
      zero_grads(params);
      shard_losses_[s] =
          static_cast<double>(fwd_bwd(*replicas_[w], batch.subspan(begin, count)));
      std::vector<tensor::Matrix>& grads = shard_grads_[s];
      for (std::size_t p = 0; p < params.size(); ++p) grads[p] = params[p]->grad;
    });

    // Deterministic reduction: shard order is fixed, so the floating-point
    // sum is independent of which worker computed which shard.
    zero_grads(master_params_);
    double loss = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * shard_size_;
      const std::size_t count = std::min(shard_size_, batch.size() - begin);
      const float weight = static_cast<float>(count) /
                           static_cast<float>(batch.size());
      loss += static_cast<double>(weight) * shard_losses_[s];
      for (std::size_t p = 0; p < master_params_.size(); ++p)
        tensor::axpy(weight, shard_grads_[s][p], master_params_[p]->grad);
    }
    const float grad_norm = clip_global_norm(master_params_, clip_norm);
    optimizer.step(master_params_);
    zero_grads(master_params_);
    obs_grad_norm.set(static_cast<double>(grad_norm));
    if (grad_norm > clip_norm) obs_clips.add();
    obs_steps.add();
    obs_step_seconds.observe(step_timer.elapsed_seconds());
    return static_cast<float>(loss);
  }

 private:
  void ensure_shard_buffers(std::size_t shards) {
    if (shard_grads_.size() < shards) {
      shard_grads_.resize(shards);
      for (std::vector<tensor::Matrix>& grads : shard_grads_) {
        grads.resize(master_params_.size());
        for (std::size_t p = 0; p < master_params_.size(); ++p)
          grads[p].resize(master_params_[p]->grad.rows(),
                          master_params_[p]->grad.cols());
      }
    }
    if (shard_losses_.size() < shards) shard_losses_.resize(shards);
  }

  Model& master_;
  util::ThreadPool pool_;
  std::size_t shard_size_;
  ParameterList master_params_;
  std::vector<std::unique_ptr<Model>> replicas_;
  std::vector<ParameterList> replica_params_;
  std::vector<std::vector<tensor::Matrix>> shard_grads_;  // reused buffers
  std::vector<double> shard_losses_;
};

}  // namespace desh::nn
