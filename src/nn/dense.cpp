#include "nn/dense.hpp"

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng,
             std::string name)
    : w_(name + ".w", tensor::Matrix::xavier(in_features, out_features, rng)),
      b_(name + ".b", tensor::Matrix(1, out_features)) {}

void Dense::forward(const tensor::Matrix& x, tensor::Matrix& y) {
  cached_x_ = x;
  forward_inference(x, y);
}

void Dense::forward_inference(const tensor::Matrix& x, tensor::Matrix& y) const {
  util::require(x.cols() == w_.value.rows(), "Dense::forward: shape mismatch");
  tensor::matmul(x, w_.value, y);
  tensor::add_row_bias(y, b_.value);
}

void Dense::backward(const tensor::Matrix& dy, tensor::Matrix& dx) {
  util::require(dy.cols() == w_.value.cols() && dy.rows() == cached_x_.rows(),
                "Dense::backward: shape mismatch (did forward run?)");
  // dW += x^T dy; db += column sums of dy; dx = dy W^T.
  tensor::Matrix dw;
  tensor::matmul_at_b(cached_x_, dy, dw);
  w_.grad += dw;
  for (std::size_t r = 0; r < dy.rows(); ++r)
    for (std::size_t c = 0; c < dy.cols(); ++c) b_.grad(0, c) += dy(r, c);
  tensor::matmul_a_bt(dy, w_.value, dx);
}

ParameterList Dense::parameters() { return {&w_, &b_}; }

}  // namespace desh::nn
