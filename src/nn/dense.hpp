// Fully connected layer: y = x W + b.
#pragma once

#include "nn/parameter.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace desh::nn {

class Dense {
 public:
  Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng,
        std::string name = "dense");

  /// x: (batch x in) -> (batch x out). Caches x for backward.
  void forward(const tensor::Matrix& x, tensor::Matrix& y);
  /// Accumulates dW, db and writes dx; must follow a forward with the same x.
  void backward(const tensor::Matrix& dy, tensor::Matrix& dx);
  /// Forward without caching — inference-only path.
  void forward_inference(const tensor::Matrix& x, tensor::Matrix& y) const;

  std::size_t in_features() const { return w_.value.rows(); }
  std::size_t out_features() const { return w_.value.cols(); }
  /// Read-only weight views for the model compiler's weight pre-packing.
  const tensor::Matrix& weight() const { return w_.value; }
  const tensor::Matrix& bias() const { return b_.value; }
  ParameterList parameters();

 private:
  Parameter w_;  // in x out
  Parameter b_;  // 1 x out
  tensor::Matrix cached_x_;
};

}  // namespace desh::nn
