#include "nn/embedding.hpp"

#include "util/error.hpp"

namespace desh::nn {

Embedding::Embedding(std::size_t vocab_size, std::size_t dim, util::Rng& rng,
                     std::string name)
    : table_(name + ".table",
             tensor::Matrix::uniform(vocab_size, dim, 0.1f, rng)) {}

void Embedding::forward(std::span<const std::uint32_t> ids,
                        tensor::Matrix& out) {
  cached_ids_.assign(ids.begin(), ids.end());
  forward_inference(ids, out);
}

void Embedding::forward_inference(std::span<const std::uint32_t> ids,
                                  tensor::Matrix& out) const {
  out.resize(ids.size(), dim());
  for (std::size_t r = 0; r < ids.size(); ++r) {
    util::require(ids[r] < vocab_size(), "Embedding: id out of vocabulary");
    std::span<const float> src = table_.value.row(ids[r]);
    float* dst = out.data() + r * dim();
    for (std::size_t c = 0; c < dim(); ++c) dst[c] = src[c];
  }
}

void Embedding::backward(const tensor::Matrix& dout) {
  util::require(dout.rows() == cached_ids_.size() && dout.cols() == dim(),
                "Embedding::backward: shape mismatch (did forward run?)");
  for (std::size_t r = 0; r < cached_ids_.size(); ++r) {
    float* dst = table_.grad.data() + cached_ids_[r] * dim();
    const float* src = dout.data() + r * dim();
    for (std::size_t c = 0; c < dim(); ++c) dst[c] += src[c];
  }
}

void Embedding::load_pretrained(const tensor::Matrix& table) {
  util::require(table.same_shape(table_.value),
                "Embedding::load_pretrained: shape mismatch");
  table_.value = table;
}

std::span<const float> Embedding::vector(std::uint32_t id) const {
  util::require(id < vocab_size(), "Embedding::vector: id out of vocabulary");
  return table_.value.row(id);
}

ParameterList Embedding::parameters() { return {&table_}; }

}  // namespace desh::nn
