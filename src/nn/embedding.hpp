// Token embedding table: maps phrase ids to dense vectors. This is the
// bridge between the discrete phrase vocabulary (Sec 3.1 of the paper) and
// the LSTM's continuous input space.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/parameter.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace desh::nn {

class Embedding {
 public:
  Embedding(std::size_t vocab_size, std::size_t dim, util::Rng& rng,
            std::string name = "embed");

  /// ids: batch of token ids -> (batch x dim) matrix of their vectors.
  void forward(std::span<const std::uint32_t> ids, tensor::Matrix& out);
  /// Scatters the incoming gradient rows back onto the table rows.
  void backward(const tensor::Matrix& dout);
  void forward_inference(std::span<const std::uint32_t> ids,
                         tensor::Matrix& out) const;

  std::size_t vocab_size() const { return table_.value.rows(); }
  std::size_t dim() const { return table_.value.cols(); }
  /// Overwrites the table with externally trained vectors (e.g. skip-gram
  /// pre-training, Sec 3.1); shape must match.
  void load_pretrained(const tensor::Matrix& table);
  std::span<const float> vector(std::uint32_t id) const;

  ParameterList parameters();

 private:
  Parameter table_;  // vocab x dim
  std::vector<std::uint32_t> cached_ids_;
};

}  // namespace desh::nn
