#include "nn/inference_backend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::nn {

namespace {

// Historic ChainModel::build_input, moved here with the scoring walk: one
// timestep row is [dt_norm | embed(phrase)] of width 1+E.
void build_chain_input(const Embedding& embed, std::size_t embed_dim,
                       const ChainStep& step, tensor::Matrix& x) {
  x.resize(1, 1 + embed_dim);
  x(0, 0) = step.dt_norm;
  std::span<const float> v = embed.vector(step.phrase);
  for (std::size_t c = 0; c < embed_dim; ++c) x(0, 1 + c) = v[c];
}

}  // namespace

float InferenceBackend::sequence_mse(const ChainSequence& sequence) const {
  const std::vector<ChainStepScore> scores = score_sequence(sequence);
  if (scores.empty()) return std::numeric_limits<float>::infinity();
  double acc = 0.0;
  for (const ChainStepScore& s : scores) acc += static_cast<double>(s.score);
  return static_cast<float>(acc / static_cast<double>(scores.size()));
}

const ChainModel& ReferenceBackend::chain() const {
  util::require(chain_ != nullptr,
                "ReferenceBackend: no chain model attached");
  return *chain_;
}

const PhraseModel& ReferenceBackend::phrase() const {
  util::require(phrase_ != nullptr,
                "ReferenceBackend: no phrase model attached");
  return *phrase_;
}

const ChainModelConfig& ReferenceBackend::chain_config() const {
  return chain().config();
}

std::vector<ChainStepScore> ReferenceBackend::score_sequence(
    const ChainSequence& sequence, std::size_t min_pos) const {
  const ChainModel& model = chain();
  const ChainModelConfig& config = model.config();
  min_pos = std::max<std::size_t>(min_pos, 1);
  std::vector<ChainStepScore> out;
  if (sequence.size() < min_pos + 1) return out;

  std::vector<tensor::Matrix> hs, cs;
  tensor::Matrix x, top, pred;
  for (std::size_t t = min_pos; t < sequence.size(); ++t) {
    // Fresh state per scored position: the context window is the last
    // `history` steps only, exactly as during training.
    const std::size_t ctx = std::min(t, config.history);
    model.stack().make_state(hs, cs, 1);
    for (std::size_t i = t - ctx; i < t; ++i) {
      build_chain_input(model.embedding(), config.embed_dim, sequence[i], x);
      model.stack().step_inference(x, hs, cs, top);
    }
    model.head().forward_inference(top, pred);

    const ChainStep& actual = sequence[t];
    ChainStepScore s;
    s.position = t;
    s.predicted_dt =
        static_cast<float>(ChainModel::denormalize_dt(pred(0, 0)));
    std::span<const float> phrase_block(pred.data() + 1, config.vocab_size);
    s.predicted_phrase =
        static_cast<std::uint32_t>(tensor::argmax(phrase_block));
    const float dt_err = pred(0, 0) - actual.dt_norm;
    s.score = config.time_weight * dt_err * dt_err +
              (s.predicted_phrase == actual.phrase ? 0.0f : 1.0f);
    out.push_back(s);
  }
  return out;
}

std::vector<std::vector<ChainStepScore>> ReferenceBackend::score_sequences(
    std::span<const ChainSequence* const> sequences,
    std::size_t min_pos) const {
  const ChainModel& model = chain();
  const ChainModelConfig& config = model.config();
  std::vector<std::vector<ChainStepScore>> out(sequences.size());
  if (sequences.empty()) return out;
  const std::size_t W = sequences.size();
  if (W == 1) {
    out[0] = score_sequence(*sequences[0], min_pos);
    return out;
  }
  const std::size_t L = sequences.front()->size();
  for (const ChainSequence* seq : sequences)
    util::require(seq->size() == L,
                  "ChainModel::score_sequences: ragged batch");
  min_pos = std::max<std::size_t>(min_pos, 1);
  if (L < min_pos + 1) return out;

  const std::size_t E = config.embed_dim;
  const std::size_t V = config.vocab_size;
  std::vector<tensor::Matrix> hs, cs;
  tensor::Matrix x, top, pred;
  for (std::size_t t = min_pos; t < L; ++t) {
    const std::size_t ctx = std::min(t, config.history);
    model.stack().make_state(hs, cs, W);
    for (std::size_t i = t - ctx; i < t; ++i) {
      x.resize(W, 1 + E);
      for (std::size_t w = 0; w < W; ++w) {
        const ChainStep& step = (*sequences[w])[i];
        float* row = x.data() + w * (1 + E);
        row[0] = step.dt_norm;
        std::span<const float> v = model.embedding().vector(step.phrase);
        for (std::size_t c = 0; c < E; ++c) row[1 + c] = v[c];
      }
      model.stack().step_inference(x, hs, cs, top);
    }
    model.head().forward_inference(top, pred);  // W x (1 + V)
    for (std::size_t w = 0; w < W; ++w) {
      const float* pr = pred.data() + w * (1 + V);
      const ChainStep& actual = (*sequences[w])[t];
      ChainStepScore s;
      s.position = t;
      s.predicted_dt = static_cast<float>(ChainModel::denormalize_dt(pr[0]));
      std::span<const float> phrase_block(pr + 1, V);
      s.predicted_phrase =
          static_cast<std::uint32_t>(tensor::argmax(phrase_block));
      const float dt_err = pr[0] - actual.dt_norm;
      s.score = config.time_weight * dt_err * dt_err +
                (s.predicted_phrase == actual.phrase ? 0.0f : 1.0f);
      out[w].push_back(s);
    }
  }
  return out;
}

std::vector<float> ReferenceBackend::predict_distribution(
    std::span<const std::uint32_t> prefix) const {
  const PhraseModel& model = phrase();
  util::require(!prefix.empty(),
                "PhraseModel::predict_distribution: empty prefix");
  std::vector<tensor::Matrix> hs, cs;
  model.stack().make_state(hs, cs, 1);
  tensor::Matrix x, top;
  for (std::uint32_t id : prefix) {
    model.embedding().forward_inference(std::span<const std::uint32_t>(&id, 1),
                                        x);
    model.stack().step_inference(x, hs, cs, top);
  }
  tensor::Matrix logits, probs;
  model.head().forward_inference(top, logits);
  tensor::softmax_rows(logits, probs);
  return std::vector<float>(probs.data(), probs.data() + probs.size());
}

std::vector<std::uint32_t> ReferenceBackend::predict_steps(
    std::span<const std::uint32_t> prefix, std::size_t steps) const {
  const PhraseModel& model = phrase();
  util::require(!prefix.empty() && steps >= 1,
                "PhraseModel::predict_steps: need prefix and steps >= 1");
  std::vector<tensor::Matrix> hs, cs;
  model.stack().make_state(hs, cs, 1);
  tensor::Matrix x, top, logits;
  for (std::uint32_t id : prefix) {
    model.embedding().forward_inference(std::span<const std::uint32_t>(&id, 1),
                                        x);
    model.stack().step_inference(x, hs, cs, top);
  }
  std::vector<std::uint32_t> out;
  out.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    model.head().forward_inference(top, logits);
    const std::uint32_t next =
        static_cast<std::uint32_t>(tensor::argmax(logits.row(0)));
    out.push_back(next);
    if (s + 1 < steps) {
      model.embedding().forward_inference(
          std::span<const std::uint32_t>(&next, 1), x);
      model.stack().step_inference(x, hs, cs, top);
    }
  }
  return out;
}

double ReferenceBackend::evaluate_topg(
    std::span<const std::vector<std::uint32_t>> windows, std::size_t history,
    std::size_t g) const {
  const PhraseModel& model = phrase();
  util::require(g >= 1, "PhraseModel::evaluate_topg: g must be >= 1");
  if (windows.empty()) return 0.0;
  std::size_t hits = 0;
  std::vector<tensor::Matrix> hs, cs;
  tensor::Matrix x, top, logits;
  for (const std::vector<std::uint32_t>& window : windows) {
    util::require(window.size() > history,
                  "PhraseModel::evaluate_topg: window shorter than history+1");
    model.stack().make_state(hs, cs, 1);
    for (std::size_t t = 0; t < history; ++t) {
      model.embedding().forward_inference(
          std::span<const std::uint32_t>(&window[t], 1), x);
      model.stack().step_inference(x, hs, cs, top);
    }
    model.head().forward_inference(top, logits);
    const std::vector<std::size_t> best = tensor::topk(
        logits.row(0), std::min<std::size_t>(g, model.config().vocab_size));
    if (std::find(best.begin(), best.end(),
                  static_cast<std::size_t>(window[history])) != best.end())
      ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(windows.size());
}

}  // namespace desh::nn
