// nn::InferenceBackend: the pluggable inference seam of Desh.
//
// Before this interface existed, StreamingMonitor, serve::InferenceServer,
// adapt's shadow evaluation and every test/bench reached into the concrete
// model classes (ChainModel::score_sequence, PhraseModel::evaluate_topg,
// the streaming batched-scoring path) — three near-duplicate forward walks
// with no seam to swap the engine underneath. The seam matters because the
// engine is now interchangeable: the reference backend walks the nn graph
// step by step, while src/compile lowers the same fixed-shape graph into a
// flat op program run by a register VM (optionally with int8/int16 weight
// quantization). Quantization and kernel specialization change numerics, so
// the engines must be *comparable* — a backend is chosen per shard via
// core::CompileConfig and the compiled engines are gated against this
// reference by an explicit accuracy-delta calibration pass.
//
// Contracts every backend must honor:
//  - score_sequences(W rows) is bit-identical per row to W score_sequence
//    calls — the serving micro-batcher's replay-equivalence guarantee;
//  - all methods are const and thread-safe (scratch state is per call);
//  - the reference backend reproduces the historical ChainModel/PhraseModel
//    results bit-exactly (the implementations moved here verbatim).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "nn/chain_model.hpp"
#include "nn/phrase_model.hpp"

namespace desh::nn {

class InferenceBackend {
 public:
  virtual ~InferenceBackend() = default;

  /// Engine identifier: "reference", "compiled" or "compiled+quantized".
  virtual std::string_view name() const = 0;

  // --- failure-chain scoring (phases 2/3, the serving hot path) ----------

  /// Slides over `sequence` statefully; emits one score per position t in
  /// [min_pos, size) comparing the prediction from steps [0, t) against the
  /// actual step t. Empty result when the sequence is shorter than
  /// min_pos+1. See ChainModel's header for the score semantics.
  virtual std::vector<ChainStepScore> score_sequence(
      const ChainSequence& sequence, std::size_t min_pos) const = 0;
  /// min_pos defaults to the model's configured history (the paper's
  /// operating point).
  std::vector<ChainStepScore> score_sequence(
      const ChainSequence& sequence) const {
    return score_sequence(sequence, chain_config().history);
  }

  /// Batched score_sequence over W equally long sequences. out[w] must be
  /// bit-identical to score_sequence(*sequences[w], min_pos) — serving
  /// replay equivalence rides on this.
  virtual std::vector<std::vector<ChainStepScore>> score_sequences(
      std::span<const ChainSequence* const> sequences,
      std::size_t min_pos) const = 0;

  /// Mean match score over the scored positions; +inf if nothing scored.
  float sequence_mse(const ChainSequence& sequence) const;

  /// Shape/operating-point view of the chain model this backend serves.
  virtual const ChainModelConfig& chain_config() const = 0;

  // --- phrase language model (phase 1, shadow eval, DeepLog baseline) ----

  /// Probability distribution over the next phrase given a prefix.
  virtual std::vector<float> predict_distribution(
      std::span<const std::uint32_t> prefix) const = 0;
  /// Greedy autoregressive continuation of `steps` phrases (Fig 10).
  virtual std::vector<std::uint32_t> predict_steps(
      std::span<const std::uint32_t> prefix, std::size_t steps) const = 0;
  /// Fraction of windows whose next token is within the top-g predictions —
  /// DeepLog's normality criterion.
  virtual double evaluate_topg(
      std::span<const std::vector<std::uint32_t>> windows, std::size_t history,
      std::size_t g) const = 0;
  /// Fraction of windows whose next token is the argmax prediction.
  double evaluate_top1(std::span<const std::vector<std::uint32_t>> windows,
                       std::size_t history) const {
    return evaluate_topg(windows, history, 1);
  }
};

/// The reference engine: walks the nn graph exactly as the concrete model
/// classes historically did (the implementations moved here verbatim), so
/// its results are the bit-exact baseline every compiled engine is gated
/// against. Borrows the models; either may be absent (nullptr) when the
/// caller only uses the other surface — calling a surface whose model is
/// missing is a precondition violation (util::InvalidArgument).
class ReferenceBackend final : public InferenceBackend {
 public:
  explicit ReferenceBackend(const ChainModel& chain)
      : chain_(&chain) {}
  explicit ReferenceBackend(const PhraseModel& phrase)
      : phrase_(&phrase) {}
  ReferenceBackend(const ChainModel* chain, const PhraseModel* phrase)
      : chain_(chain), phrase_(phrase) {}

  std::string_view name() const override { return "reference"; }

  using InferenceBackend::score_sequence;
  std::vector<ChainStepScore> score_sequence(
      const ChainSequence& sequence, std::size_t min_pos) const override;
  std::vector<std::vector<ChainStepScore>> score_sequences(
      std::span<const ChainSequence* const> sequences,
      std::size_t min_pos) const override;
  const ChainModelConfig& chain_config() const override;

  std::vector<float> predict_distribution(
      std::span<const std::uint32_t> prefix) const override;
  std::vector<std::uint32_t> predict_steps(
      std::span<const std::uint32_t> prefix, std::size_t steps) const override;
  double evaluate_topg(std::span<const std::vector<std::uint32_t>> windows,
                       std::size_t history, std::size_t g) const override;

 private:
  const ChainModel& chain() const;
  const PhraseModel& phrase() const;

  const ChainModel* chain_ = nullptr;
  const PhraseModel* phrase_ = nullptr;
};

}  // namespace desh::nn
