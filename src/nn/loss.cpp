#include "nn/loss.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::nn {

float SoftmaxCrossEntropy::forward_backward(
    const tensor::Matrix& logits, std::span<const std::uint32_t> targets,
    tensor::Matrix& dlogits) {
  util::require(logits.rows() == targets.size(),
                "SoftmaxCrossEntropy: batch size mismatch");
  const std::size_t B = logits.rows(), C = logits.cols();
  tensor::softmax_rows(logits, dlogits);
  double loss = 0;
  const float inv_b = 1.0f / static_cast<float>(B);
  for (std::size_t r = 0; r < B; ++r) {
    util::require(targets[r] < C, "SoftmaxCrossEntropy: target out of range");
    float* row = dlogits.data() + r * C;
    loss -= std::log(std::max(row[targets[r]], 1e-12f));
    row[targets[r]] -= 1.0f;
    for (std::size_t c = 0; c < C; ++c) row[c] *= inv_b;
  }
  return static_cast<float>(loss / static_cast<double>(B));
}

float SoftmaxCrossEntropy::forward(const tensor::Matrix& logits,
                                   std::span<const std::uint32_t> targets) {
  util::require(logits.rows() == targets.size(),
                "SoftmaxCrossEntropy: batch size mismatch");
  double loss = 0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    std::span<const float> row = logits.row(r);
    util::require(targets[r] < logits.cols(),
                  "SoftmaxCrossEntropy: target out of range");
    loss += tensor::logsumexp(row) - row[targets[r]];
  }
  return static_cast<float>(loss / static_cast<double>(logits.rows()));
}

float MeanSquaredError::forward_backward(const tensor::Matrix& pred,
                                         const tensor::Matrix& target,
                                         tensor::Matrix& dpred) {
  util::require(pred.same_shape(target), "MeanSquaredError: shape mismatch");
  dpred.resize(pred.rows(), pred.cols());
  const std::size_t n = pred.size();
  const float scale = 2.0f / static_cast<float>(n);
  double loss = 0;
  const float* pp = pred.data();
  const float* pt = target.data();
  float* pd = dpred.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float diff = pp[i] - pt[i];
    loss += static_cast<double>(diff) * diff;
    pd[i] = scale * diff;
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float MeanSquaredError::forward(const tensor::Matrix& pred,
                                const tensor::Matrix& target) {
  util::require(pred.same_shape(target), "MeanSquaredError: shape mismatch");
  double loss = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float diff = pred.data()[i] - target.data()[i];
    loss += static_cast<double>(diff) * diff;
  }
  return static_cast<float>(loss / static_cast<double>(pred.size()));
}

}  // namespace desh::nn
