// Loss functions per Table 5 of the paper:
//  - phase 1 trains with categorical cross-entropy (multi-class next-phrase);
//  - phases 2/3 train with mean squared error over (deltaT, phrase) vectors.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/matrix.hpp"

namespace desh::nn {

/// Fused softmax + categorical cross-entropy over integer class targets.
class SoftmaxCrossEntropy {
 public:
  /// logits: (batch x classes); targets: batch class ids.
  /// Returns mean loss; `dlogits` receives (softmax - onehot) / batch.
  static float forward_backward(const tensor::Matrix& logits,
                                std::span<const std::uint32_t> targets,
                                tensor::Matrix& dlogits);
  /// Loss only (no gradient) — used by evaluation loops.
  static float forward(const tensor::Matrix& logits,
                       std::span<const std::uint32_t> targets);
};

/// Mean squared error over equally shaped prediction/target matrices.
class MeanSquaredError {
 public:
  /// Returns mean over all elements; `dpred` receives 2*(pred-target)/N.
  static float forward_backward(const tensor::Matrix& pred,
                                const tensor::Matrix& target,
                                tensor::Matrix& dpred);
  static float forward(const tensor::Matrix& pred, const tensor::Matrix& target);
};

}  // namespace desh::nn
