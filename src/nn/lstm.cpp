#include "nn/lstm.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::nn {

namespace {
// Forget-gate bias init of +1.0 (Jozefowicz et al. 2015) markedly speeds up
// learning of long chains; the other gate biases start at zero.
tensor::Matrix initial_bias(std::size_t hidden) {
  tensor::Matrix b(1, 4 * hidden);
  for (std::size_t c = hidden; c < 2 * hidden; ++c) b(0, c) = 1.0f;
  return b;
}
}  // namespace

LstmLayer::LstmLayer(std::size_t input_size, std::size_t hidden_size,
                     util::Rng& rng, std::string name)
    : wx_(name + ".wx",
          tensor::Matrix::xavier(input_size, 4 * hidden_size, rng)),
      wh_(name + ".wh",
          tensor::Matrix::xavier(hidden_size, 4 * hidden_size, rng)),
      b_(name + ".b", initial_bias(hidden_size)) {}

void LstmLayer::compute_gates(const tensor::Matrix& x,
                              const tensor::Matrix& h_prev,
                              tensor::Matrix& gates) const {
  const std::size_t h = hidden_size();
  tensor::matmul(x, wx_.value, gates);
  tensor::matmul_acc(h_prev, wh_.value, gates);
  tensor::add_row_bias(gates, b_.value);
  tensor::lstm_activate_gates(gates, h);
}

void LstmLayer::forward(const std::vector<tensor::Matrix>& inputs, Cache& cache,
                        std::vector<tensor::Matrix>& outputs) {
  util::require(!inputs.empty(), "LstmLayer::forward: empty sequence");
  const std::size_t T = inputs.size();
  const std::size_t B = inputs.front().rows();
  const std::size_t H = hidden_size();

  cache.inputs = inputs;
  cache.gates.resize(T);
  cache.cells.resize(T);
  cache.tanh_c.resize(T);
  cache.hiddens.resize(T);
  outputs.resize(T);

  tensor::Matrix h_prev(B, H), c_prev(B, H);
  for (std::size_t t = 0; t < T; ++t) {
    util::require(inputs[t].rows() == B && inputs[t].cols() == input_size(),
                  "LstmLayer::forward: inconsistent input shape");
    compute_gates(inputs[t], h_prev, cache.gates[t]);
    const tensor::Matrix& g4 = cache.gates[t];
    tensor::Matrix& c_t = cache.cells[t];
    tensor::Matrix& tc = cache.tanh_c[t];
    tensor::Matrix& h_t = cache.hiddens[t];
    c_t.resize(B, H);
    tc.resize(B, H);
    h_t.resize(B, H);
    for (std::size_t r = 0; r < B; ++r)
      tensor::lstm_cell_update(g4.data() + r * 4 * H, c_prev.data() + r * H,
                               c_t.data() + r * H, tc.data() + r * H,
                               h_t.data() + r * H, H);
    outputs[t] = h_t;
    h_prev = h_t;
    c_prev = c_t;
  }
}

void LstmLayer::backward(const Cache& cache,
                         const std::vector<tensor::Matrix>& doutputs,
                         std::vector<tensor::Matrix>& dinputs) {
  const std::size_t T = cache.inputs.size();
  util::require(doutputs.size() == T,
                "LstmLayer::backward: gradient sequence length mismatch");
  const std::size_t B = cache.inputs.front().rows();
  const std::size_t H = hidden_size();

  dinputs.resize(T);
  tensor::Matrix dh_next(B, H), dc_next(B, H);
  tensor::Matrix dz(B, 4 * H), scratch(B, H);

  for (std::size_t ti = T; ti-- > 0;) {
    const tensor::Matrix& g4 = cache.gates[ti];
    const tensor::Matrix& tc = cache.tanh_c[ti];
    // c_{t-1} and h_{t-1} come from the previous cache step (zero at t=0).
    const tensor::Matrix* c_prev = ti > 0 ? &cache.cells[ti - 1] : nullptr;
    const tensor::Matrix* h_prev = ti > 0 ? &cache.hiddens[ti - 1] : nullptr;

    for (std::size_t r = 0; r < B; ++r) {
      const float* gr = g4.data() + r * 4 * H;
      const float* tr = tc.data() + r * H;
      const float* cp = c_prev ? c_prev->data() + r * H : nullptr;
      const float* dout = doutputs[ti].data() + r * H;
      float* dhn = dh_next.data() + r * H;
      float* dcn = dc_next.data() + r * H;
      float* dzr = dz.data() + r * 4 * H;
      for (std::size_t j = 0; j < H; ++j) {
        const float i = gr[j], f = gr[H + j], g = gr[2 * H + j],
                    o = gr[3 * H + j];
        const float dh = dout[j] + dhn[j];
        const float dc = dh * o * tensor::tanh_grad_from_value(tr[j]) + dcn[j];
        dzr[j] = dc * g * tensor::sigmoid_grad_from_value(i);            // i
        dzr[H + j] = (cp ? dc * cp[j] : 0.0f) *
                     tensor::sigmoid_grad_from_value(f);                 // f
        dzr[2 * H + j] = dc * i * tensor::tanh_grad_from_value(g);       // g
        dzr[3 * H + j] = dh * tr[j] * tensor::sigmoid_grad_from_value(o); // o
        dcn[j] = dc * f;  // becomes dc_next for step t-1
      }
    }

    // Accumulate parameter gradients.
    tensor::Matrix dwx;
    tensor::matmul_at_b(cache.inputs[ti], dz, dwx);
    wx_.grad += dwx;
    if (h_prev) {
      tensor::Matrix dwh;
      tensor::matmul_at_b(*h_prev, dz, dwh);
      wh_.grad += dwh;
    }
    for (std::size_t r = 0; r < B; ++r)
      for (std::size_t c = 0; c < 4 * H; ++c) b_.grad(0, c) += dz(r, c);

    // Propagate to inputs and previous hidden state.
    tensor::matmul_a_bt(dz, wx_.value, dinputs[ti]);
    tensor::matmul_a_bt(dz, wh_.value, dh_next);
  }
}

void LstmLayer::step_inference(const tensor::Matrix& x, tensor::Matrix& h,
                               tensor::Matrix& c) const {
  const std::size_t B = x.rows();
  const std::size_t H = hidden_size();
  util::require(h.rows() == B && h.cols() == H && c.rows() == B && c.cols() == H,
                "LstmLayer::step_inference: state shape mismatch");
  tensor::Matrix gates;
  compute_gates(x, h, gates);
  // In-place state step: c_prev aliases c, tanh(c) lands directly in h.
  for (std::size_t r = 0; r < B; ++r) {
    float* cr = c.data() + r * H;
    float* hr = h.data() + r * H;
    tensor::lstm_cell_update(gates.data() + r * 4 * H, cr, cr, hr, hr, H);
  }
}

ParameterList LstmLayer::parameters() { return {&wx_, &wh_, &b_}; }

LstmStack::LstmStack(std::size_t input_size, std::size_t hidden_size,
                     std::size_t num_layers, util::Rng& rng,
                     const std::string& name) {
  util::require(num_layers > 0, "LstmStack: need at least one layer");
  layers_.reserve(num_layers);
  for (std::size_t l = 0; l < num_layers; ++l) {
    const std::size_t in = l == 0 ? input_size : hidden_size;
    layers_.emplace_back(in, hidden_size, rng,
                         name + ".layer" + std::to_string(l));
  }
}

void LstmStack::forward(const std::vector<tensor::Matrix>& inputs, Cache& cache,
                        std::vector<tensor::Matrix>& outputs) {
  cache.layers.resize(layers_.size());
  cache.outputs.resize(layers_.size());
  const std::vector<tensor::Matrix>* current = &inputs;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].forward(*current, cache.layers[l], cache.outputs[l]);
    current = &cache.outputs[l];
  }
  outputs = cache.outputs.back();
}

void LstmStack::backward(const Cache& cache,
                         const std::vector<tensor::Matrix>& doutputs,
                         std::vector<tensor::Matrix>& dinputs) {
  std::vector<tensor::Matrix> dcurrent = doutputs;
  std::vector<tensor::Matrix> dprev;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    layers_[l].backward(cache.layers[l], dcurrent, dprev);
    dcurrent = std::move(dprev);
  }
  dinputs = std::move(dcurrent);
}

void LstmStack::make_state(std::vector<tensor::Matrix>& hs,
                           std::vector<tensor::Matrix>& cs,
                           std::size_t batch) const {
  hs.assign(layers_.size(), tensor::Matrix());
  cs.assign(layers_.size(), tensor::Matrix());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    hs[l].resize(batch, layers_[l].hidden_size());
    cs[l].resize(batch, layers_[l].hidden_size());
  }
}

void LstmStack::step_inference(const tensor::Matrix& x,
                               std::vector<tensor::Matrix>& hs,
                               std::vector<tensor::Matrix>& cs,
                               tensor::Matrix& top_hidden) const {
  util::require(hs.size() == layers_.size() && cs.size() == layers_.size(),
                "LstmStack::step_inference: state count mismatch");
  const tensor::Matrix* current = &x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].step_inference(*current, hs[l], cs[l]);
    current = &hs[l];
  }
  top_hidden = *current;
}

ParameterList LstmStack::parameters() {
  ParameterList out;
  for (LstmLayer& layer : layers_)
    for (Parameter* p : layer.parameters()) out.push_back(p);
  return out;
}

}  // namespace desh::nn
