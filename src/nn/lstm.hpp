// Stacked long short-term memory network with full backpropagation through
// time. This is the "stacked LSTM using two hidden layers" of Desh Fig 1b /
// Table 5, implemented from scratch on the tensor kernels.
//
// Layout conventions:
//  - a timestep input is a (batch x features) matrix;
//  - a sequence is a std::vector of T such matrices;
//  - gate blocks inside the 4H-wide pre-activation are ordered i, f, g, o.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/parameter.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace desh::nn {

/// One LSTM layer processing a whole sequence with cached activations.
class LstmLayer {
 public:
  LstmLayer(std::size_t input_size, std::size_t hidden_size, util::Rng& rng,
            std::string name = "lstm");

  /// Per-sequence forward cache; reusable across calls to avoid reallocation.
  struct Cache {
    std::vector<tensor::Matrix> inputs;   // T x (B x I)
    std::vector<tensor::Matrix> gates;    // T x (B x 4H), post-activation
    std::vector<tensor::Matrix> cells;    // T x (B x H), c_t
    std::vector<tensor::Matrix> tanh_c;   // T x (B x H), tanh(c_t)
    std::vector<tensor::Matrix> hiddens;  // T x (B x H), h_t
  };

  /// Runs the layer over `inputs` (T matrices of B x I) starting from zero
  /// state; fills `cache` and writes hidden states into `outputs`.
  void forward(const std::vector<tensor::Matrix>& inputs, Cache& cache,
               std::vector<tensor::Matrix>& outputs);

  /// BPTT: `doutputs` holds dL/dh_t for every step (zero matrices where no
  /// loss attaches). Accumulates weight grads, writes dL/dx_t to `dinputs`.
  void backward(const Cache& cache, const std::vector<tensor::Matrix>& doutputs,
                std::vector<tensor::Matrix>& dinputs);

  /// Single-step stateful inference used by the streaming predictor:
  /// advances (h, c) in place given one input row.
  void step_inference(const tensor::Matrix& x, tensor::Matrix& h,
                      tensor::Matrix& c) const;

  std::size_t input_size() const { return wx_.value.rows(); }
  std::size_t hidden_size() const { return wh_.value.rows(); }
  ParameterList parameters();

  /// Read-only weight views for the load-time model compiler (src/compile):
  /// the emitter re-packs these into its fused-kernel layout, so it needs
  /// the raw I x 4H / H x 4H / 1 x 4H blocks (gate order i, f, g, o).
  const tensor::Matrix& wx() const { return wx_.value; }
  const tensor::Matrix& wh() const { return wh_.value; }
  const tensor::Matrix& bias() const { return b_.value; }

 private:
  Parameter wx_;  // I x 4H
  Parameter wh_;  // H x 4H
  Parameter b_;   // 1 x 4H

  void compute_gates(const tensor::Matrix& x, const tensor::Matrix& h_prev,
                     tensor::Matrix& gates) const;
};

/// A stack of LstmLayers: layer l consumes layer l-1's hidden sequence.
class LstmStack {
 public:
  LstmStack(std::size_t input_size, std::size_t hidden_size,
            std::size_t num_layers, util::Rng& rng,
            const std::string& name = "lstm_stack");

  struct Cache {
    std::vector<LstmLayer::Cache> layers;
    // Hidden sequences between layers (layer l's outputs = layer l+1 inputs).
    std::vector<std::vector<tensor::Matrix>> outputs;
  };

  /// Final layer's hidden sequence is written to `outputs`.
  void forward(const std::vector<tensor::Matrix>& inputs, Cache& cache,
               std::vector<tensor::Matrix>& outputs);
  void backward(const Cache& cache, const std::vector<tensor::Matrix>& doutputs,
                std::vector<tensor::Matrix>& dinputs);

  /// Stateful single-step inference across the whole stack. `hs`/`cs` hold
  /// one (1 x H) state pair per layer and are advanced in place.
  void step_inference(const tensor::Matrix& x, std::vector<tensor::Matrix>& hs,
                      std::vector<tensor::Matrix>& cs,
                      tensor::Matrix& top_hidden) const;
  /// Zero-initialized per-layer states for step_inference.
  void make_state(std::vector<tensor::Matrix>& hs,
                  std::vector<tensor::Matrix>& cs, std::size_t batch) const;

  std::size_t num_layers() const { return layers_.size(); }
  std::size_t hidden_size() const { return layers_.front().hidden_size(); }
  std::size_t input_size() const { return layers_.front().input_size(); }
  /// Read-only per-layer access for the model compiler's weight pre-packing.
  const LstmLayer& layer(std::size_t l) const { return layers_[l]; }
  ParameterList parameters();

 private:
  std::vector<LstmLayer> layers_;
};

}  // namespace desh::nn
