#include "nn/optimizer.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::nn {

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {
  util::require(lr > 0, "Sgd: learning rate must be positive");
  util::require(momentum >= 0 && momentum < 1, "Sgd: momentum out of [0,1)");
}

void Sgd::step(const ParameterList& params) {
  for (Parameter* p : params) {
    if (momentum_ == 0.0f) {
      tensor::axpy(-lr_, p->grad, p->value);
      continue;
    }
    tensor::Matrix& v = velocity_[p];
    if (v.empty()) v.resize(p->value.rows(), p->value.cols());
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      float& vel = v.data()[i];
      vel = momentum_ * vel - lr_ * p->grad.data()[i];
      p->value.data()[i] += vel;
    }
  }
}

RmsProp::RmsProp(float lr, float decay, float epsilon)
    : lr_(lr), decay_(decay), epsilon_(epsilon) {
  util::require(lr > 0, "RmsProp: learning rate must be positive");
  util::require(decay > 0 && decay < 1, "RmsProp: decay out of (0,1)");
  util::require(epsilon > 0, "RmsProp: epsilon must be positive");
}

void RmsProp::step(const ParameterList& params) {
  for (Parameter* p : params) {
    tensor::Matrix& ms = mean_square_[p];
    if (ms.empty()) ms.resize(p->value.rows(), p->value.cols());
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad.data()[i];
      float& m = ms.data()[i];
      m = decay_ * m + (1.0f - decay_) * g * g;
      p->value.data()[i] -= lr_ * g / (std::sqrt(m) + epsilon_);
    }
  }
}

float clip_global_norm(const ParameterList& params, float max_norm) {
  util::require(max_norm > 0, "clip_global_norm: max_norm must be positive");
  double total = 0;
  for (const Parameter* p : params) {
    const float n = tensor::l2_norm(p->grad);
    total += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) p->grad *= scale;
  }
  return norm;
}

}  // namespace desh::nn
