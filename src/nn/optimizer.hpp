// Optimizers per Table 5: stochastic gradient descent (phase 1) and RMSprop
// (phases 2/3), plus global-norm gradient clipping which is essential for
// stable BPTT on long failure chains.
#pragma once

#include <memory>
#include <unordered_map>

#include "nn/parameter.hpp"

namespace desh::nn {

/// Abstract optimizer; `step` consumes accumulated gradients and updates
/// parameter values, then the caller is responsible for zero_grads().
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const ParameterList& params) = 0;
  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;
};

/// Plain SGD with optional classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);
  void step(const ParameterList& params) override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::unordered_map<const Parameter*, tensor::Matrix> velocity_;
};

/// RMSprop (Tieleman & Hinton): per-weight learning rates from a decaying
/// average of squared gradients.
class RmsProp final : public Optimizer {
 public:
  explicit RmsProp(float lr, float decay = 0.9f, float epsilon = 1e-6f);
  void step(const ParameterList& params) override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float decay_;
  float epsilon_;
  std::unordered_map<const Parameter*, tensor::Matrix> mean_square_;
};

/// Rescales all gradients so their global L2 norm does not exceed max_norm.
/// Returns the pre-clip norm (useful for training diagnostics).
float clip_global_norm(const ParameterList& params, float max_norm);

}  // namespace desh::nn
