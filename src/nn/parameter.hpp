// Trainable parameter: value + gradient accumulator, registered by name so
// optimizers and the serializer can walk a model generically.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace desh::nn {

struct Parameter {
  std::string name;
  tensor::Matrix value;
  tensor::Matrix grad;

  Parameter() = default;
  Parameter(std::string n, tensor::Matrix v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void zero_grad() { grad.set_zero(); }
  std::size_t size() const { return value.size(); }
};

/// Non-owning view over a model's parameters in a stable order.
using ParameterList = std::vector<Parameter*>;
/// Read-only variant: what a const model exposes (e.g. the champion side of
/// nn::warm_start_parameters).
using ConstParameterList = std::vector<const Parameter*>;

inline void zero_grads(const ParameterList& params) {
  for (Parameter* p : params) p->zero_grad();
}

inline std::size_t parameter_count(const ParameterList& params) {
  std::size_t n = 0;
  for (const Parameter* p : params) n += p->size();
  return n;
}

}  // namespace desh::nn
