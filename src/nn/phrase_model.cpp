#include "nn/phrase_model.hpp"

#include <algorithm>

#include "nn/inference_backend.hpp"
#include "nn/loss.hpp"

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace desh::nn {

PhraseModel::PhraseModel(const PhraseModelConfig& config, util::Rng& rng)
    : config_(config),
      embed_(config.vocab_size, config.embed_dim, rng, "phrase.embed"),
      stack_(config.embed_dim, config.hidden_size, config.num_layers, rng,
             "phrase.lstm"),
      head_(config.hidden_size, config.vocab_size, rng, "phrase.head") {
  util::require(config.vocab_size > 1, "PhraseModel: vocab_size must be > 1");
}

float PhraseModel::train_batch(
    std::span<const std::vector<std::uint32_t>> windows, std::size_t steps,
    Optimizer& optimizer, float clip_norm) {
  const float loss = forward_backward(windows, steps);
  ParameterList params = parameters();
  clip_global_norm(params, clip_norm);
  optimizer.step(params);
  zero_grads(params);
  return loss;
}

float PhraseModel::forward_backward(
    std::span<const std::vector<std::uint32_t>> windows, std::size_t steps) {
  util::require(!windows.empty(), "PhraseModel::train_batch: empty batch");
  const std::size_t len = windows.front().size();
  util::require(steps >= 1 && len > steps,
                "PhraseModel::train_batch: window shorter than steps+1");
  const std::size_t B = windows.size();
  const std::size_t T = len - 1;  // inputs w0..w_{T-1}, predicting w1..w_T

  // Flatten ids t-major so one Embedding forward covers the whole batch.
  std::vector<std::uint32_t> flat_ids(B * T);
  for (std::size_t t = 0; t < T; ++t)
    for (std::size_t b = 0; b < B; ++b) {
      util::require(windows[b].size() == len,
                    "PhraseModel::train_batch: ragged batch");
      flat_ids[t * B + b] = windows[b][t];
    }
  tensor::Matrix flat_emb;
  embed_.forward(flat_ids, flat_emb);

  std::vector<tensor::Matrix> inputs(T);
  for (std::size_t t = 0; t < T; ++t) {
    inputs[t].resize(B, config_.embed_dim);
    std::copy_n(flat_emb.data() + t * B * config_.embed_dim,
                B * config_.embed_dim, inputs[t].data());
  }

  LstmStack::Cache cache;
  std::vector<tensor::Matrix> hidden_seq;
  stack_.forward(inputs, cache, hidden_seq);

  // Loss attaches to the last `steps` positions: position t predicts w_{t+1}.
  const std::size_t first_loss_t = T - steps;
  tensor::Matrix head_in(steps * B, config_.hidden_size);
  std::vector<std::uint32_t> targets(steps * B);
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t t = first_loss_t + s;
    std::copy_n(hidden_seq[t].data(), B * config_.hidden_size,
                head_in.data() + s * B * config_.hidden_size);
    for (std::size_t b = 0; b < B; ++b) targets[s * B + b] = windows[b][t + 1];
  }

  tensor::Matrix logits;
  head_.forward(head_in, logits);
  tensor::Matrix dlogits;
  const float loss =
      SoftmaxCrossEntropy::forward_backward(logits, targets, dlogits);

  tensor::Matrix dhead_in;
  head_.backward(dlogits, dhead_in);

  std::vector<tensor::Matrix> dhidden(T);
  for (std::size_t t = 0; t < T; ++t) dhidden[t].resize(B, config_.hidden_size);
  for (std::size_t s = 0; s < steps; ++s)
    std::copy_n(dhead_in.data() + s * B * config_.hidden_size,
                B * config_.hidden_size, dhidden[first_loss_t + s].data());

  std::vector<tensor::Matrix> dinputs;
  stack_.backward(cache, dhidden, dinputs);

  tensor::Matrix dflat_emb(B * T, config_.embed_dim);
  for (std::size_t t = 0; t < T; ++t)
    std::copy_n(dinputs[t].data(), B * config_.embed_dim,
                dflat_emb.data() + t * B * config_.embed_dim);
  embed_.backward(dflat_emb);
  return loss;
}

// Deprecated forwarding shims: the implementations moved verbatim into
// nn::ReferenceBackend (inference_backend.cpp), so results stay bit-identical
// through the shim for the one release it survives.
std::vector<float> PhraseModel::predict_distribution(
    std::span<const std::uint32_t> prefix) const {
  return ReferenceBackend(*this).predict_distribution(prefix);
}

std::vector<std::uint32_t> PhraseModel::predict_steps(
    std::span<const std::uint32_t> prefix, std::size_t steps) const {
  return ReferenceBackend(*this).predict_steps(prefix, steps);
}

double PhraseModel::evaluate_top1(
    std::span<const std::vector<std::uint32_t>> windows,
    std::size_t history) const {
  return ReferenceBackend(*this).evaluate_top1(windows, history);
}

double PhraseModel::evaluate_topg(
    std::span<const std::vector<std::uint32_t>> windows, std::size_t history,
    std::size_t g) const {
  return ReferenceBackend(*this).evaluate_topg(windows, history, g);
}

ParameterList PhraseModel::parameters() {
  ParameterList out = embed_.parameters();
  for (Parameter* p : stack_.parameters()) out.push_back(p);
  for (Parameter* p : head_.parameters()) out.push_back(p);
  return out;
}

ConstParameterList PhraseModel::parameters() const {
  // Same stable order as the mutable overload, re-exposed read-only.
  ParameterList p = const_cast<PhraseModel*>(this)->parameters();
  return ConstParameterList(p.begin(), p.end());
}

}  // namespace desh::nn
