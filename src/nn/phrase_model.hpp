// PhraseModel: Embedding -> stacked LSTM -> Dense(vocab) language model over
// encoded log phrases. This is the phase-1 network of Desh (Table 5 row 1:
// categorical cross-entropy + SGD, 2 hidden layers, history size 8, 3-step
// prediction) and is reused by the DeepLog baseline (top-g next-key check).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/dense.hpp"
#include "nn/embedding.hpp"
#include "nn/lstm.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace desh::nn {

struct PhraseModelConfig {
  std::size_t vocab_size = 0;
  std::size_t embed_dim = 16;
  std::size_t hidden_size = 32;
  std::size_t num_layers = 2;  // paper: 2 hidden layers
};

class PhraseModel {
 public:
  PhraseModel(const PhraseModelConfig& config, util::Rng& rng);

  /// Trains on a batch of equally long windows. Each window has
  /// `history + steps` tokens; the loss attaches to the final `steps`
  /// positions (teacher-forced multi-step prediction, Sec 3.1).
  /// Returns the mean cross-entropy of the batch.
  float train_batch(std::span<const std::vector<std::uint32_t>> windows,
                    std::size_t steps, Optimizer& optimizer,
                    float clip_norm = 5.0f);

  /// Forward + backward only: accumulates gradients into the parameters and
  /// returns the batch mean cross-entropy without taking an optimizer step.
  /// This is the shard kernel of the data-parallel engine (nn/data_parallel);
  /// train_batch == forward_backward + clip + step + zero_grads.
  float forward_backward(std::span<const std::vector<std::uint32_t>> windows,
                         std::size_t steps);

  /// Deprecated forwarding shims, kept for one release: the inference
  /// surface moved behind nn::InferenceBackend (nn/inference_backend.hpp);
  /// construct an nn::ReferenceBackend over this model instead.
  [[deprecated("score through nn::InferenceBackend (nn/inference_backend.hpp)")]]
  std::vector<float> predict_distribution(
      std::span<const std::uint32_t> prefix) const;
  [[deprecated("score through nn::InferenceBackend (nn/inference_backend.hpp)")]]
  std::vector<std::uint32_t> predict_steps(
      std::span<const std::uint32_t> prefix, std::size_t steps) const;
  [[deprecated("score through nn::InferenceBackend (nn/inference_backend.hpp)")]]
  double evaluate_top1(std::span<const std::vector<std::uint32_t>> windows,
                       std::size_t history) const;
  [[deprecated("score through nn::InferenceBackend (nn/inference_backend.hpp)")]]
  double evaluate_topg(std::span<const std::vector<std::uint32_t>> windows,
                       std::size_t history, std::size_t g) const;

  /// Direct access for pre-trained skip-gram vectors (Sec 3.1).
  Embedding& embedding() { return embed_; }
  /// Read-only component views for the inference backends.
  const Embedding& embedding() const { return embed_; }
  const LstmStack& stack() const { return stack_; }
  const Dense& head() const { return head_; }

  const PhraseModelConfig& config() const { return config_; }
  ParameterList parameters();
  ConstParameterList parameters() const;

 private:
  PhraseModelConfig config_;
  Embedding embed_;
  LstmStack stack_;
  Dense head_;
};

}  // namespace desh::nn
