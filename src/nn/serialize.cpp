#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace desh::nn {

namespace {
constexpr char kMagic[8] = {'D', 'E', 'S', 'H', 'M', 'D', 'L', '1'};

template <typename T>
void write_pod(std::ofstream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  return value;
}
}  // namespace

void save_parameters(const ParameterList& params, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  // desh-lint: allow(throw-discipline) legacy throwing I/O helper
  if (!os) throw util::IoError("save_parameters: cannot open " + path);
  os.write(kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(os, params.size());
  for (const Parameter* p : params) {
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_pod<std::uint64_t>(os, p->value.rows());
    write_pod<std::uint64_t>(os, p->value.cols());
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  // desh-lint: allow(throw-discipline) legacy throwing I/O helper
  if (!os) throw util::IoError("save_parameters: write failed for " + path);
}

void load_parameters(const ParameterList& params, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  // desh-lint: allow(throw-discipline) legacy throwing I/O helper
  if (!is) throw util::IoError("load_parameters: cannot open " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    // desh-lint: allow(throw-discipline) legacy throwing I/O helper
    throw util::IoError("load_parameters: bad magic in " + path);
  const auto count = read_pod<std::uint64_t>(is);
  if (count != params.size())
    // desh-lint: allow(throw-discipline) legacy throwing I/O helper
    throw util::IoError("load_parameters: parameter count mismatch in " + path);
  for (Parameter* p : params) {
    const auto name_len = read_pod<std::uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (name != p->name)
      // desh-lint: allow(throw-discipline) legacy throwing I/O helper
      throw util::IoError("load_parameters: expected parameter '" + p->name +
                          "' but archive has '" + name + "'");
    const auto rows = read_pod<std::uint64_t>(is);
    const auto cols = read_pod<std::uint64_t>(is);
    if (rows != p->value.rows() || cols != p->value.cols())
      // desh-lint: allow(throw-discipline) legacy throwing I/O helper
      throw util::IoError("load_parameters: shape mismatch for '" + p->name +
                          "'");
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    // desh-lint: allow(throw-discipline) legacy throwing I/O helper
    if (!is) throw util::IoError("load_parameters: truncated archive " + path);
  }
}

}  // namespace desh::nn
