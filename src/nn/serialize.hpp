// Binary model checkpointing: writes/reads a named-parameter archive so a
// trained Desh model can be deployed without retraining. Format:
//   magic "DESHMDL1" | u64 param count | per param:
//   u32 name length | name bytes | u64 rows | u64 cols | float32 data.
#pragma once

#include <string>

#include "nn/parameter.hpp"

namespace desh::nn {

/// Saves `params` in registry order; throws util::IoError on failure.
void save_parameters(const ParameterList& params, const std::string& path);

/// Loads into `params`; names and shapes must match the archive exactly
/// (this catches architecture/config drift at load time).
void load_parameters(const ParameterList& params, const std::string& path);

}  // namespace desh::nn
