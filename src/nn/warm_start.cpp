#include "nn/warm_start.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace desh::nn {

namespace {

std::uint32_t map_id(std::span<const std::uint32_t> id_map, std::size_t i) {
  if (i >= id_map.size()) return kNoWarmSource;
  return id_map[i];
}

/// Copies src row `sr` cols [0, n) into dst row `dr`.
void copy_row(tensor::Matrix& dst, std::size_t dr, const tensor::Matrix& src,
              std::size_t sr, std::size_t n) {
  std::copy_n(src.data() + sr * src.cols(), n, dst.data() + dr * dst.cols());
}

void remap_rows(tensor::Matrix& dst, const tensor::Matrix& src,
                std::span<const std::uint32_t> id_map) {
  const std::size_t n = std::min(dst.cols(), src.cols());
  for (std::size_t r = 0; r < dst.rows(); ++r) {
    const std::uint32_t s = map_id(id_map, r);
    if (s == kNoWarmSource || s >= src.rows()) continue;
    copy_row(dst, r, src, s, n);
  }
}

/// `offset`: first vocabulary column (1 for the phase-2 [dt | phrases] head,
/// 0 for the phase-1 softmax head). Columns below the offset copy verbatim.
void remap_cols(tensor::Matrix& dst, const tensor::Matrix& src,
                std::span<const std::uint32_t> id_map, std::size_t offset) {
  const std::size_t rows = std::min(dst.rows(), src.rows());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < offset; ++c) dst(r, c) = src(r, c);
    for (std::size_t c = offset; c < dst.cols(); ++c) {
      const std::uint32_t s = map_id(id_map, c - offset);
      if (s == kNoWarmSource || offset + s >= src.cols()) continue;
      dst(r, c) = src(r, offset + s);
    }
  }
}

void copy_overlap(tensor::Matrix& dst, const tensor::Matrix& src) {
  const std::size_t rows = std::min(dst.rows(), src.rows());
  const std::size_t cols = std::min(dst.cols(), src.cols());
  for (std::size_t r = 0; r < rows; ++r) copy_row(dst, r, src, r, cols);
}

}  // namespace

void warm_start_parameters(const ParameterList& dst,
                           const ConstParameterList& src,
                           std::span<const std::uint32_t> id_map,
                           std::size_t dst_vocab, std::size_t src_vocab) {
  util::require(dst.size() == src.size(),
                "warm_start_parameters: parameter count mismatch");
  util::require(dst_vocab > 0 && src_vocab > 0,
                "warm_start_parameters: empty vocabulary");
  for (std::size_t p = 0; p < dst.size(); ++p) {
    tensor::Matrix& d = dst[p]->value;
    const tensor::Matrix& s = src[p]->value;
    if (d.rows() == dst_vocab && s.rows() == src_vocab) {
      remap_rows(d, s, id_map);
    } else if (d.cols() == dst_vocab && s.cols() == src_vocab) {
      remap_cols(d, s, id_map, /*offset=*/0);
    } else if (d.cols() == dst_vocab + 1 && s.cols() == src_vocab + 1) {
      remap_cols(d, s, id_map, /*offset=*/1);
    } else {
      copy_overlap(d, s);
    }
  }
}

}  // namespace desh::nn
