// Warm-starting a challenger model from a champion's trained weights
// (desh::adapt's background retrainer, DESIGN.md "Online adaptation").
//
// A challenger pipeline rebuilt from a replay buffer sees a *different*
// vocabulary than the champion: template ids are assigned in first-seen
// order, so the same phrase usually carries a different id in the two
// models, and genuinely new phrases exist only in the challenger. A naive
// same-index parameter copy would therefore graft the wrong embedding row /
// head column onto most phrases. warm_start_parameters() instead takes an
// id map (challenger id -> champion id, built from the two vocabularies)
// and remaps every vocabulary-indexed dimension while copying the
// vocabulary-independent LSTM weights verbatim.
#pragma once

#include <cstdint>
#include <span>

#include "nn/parameter.hpp"

namespace desh::nn {

/// Sentinel in the id map: this destination id has no source counterpart
/// (a phrase the champion never saw) — its freshly initialized (or
/// skip-gram pre-trained) weights are kept.
inline constexpr std::uint32_t kNoWarmSource = 0xffffffffu;

/// Copies trained values from `src` (champion) into `dst` (challenger),
/// pairing parameters by position — both lists must come from identically
/// architected models, so counts and names match even though
/// vocabulary-sized dimensions may differ.
///
/// Per parameter pair, the vocabulary-aware dispatch is dimensional:
///   - rows == vocab on both sides (embedding tables): row r of dst copies
///     row id_map[r] of src; unmapped rows are left untouched;
///   - cols == vocab on both sides (phase-1 softmax head W and b): column
///     c of dst copies column id_map[c] of src;
///   - cols == vocab + 1 on both sides (phase-2 head: [dt | phrase block]):
///     column 0 copies verbatim, column 1 + c remaps like the above;
///   - identical shapes otherwise (LSTM stacks, hidden-sized biases):
///     verbatim copy;
///   - anything else: the overlapping top-left sub-matrix copies — the
///     conservative fallback for architecture-config drift between
///     champion and challenger (e.g. an operator widened hidden_size).
///
/// `id_map[i]` is the src id for dst id `i`, or kNoWarmSource. `i` may
/// exceed id_map.size() when the destination vocabulary grew past the map
/// (treated as unmapped). Gradients are untouched; call zero_grads before
/// training as usual.
void warm_start_parameters(const ParameterList& dst,
                           const ConstParameterList& src,
                           std::span<const std::uint32_t> id_map,
                           std::size_t dst_vocab, std::size_t src_vocab);

}  // namespace desh::nn
