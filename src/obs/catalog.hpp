// The complete catalog of runtime metrics Desh emits. Every instrumented
// call site registers through one of these MetricDef constants, and
// kCatalog enumerates them all, so:
//   - metric names/kinds/units live in exactly one place;
//   - the exporter golden test can assert that OBSERVABILITY.md documents
//     every metric the code can emit (iterate kCatalog, grep the doc);
//   - adding a metric without cataloging it here is a compile error at the
//     call site (registry methods take a MetricDef, not a bare string).
// Keep OBSERVABILITY.md's taxonomy table in sync with this file.
#pragma once

#include "obs/metrics.hpp"

namespace desh::obs {

// --- training (DataParallelTrainer: phases 1 and 2) ----------------------
inline constexpr MetricDef kTrainStepsTotal{
    "desh_train_steps_total", "counter", "steps",
    "Optimizer steps taken by the data-parallel training engine"};
inline constexpr MetricDef kTrainGradClipTotal{
    "desh_train_grad_clip_total", "counter", "steps",
    "Training steps whose global gradient norm exceeded the clip threshold"};
inline constexpr MetricDef kTrainStepSeconds{
    "desh_train_step_seconds", "histogram", "seconds",
    "Wall time of one train_step (shard dispatch + reduction + step)"};
inline constexpr MetricDef kTrainGradNorm{
    "desh_train_grad_norm", "gauge", "l2",
    "Pre-clip global gradient norm of the most recent training step"};
inline constexpr MetricDef kPhase1EpochsTotal{
    "desh_phase1_epochs_total", "counter", "epochs",
    "Phase-1 (phrase LSTM) training epochs completed"};
inline constexpr MetricDef kPhase1EpochLoss{
    "desh_phase1_epoch_loss", "gauge", "loss",
    "Mean phase-1 batch loss of the most recent epoch"};
inline constexpr MetricDef kPhase2EpochsTotal{
    "desh_phase2_epochs_total", "counter", "epochs",
    "Phase-2 (chain model) training epochs completed"};
inline constexpr MetricDef kPhase2EpochLoss{
    "desh_phase2_epoch_loss", "gauge", "loss",
    "Mean phase-2 batch loss of the most recent epoch"};

// --- skip-gram embedding pre-training ------------------------------------
inline constexpr MetricDef kSkipgramPairsTotal{
    "desh_skipgram_pairs_total", "counter", "pairs",
    "(target, context) pairs processed by SkipGram::train"};
inline constexpr MetricDef kSkipgramPositionsTotal{
    "desh_skipgram_positions_total", "counter", "positions",
    "Corpus positions walked by SkipGram::train (epochs x tokens)"};
inline constexpr MetricDef kSkipgramPairsPerSecond{
    "desh_skipgram_pairs_per_second", "gauge", "pairs/s",
    "Throughput of the most recent SkipGram::train call"};

// --- streaming monitor (the resident deployment surface) -----------------
inline constexpr MetricDef kMonitorRecordsTotal{
    "desh_monitor_records_total", "counter", "records",
    "Log records ingested by StreamingMonitor (observe + observe_batch)"};
inline constexpr MetricDef kMonitorAlertsTotal{
    "desh_monitor_alerts_total", "counter", "alerts",
    "Failure alerts raised by StreamingMonitor"};
inline constexpr MetricDef kMonitorNodesTracked{
    "desh_monitor_nodes_tracked", "gauge", "nodes",
    "Nodes with live window state in the monitor"};
inline constexpr MetricDef kMonitorWindowDepth{
    "desh_monitor_window_depth", "gauge", "events",
    "Anomalous-event window depth of the most recently advanced node"};
inline constexpr MetricDef kMonitorObserveSeconds{
    "desh_monitor_observe_seconds", "histogram", "seconds",
    "End-to-end latency of one observe() call (parse + encode + match)"};
inline constexpr MetricDef kMonitorBatchSeconds{
    "desh_monitor_batch_seconds", "histogram", "seconds",
    "End-to-end latency of one observe_batch() call"};

// --- phase-3 scoring (pipeline predict/redecide) --------------------------
inline constexpr MetricDef kPredictCandidatesTotal{
    "desh_predict_candidates_total", "counter", "candidates",
    "Candidate sequences scored by the phase-3 predictor"};
inline constexpr MetricDef kPredictScoreSeconds{
    "desh_predict_score_seconds", "histogram", "seconds",
    "Wall time of one parallel candidate-scoring pass"};

// --- worker pool ----------------------------------------------------------
inline constexpr MetricDef kPoolWorkers{
    "desh_pool_workers", "gauge", "threads",
    "Worker count of the most recently constructed ThreadPool"};
inline constexpr MetricDef kPoolParallelJobsTotal{
    "desh_pool_parallel_jobs_total", "counter", "jobs",
    "parallel_for jobs executed across all pools"};
inline constexpr MetricDef kPoolParallelForSeconds{
    "desh_pool_parallel_for_seconds", "histogram", "seconds",
    "Wall time of one parallel_for call (all items, caller included)"};
inline constexpr MetricDef kPoolTasksTotal{
    "desh_pool_tasks_total", "counter", "tasks",
    "submit() tasks executed across all pools"};
inline constexpr MetricDef kPoolTaskSeconds{
    "desh_pool_task_seconds", "histogram", "seconds",
    "Execution time of one submit() task"};
inline constexpr MetricDef kPoolQueueWaitSeconds{
    "desh_pool_queue_wait_seconds", "histogram", "seconds",
    "Time a submit() task spent queued before a worker picked it up"};
inline constexpr MetricDef kPoolWorkerBusySeconds{
    "desh_pool_worker_busy_seconds", "gauge", "seconds",
    "Cumulative busy time per worker slot (label: worker index; "
    "utilization = busy / (wall x workers))"};

// --- serving engine (desh::serve::InferenceServer) ------------------------
inline constexpr MetricDef kServeAdmittedTotal{
    "desh_serve_admitted_total", "counter", "records",
    "Records accepted into the InferenceServer ingest queue"};
inline constexpr MetricDef kServeRejectedTotal{
    "desh_serve_rejected_total", "counter", "records",
    "submit() calls refused with Admission::kQueueFull (backpressure)"};
inline constexpr MetricDef kServeShedTotal{
    "desh_serve_shed_total", "counter", "records",
    "Queued records dropped by the overload shed policy after admission"};
inline constexpr MetricDef kServeQueueDepth{
    "desh_serve_queue_depth", "gauge", "records",
    "Ingest queue depth sampled at each micro-batch pump"};
inline constexpr MetricDef kServeBatchWidth{
    "desh_serve_batch_width", "histogram", "records",
    "Records coalesced into one micro-batch (observe_batch pass)"};
inline constexpr MetricDef kServeBatchesTotal{
    "desh_serve_batches_total", "counter", "batches",
    "Micro-batches pumped through the monitor by the collector"};
inline constexpr MetricDef kServeReloadsTotal{
    "desh_serve_reloads_total", "counter", "reloads",
    "Hot model reloads installed via swap_model()"};
inline constexpr MetricDef kServeAlertLatencySeconds{
    "desh_serve_alert_latency_seconds", "histogram", "seconds",
    "Wall time from a record's admission to the alert it triggered"};

// --- durability (desh::wal via serve integration) -------------------------
inline constexpr MetricDef kWalAppendedTotal{
    "desh_wal_appended_total", "counter", "records",
    "Event records staged into the write-ahead log"};
inline constexpr MetricDef kWalFlushesTotal{
    "desh_wal_flushes_total", "counter", "flushes",
    "Group commits: pending WAL records handed to the kernel in one write"};
inline constexpr MetricDef kWalFlushSeconds{
    "desh_wal_flush_seconds", "histogram", "seconds",
    "Wall time of one WAL group-commit flush"};
inline constexpr MetricDef kWalCommittedSeq{
    "desh_wal_committed_seq", "gauge", "seq",
    "Highest WAL sequence number guaranteed durable (flushed to the log)"};
inline constexpr MetricDef kWalCheckpointsTotal{
    "desh_wal_checkpoints_total", "counter", "checkpoints",
    "Fuzzy checkpoints written (periodic + explicit wal_checkpoint_now)"};
inline constexpr MetricDef kWalCheckpointSeconds{
    "desh_wal_checkpoint_seconds", "histogram", "seconds",
    "Wall time of one checkpoint (serialize + write + rename + GC)"};
inline constexpr MetricDef kWalReplayedRecordsTotal{
    "desh_wal_replayed_records_total", "counter", "records",
    "Log-tail records replayed through the monitor during restore"};
inline constexpr MetricDef kWalRecoveriesTotal{
    "desh_wal_recoveries_total", "counter", "recoveries",
    "Server startups that restored state from an existing WAL directory"};
inline constexpr MetricDef kWalTornFramesTotal{
    "desh_wal_torn_frames_total", "counter", "events",
    "Corruption events (torn/truncated/bit-rotted tails, stale segments) "
    "detected and discarded during recovery"};
inline constexpr MetricDef kWalIoErrorsTotal{
    "desh_wal_io_errors_total", "counter", "errors",
    "WAL write-path I/O failures (serving continued without durability "
    "for the affected records)"};

// --- online adaptation (desh::adapt) --------------------------------------
inline constexpr MetricDef kAdaptRecordsTappedTotal{
    "desh_adapt_records_tapped_total", "counter", "records",
    "Serve-path records consumed by the AdaptController tap"};
inline constexpr MetricDef kAdaptOovRate{
    "desh_adapt_oov_rate", "gauge", "fraction",
    "Sliding-window fraction of templates the champion vocabulary encodes "
    "to <unk>"};
inline constexpr MetricDef kAdaptNoveltyRate{
    "desh_adapt_novelty_rate", "gauge", "fraction",
    "Sliding-window fraction of anomalous phrases absent from every "
    "trained failure chain"};
inline constexpr MetricDef kAdaptCalibrationError{
    "desh_adapt_calibration_error", "gauge", "fraction",
    "Sliding-window mean relative lead-time error of resolved alerts "
    "(expired alerts count as 1.0)"};
inline constexpr MetricDef kAdaptDriftTriggersTotal{
    "desh_adapt_drift_triggers_total", "counter", "triggers",
    "Drift latches raised by the DriftDetector (post-hysteresis)"};
inline constexpr MetricDef kAdaptReplayDepth{
    "desh_adapt_replay_depth", "gauge", "records",
    "Current occupancy of the bounded replay buffer"};
inline constexpr MetricDef kAdaptRetrainsTotal{
    "desh_adapt_retrains_total", "counter", "retrains",
    "Challenger retrains launched (drift-triggered, scheduled or forced)"};
inline constexpr MetricDef kAdaptRetrainFailuresTotal{
    "desh_adapt_retrain_failures_total", "counter", "retrains",
    "Challenger retrains abandoned (e.g. no failure chains in the replay "
    "buffer)"};
inline constexpr MetricDef kAdaptRetrainSeconds{
    "desh_adapt_retrain_seconds", "histogram", "seconds",
    "Wall time of one challenger retrain (fit + shadow evaluation)"};
inline constexpr MetricDef kAdaptShadowEvalsTotal{
    "desh_adapt_shadow_evals_total", "counter", "evaluations",
    "Champion-vs-challenger shadow evaluations on the held-out window"};
inline constexpr MetricDef kAdaptPromotionsTotal{
    "desh_adapt_promotions_total", "counter", "promotions",
    "Challengers that beat the champion and were swapped into serving"};
inline constexpr MetricDef kAdaptRejectionsTotal{
    "desh_adapt_rejections_total", "counter", "rejections",
    "Challengers that lost the shadow evaluation and were discarded"};
inline constexpr MetricDef kAdaptRollbacksTotal{
    "desh_adapt_rollbacks_total", "counter", "rollbacks",
    "Post-swap probation regressions rolled back to the previous version"};
inline constexpr MetricDef kAdaptRegistrySize{
    "desh_adapt_registry_size", "gauge", "versions",
    "Pipeline snapshots currently retained by the ModelRegistry"};
inline constexpr MetricDef kAdaptChampionVersion{
    "desh_adapt_champion_version", "gauge", "version",
    "Registry version number of the pipeline currently serving"};

// --- fleet serving (desh::fleet) ------------------------------------------
inline constexpr MetricDef kFleetShardsActive{
    "desh_fleet_shards_active", "gauge", "shards",
    "Shards currently in the routing ring (total minus drained)"};
inline constexpr MetricDef kFleetRoutedTotal{
    "desh_fleet_routed_total", "counter", "records",
    "Records routed to a shard by FleetController::submit"};
inline constexpr MetricDef kFleetReroutedTotal{
    "desh_fleet_rerouted_total", "counter", "records",
    "Routed records whose ring-home shard was drained (failover placement "
    "to a clockwise neighbor)"};
inline constexpr MetricDef kFleetDrainsTotal{
    "desh_fleet_drains_total", "counter", "drains",
    "Shards pulled out of the ring and drained via drain_shard()"};
inline constexpr MetricDef kFleetRestartsTotal{
    "desh_fleet_restarts_total", "counter", "restarts",
    "Shard servers recreated over their WAL directory via restart_shard()"};
inline constexpr MetricDef kFleetReloadsTotal{
    "desh_fleet_reloads_total", "counter", "reloads",
    "Rolling model reloads completed across every shard"};
inline constexpr MetricDef kFleetReloadRollbacksTotal{
    "desh_fleet_reload_rollbacks_total", "counter", "rollbacks",
    "Rolling reloads aborted by a probation failure and rolled back to the "
    "previous model"};
inline constexpr MetricDef kFleetSubmitSeconds{
    "desh_fleet_submit_seconds", "histogram", "seconds",
    "Wall time of one routed submit (route + shard queue admission)"};
inline constexpr MetricDef kFleetAtRiskNodes{
    "desh_fleet_at_risk_nodes", "gauge", "nodes",
    "Nodes with an unexpired failure alert fleet-wide, sampled at each "
    "health() call"};

// --- model compiler (desh::compile) ---------------------------------------
inline constexpr MetricDef kCompileProgramsTotal{
    "desh_compile_programs_total", "counter", "programs",
    "Op programs emitted by the model compiler (compile_backend calls that "
    "lowered a model)"};
inline constexpr MetricDef kCompileQuantizedTotal{
    "desh_compile_quantized_total", "counter", "programs",
    "Emitted programs that applied int8/int16 weight quantization"};
inline constexpr MetricDef kCompileEmitSeconds{
    "desh_compile_emit_seconds", "histogram", "seconds",
    "Wall time of one emit_program lowering (weight re-pack + quantize + "
    "op emission)"};
inline constexpr MetricDef kCompileCalibrationSeconds{
    "desh_compile_calibration_seconds", "histogram", "seconds",
    "Wall time of one quantization calibration pass (reference vs quantized "
    "replay over the calibration sequences)"};
inline constexpr MetricDef kCompileCalibrationDelta{
    "desh_compile_calibration_delta", "gauge", "score",
    "Mean absolute per-step score delta (quantized vs reference) measured "
    "by the most recent calibration pass"};
inline constexpr MetricDef kCompileCalibrationRejectsTotal{
    "desh_compile_calibration_rejects_total", "counter", "programs",
    "Quantized programs rejected by the accuracy-delta gate (fell back to "
    "fp32 compiled or failed compilation)"};
inline constexpr MetricDef kCompileProgramOps{
    "desh_compile_program_ops", "gauge", "ops",
    "Op count (reset + step + head lists) of the most recently emitted "
    "program"};
inline constexpr MetricDef kCompilePackedBytes{
    "desh_compile_packed_bytes", "gauge", "bytes",
    "Packed parameter bytes (weights + scales + biases + embedding) of the "
    "most recently emitted program"};

// --- raw-log ingestion (desh::ingest) -------------------------------------
inline constexpr MetricDef kIngestBytesTotal{
    "desh_ingest_bytes_total", "counter", "bytes",
    "Raw console-log bytes fed through the ingest line splitter"};
inline constexpr MetricDef kIngestLinesTotal{
    "desh_ingest_lines_total", "counter", "lines",
    "Complete lines produced by the splitter (parseable or not)"};
inline constexpr MetricDef kIngestRecordsTotal{
    "desh_ingest_records_total", "counter", "records",
    "Lines that parsed into a syslog record and were offered to the target"};
inline constexpr MetricDef kIngestTornLinesTotal{
    "desh_ingest_torn_lines_total", "counter", "lines",
    "Lines reassembled from the carry buffer after a chunk boundary tore "
    "them"};
inline constexpr MetricDef kIngestUnparseableLinesTotal{
    "desh_ingest_unparseable_lines_total", "counter", "lines",
    "Complete lines the syslog field parser rejected (continuation lines, "
    "corrupt input)"};
inline constexpr MetricDef kIngestOversizeLinesTotal{
    "desh_ingest_oversize_lines_total", "counter", "lines",
    "Lines dropped whole for exceeding ingest.max_line_bytes"};
inline constexpr MetricDef kIngestNewTemplatesTotal{
    "desh_ingest_new_templates_total", "counter", "templates",
    "Novel templates the online Drain tracker issued a fresh id for"};
inline constexpr MetricDef kIngestAdmissionRetriesTotal{
    "desh_ingest_admission_retries_total", "counter", "retries",
    "submit() attempts repeated after Admission::kQueueFull backpressure"};
inline constexpr MetricDef kIngestBytesPerSecond{
    "desh_ingest_bytes_per_second", "gauge", "bytes/s",
    "Raw-text throughput of the most recent IngestPump feed call"};
inline constexpr MetricDef kIngestFeedSeconds{
    "desh_ingest_feed_seconds", "histogram", "seconds",
    "Wall time of one feed() chunk pass (split + parse + track + submit)"};

/// Everything above, for exhaustive iteration (docs test, exporters demo).
inline constexpr const MetricDef* kCatalog[] = {
    &kTrainStepsTotal,      &kTrainGradClipTotal,  &kTrainStepSeconds,
    &kTrainGradNorm,        &kPhase1EpochsTotal,   &kPhase1EpochLoss,
    &kPhase2EpochsTotal,    &kPhase2EpochLoss,     &kSkipgramPairsTotal,
    &kSkipgramPositionsTotal, &kSkipgramPairsPerSecond,
    &kMonitorRecordsTotal,  &kMonitorAlertsTotal,  &kMonitorNodesTracked,
    &kMonitorWindowDepth,   &kMonitorObserveSeconds, &kMonitorBatchSeconds,
    &kPredictCandidatesTotal, &kPredictScoreSeconds, &kPoolWorkers,
    &kPoolParallelJobsTotal, &kPoolParallelForSeconds, &kPoolTasksTotal,
    &kPoolTaskSeconds,      &kPoolQueueWaitSeconds, &kPoolWorkerBusySeconds,
    &kServeAdmittedTotal,   &kServeRejectedTotal,  &kServeShedTotal,
    &kServeQueueDepth,      &kServeBatchWidth,     &kServeBatchesTotal,
    &kServeReloadsTotal,    &kServeAlertLatencySeconds,
    &kWalAppendedTotal,     &kWalFlushesTotal,     &kWalFlushSeconds,
    &kWalCommittedSeq,      &kWalCheckpointsTotal, &kWalCheckpointSeconds,
    &kWalReplayedRecordsTotal, &kWalRecoveriesTotal, &kWalTornFramesTotal,
    &kWalIoErrorsTotal,
    &kAdaptRecordsTappedTotal, &kAdaptOovRate,      &kAdaptNoveltyRate,
    &kAdaptCalibrationError, &kAdaptDriftTriggersTotal, &kAdaptReplayDepth,
    &kAdaptRetrainsTotal,   &kAdaptRetrainFailuresTotal,
    &kAdaptRetrainSeconds,  &kAdaptShadowEvalsTotal, &kAdaptPromotionsTotal,
    &kAdaptRejectionsTotal, &kAdaptRollbacksTotal, &kAdaptRegistrySize,
    &kAdaptChampionVersion,
    &kFleetShardsActive,    &kFleetRoutedTotal,    &kFleetReroutedTotal,
    &kFleetDrainsTotal,     &kFleetRestartsTotal,  &kFleetReloadsTotal,
    &kFleetReloadRollbacksTotal, &kFleetSubmitSeconds, &kFleetAtRiskNodes,
    &kCompileProgramsTotal, &kCompileQuantizedTotal, &kCompileEmitSeconds,
    &kCompileCalibrationSeconds, &kCompileCalibrationDelta,
    &kCompileCalibrationRejectsTotal, &kCompileProgramOps,
    &kCompilePackedBytes,
    &kIngestBytesTotal,     &kIngestLinesTotal,    &kIngestRecordsTotal,
    &kIngestTornLinesTotal, &kIngestUnparseableLinesTotal,
    &kIngestOversizeLinesTotal, &kIngestNewTemplatesTotal,
    &kIngestAdmissionRetriesTotal, &kIngestBytesPerSecond,
    &kIngestFeedSeconds,
};

}  // namespace desh::obs
