#include "obs/export.hpp"

#if DESH_OBS_ENABLED

#include <chrono>
#include <cstdio>
#include <fstream>

namespace desh::obs {

namespace {

/// Shortest-faithful double formatting ("%.9g" strips trailing noise while
/// round-tripping every value the registry produces) — keeps the golden
/// exporter tests byte-stable across platforms.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// `{label="value"}` or `{label="value",extra}` rendering for prometheus.
std::string promql_labels(const MetricSnapshot& m,
                          const std::string& extra = {}) {
  std::string inner;
  if (!m.label_key.empty())
    inner = m.label_key + "=\"" + m.label_value + "\"";
  if (!extra.empty()) {
    if (!inner.empty()) inner += ",";
    inner += extra;
  }
  return inner.empty() ? std::string() : "{" + inner + "}";
}

}  // namespace

std::string to_json(const RegistrySnapshot& snapshot) {
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(m.name) + "\"";
    if (!m.label_key.empty())
      out += ", \"" + json_escape(m.label_key) + "\": \"" +
             json_escape(m.label_value) + "\"";
    out += ", \"kind\": \"" + m.kind + "\", \"unit\": \"" +
           json_escape(m.unit) + "\"";
    if (m.kind == "histogram") {
      out += ", \"buckets\": [";
      for (std::size_t b = 0; b < m.bucket_counts.size(); ++b) {
        if (b > 0) out += ", ";
        const std::string le =
            b < m.bounds.size() ? fmt(m.bounds[b]) : "\"+Inf\"";
        out += "{\"le\": " + le + ", \"count\": " +
               std::to_string(m.bucket_counts[b]) + "}";
      }
      out += "], \"sum\": " + fmt(m.sum) +
             ", \"count\": " + std::to_string(m.count);
    } else if (m.kind == "counter") {
      out += ", \"value\": " + std::to_string(m.count);
    } else {
      out += ", \"value\": " + fmt(m.value);
    }
    out += "}";
  }
  out += "\n  ],\n  \"spans\": [";
  first = true;
  for (const auto& [path, stats] : snapshot.spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"path\": \"" + json_escape(path) +
           "\", \"count\": " + std::to_string(stats.count) +
           ", \"total_seconds\": " + fmt(stats.total_seconds) +
           ", \"min_seconds\": " + fmt(stats.min_seconds) +
           ", \"max_seconds\": " + fmt(stats.max_seconds) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string to_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  std::string last_family;  // HELP/TYPE once per family, not per label
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.name != last_family) {
      out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " " + m.kind + "\n";
      last_family = m.name;
    }
    if (m.kind == "histogram") {
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < m.bucket_counts.size(); ++b) {
        cumulative += m.bucket_counts[b];
        const std::string le =
            b < m.bounds.size() ? fmt(m.bounds[b]) : "+Inf";
        out += m.name + "_bucket" +
               promql_labels(m, "le=\"" + le + "\"") + " " +
               std::to_string(cumulative) + "\n";
      }
      out += m.name + "_sum" + promql_labels(m) + " " + fmt(m.sum) + "\n";
      out += m.name + "_count" + promql_labels(m) + " " +
             std::to_string(m.count) + "\n";
    } else if (m.kind == "counter") {
      out += m.name + promql_labels(m) + " " + std::to_string(m.count) + "\n";
    } else {
      out += m.name + promql_labels(m) + " " + fmt(m.value) + "\n";
    }
  }
  if (!snapshot.spans.empty()) {
    out += "# HELP desh_span_seconds TraceSpan wall time by call path\n";
    out += "# TYPE desh_span_seconds summary\n";
    for (const auto& [path, stats] : snapshot.spans) {
      const std::string label = "{span=\"" + path + "\"}";
      out += "desh_span_seconds_count" + label + " " +
             std::to_string(stats.count) + "\n";
      out += "desh_span_seconds_sum" + label + " " +
             fmt(stats.total_seconds) + "\n";
      out += "desh_span_seconds_min" + label + " " + fmt(stats.min_seconds) +
             "\n";
      out += "desh_span_seconds_max" + label + " " + fmt(stats.max_seconds) +
             "\n";
    }
  }
  return out;
}

double approx_quantile(const MetricSnapshot& histogram, double q) {
  if (histogram.count == 0) return 0;
  const double rank = q * static_cast<double>(histogram.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < histogram.bucket_counts.size(); ++b) {
    cumulative += histogram.bucket_counts[b];
    if (static_cast<double>(cumulative) >= rank)
      return b < histogram.bounds.size()
                 ? histogram.bounds[b]
                 : (histogram.bounds.empty() ? 0 : histogram.bounds.back());
  }
  return histogram.bounds.empty() ? 0 : histogram.bounds.back();
}

FileSink::FileSink(std::string path, double interval_seconds,
                   MetricsRegistry& registry)
    : path_(std::move(path)),
      interval_seconds_(interval_seconds > 0 ? interval_seconds : 10.0),
      registry_(registry) {
  thread_ = std::thread([this] {
    util::UniqueLock lock(mu_);
    // Inline predicate loop (not a wait_for predicate lambda) so the
    // thread-safety analysis sees stopping_ read under mu_.
    while (!stopping_) {
      const bool notified = cv_.wait_for(
          lock, std::chrono::duration<double>(interval_seconds_));
      if (stopping_) break;
      if (notified) continue;  // spurious wake: re-check without flushing
      lock.unlock();
      flush_now();
      lock.lock();
    }
  });
}

FileSink::~FileSink() {
  {
    util::LockGuard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  flush_now();  // final snapshot so short-lived processes still report
}

void FileSink::flush_now() {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;  // sink is best-effort; never throw from telemetry
    out << to_json(registry_.snapshot());
  }
  std::rename(tmp.c_str(), path_.c_str());
  // ordering: relaxed — progress statistic only; the snapshot file itself
  // is published by the rename above (see flush_count()).
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace desh::obs

#endif  // DESH_OBS_ENABLED
