// Exporters for MetricsRegistry snapshots: a JSON document (machine
// consumption, periodic file flush), the Prometheus text exposition format
// (scraping a resident monitor), and a background flush-to-file sink.
// Output is deterministic for a given snapshot — metrics sorted by
// (name, label), fixed number formatting — so golden tests can compare
// exact strings. Sample output for both formats is in OBSERVABILITY.md.
#pragma once

#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace desh::obs {

#if DESH_OBS_ENABLED

/// Renders a snapshot as one JSON document (keys: "metrics", "spans").
std::string to_json(const RegistrySnapshot& snapshot);

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): # HELP / # TYPE headers, cumulative `le` buckets, spans as
/// desh_span_seconds_* series labeled by path.
std::string to_prometheus(const RegistrySnapshot& snapshot);

/// Approximate quantile (q in [0,1]) of a histogram snapshot: the upper
/// bound of the bucket holding the q-th observation. 0 when empty.
double approx_quantile(const MetricSnapshot& histogram, double q);

/// Background sink: writes to_json(registry.snapshot()) to `path`
/// (atomically, via rename of a .tmp) every `interval_seconds`, plus a
/// final flush on destruction. Intended for a resident monitor whose stats
/// are tailed by an external collector.
class FileSink {
 public:
  FileSink(std::string path, double interval_seconds,
           MetricsRegistry& registry = MetricsRegistry::instance());
  ~FileSink();

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  /// Synchronous flush (also what the background thread calls).
  void flush_now();
  std::uint64_t flush_count() const {
    // ordering: relaxed — a progress statistic for tests/operators; the
    // flushed file itself is published by the rename syscall, not this
    // counter.
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  std::string path_;
  double interval_seconds_;
  MetricsRegistry& registry_;
  std::atomic<std::uint64_t> flushes_{0};
  util::Mutex mu_;
  util::CondVar cv_;
  bool stopping_ DESH_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

#else  // !DESH_OBS_ENABLED

inline std::string to_json(const RegistrySnapshot&) { return "{}"; }
inline std::string to_prometheus(const RegistrySnapshot&) { return ""; }
inline double approx_quantile(const MetricSnapshot&, double) { return 0; }

class FileSink {
 public:
  FileSink(std::string, double,
           MetricsRegistry& = MetricsRegistry::instance()) {}
  void flush_now() {}
  std::uint64_t flush_count() const { return 0; }
};

#endif  // DESH_OBS_ENABLED

}  // namespace desh::obs
