#include "obs/metrics.hpp"

#if DESH_OBS_ENABLED

#include <algorithm>

#include "obs/export.hpp"

namespace desh::obs {

namespace {
std::atomic<bool> g_enabled{true};
util::Mutex g_sink_mu;
std::unique_ptr<FileSink> g_sink DESH_GUARDED_BY(g_sink_mu);
}  // namespace

bool enabled() {
  // ordering: relaxed — the master switch is advisory; a probe racing a
  // configure() may record (or skip) one extra sample, which telemetry
  // tolerates by design.
  return g_enabled.load(std::memory_order_relaxed);
}

void configure(const DeshObsConfig& config) {
  // ordering: relaxed — see enabled(); the sink handoff below is ordered by
  // g_sink_mu, not by this flag.
  g_enabled.store(config.enabled, std::memory_order_relaxed);
  util::LockGuard lock(g_sink_mu);
  // Stop (and final-flush) any previous sink first.
  // desh-analyze: allow(blocking-under-lock) configure is a rare operator
  // action; the join + flush must finish before a replacement sink starts
  g_sink.reset();
  if (!config.flush_path.empty())
    // desh-analyze: allow(blocking-under-lock) first flush happens in the
    // ctor so a bad path fails loudly at configure time, not later
    g_sink = std::make_unique<FileSink>(config.flush_path,
                                        config.flush_interval_seconds);
}

namespace detail {
std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  // ordering: relaxed — a round-robin ticket; two threads sharing a slot is
  // already allowed (sharding is a contention optimisation, not a partition).
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}
}  // namespace detail

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  for (Shard& s : shards_) {
    s.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) s.buckets[b] = 0;
  }
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& s = shards_[detail::thread_shard()];
  // ordering: relaxed — bucket/count/sum are three independent statistics; a
  // concurrent scrape may see count ahead of sum (or vice versa), which the
  // snapshot contract allows (estimates, not a transaction). Upgrading the
  // trio to release/acquire would still not make them atomic together.
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  // ordering: relaxed — scrape path; see observe() for why the per-shard
  // trio is only eventually consistent.
  for (const Shard& s : shards_)
    for (std::size_t b = 0; b < out.size(); ++b)
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  // ordering: relaxed — scrape path, estimate by contract.
  for (const Shard& s : shards_)
    total += s.count.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0;
  // ordering: relaxed — scrape path, estimate by contract.
  for (const Shard& s : shards_)
    total += s.sum.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  // ordering: relaxed — reset is test-harness-only (see Counter::reset).
  for (Shard& s : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b)
      s.buckets[b].store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> latency_buckets() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 0.1,    0.25, 0.5,  1.0,    2.5,  5.0,  10.0,
          25.0, 50.0,   100.0};
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const MetricDef& def, std::string_view kind, std::string_view label_key,
    std::string_view label_value) {
  // The caller holds mu_.
  std::string key = std::string(def.name) + '\0' + std::string(label_value);
  auto [it, inserted] = entries_.try_emplace(std::move(key));
  Entry& entry = it->second;
  if (inserted) {
    entry.def = def;
    entry.label_key = std::string(label_key);
    entry.label_value = std::string(label_value);
  }
  (void)kind;
  return entry;
}

Counter& MetricsRegistry::counter(const MetricDef& def,
                                  std::string_view label_key,
                                  std::string_view label_value) {
  util::LockGuard lock(mu_);
  Entry& entry = find_or_create(def, "counter", label_key, label_value);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const MetricDef& def, std::string_view label_key,
                              std::string_view label_value) {
  util::LockGuard lock(mu_);
  Entry& entry = find_or_create(def, "gauge", label_key, label_value);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const MetricDef& def,
                                      std::vector<double> bounds,
                                      std::string_view label_key,
                                      std::string_view label_value) {
  util::LockGuard lock(mu_);
  Entry& entry = find_or_create(def, "histogram", label_key, label_value);
  if (!entry.histogram)
    entry.histogram = std::make_unique<Histogram>(
        bounds.empty() ? latency_buckets() : std::move(bounds));
  return *entry.histogram;
}

void MetricsRegistry::record_span(const std::string& path, double seconds) {
  if (!enabled()) return;
  util::LockGuard lock(mu_);
  SpanStats& stats = spans_[path];
  if (stats.count == 0 || seconds < stats.min_seconds)
    stats.min_seconds = seconds;
  if (stats.count == 0 || seconds > stats.max_seconds)
    stats.max_seconds = seconds;
  ++stats.count;
  stats.total_seconds += seconds;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot out;
  util::LockGuard lock(mu_);
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot m;
    m.name = entry.def.name;
    m.label_key = entry.label_key;
    m.label_value = entry.label_value;
    m.kind = entry.def.kind;
    m.unit = entry.def.unit;
    m.help = entry.def.help;
    if (entry.counter) {
      m.value = static_cast<double>(entry.counter->value());
      m.count = entry.counter->value();
    } else if (entry.gauge) {
      m.value = entry.gauge->value();
    } else if (entry.histogram) {
      m.bounds = entry.histogram->bounds();
      m.bucket_counts = entry.histogram->bucket_counts();
      m.count = entry.histogram->count();
      m.sum = entry.histogram->sum();
    }
    out.metrics.push_back(std::move(m));
  }
  // std::map iteration is already (name, label) ordered via the key.
  for (const auto& [path, stats] : spans_) out.spans.emplace_back(path, stats);
  return out;
}

void MetricsRegistry::reset() {
  util::LockGuard lock(mu_);
  for (auto& [key, entry] : entries_) {
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
  spans_.clear();
}

}  // namespace desh::obs

#endif  // DESH_OBS_ENABLED
