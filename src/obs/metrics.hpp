// Runtime telemetry for the resident Desh monitor (counters, gauges,
// histograms) — distinct from the *evaluation* metrics in core/metrics.*,
// which score predictions against ground truth. These metrics describe the
// process itself: how many records flowed, how long steps took, how busy the
// worker pool is. See OBSERVABILITY.md for the full taxonomy.
//
// Design constraints:
//  - zero dependencies beyond the standard library (util links *against*
//    this library, not the other way around);
//  - lock-free fast path: counters and histograms write to per-thread
//    shards (cacheline-padded relaxed atomics) that are only summed on
//    scrape, so the hot paths never contend on a mutex;
//  - observation never feeds back into computation: telemetry cannot change
//    training numerics, so the PR-1 parallel-equivalence guarantees hold
//    with telemetry on or off;
//  - compile-out switch: building with -DDESH_OBS=OFF (CMake) defines
//    DESH_OBS_ENABLED=0 and every type below becomes an empty inline no-op,
//    so instrumented call sites cost nothing, not even a branch;
//  - runtime switch: obs::configure({.enabled = false}) turns recording off
//    behind a single relaxed atomic-bool load per call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

// Header-only, std-only — adds no link dependency, so the "obs sits at the
// bottom of the stack" layering survives (util links against obs, never the
// reverse).
#include "util/sync.hpp"

#ifndef DESH_OBS_ENABLED
#define DESH_OBS_ENABLED 1
#endif

namespace desh::obs {

/// True when the library was built with telemetry compiled in.
constexpr bool compiled_in() { return DESH_OBS_ENABLED != 0; }

/// Static description of one metric family. Every metric the code emits is
/// declared once in catalog.hpp; the exporter test cross-checks the catalog
/// against OBSERVABILITY.md so the documentation cannot rot silently.
struct MetricDef {
  const char* name;  // prometheus-style snake_case family name
  const char* kind;  // "counter" | "gauge" | "histogram"
  const char* unit;  // "1", "seconds", "records", ...
  const char* help;  // one-line human description
};

/// Process-wide runtime configuration. `flush_path` non-empty starts a
/// background sink writing a JSON snapshot every `flush_interval_seconds`.
struct DeshObsConfig {
  bool enabled = true;
  std::string flush_path;
  double flush_interval_seconds = 10.0;
};

#if DESH_OBS_ENABLED

/// Applies `config` process-wide (runtime on/off + optional file sink).
void configure(const DeshObsConfig& config);

/// Runtime master switch (relaxed load; true by default).
bool enabled();

namespace detail {
inline constexpr std::size_t kShards = 8;

/// Stable per-thread shard slot in [0, kShards). Threads are assigned
/// round-robin on first use; two threads may share a slot (the atomics make
/// that safe — sharding is a contention optimisation, not a partition).
std::size_t thread_shard();

struct alignas(64) PaddedCount {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    // ordering: relaxed — a statistics increment publishes nothing; readers
    // only need eventual per-shard totals, never cross-thread ordering.
    shards_[detail::thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Sum over shards. Concurrent snapshots are monotonic (each shard is an
  /// atomic that only grows) but may trail in-flight increments.
  std::uint64_t value() const {
    std::uint64_t total = 0;
    // ordering: relaxed — the sum is a point-in-time estimate by contract
    // (monotonic but trailing); acquire would buy nothing because no
    // non-atomic data is published through the counter.
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    // ordering: relaxed — reset is test-harness-only and never runs
    // concurrently with a reader that needs a coherent total.
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedCount shards_[detail::kShards];
};

/// Last-writer-wins floating-point level (also supports add() for
/// accumulating quantities like busy-seconds).
class Gauge {
 public:
  // A gauge is a single atomic level with no dependent data:
  // last-writer-wins is the documented semantics and no reader infers
  // anything from the value but the value itself, so every access below is
  // relaxed.
  void set(double v) {
    if (!enabled()) return;
    // ordering: relaxed — see class comment.
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double d) {
    if (!enabled()) return;
    // ordering: relaxed — see class comment.
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  double value() const {
    // ordering: relaxed — see class comment.
    return value_.load(std::memory_order_relaxed);
  }
  void reset() {
    // ordering: relaxed — see class comment.
    value_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. A value lands in the first bucket whose upper
/// bound is >= value (prometheus `le` semantics); values above the last
/// bound land in the implicit +Inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds().size() + 1 entries, +Inf last).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  Shard shards_[detail::kShards];
};

/// Exponential latency ladder from 100us to ~100s — the default bounds for
/// every *_seconds histogram in the catalog.
std::vector<double> latency_buckets();

/// Aggregated statistics of one TraceSpan path (see trace.hpp).
struct SpanStats {
  std::uint64_t count = 0;
  double total_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
};

/// Point-in-time copy of one metric, for the exporters.
struct MetricSnapshot {
  std::string name;
  std::string label_key;    // empty = unlabeled
  std::string label_value;
  std::string kind;
  std::string unit;
  std::string help;
  double value = 0;                        // counter/gauge
  std::vector<double> bounds;              // histogram only
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0;
};

struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;              // sorted by (name, label)
  std::vector<std::pair<std::string, SpanStats>> spans;  // sorted by path
};

/// Registry of live metrics. Registration (slow path) takes a mutex and
/// returns a reference that stays valid for the registry's lifetime — call
/// sites cache it in a function-local static and never look it up again.
/// reset() zeroes values but never invalidates references.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const MetricDef& def, std::string_view label_key = {},
                   std::string_view label_value = {});
  Gauge& gauge(const MetricDef& def, std::string_view label_key = {},
               std::string_view label_value = {});
  /// Empty `bounds` means latency_buckets().
  Histogram& histogram(const MetricDef& def, std::vector<double> bounds = {},
                       std::string_view label_key = {},
                       std::string_view label_value = {});

  /// Called by TraceSpan on scope exit.
  void record_span(const std::string& path, double seconds);

  RegistrySnapshot snapshot() const;
  void reset();

 private:
  struct Entry {
    MetricDef def;
    std::string label_key, label_value;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(const MetricDef& def, std::string_view kind,
                        std::string_view label_key,
                        std::string_view label_value) DESH_REQUIRES(mu_);

  mutable util::Mutex mu_;
  // The registration/scrape slow paths lock; the returned Counter/Gauge/
  // Histogram references are internally atomic, so call sites never lock.
  std::map<std::string, Entry> entries_  // key: name + '\0' + label
      DESH_GUARDED_BY(mu_);
  std::map<std::string, SpanStats> spans_ DESH_GUARDED_BY(mu_);
};

#else  // !DESH_OBS_ENABLED — every type collapses to an inline no-op.

inline void configure(const DeshObsConfig&) {}
inline bool enabled() { return false; }

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(double) {}
  void add(double) {}
  double value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> = {}) {}
  void observe(double) {}
  const std::vector<double>& bounds() const {
    static const std::vector<double> empty;
    return empty;
  }
  std::vector<std::uint64_t> bucket_counts() const { return {}; }
  std::uint64_t count() const { return 0; }
  double sum() const { return 0; }
  void reset() {}
};

inline std::vector<double> latency_buckets() { return {}; }

struct SpanStats {
  std::uint64_t count = 0;
  double total_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
};

struct MetricSnapshot {
  std::string name, label_key, label_value, kind, unit, help;
  double value = 0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0;
};

struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;
  std::vector<std::pair<std::string, SpanStats>> spans;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance() {
    static MetricsRegistry r;
    return r;
  }
  Counter& counter(const MetricDef&, std::string_view = {},
                   std::string_view = {}) {
    static Counter c;
    return c;
  }
  Gauge& gauge(const MetricDef&, std::string_view = {},
               std::string_view = {}) {
    static Gauge g;
    return g;
  }
  Histogram& histogram(const MetricDef&, std::vector<double> = {},
                       std::string_view = {}, std::string_view = {}) {
    static Histogram h{std::vector<double>{}};
    return h;
  }
  void record_span(const std::string&, double) {}
  RegistrySnapshot snapshot() const { return {}; }
  void reset() {}
};

#endif  // DESH_OBS_ENABLED

/// Shorthand for MetricsRegistry::instance().
inline MetricsRegistry& registry() { return MetricsRegistry::instance(); }

}  // namespace desh::obs
