// Umbrella header for the desh::obs runtime telemetry subsystem:
// MetricsRegistry (metrics.hpp), the metric catalog (catalog.hpp), RAII
// TraceSpan scoped timers (trace.hpp) and the JSON/Prometheus/file-sink
// exporters (export.hpp). See OBSERVABILITY.md for the operator guide.
#pragma once

#include "obs/catalog.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
