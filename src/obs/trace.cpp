#include "obs/trace.hpp"

#if DESH_OBS_ENABLED

#include <chrono>

namespace desh::obs {

namespace {

thread_local TraceSpan* t_current = nullptr;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceSpan::TraceSpan(std::string_view name) : parent_(t_current) {
  path_ = parent_ ? parent_->path_ + "/" + std::string(name)
                  : std::string(name);
  // The nesting stack is always maintained (so children created after a
  // runtime re-enable still get correct paths); only timing is gated.
  start_seconds_ = enabled() ? now_seconds() : -1.0;
  t_current = this;
}

TraceSpan::~TraceSpan() {
  t_current = parent_;
  if (start_seconds_ < 0) return;
  MetricsRegistry::instance().record_span(path_,
                                          now_seconds() - start_seconds_);
}

std::string TraceSpan::current_path() {
  return t_current ? t_current->path_ : std::string();
}

}  // namespace desh::obs

#endif  // DESH_OBS_ENABLED
