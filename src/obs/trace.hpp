// RAII scoped timers with parent/child nesting, recorded into the global
// MetricsRegistry as per-path SpanStats (count / total / min / max).
//
// A span's path is its name appended to the enclosing span's path on the
// same thread ("pipeline.fit/phase1.fit/..."), so one aggregate per *call
// path* accumulates — cheap enough to leave on in production, structured
// enough to see where a fit() spent its time. Nesting is tracked with one
// thread_local pointer; when telemetry is compiled out the whole class is
// an empty inline no-op.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace desh::obs {

#if DESH_OBS_ENABLED

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Full path of this span ("parent/child/...").
  const std::string& path() const { return path_; }

  /// Path of the innermost live span on this thread ("" when none) —
  /// exposed for the nesting tests.
  static std::string current_path();

 private:
  TraceSpan* parent_;
  std::string path_;
  double start_seconds_;  // steady-clock seconds; negative when disabled
};

#else

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view) {}
  const std::string& path() const {
    static const std::string empty;
    return empty;
  }
  static std::string current_path() { return {}; }
};

#endif  // DESH_OBS_ENABLED

}  // namespace desh::obs
