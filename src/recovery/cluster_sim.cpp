#include "recovery/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <unordered_map>

#include "util/error.hpp"

namespace desh::recovery {

namespace {

enum class EventKind : std::uint8_t {
  kJobArrival,
  kJobFinish,
  kWarning,
  kFailure,
  kNodeRepair,
  kQuarantineEnd,
};

struct Event {
  double time = 0;
  EventKind kind = EventKind::kJobArrival;
  std::size_t job = 0;        // kJobArrival / kJobFinish
  std::size_t node = 0;       // kWarning / kFailure / repairs
  std::uint64_t generation = 0;  // invalidates stale kJobFinish events

  bool operator>(const Event& other) const { return time > other.time; }
};

struct Job {
  double submitted = 0;
  double total_work = 0;      // seconds of useful work still owed overall
  double remaining_work = 0;  // work left at (re)start
  std::size_t nodes_needed = 1;
  // Running state:
  bool running = false;
  double started = 0;
  std::vector<std::size_t> assigned;  // node indices
  std::uint64_t generation = 0;       // bumped whenever the finish moves
  double pause_penalty = 0;           // migration pauses accrued this run
  bool done = false;
};

enum class NodeMode : std::uint8_t { kFree, kBusy, kDown, kQuarantined };

struct Node {
  NodeMode mode = NodeMode::kFree;
  std::size_t job = 0;  // valid when kBusy
  // Set when a warning migrated work away; consumed by a matching failure.
  bool awaiting_failure = false;
};

}  // namespace

ClusterSimulator::ClusterSimulator(std::vector<logs::NodeId> nodes,
                                   WorkloadConfig workload)
    : nodes_(std::move(nodes)), workload_(workload) {
  util::require(nodes_.size() >= 4, "ClusterSimulator: need >= 4 nodes");
  util::require(workload_.max_job_nodes >= 1 &&
                    workload_.max_job_nodes < nodes_.size(),
                "ClusterSimulator: bad max_job_nodes");
}

std::vector<FailureWarning> oracle_warnings(
    const std::vector<NodeFailure>& failures, double lead_seconds) {
  std::vector<FailureWarning> out;
  out.reserve(failures.size());
  for (const NodeFailure& f : failures)
    out.push_back({f.node, std::max(0.0, f.fail_time - lead_seconds)});
  return out;
}

SimulationResult ClusterSimulator::run(const RecoveryPolicyConfig& policy,
                                       std::string policy_name,
                                       std::vector<NodeFailure> failures,
                                       std::vector<FailureWarning> warnings) const {
  SimulationResult result;
  result.policy_name = std::move(policy_name);

  std::unordered_map<logs::NodeId, std::size_t> node_index;
  for (std::size_t i = 0; i < nodes_.size(); ++i) node_index[nodes_[i]] = i;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::vector<Job> jobs;
  std::vector<Node> cluster(nodes_.size());
  std::deque<std::size_t> wait_queue;

  // The checkpoint model dilates runtime: executing W seconds of work takes
  // W * dilation wall-clock seconds, the surplus being checkpoint overhead.
  const double dilation =
      1.0 + policy.checkpoint_cost / policy.checkpoint_interval;

  // --- Workload generation (deterministic) ------------------------------
  {
    util::Rng rng(workload_.seed);
    double t = 0;
    while (true) {
      t += rng.exponential(workload_.job_arrival_rate_per_hour / 3600.0);
      if (t >= workload_.duration_seconds) break;
      Job job;
      job.submitted = t;
      job.total_work = std::max(60.0, rng.exponential(1.0 / workload_.mean_job_seconds));
      job.remaining_work = job.total_work;
      job.nodes_needed =
          1 + static_cast<std::size_t>(rng.uniform_index(workload_.max_job_nodes));
      jobs.push_back(job);
      events.push(Event{t, EventKind::kJobArrival, jobs.size() - 1, 0, 0});
    }
  }
  result.jobs_submitted = jobs.size();

  for (const NodeFailure& f : failures) {
    auto it = node_index.find(f.node);
    if (it == node_index.end()) continue;  // failure outside this cluster
    events.push(Event{f.fail_time, EventKind::kFailure, 0, it->second, 0});
  }
  if (policy.proactive) {
    for (const FailureWarning& w : warnings) {
      auto it = node_index.find(w.node);
      if (it == node_index.end()) continue;
      events.push(Event{w.warn_time, EventKind::kWarning, 0, it->second, 0});
    }
  }

  std::vector<std::size_t> free_nodes;
  for (std::size_t i = 0; i < cluster.size(); ++i) free_nodes.push_back(i);

  // --- Helpers -----------------------------------------------------------
  auto start_job = [&](std::size_t job_id, double now) {
    Job& job = jobs[job_id];
    job.running = true;
    job.started = now;
    job.pause_penalty = 0;
    job.assigned.clear();
    for (std::size_t i = 0; i < job.nodes_needed; ++i) {
      const std::size_t n = free_nodes.back();
      free_nodes.pop_back();
      cluster[n].mode = NodeMode::kBusy;
      cluster[n].job = job_id;
      job.assigned.push_back(n);
    }
    ++job.generation;
    events.push(Event{now + job.remaining_work * dilation,
                      EventKind::kJobFinish, job_id, 0, job.generation});
  };

  auto try_schedule = [&](double now) {
    while (!wait_queue.empty() &&
           free_nodes.size() >= jobs[wait_queue.front()].nodes_needed) {
      const std::size_t job_id = wait_queue.front();
      wait_queue.pop_front();
      start_job(job_id, now);
    }
  };

  auto release_nodes = [&](Job& job) {
    for (std::size_t n : job.assigned) {
      if (cluster[n].mode == NodeMode::kBusy) {
        cluster[n].mode = NodeMode::kFree;
        free_nodes.push_back(n);
      }
    }
    job.assigned.clear();
    job.running = false;
  };

  // Work a running job has *completed and checkpointed* by `now`.
  auto checkpointed_work = [&](const Job& job, double now) {
    const double executed =
        std::max(0.0, (now - job.started - job.pause_penalty) / dilation);
    const double saved = std::floor(executed / policy.checkpoint_interval) *
                         policy.checkpoint_interval;
    return std::min(saved, job.remaining_work);
  };

  // --- Event loop --------------------------------------------------------
  const double hard_stop = workload_.duration_seconds * 3.0;
  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    const double now = event.time;
    if (now > hard_stop) break;

    switch (event.kind) {
      case EventKind::kJobArrival: {
        wait_queue.push_back(event.job);
        try_schedule(now);
        break;
      }

      case EventKind::kJobFinish: {
        Job& job = jobs[event.job];
        if (!job.running || event.generation != job.generation) break;
        // Checkpoint overhead for the work executed this run.
        result.overhead_seconds +=
            job.remaining_work * (dilation - 1.0) *
            static_cast<double>(job.nodes_needed);
        job.done = true;
        release_nodes(job);
        ++result.jobs_completed;
        result.job_slowdowns.add((now - job.submitted) /
                                 std::max(60.0, job.total_work));
        try_schedule(now);
        break;
      }

      case EventKind::kWarning: {
        Node& node = cluster[event.node];
        if (node.mode == NodeMode::kDown ||
            node.mode == NodeMode::kQuarantined)
          break;  // too late, or already acted upon
        if (node.mode == NodeMode::kBusy) {
          // Live-migrate the job off this node onto a free one.
          Job& job = jobs[node.job];
          if (free_nodes.empty()) break;  // no spare: ride out the luck
          const std::size_t target = free_nodes.back();
          free_nodes.pop_back();
          cluster[target].mode = NodeMode::kBusy;
          cluster[target].job = node.job;
          *std::find(job.assigned.begin(), job.assigned.end(), event.node) =
              target;
          // The job pauses for the migration; its finish slips accordingly.
          job.pause_penalty += policy.migration_seconds;
          ++job.generation;
          events.push(Event{job.started + job.pause_penalty +
                                job.remaining_work * dilation,
                            EventKind::kJobFinish, node.job, 0,
                            job.generation});
          result.overhead_seconds += policy.migration_seconds *
                                     static_cast<double>(job.nodes_needed);
          ++result.migrations;
          node.awaiting_failure = true;
        } else {  // kFree: just pull it out of the scheduler's pool
          free_nodes.erase(
              std::remove(free_nodes.begin(), free_nodes.end(), event.node),
              free_nodes.end());
          node.awaiting_failure = true;
          ++result.migrations;  // counted as an (empty) proactive action
        }
        node.mode = NodeMode::kQuarantined;
        result.quarantine_idle_seconds += policy.quarantine_seconds;
        events.push(Event{now + policy.quarantine_seconds,
                          EventKind::kQuarantineEnd, 0, event.node, 0});
        break;
      }

      case EventKind::kFailure: {
        Node& node = cluster[event.node];
        if (node.mode == NodeMode::kDown) break;
        if (node.mode == NodeMode::kBusy) {
          Job& job = jobs[node.job];
          ++result.failure_hits;
          const double saved = checkpointed_work(job, now);
          const double executed = std::max(
              0.0, (now - job.started - job.pause_penalty) / dilation);
          const double lost = std::min(executed, job.remaining_work) - saved;
          result.lost_work_seconds +=
              std::max(0.0, lost) * static_cast<double>(job.nodes_needed);
          result.overhead_seconds += policy.restart_overhead *
                                     static_cast<double>(job.nodes_needed);
          // Checkpoint overhead already paid for the executed portion.
          result.overhead_seconds +=
              executed * (dilation - 1.0) * static_cast<double>(job.nodes_needed);
          const std::size_t job_id = node.job;
          job.remaining_work -= saved;
          release_nodes(job);
          ++job.generation;
          // Resubmit after the restart overhead.
          events.push(Event{now + policy.restart_overhead,
                            EventKind::kJobArrival, job_id, 0, 0});
        } else if (node.awaiting_failure) {
          ++result.failure_saves;  // warned and vacated in time
        }
        // Whatever its state, the node is now down and unschedulable.
        free_nodes.erase(
            std::remove(free_nodes.begin(), free_nodes.end(), event.node),
            free_nodes.end());
        node.awaiting_failure = false;
        node.mode = NodeMode::kDown;
        events.push(Event{now + policy.repair_seconds, EventKind::kNodeRepair,
                          0, event.node, 0});
        try_schedule(now);
        break;
      }

      case EventKind::kNodeRepair: {
        Node& node = cluster[event.node];
        if (node.mode != NodeMode::kDown) break;
        node.mode = NodeMode::kFree;
        free_nodes.push_back(event.node);
        try_schedule(now);
        break;
      }

      case EventKind::kQuarantineEnd: {
        Node& node = cluster[event.node];
        if (node.mode != NodeMode::kQuarantined) break;  // failed meanwhile
        if (node.awaiting_failure) {
          // Quarantine expired without the predicted failure: false alarm.
          ++result.wasted_migrations;
          node.awaiting_failure = false;
        }
        node.mode = NodeMode::kFree;
        free_nodes.push_back(event.node);
        try_schedule(now);
        break;
      }
    }
  }
  return result;
}

}  // namespace desh::recovery
