// Proactive-recovery cluster simulator — the substrate behind the paper's
// motivation (Sec 1: "Suppose 50% of the node failures are correctly
// predicted ... we can then prevent half of the expensive checkpoint/
// restarts ... with much cheaper process migrations") and its Sec 4.6
// discussion of what a 3-minute lead time buys (process-level live
// migration takes 13-24 s [41], DINO node cloning 90 s [39], quarantining
// is immediate [25]).
//
// A discrete-event simulation of a batch cluster:
//  - jobs arrive (Poisson), occupy one or more nodes, checkpoint
//    periodically (overhead modeled as a runtime dilation), and complete;
//  - ground-truth node failures kill their node; affected jobs lose the
//    work since their last checkpoint, pay a restart overhead, and re-queue;
//  - under a *proactive* policy, Desh warnings trigger live migration of
//    the node's jobs to a spare (costing the migration pause) when the lead
//    time permits, plus quarantining of the warned node; false warnings
//    cost an unnecessary migration and a quarantine window.
//
// The simulator is deterministic given its seed and reports lost node-
// seconds, failure hits vs saves, and job slowdowns so recovery policies
// can be compared head-to-head (bench_recovery_impact).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logs/node_id.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace desh::recovery {

/// One node-failure prediction fed to the proactive policy.
struct FailureWarning {
  logs::NodeId node;
  double warn_time = 0;  // when the warning is raised
};

/// Ground-truth node failure.
struct NodeFailure {
  logs::NodeId node;
  double fail_time = 0;
};

struct WorkloadConfig {
  double duration_seconds = 72 * 3600.0;
  double job_arrival_rate_per_hour = 40.0;
  double mean_job_seconds = 2.0 * 3600.0;  // exponential work requirement
  std::size_t max_job_nodes = 4;           // uniform in [1, max]
  std::uint64_t seed = 1;
};

struct RecoveryPolicyConfig {
  bool proactive = false;             // act on warnings?
  double checkpoint_interval = 3600;  // periodic checkpoint period, seconds
  double checkpoint_cost = 120;       // seconds per checkpoint (dilation)
  double restart_overhead = 300;      // reactive restart cost, seconds
  double migration_seconds = 20;      // process-level live migration [41]
  double quarantine_seconds = 1800;   // warned node kept out of scheduling
  double repair_seconds = 4 * 3600;   // failed node out for repair
};

struct SimulationResult {
  std::string policy_name;
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  std::size_t failure_hits = 0;    // failures that struck a running job
  std::size_t failure_saves = 0;   // failures whose jobs were migrated away
  std::size_t migrations = 0;      // total migrations (incl. false warnings)
  std::size_t wasted_migrations = 0;  // migrations with no subsequent failure
  double lost_work_seconds = 0;    // re-executed work (node-seconds)
  double overhead_seconds = 0;     // checkpoints + restarts + migrations
  double quarantine_idle_seconds = 0;
  util::SampleSet job_slowdowns;   // turnaround / ideal runtime per job

  /// Total node-seconds burned on anything but useful work.
  double total_waste_seconds() const {
    return lost_work_seconds + overhead_seconds + quarantine_idle_seconds;
  }
};

class ClusterSimulator {
 public:
  ClusterSimulator(std::vector<logs::NodeId> nodes, WorkloadConfig workload);

  /// Runs one policy against one failure trace + warning stream.
  /// Warnings are ignored unless policy.proactive is set. Deterministic for
  /// fixed inputs. Warnings and failures may arrive unsorted.
  SimulationResult run(const RecoveryPolicyConfig& policy,
                       std::string policy_name,
                       std::vector<NodeFailure> failures,
                       std::vector<FailureWarning> warnings) const;

  const std::vector<logs::NodeId>& nodes() const { return nodes_; }

 private:
  std::vector<logs::NodeId> nodes_;
  WorkloadConfig workload_;
};

/// Builds the oracle warning stream: one perfectly accurate warning per
/// failure, `lead_seconds` ahead.
std::vector<FailureWarning> oracle_warnings(
    const std::vector<NodeFailure>& failures, double lead_seconds);

}  // namespace desh::recovery
