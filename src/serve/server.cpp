#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "obs/catalog.hpp"

namespace desh::serve {

namespace {

// Process-wide serving telemetry (OBSERVABILITY.md "serving engine").
// Cached references: registration takes the registry lock exactly once.
struct ServeObs {
  obs::Counter& admitted = obs::registry().counter(obs::kServeAdmittedTotal);
  obs::Counter& rejected = obs::registry().counter(obs::kServeRejectedTotal);
  obs::Counter& shed = obs::registry().counter(obs::kServeShedTotal);
  obs::Gauge& queue_depth = obs::registry().gauge(obs::kServeQueueDepth);
  obs::Histogram& batch_width =
      obs::registry().histogram(obs::kServeBatchWidth);
  obs::Counter& batches = obs::registry().counter(obs::kServeBatchesTotal);
  obs::Counter& reloads = obs::registry().counter(obs::kServeReloadsTotal);
  obs::Histogram& alert_latency =
      obs::registry().histogram(obs::kServeAlertLatencySeconds);
  static ServeObs& get() {
    static ServeObs instance;
    return instance;
  }
};

std::string join_violations(const std::vector<std::string>& violations) {
  std::string out = "invalid ServeConfig:";
  for (const std::string& v : violations) out += "\n  - " + v;
  return out;
}

}  // namespace

std::vector<std::string> ServeConfig::validate() const {
  std::vector<std::string> out;
  if (queue_capacity == 0)
    out.push_back("serve.queue_capacity: must be positive");
  if (max_batch == 0) out.push_back("serve.max_batch: must be positive");
  if (!(shed_watermark > 0.0) || shed_watermark > 1.0)
    out.push_back("serve.shed_watermark: must be in (0, 1]");
  // One source of truth for the monitor's field checks.
  for (std::string& v : monitor.validate("serve.monitor"))
    out.push_back(std::move(v));
  return out;
}

core::Expected<std::unique_ptr<InferenceServer>> InferenceServer::create(
    std::shared_ptr<const core::DeshPipeline> pipeline, ServeConfig config) {
  if (!pipeline)
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "InferenceServer: null pipeline"};
  if (!pipeline->fitted())
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "InferenceServer: pipeline is not fitted"};
  const std::vector<std::string> violations = config.validate();
  if (!violations.empty())
    return core::Error{core::ErrorCode::kInvalidConfig,
                       join_violations(violations)};
  return std::unique_ptr<InferenceServer>(
      new InferenceServer(std::move(pipeline), std::move(config)));
}

core::Expected<std::unique_ptr<InferenceServer>> InferenceServer::create(
    const core::DeshPipeline& pipeline, ServeConfig config) {
  // Non-owning alias: lifetime is the caller's promise (see header).
  return create(std::shared_ptr<const core::DeshPipeline>(
                    &pipeline, [](const core::DeshPipeline*) {}),
                std::move(config));
}

InferenceServer::InferenceServer(
    std::shared_ptr<const core::DeshPipeline> pipeline, ServeConfig config)
    : config_(std::move(config)),
      pipeline_(std::move(pipeline)),
      monitor_(std::make_unique<core::StreamingMonitor>(*pipeline_,
                                                        config_.monitor)) {
  if (config_.start_collector)
    collector_ = std::thread([this] { collector_loop(); });
}

InferenceServer::~InferenceServer() { stop(); }

Admission InferenceServer::submit(const logs::LogRecord& record) {
  ServeObs& obs = ServeObs::get();
  {
    util::LockGuard lk(mu_);
    if (stopping_) return Admission::kStopped;
    if (queue_.size() >= config_.queue_capacity) {
      ++stats_.rejected;
      obs.rejected.add();
      return Admission::kQueueFull;
    }
    queue_.push_back({record, std::chrono::steady_clock::now()});
    ++stats_.admitted;
    obs.admitted.add();
  }
  work_cv_.notify_one();
  return Admission::kAccepted;
}

std::size_t InferenceServer::submit_batch(
    std::span<const logs::LogRecord> records) {
  std::size_t accepted = 0;
  for (const logs::LogRecord& record : records) {
    const Admission a = submit(record);
    if (a == Admission::kAccepted) ++accepted;
    if (a == Admission::kStopped) break;
  }
  return accepted;
}

std::vector<core::MonitorAlert> InferenceServer::poll_alerts() {
  util::LockGuard lk(mu_);
  std::vector<core::MonitorAlert> out = std::move(alerts_);
  alerts_.clear();
  return out;
}

ServeStats InferenceServer::stats() const {
  util::LockGuard lk(mu_);
  ServeStats out = stats_;
  out.queue_depth = queue_.size();
  return out;
}

core::Expected<void> InferenceServer::swap_model(
    const std::string& directory) {
  core::Expected<core::DeshPipeline> loaded =
      core::try_load_pipeline(directory);
  if (!loaded) return loaded.error();
  return swap_model(std::make_shared<const core::DeshPipeline>(
      std::move(loaded).value()));
}

core::Expected<void> InferenceServer::swap_model(
    std::shared_ptr<const core::DeshPipeline> pipeline) {
  if (!pipeline)
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "InferenceServer: null pipeline"};
  if (!pipeline->fitted())
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "InferenceServer: pipeline is not fitted"};
  {
    util::LockGuard lk(mu_);
    if (stopping_)
      return core::Error{core::ErrorCode::kUnavailable,
                         "InferenceServer: server is stopped"};
    staged_pipeline_ = std::move(pipeline);
  }
  work_cv_.notify_one();
  return {};
}

void InferenceServer::set_tap(Tap tap) {
  util::LockGuard lk(mu_);
  tap_ = std::move(tap);
}

std::size_t InferenceServer::shed_limit() const {
  return static_cast<std::size_t>(
      config_.shed_watermark * static_cast<double>(config_.queue_capacity));
}

void InferenceServer::shed_locked() {
  const std::size_t limit = shed_limit();
  if (queue_.size() <= limit) return;
  const std::size_t excess = queue_.size() - limit;
  if (config_.shed_policy == ShedPolicy::kOldestFirst) {
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(excess));
  } else {
    // Rank queued records by the current anomaly-window depth of their
    // node: shallow windows are farthest from a chain match, so their
    // records are the least likely to contribute an alert. Stable sort
    // keeps admission order within a depth, so the oldest of the
    // lowest-risk records go first.
    std::vector<std::size_t> depth(queue_.size());
    for (std::size_t i = 0; i < queue_.size(); ++i)
      depth[i] = monitor_->window_depth(queue_[i].record.node);
    std::vector<std::size_t> order(queue_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(
        order.begin(), order.end(),
        [&](std::size_t a, std::size_t b) { return depth[a] < depth[b]; });
    std::vector<char> drop(queue_.size(), 0);
    for (std::size_t k = 0; k < excess; ++k) drop[order[k]] = 1;
    std::deque<Entry> kept;
    for (std::size_t i = 0; i < queue_.size(); ++i)
      if (!drop[i]) kept.push_back(std::move(queue_[i]));
    queue_ = std::move(kept);
  }
  stats_.shed += excess;
  ServeObs::get().shed.add(excess);
}

std::size_t InferenceServer::pump() {
  ServeObs& obs = ServeObs::get();
  std::shared_ptr<const core::DeshPipeline> retiring;
  std::vector<Entry> batch;
  {
    util::LockGuard lk(mu_);
    pumping_ = true;
    if (staged_pipeline_) {
      // Batch boundary: no inference is in flight, so the old snapshot can
      // retire (it is destroyed after the lock drops, via `retiring`).
      // Window state does not survive a vocabulary change — start fresh.
      retiring = std::move(pipeline_);
      pipeline_ = std::move(staged_pipeline_);
      monitor_ = std::make_unique<core::StreamingMonitor>(*pipeline_,
                                                          config_.monitor);
      ++stats_.reloads;
      obs.reloads.add();
    }
    const std::size_t take = std::min(config_.max_batch, queue_.size());
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    shed_locked();
    stats_.queue_depth = queue_.size();
    obs.queue_depth.set(static_cast<double>(queue_.size()));
  }

  // Inference runs outside the queue lock: producers keep admitting while
  // the monitor chews on this micro-batch.
  std::vector<core::MonitorAlert> alerts;
  std::vector<logs::LogRecord> records;
  if (!batch.empty()) {
    records.reserve(batch.size());
    for (const Entry& e : batch) records.push_back(e.record);
    alerts = monitor_->observe_batch(records);
    obs.batch_width.observe(static_cast<double>(batch.size()));
    obs.batches.add();
    const auto now = std::chrono::steady_clock::now();
    for (const core::MonitorAlert& alert : alerts) {
      for (const Entry& e : batch) {
        if (e.record.node == alert.node &&
            e.record.timestamp == alert.time) {
          obs.alert_latency.observe(
              std::chrono::duration<double>(now - e.admitted_at).count());
          break;
        }
      }
    }
  }

  if (!batch.empty()) {
    // Tap before the alerts move into the poll buffer. Copied out under the
    // lock, invoked outside it: the tap may be slow (drift bookkeeping,
    // replay appends) without ever blocking submit().
    Tap tap;
    {
      util::LockGuard lk(mu_);
      tap = tap_;
    }
    if (tap) tap(records, alerts);
  }

  {
    util::LockGuard lk(mu_);
    if (!batch.empty()) ++stats_.batches;
    stats_.processed += batch.size();
    stats_.alerts += alerts.size();
    for (core::MonitorAlert& a : alerts) alerts_.push_back(std::move(a));
    pumping_ = false;
  }
  drained_cv_.notify_all();
  return batch.size();
}

void InferenceServer::collector_loop() {
  for (;;) {
    {
      util::UniqueLock lk(mu_);
      // Inline predicate loop so the thread-safety analysis sees the
      // guarded reads happen under mu_.
      while (!stopping_ && queue_.empty() && staged_pipeline_ == nullptr)
        work_cv_.wait(lk);
      // The predicate held, so an empty idle state here means stop: drain
      // finished, no swap staged.
      if (queue_.empty() && !staged_pipeline_) return;
    }
    pump();
  }
}

void InferenceServer::drain() {
  if (!collector_.joinable()) {
    while (pump() != 0) {
    }
    return;
  }
  util::UniqueLock lk(mu_);
  while (!queue_.empty() || staged_pipeline_ != nullptr || pumping_)
    drained_cv_.wait(lk);
}

void InferenceServer::stop() {
  {
    util::LockGuard lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (collector_.joinable()) {
    collector_.join();
  } else {
    // Manual-pump mode: process what was admitted before the stop.
    while (pump() != 0) {
    }
  }
}

}  // namespace desh::serve
