#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "obs/catalog.hpp"
#include "util/stopwatch.hpp"

namespace desh::serve {

namespace {

// Process-wide serving telemetry (OBSERVABILITY.md "serving engine").
// Cached references: registration takes the registry lock exactly once.
struct ServeObs {
  obs::Counter& admitted = obs::registry().counter(obs::kServeAdmittedTotal);
  obs::Counter& rejected = obs::registry().counter(obs::kServeRejectedTotal);
  obs::Counter& shed = obs::registry().counter(obs::kServeShedTotal);
  obs::Gauge& queue_depth = obs::registry().gauge(obs::kServeQueueDepth);
  obs::Histogram& batch_width =
      obs::registry().histogram(obs::kServeBatchWidth);
  obs::Counter& batches = obs::registry().counter(obs::kServeBatchesTotal);
  obs::Counter& reloads = obs::registry().counter(obs::kServeReloadsTotal);
  obs::Histogram& alert_latency =
      obs::registry().histogram(obs::kServeAlertLatencySeconds);
  static ServeObs& get() {
    static ServeObs instance;
    return instance;
  }
};

// Process-wide durability telemetry (OBSERVABILITY.md "durability").
// Cached references: registration takes the registry lock exactly once.
struct WalObs {
  obs::Counter& appended = obs::registry().counter(obs::kWalAppendedTotal);
  obs::Counter& flushes = obs::registry().counter(obs::kWalFlushesTotal);
  obs::Histogram& flush_seconds =
      obs::registry().histogram(obs::kWalFlushSeconds);
  obs::Gauge& committed_seq =
      obs::registry().gauge(obs::kWalCommittedSeq);
  obs::Counter& checkpoints =
      obs::registry().counter(obs::kWalCheckpointsTotal);
  obs::Histogram& checkpoint_seconds =
      obs::registry().histogram(obs::kWalCheckpointSeconds);
  obs::Counter& replayed =
      obs::registry().counter(obs::kWalReplayedRecordsTotal);
  obs::Counter& recoveries =
      obs::registry().counter(obs::kWalRecoveriesTotal);
  obs::Counter& torn_frames =
      obs::registry().counter(obs::kWalTornFramesTotal);
  obs::Counter& io_errors = obs::registry().counter(obs::kWalIoErrorsTotal);
  static WalObs& get() {
    static WalObs instance;
    return instance;
  }
};

std::string join_violations(const std::vector<std::string>& violations) {
  std::string out = "invalid ServeConfig:";
  for (const std::string& v : violations) out += "\n  - " + v;
  return out;
}

}  // namespace

std::vector<std::string> ServeConfig::validate() const {
  std::vector<std::string> out;
  if (queue_capacity == 0)
    out.push_back("serve.queue_capacity: must be positive");
  if (max_batch == 0) out.push_back("serve.max_batch: must be positive");
  if (!(shed_watermark > 0.0) || shed_watermark > 1.0)
    out.push_back("serve.shed_watermark: must be in (0, 1]");
  // One source of truth for the monitor's and the WAL's field checks.
  for (std::string& v : monitor.validate("serve.monitor"))
    out.push_back(std::move(v));
  for (std::string& v : wal.validate("serve.wal"))
    out.push_back(std::move(v));
  return out;
}

core::Expected<std::unique_ptr<InferenceServer>> InferenceServer::create(
    std::shared_ptr<const core::DeshPipeline> pipeline, ServeConfig config) {
  if (!pipeline)
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "InferenceServer: null pipeline"};
  if (!pipeline->fitted())
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "InferenceServer: pipeline is not fitted"};
  const std::vector<std::string> violations = config.validate();
  if (!violations.empty())
    return core::Error{core::ErrorCode::kInvalidConfig,
                       join_violations(violations)};
  std::unique_ptr<InferenceServer> server(
      new InferenceServer(std::move(pipeline), std::move(config)));
  // Recovery runs to completion BEFORE the collector exists: restore +
  // tail replay may touch every pump-serialized member without a lock.
  core::Expected<void> recovered = server->init_wal();
  if (!recovered.ok()) return recovered.error();
  server->start();
  return server;
}

core::Expected<std::unique_ptr<InferenceServer>> InferenceServer::create(
    const core::DeshPipeline& pipeline, ServeConfig config) {
  // Non-owning alias: lifetime is the caller's promise (see header).
  return create(std::shared_ptr<const core::DeshPipeline>(
                    &pipeline, [](const core::DeshPipeline*) {}),
                std::move(config));
}

InferenceServer::InferenceServer(
    std::shared_ptr<const core::DeshPipeline> pipeline, ServeConfig config)
    : config_(std::move(config)),
      pipeline_(std::move(pipeline)),
      monitor_(std::make_unique<core::StreamingMonitor>(*pipeline_,
                                                        config_.monitor)) {}

void InferenceServer::start() {
  if (config_.start_collector)
    collector_ = std::thread([this] { collector_loop(); });
}

core::Expected<void> InferenceServer::init_wal() {
  if (config_.wal.directory.empty()) return {};
  WalObs& obs = WalObs::get();

  wal::LogOptions options;
  options.directory = config_.wal.directory;
  options.flush_every_records = config_.wal.flush_every_records;
  options.keep_checkpoints = config_.wal.keep_checkpoints;
  // A checkpoint is acceptable iff its monitor blob restores under THIS
  // pipeline (matching vocabulary + decision position). The probe restores
  // in place: the last accepted candidate leaves the monitor holding its
  // state, and a failed probe leaves it reset — exactly the fallback
  // semantics we want (older checkpoint, or full replay from seq 1).
  core::Expected<std::unique_ptr<wal::DurableLog>> opened = wal::DurableLog::open(
      options, [this](const wal::CheckpointData& candidate) {
        const std::string* blob = candidate.find("monitor");
        return blob != nullptr && monitor_->restore_state(*blob).ok();
      });
  if (!opened.ok()) return opened.error();
  wal_ = std::move(opened.value());

  const wal::RecoveredState& recovered = wal_->recovered();
  // Replay the tail through the exact path live records take, collecting
  // the re-raised alerts with their seqs for the driver's dedup.
  for (const wal::EventFrame& frame : recovered.tail) {
    if (std::optional<core::MonitorAlert> alert =
            monitor_->observe(frame.record))
      wal_replayed_alerts_.emplace_back(frame.seq, std::move(*alert));
  }
  wal_applied_seq_ = recovered.last_seq;

  if (recovered.checkpoint_seq > 0 || !recovered.tail.empty())
    obs.recoveries.add();
  obs.replayed.add(recovered.tail.size());
  obs.torn_frames.add(recovered.torn_frames);
  obs.committed_seq.set(static_cast<double>(wal_->committed_seq()));

  WalStats snapshot;
  snapshot.enabled = true;
  snapshot.committed_seq = wal_->committed_seq();
  snapshot.applied_seq = wal_applied_seq_;
  snapshot.checkpoint_seq = recovered.checkpoint_seq;
  snapshot.replayed = recovered.tail.size();
  snapshot.torn_frames = recovered.torn_frames;
  {
    util::LockGuard lk(mu_);
    wal_snapshot_ = snapshot;
    for (const auto& [name, blob] : recovered.checkpoint.sections)
      if (name != "monitor") wal_restored_sections_.emplace_back(name, blob);
  }
  return {};
}

InferenceServer::~InferenceServer() { stop(); }

Admission InferenceServer::submit(const logs::LogRecord& record) {
  ServeObs& obs = ServeObs::get();
  {
    util::LockGuard lk(mu_);
    if (stopping_) return Admission::kStopped;
    if (queue_.size() >= config_.queue_capacity) {
      ++stats_.rejected;
      obs.rejected.add();
      return Admission::kQueueFull;
    }
    queue_.push_back({record, std::chrono::steady_clock::now()});
    ++stats_.admitted;
    obs.admitted.add();
  }
  work_cv_.notify_one();
  return Admission::kAccepted;
}

std::size_t InferenceServer::submit_batch(
    std::span<const logs::LogRecord> records) {
  std::size_t accepted = 0;
  for (const logs::LogRecord& record : records) {
    const Admission a = submit(record);
    if (a == Admission::kAccepted) ++accepted;
    if (a == Admission::kStopped) break;
  }
  return accepted;
}

std::vector<core::MonitorAlert> InferenceServer::poll_alerts() {
  util::LockGuard lk(mu_);
  std::vector<core::MonitorAlert> out = std::move(alerts_);
  alerts_.clear();
  return out;
}

ServeStats InferenceServer::stats() const {
  util::LockGuard lk(mu_);
  ServeStats out = stats_;
  out.queue_depth = queue_.size();
  return out;
}

core::Expected<void> InferenceServer::swap_model(
    const std::string& directory) {
  core::Expected<core::DeshPipeline> loaded =
      core::try_load_pipeline(directory);
  if (!loaded) return loaded.error();
  return swap_model(std::make_shared<const core::DeshPipeline>(
      std::move(loaded).value()));
}

core::Expected<void> InferenceServer::swap_model(
    std::shared_ptr<const core::DeshPipeline> pipeline) {
  if (!pipeline)
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "InferenceServer: null pipeline"};
  if (!pipeline->fitted())
    return core::Error{core::ErrorCode::kInvalidArgument,
                       "InferenceServer: pipeline is not fitted"};
  {
    util::LockGuard lk(mu_);
    if (stopping_)
      return core::Error{core::ErrorCode::kUnavailable,
                         "InferenceServer: server is stopped"};
    staged_pipeline_ = std::move(pipeline);
  }
  work_cv_.notify_one();
  return {};
}

void InferenceServer::set_tap(Tap tap) {
  util::LockGuard lk(mu_);
  tap_ = std::move(tap);
}

std::size_t InferenceServer::shed_limit() const {
  return static_cast<std::size_t>(
      config_.shed_watermark * static_cast<double>(config_.queue_capacity));
}

void InferenceServer::shed_locked() {
  const std::size_t limit = shed_limit();
  if (queue_.size() <= limit) return;
  const std::size_t excess = queue_.size() - limit;
  if (config_.shed_policy == ShedPolicy::kOldestFirst) {
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(excess));
  } else {
    // Rank queued records by the current anomaly-window depth of their
    // node: shallow windows are farthest from a chain match, so their
    // records are the least likely to contribute an alert. Stable sort
    // keeps admission order within a depth, so the oldest of the
    // lowest-risk records go first.
    std::vector<std::size_t> depth(queue_.size());
    for (std::size_t i = 0; i < queue_.size(); ++i)
      depth[i] = monitor_->window_depth(queue_[i].record.node);
    std::vector<std::size_t> order(queue_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(
        order.begin(), order.end(),
        [&](std::size_t a, std::size_t b) { return depth[a] < depth[b]; });
    std::vector<char> drop(queue_.size(), 0);
    for (std::size_t k = 0; k < excess; ++k) drop[order[k]] = 1;
    std::deque<Entry> kept;
    for (std::size_t i = 0; i < queue_.size(); ++i)
      if (!drop[i]) kept.push_back(std::move(queue_[i]));
    queue_ = std::move(kept);
  }
  stats_.shed += excess;
  ServeObs::get().shed.add(excess);
}

std::size_t InferenceServer::pump() {
  ServeObs& obs = ServeObs::get();
  std::shared_ptr<const core::DeshPipeline> retiring;
  std::vector<Entry> batch;
  bool swapped = false;
  {
    util::LockGuard lk(mu_);
    pumping_ = true;
    if (staged_pipeline_) {
      // Batch boundary: no inference is in flight, so the old snapshot can
      // retire (it is destroyed after the lock drops, via `retiring`).
      // Window state does not survive a vocabulary change — start fresh.
      retiring = std::move(pipeline_);
      pipeline_ = std::move(staged_pipeline_);
      monitor_ = std::make_unique<core::StreamingMonitor>(*pipeline_,
                                                          config_.monitor);
      ++stats_.reloads;
      obs.reloads.add();
      swapped = true;
    }
    const std::size_t take = std::min(config_.max_batch, queue_.size());
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    shed_locked();
    stats_.queue_depth = queue_.size();
    obs.queue_depth.set(static_cast<double>(queue_.size()));
  }

  // Write-ahead: the batch is staged into the log BEFORE inference, in
  // processing order, so the on-disk record stream is exactly the stream
  // the monitor consumes (shed records were dropped from the queue above
  // and are never logged). Group commit flushes on the configured
  // interval. An I/O failure is counted and serving continues — the
  // affected records lose durability, never processing.
  std::uint64_t wal_io_failures = 0;
  if (wal_ && !batch.empty()) {
    WalObs& wobs = WalObs::get();
    for (const Entry& e : batch) wal_->append(e.record);
    wobs.appended.add(batch.size());
    util::Stopwatch flush_sw;
    core::Expected<bool> flushed = wal_->maybe_flush();
    if (!flushed.ok()) {
      ++wal_io_failures;
      wobs.io_errors.add();
    } else if (flushed.value()) {
      wobs.flushes.add();
      wobs.flush_seconds.observe(flush_sw.elapsed_seconds());
      wobs.committed_seq.set(static_cast<double>(wal_->committed_seq()));
    }
  }

  // Inference runs outside the queue lock: producers keep admitting while
  // the monitor chews on this micro-batch.
  std::vector<core::MonitorAlert> alerts;
  std::vector<logs::LogRecord> records;
  if (!batch.empty()) {
    records.reserve(batch.size());
    for (const Entry& e : batch) records.push_back(e.record);
    alerts = monitor_->observe_batch(records);
    obs.batch_width.observe(static_cast<double>(batch.size()));
    obs.batches.add();
    const auto now = std::chrono::steady_clock::now();
    for (const core::MonitorAlert& alert : alerts) {
      for (const Entry& e : batch) {
        if (e.record.node == alert.node &&
            e.record.timestamp == alert.time) {
          obs.alert_latency.observe(
              std::chrono::duration<double>(now - e.admitted_at).count());
          break;
        }
      }
    }
  }

  if (!batch.empty()) {
    // Tap before the alerts move into the poll buffer. Copied out under the
    // lock, invoked outside it: the tap may be slow (drift bookkeeping,
    // replay appends) without ever blocking submit().
    Tap tap;
    {
      util::LockGuard lk(mu_);
      tap = tap_;
    }
    if (tap) tap(records, alerts);
  }

  bool checkpoint_due = false;
  {
    util::LockGuard lk(mu_);
    if (!batch.empty()) ++stats_.batches;
    stats_.processed += batch.size();
    stats_.alerts += alerts.size();
    for (core::MonitorAlert& a : alerts) alerts_.push_back(std::move(a));
    if (wal_) {
      wal_applied_seq_ = wal_->next_seq() - 1;
      wal_records_since_ckpt_ += batch.size();
      checkpoint_due = wal_checkpoint_requested_;
      wal_checkpoint_requested_ = false;
      if (config_.wal.checkpoint_every_records > 0 &&
          wal_records_since_ckpt_ >= config_.wal.checkpoint_every_records)
        checkpoint_due = true;
      // A model swap resets the monitor, so the previous checkpoint no
      // longer describes reachable state: checkpoint immediately so replay
      // never crosses a model change.
      if (swapped) checkpoint_due = true;
      wal_snapshot_.appended = wal_->counters().appended;
      wal_snapshot_.flushes = wal_->counters().flushes;
      wal_snapshot_.committed_seq = wal_->committed_seq();
      wal_snapshot_.applied_seq = wal_applied_seq_;
      wal_snapshot_.io_errors += wal_io_failures;
    }
    pumping_ = false;
  }
  if (checkpoint_due) {
    if (core::Expected<void> ckpt = do_wal_checkpoint(); !ckpt.ok()) {
      WalObs::get().io_errors.add();
      util::LockGuard lk(mu_);
      ++wal_snapshot_.io_errors;
    }
  }
  drained_cv_.notify_all();
  return batch.size();
}

core::Expected<void> InferenceServer::do_wal_checkpoint() {
  WalObs& wobs = WalObs::get();
  util::Stopwatch sw;
  std::vector<std::pair<std::string, WalHook>> hooks;
  {
    util::LockGuard lk(mu_);
    hooks = wal_hooks_;
  }
  // The save hooks run on the pump thread OUTSIDE the queue lock (like the
  // tap): a slow serializer delays the next batch, never submit(), and a
  // hook may call back into public server methods without deadlocking.
  std::vector<std::pair<std::string, std::string>> sections;
  sections.emplace_back("monitor", monitor_->serialize_state());
  for (const auto& [name, hook] : hooks)
    if (hook.save) sections.emplace_back(name, hook.save());
  core::Expected<void> written =
      wal_->write_checkpoint_and_rotate(std::move(sections));
  wal_records_since_ckpt_ = 0;
  if (!written.ok()) return written.error();
  wobs.checkpoints.add();
  wobs.checkpoint_seconds.observe(sw.elapsed_seconds());
  wobs.committed_seq.set(static_cast<double>(wal_->committed_seq()));
  {
    util::LockGuard lk(mu_);
    wal_snapshot_.checkpoints = wal_->counters().checkpoints;
    wal_snapshot_.flushes = wal_->counters().flushes;
    wal_snapshot_.committed_seq = wal_->committed_seq();
  }
  return {};
}

InferenceServer::WalStats InferenceServer::wal_stats() const {
  util::LockGuard lk(mu_);
  return wal_snapshot_;
}

void InferenceServer::wal_set_state_hook(std::string name, WalSaveHook save,
                                         WalRestoreHook restore) {
  std::optional<std::string> pending;
  {
    util::LockGuard lk(mu_);
    bool replaced = false;
    for (auto& [hook_name, hook] : wal_hooks_) {
      if (hook_name == name) {
        hook = WalHook{save, restore};
        replaced = true;
        break;
      }
    }
    if (!replaced) wal_hooks_.emplace_back(name, WalHook{save, restore});
    for (const auto& [section_name, blob] : wal_restored_sections_) {
      if (section_name == name) {
        pending = blob;
        break;
      }
    }
  }
  // Deliver the recovered blob outside the lock, on the caller's thread.
  if (pending && restore) restore(*pending);
}

std::optional<std::string> InferenceServer::wal_restored_state(
    std::string_view name) const {
  util::LockGuard lk(mu_);
  for (const auto& [section_name, blob] : wal_restored_sections_)
    if (section_name == name) return blob;
  return std::nullopt;
}

core::Expected<void> InferenceServer::wal_checkpoint_now() {
  if (!wal_)
    return core::Error{core::ErrorCode::kUnavailable,
                       "InferenceServer: WAL is disabled"};
  bool queued = false;
  {
    util::LockGuard lk(mu_);
    if (stopping_)
      return core::Error{core::ErrorCode::kUnavailable,
                         "InferenceServer: server is stopped"};
    if (collector_.joinable()) {
      wal_checkpoint_requested_ = true;
      queued = true;
    }
  }
  if (queued) {
    work_cv_.notify_one();
    return {};
  }
  // Manual-pump mode: the caller IS the single pumper, so an inline
  // checkpoint honors the pump-serialization contract.
  return do_wal_checkpoint();
}

void InferenceServer::collector_loop() {
  for (;;) {
    {
      util::UniqueLock lk(mu_);
      // Inline predicate loop so the thread-safety analysis sees the
      // guarded reads happen under mu_.
      while (!stopping_ && queue_.empty() && staged_pipeline_ == nullptr &&
             !wal_checkpoint_requested_)
        work_cv_.wait(lk);
      // Nothing left to do and the server is stopping: exit. (A checkpoint
      // request pending at stop is dropped — stop() flushes the log, so
      // the state is fully recoverable from replay alone.)
      if (stopping_ && queue_.empty() && staged_pipeline_ == nullptr) return;
    }
    pump();
  }
}

void InferenceServer::drain() {
  if (!collector_.joinable()) {
    while (pump() != 0) {
    }
    return;
  }
  util::UniqueLock lk(mu_);
  while (!queue_.empty() || staged_pipeline_ != nullptr || pumping_)
    drained_cv_.wait(lk);
}

void InferenceServer::stop() {
  {
    util::LockGuard lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (collector_.joinable()) {
    collector_.join();
  } else {
    // Manual-pump mode: process what was admitted before the stop.
    while (pump() != 0) {
    }
  }
  // The pump is quiesced (collector joined / manual pumping done), so the
  // WAL may be touched from this thread: commit the unflushed tail so an
  // orderly shutdown loses nothing.
  if (wal_) {
    core::Expected<bool> flushed = [&]() -> core::Expected<bool> {
      if (wal_->pending_records() == 0) return false;
      core::Expected<void> f = wal_->flush();
      if (!f.ok()) return f.error();
      return true;
    }();
    util::LockGuard lk(mu_);
    if (!flushed.ok()) {
      ++wal_snapshot_.io_errors;
      WalObs::get().io_errors.add();
    } else if (flushed.value()) {
      WalObs& wobs = WalObs::get();
      wobs.flushes.add();
      wobs.committed_seq.set(static_cast<double>(wal_->committed_seq()));
    }
    wal_snapshot_.flushes = wal_->counters().flushes;
    wal_snapshot_.committed_seq = wal_->committed_seq();
  }
}

}  // namespace desh::serve
