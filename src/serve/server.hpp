// desh::serve — the micro-batched online inference engine (the deployment
// story of Sec 4.5 turned into a service). An InferenceServer wraps a fitted
// DeshPipeline behind a bounded ingest queue:
//
//   submit() ──> [bounded queue] ──> collector thread ──> observe_batch()
//                     │                    │                    │
//                 kQueueFull          micro-batch          poll_alerts()
//                (backpressure)      (GEMM-batched)
//
// Contracts, in order of importance:
//   - No silent drops. Every record is either processed, refused at the door
//     (Admission::kQueueFull — explicit backpressure), or shed by the
//     configured overload policy; refusals and sheds are counted in
//     desh::obs (desh_serve_rejected_total / desh_serve_shed_total).
//   - Replay equivalence. With no sheds, the alert stream is byte-identical
//     to feeding the same records through StreamingMonitor::observe one at
//     a time: micro-batching relies on observe_batch's round-based
//     decide_batch, whose GEMM rows are bit-identical to the 1-row path.
//   - Hot reload. swap_model() stages a pipeline loaded via
//     core::try_load_pipeline; the collector installs it at the next batch
//     boundary, so in-flight batches finish on the old model. Per-node
//     window state is reset at install (the new model's vocabulary may
//     encode phrases differently, so stale windows would be meaningless).
//
// Entry points return core::Expected — no exceptions cross this API for
// I/O or configuration errors.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/expected.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "logs/record.hpp"
#include "util/sync.hpp"

namespace desh::serve {

/// What to drop when the queue stays saturated above the shed watermark.
enum class ShedPolicy {
  /// Drop the records that have waited longest (their lead-time value has
  /// decayed the most).
  kOldestFirst,
  /// Drop records of the nodes with the shallowest anomaly windows — the
  /// nodes farthest from a chain match, i.e. the least likely to alert.
  kLowestRiskFirst,
};

struct ServeConfig {
  /// Ingest queue bound; submit() refuses (kQueueFull) beyond it.
  std::size_t queue_capacity = 4096;
  /// Largest micro-batch handed to one observe_batch pass.
  std::size_t max_batch = 256;
  /// After each pump, if the queue still holds more than
  /// watermark * capacity records, shed down to that level per the policy.
  /// 1.0 (the default) disables shedding: backpressure only.
  double shed_watermark = 1.0;
  ShedPolicy shed_policy = ShedPolicy::kOldestFirst;
  /// When false, no collector thread is started and the owner pumps
  /// batches explicitly via pump() — deterministic mode for tests and
  /// benchmarks (single caller only).
  bool start_collector = true;
  /// Monitor tuning (gap, re-arm, observe_batch worker count).
  core::MonitorConfig monitor;

  /// All violations as "field.path: problem" strings; empty when valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Outcome of a submit() call — the explicit backpressure signal.
enum class Admission { kAccepted, kQueueFull, kStopped };

/// Snapshot of the server's lifetime counters (also exported via desh::obs).
struct ServeStats {
  std::size_t admitted = 0;   // accepted into the queue
  std::size_t rejected = 0;   // refused with kQueueFull
  std::size_t shed = 0;       // dropped by the overload policy
  std::size_t processed = 0;  // fed through the monitor
  std::size_t alerts = 0;     // alerts raised
  std::size_t batches = 0;    // micro-batches pumped
  std::size_t reloads = 0;    // models hot-swapped in
  std::size_t queue_depth = 0;  // current queue occupancy
};

class InferenceServer {
 public:
  /// Post-batch observer: receives every micro-batch's processed records
  /// and the alerts that batch raised, in processing order, after each
  /// pump. Runs on the collector thread (or the pump() caller in manual
  /// mode) OUTSIDE the queue lock, so a slow tap delays the next batch but
  /// never blocks submit(). Shed and rejected records are never tapped.
  /// This is the feed desh::adapt's drift detector and replay buffer
  /// consume.
  using Tap = std::function<void(std::span<const logs::LogRecord>,
                                 std::span<const core::MonitorAlert>)>;

  /// Builds a server around a fitted pipeline the server co-owns (the
  /// snapshot stays alive across swap_model until in-flight batches end).
  /// Errors: kInvalidArgument (null/unfitted pipeline), kInvalidConfig
  /// (all ServeConfig violations, field-path messages).
  [[nodiscard]] static core::Expected<std::unique_ptr<InferenceServer>>
  create(std::shared_ptr<const core::DeshPipeline> pipeline,
         ServeConfig config = {});

  /// Borrowing overload: the caller guarantees `pipeline` outlives the
  /// server and is not re-fitted while served.
  [[nodiscard]] static core::Expected<std::unique_ptr<InferenceServer>>
  create(const core::DeshPipeline& pipeline, ServeConfig config = {});

  ~InferenceServer();  // stop()s if the owner has not

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Offers one record. kAccepted = queued; kQueueFull = bounded queue at
  /// capacity, caller must retry/back off (the record was NOT taken);
  /// kStopped = server no longer accepts. Thread-safe; records of one node
  /// must be submitted in timestamp order for replay equivalence.
  Admission submit(const logs::LogRecord& record);

  /// Offers records in order, attempting each one (a mid-batch pump can
  /// free capacity). Returns how many were accepted; refusals are counted
  /// as rejected. Stops early only when the server is stopped.
  std::size_t submit_batch(std::span<const logs::LogRecord> records);

  /// Takes all alerts raised since the last poll, in processing order.
  std::vector<core::MonitorAlert> poll_alerts();

  /// Blocks until every admitted record has been processed (or shed) and
  /// any staged model swap is installed. In manual-pump mode this pumps
  /// inline.
  void drain();

  /// Stops admissions, processes what was already admitted, and joins the
  /// collector. Idempotent; called by the destructor.
  void stop();

  /// Stages the pipeline saved in `directory` (core::try_load_pipeline) for
  /// installation at the next batch boundary. Success means staged, not yet
  /// installed — desh_serve_reloads_total ticks at install. Errors: any
  /// try_load_pipeline error (kIo, kFormatVersion, kInvalidConfig, ...) or
  /// kUnavailable after stop().
  [[nodiscard]] core::Expected<void> swap_model(const std::string& directory);

  /// In-memory overload: stages an already-built fitted pipeline (e.g. a
  /// promoted challenger from adapt::ModelRegistry) without a disk
  /// round-trip. Same batch-boundary install and window-state reset as the
  /// directory overload. Errors: kInvalidArgument (null/unfitted),
  /// kUnavailable after stop().
  [[nodiscard]] core::Expected<void> swap_model(
      std::shared_ptr<const core::DeshPipeline> pipeline);

  /// Installs (or clears, with nullptr) the post-batch tap. Takes effect
  /// from the next pump; thread-safe.
  void set_tap(Tap tap);

  ServeStats stats() const;

  /// Manual-pump mode only: coalesces and processes one micro-batch
  /// (installing any staged swap first) and returns how many records it
  /// processed. Single caller at a time.
  std::size_t pump();

 private:
  InferenceServer(std::shared_ptr<const core::DeshPipeline> pipeline,
                  ServeConfig config);

  struct Entry {
    logs::LogRecord record;
    std::chrono::steady_clock::time_point admitted_at;
  };

  void collector_loop();
  /// Drops queue overflow down to the shed watermark.
  void shed_locked() DESH_REQUIRES(mu_);
  std::size_t shed_limit() const;

  ServeConfig config_;
  // pipeline_/monitor_ are pump-serialized, not mutex-guarded: they are
  // swapped inside pump() under mu_ (batch boundary) but *read* by the same
  // single pumper outside the lock while inference runs. Annotating them
  // DESH_GUARDED_BY(mu_) would be a lie — the contract is "one pump() at a
  // time" (collector thread, or the manual-mode caller), enforced by
  // pumping_ below.
  std::shared_ptr<const core::DeshPipeline> pipeline_;
  std::unique_ptr<core::StreamingMonitor> monitor_;

  mutable util::Mutex mu_;
  util::CondVar work_cv_;     // queue non-empty / swap staged / stop
  util::CondVar drained_cv_;  // queue empty and pump idle
  std::deque<Entry> queue_ DESH_GUARDED_BY(mu_);
  std::vector<core::MonitorAlert> alerts_ DESH_GUARDED_BY(mu_);
  Tap tap_ DESH_GUARDED_BY(mu_);  // copied out before invocation
  std::shared_ptr<const core::DeshPipeline> staged_pipeline_
      DESH_GUARDED_BY(mu_);
  ServeStats stats_ DESH_GUARDED_BY(mu_);
  bool stopping_ DESH_GUARDED_BY(mu_) = false;
  bool pumping_ DESH_GUARDED_BY(mu_) = false;

  std::thread collector_;
};

}  // namespace desh::serve
