// desh::serve — the micro-batched online inference engine (the deployment
// story of Sec 4.5 turned into a service). An InferenceServer wraps a fitted
// DeshPipeline behind a bounded ingest queue:
//
//   submit() ──> [bounded queue] ──> collector thread ──> observe_batch()
//                     │                    │                    │
//                 kQueueFull          micro-batch          poll_alerts()
//                (backpressure)      (GEMM-batched)
//
// Contracts, in order of importance:
//   - No silent drops. Every record is either processed, refused at the door
//     (Admission::kQueueFull — explicit backpressure), or shed by the
//     configured overload policy; refusals and sheds are counted in
//     desh::obs (desh_serve_rejected_total / desh_serve_shed_total).
//   - Replay equivalence. With no sheds, the alert stream is byte-identical
//     to feeding the same records through StreamingMonitor::observe one at
//     a time: micro-batching relies on observe_batch's round-based
//     decide_batch, whose GEMM rows are bit-identical to the 1-row path.
//   - Hot reload. swap_model() stages a pipeline loaded via
//     core::try_load_pipeline; the collector installs it at the next batch
//     boundary, so in-flight batches finish on the old model. Per-node
//     window state is reset at install (the new model's vocabulary may
//     encode phrases differently, so stale windows would be meaningless).
//   - Durability (opt-in via ServeConfig::wal). Every processed record is
//     appended to a write-ahead log before inference, group-committed on
//     the configured flush interval, and folded into periodic fuzzy
//     checkpoints of monitor + subsystem state. create() on a non-empty
//     WAL directory restores the newest valid checkpoint and replays the
//     log tail through the same observe path, reproducing the pre-crash
//     decision stream byte-for-byte (DESIGN.md "Durability"; proven by
//     tests/crashsim). A record is durable exactly when
//     wal_stats().committed_seq >= its seq — ack downstream effects on
//     that, not on submit() returning.
//
// Entry points return core::Expected — no exceptions cross this API for
// I/O or configuration errors.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/expected.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "logs/record.hpp"
#include "util/sync.hpp"
#include "wal/wal.hpp"

namespace desh::serve {

/// What to drop when the queue stays saturated above the shed watermark.
enum class ShedPolicy {
  /// Drop the records that have waited longest (their lead-time value has
  /// decayed the most).
  kOldestFirst,
  /// Drop records of the nodes with the shallowest anomaly windows — the
  /// nodes farthest from a chain match, i.e. the least likely to alert.
  kLowestRiskFirst,
};

struct ServeConfig {
  /// Ingest queue bound; submit() refuses (kQueueFull) beyond it.
  std::size_t queue_capacity = 4096;
  /// Largest micro-batch handed to one observe_batch pass.
  std::size_t max_batch = 256;
  /// After each pump, if the queue still holds more than
  /// watermark * capacity records, shed down to that level per the policy.
  /// 1.0 (the default) disables shedding: backpressure only.
  double shed_watermark = 1.0;
  ShedPolicy shed_policy = ShedPolicy::kOldestFirst;
  /// When false, no collector thread is started and the owner pumps
  /// batches explicitly via pump() — deterministic mode for tests and
  /// benchmarks (single caller only).
  bool start_collector = true;
  /// Monitor tuning (gap, re-arm, observe_batch worker count).
  core::MonitorConfig monitor;
  /// Durability layer (src/wal). Disabled unless `wal.directory` is set.
  core::WalConfig wal;

  /// All violations as "field.path: problem" strings; empty when valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Outcome of a submit() call — the explicit backpressure signal.
enum class Admission { kAccepted, kQueueFull, kStopped };

/// Snapshot of the server's lifetime counters (also exported via desh::obs).
struct ServeStats {
  std::size_t admitted = 0;   // accepted into the queue
  std::size_t rejected = 0;   // refused with kQueueFull
  std::size_t shed = 0;       // dropped by the overload policy
  std::size_t processed = 0;  // fed through the monitor
  std::size_t alerts = 0;     // alerts raised
  std::size_t batches = 0;    // micro-batches pumped
  std::size_t reloads = 0;    // models hot-swapped in
  std::size_t queue_depth = 0;  // current queue occupancy
};

class InferenceServer {
 public:
  /// Post-batch observer: receives every micro-batch's processed records
  /// and the alerts that batch raised, in processing order, after each
  /// pump. Runs on the collector thread (or the pump() caller in manual
  /// mode) OUTSIDE the queue lock, so a slow tap delays the next batch but
  /// never blocks submit(). Shed and rejected records are never tapped.
  /// This is the feed desh::adapt's drift detector and replay buffer
  /// consume.
  using Tap = std::function<void(std::span<const logs::LogRecord>,
                                 std::span<const core::MonitorAlert>)>;

  /// Builds a server around a fitted pipeline the server co-owns (the
  /// snapshot stays alive across swap_model until in-flight batches end).
  /// Errors: kInvalidArgument (null/unfitted pipeline), kInvalidConfig
  /// (all ServeConfig violations, field-path messages).
  [[nodiscard]] static core::Expected<std::unique_ptr<InferenceServer>>
  create(std::shared_ptr<const core::DeshPipeline> pipeline,
         ServeConfig config = {});

  /// Borrowing overload: the caller guarantees `pipeline` outlives the
  /// server and is not re-fitted while served.
  [[nodiscard]] static core::Expected<std::unique_ptr<InferenceServer>>
  create(const core::DeshPipeline& pipeline, ServeConfig config = {});

  ~InferenceServer();  // stop()s if the owner has not

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Offers one record. kAccepted = queued; kQueueFull = bounded queue at
  /// capacity, caller must retry/back off (the record was NOT taken);
  /// kStopped = server no longer accepts. Thread-safe; records of one node
  /// must be submitted in timestamp order for replay equivalence.
  Admission submit(const logs::LogRecord& record);

  /// Offers records in order, attempting each one (a mid-batch pump can
  /// free capacity). Returns how many were accepted; refusals are counted
  /// as rejected. Stops early only when the server is stopped.
  std::size_t submit_batch(std::span<const logs::LogRecord> records);

  /// Takes all alerts raised since the last poll, in processing order.
  std::vector<core::MonitorAlert> poll_alerts();

  /// Blocks until every admitted record has been processed (or shed) and
  /// any staged model swap is installed. In manual-pump mode this pumps
  /// inline.
  void drain();

  /// Stops admissions, processes what was already admitted, and joins the
  /// collector. Idempotent; called by the destructor.
  void stop();

  /// Stages the pipeline saved in `directory` (core::try_load_pipeline) for
  /// installation at the next batch boundary. Success means staged, not yet
  /// installed — desh_serve_reloads_total ticks at install. Errors: any
  /// try_load_pipeline error (kIo, kFormatVersion, kInvalidConfig, ...) or
  /// kUnavailable after stop().
  [[nodiscard]] core::Expected<void> swap_model(const std::string& directory);

  /// In-memory overload: stages an already-built fitted pipeline (e.g. a
  /// promoted challenger from adapt::ModelRegistry) without a disk
  /// round-trip. Same batch-boundary install and window-state reset as the
  /// directory overload. Errors: kInvalidArgument (null/unfitted),
  /// kUnavailable after stop().
  [[nodiscard]] core::Expected<void> swap_model(
      std::shared_ptr<const core::DeshPipeline> pipeline);

  /// Installs (or clears, with nullptr) the post-batch tap. Takes effect
  /// from the next pump; thread-safe.
  void set_tap(Tap tap);

  ServeStats stats() const;

  // --- durability (ServeConfig::wal; see the header comment) --------------

  /// Lifetime durability counters; `enabled` is false (and everything else
  /// zero) when the WAL is off. Exported as desh_wal_* metrics too.
  struct WalStats {
    bool enabled = false;
    std::uint64_t appended = 0;        // records staged into the log
    std::uint64_t committed_seq = 0;   // highest durable seq
    std::uint64_t applied_seq = 0;     // highest seq fed to the monitor
    std::uint64_t checkpoint_seq = 0;  // seq of the restored checkpoint
    std::uint64_t flushes = 0;         // group commits
    std::uint64_t checkpoints = 0;     // checkpoints written this run
    std::uint64_t replayed = 0;        // tail records replayed at startup
    std::uint64_t torn_frames = 0;     // corruption events seen at restore
    std::uint64_t io_errors = 0;       // write-path failures (kept serving)
  };
  WalStats wal_stats() const;

  /// Alerts the startup replay re-raised, each paired with the seq of the
  /// record that raised it. They are NOT queued for poll_alerts() — the
  /// pre-crash process already delivered alerts up to committed_seq, so
  /// re-delivery is the driver's call (dedup by seq; see tests/crashsim).
  const std::vector<std::pair<std::uint64_t, core::MonitorAlert>>&
  wal_replayed_alerts() const {
    return wal_replayed_alerts_;
  }

  /// Serializes a subsystem's state into a named checkpoint section;
  /// called on the pump thread at checkpoint time, outside the queue lock.
  using WalSaveHook = std::function<std::string()>;
  /// Receives that section's blob after a restore.
  using WalRestoreHook = std::function<void(const std::string&)>;

  /// Registers a named state hook (e.g. desh::adapt's replay buffer +
  /// champion pointer). If the startup restore recovered a section with
  /// this name, `restore` is invoked with it immediately, on the calling
  /// thread, before this returns. Re-registering a name replaces the hook.
  void wal_set_state_hook(std::string name, WalSaveHook save,
                          WalRestoreHook restore);

  /// The named section from the restored checkpoint, if any — for callers
  /// that need recovered state *before* wiring hooks (e.g. reloading the
  /// checkpointed champion model to construct the server with).
  std::optional<std::string> wal_restored_state(std::string_view name) const;

  /// Forces a checkpoint. Manual-pump mode: runs inline (the caller is the
  /// single pumper) and returns the write's outcome. Collector mode:
  /// stages a request the collector honors at the next batch boundary and
  /// returns immediately. kUnavailable when the WAL is disabled/stopped.
  [[nodiscard]] core::Expected<void> wal_checkpoint_now();

  /// Manual-pump mode only: coalesces and processes one micro-batch
  /// (installing any staged swap first) and returns how many records it
  /// processed. Single caller at a time.
  std::size_t pump();

 private:
  InferenceServer(std::shared_ptr<const core::DeshPipeline> pipeline,
                  ServeConfig config);

  struct Entry {
    logs::LogRecord record;
    std::chrono::steady_clock::time_point admitted_at;
  };

  void collector_loop();
  /// Drops queue overflow down to the shed watermark.
  void shed_locked() DESH_REQUIRES(mu_);
  std::size_t shed_limit() const;

  /// create()-time only: opens the WAL, restores the newest acceptable
  /// checkpoint into the monitor, replays the log tail. Runs before the
  /// collector thread exists, so it may touch pump-serialized state.
  [[nodiscard]] core::Expected<void> init_wal();
  /// Starts the collector thread (create()-time, after init_wal()).
  void start();
  /// Pump-thread only: flush + write checkpoint (monitor blob + hook
  /// sections) + rotate + GC.
  [[nodiscard]] core::Expected<void> do_wal_checkpoint()
      DESH_EXCLUDES(mu_);

  ServeConfig config_;
  // pipeline_/monitor_ are pump-serialized, not mutex-guarded: they are
  // swapped inside pump() under mu_ (batch boundary) but *read* by the same
  // single pumper outside the lock while inference runs. Annotating them
  // DESH_GUARDED_BY(mu_) would be a lie — the contract is "one pump() at a
  // time" (collector thread, or the manual-mode caller), enforced by
  // pumping_ below.
  std::shared_ptr<const core::DeshPipeline> pipeline_;
  std::unique_ptr<core::StreamingMonitor> monitor_;
  // The durable log and its replay bookkeeping are pump-serialized too:
  // written by init_wal() before any thread exists, then touched only
  // inside pump() / do_wal_checkpoint() (pump thread). Cross-thread reads
  // go through wal_snapshot_ below, refreshed under mu_ at each pump.
  std::unique_ptr<wal::DurableLog> wal_;
  std::uint64_t wal_applied_seq_ = 0;        // highest seq observed
  std::uint64_t wal_records_since_ckpt_ = 0;  // periodic-checkpoint budget
  // Set once by init_wal(), const afterwards (safe to return by reference).
  std::vector<std::pair<std::uint64_t, core::MonitorAlert>>
      wal_replayed_alerts_;

  mutable util::Mutex mu_;
  util::CondVar work_cv_;     // queue non-empty / swap staged / stop
  util::CondVar drained_cv_;  // queue empty and pump idle
  std::deque<Entry> queue_ DESH_GUARDED_BY(mu_);
  std::vector<core::MonitorAlert> alerts_ DESH_GUARDED_BY(mu_);
  Tap tap_ DESH_GUARDED_BY(mu_);  // copied out before invocation
  std::shared_ptr<const core::DeshPipeline> staged_pipeline_
      DESH_GUARDED_BY(mu_);
  ServeStats stats_ DESH_GUARDED_BY(mu_);
  bool stopping_ DESH_GUARDED_BY(mu_) = false;
  bool pumping_ DESH_GUARDED_BY(mu_) = false;
  /// Cross-thread-readable copy of the WAL counters (see wal_ above).
  WalStats wal_snapshot_ DESH_GUARDED_BY(mu_);
  /// wal_checkpoint_now() request, honored at the next batch boundary.
  bool wal_checkpoint_requested_ DESH_GUARDED_BY(mu_) = false;
  struct WalHook {
    WalSaveHook save;
    WalRestoreHook restore;
  };
  /// Registered state hooks, in registration order (copied out before the
  /// save calls, which run outside the lock).
  std::vector<std::pair<std::string, WalHook>> wal_hooks_
      DESH_GUARDED_BY(mu_);
  /// Non-monitor sections of the restored checkpoint, keyed by name.
  std::vector<std::pair<std::string, std::string>> wal_restored_sections_
      DESH_GUARDED_BY(mu_);

  std::thread collector_;
};

}  // namespace desh::serve
