#include "tensor/matrix.hpp"

#include <cmath>
#include <ostream>

#include "util/error.hpp"

namespace desh::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  util::require(data_.size() == rows * cols,
                "Matrix: data size does not match rows*cols");
}

float& Matrix::at(std::size_t r, std::size_t c) {
  util::require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

float Matrix::at(std::size_t r, std::size_t c) const {
  util::require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

std::span<float> Matrix::row(std::size_t r) {
  util::require(r < rows_, "Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const float> Matrix::row(std::size_t r) const {
  util::require(r < rows_, "Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(float value) {
  for (float& x : data_) x = value;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  util::require(same_shape(other), "Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  util::require(same_shape(other), "Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (float& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, util::Rng& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return uniform(rows, cols, limit, rng);
}

Matrix Matrix::uniform(std::size_t rows, std::size_t cols, float limit,
                       util::Rng& rng) {
  Matrix m(rows, cols);
  for (float& x : m.data_)
    x = static_cast<float>(rng.uniform(-limit, limit));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")[";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r ? "; " : "");
    for (std::size_t c = 0; c < m.cols(); ++c)
      os << (c ? " " : "") << m(r, c);
  }
  return os << "]";
}

}  // namespace desh::tensor
