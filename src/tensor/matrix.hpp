// Dense row-major float32 matrix — the storage type underneath the neural
// network stack. Vectors are represented as 1xN or Nx1 matrices.
//
// Design notes (cf. C++ Core Guidelines):
//  - value semantics with cheap moves; no raw owning pointers anywhere;
//  - bounds are enforced on the debug accessor `at`, the hot-path operator()
//    is unchecked by design and kept inline;
//  - all shape errors throw desh::util::InvalidArgument so callers can give
//    actionable diagnostics instead of UB.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace desh::tensor {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  /// Bounds-checked accessor; throws InvalidArgument on violation.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> row(std::size_t r);
  std::span<const float> row(std::size_t r) const;
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  void fill(float value);
  void set_zero() { fill(0.0f); }
  /// Resizes in place, discarding contents.
  void resize(std::size_t rows, std::size_t cols);

  /// Element-wise in-place updates; shapes must match.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float scalar);

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Initializers -------------------------------------------------------
  /// Xavier/Glorot uniform for a fan_in x fan_out weight (limit sqrt(6/(in+out))).
  static Matrix xavier(std::size_t rows, std::size_t cols, util::Rng& rng);
  /// Uniform in [-limit, limit].
  static Matrix uniform(std::size_t rows, std::size_t cols, float limit,
                        util::Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace desh::tensor
