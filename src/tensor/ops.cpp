#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace desh::tensor {

namespace {

// Inner kernel shared by matmul and matmul_acc: out(m x n) += A(m x k)*B(k x n).
// Loop order (i, l, j) streams both B and out rows sequentially, which is the
// cache-friendly order for row-major storage; the i-loop parallelizes cleanly.
void gemm_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
#pragma omp parallel for schedule(static) if (m * n * k > 32768)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m); ++i) {
    const float* arow = pa + static_cast<std::size_t>(i) * k;
    float* orow = po + static_cast<std::size_t>(i) * n;
    for (std::size_t l = 0; l < k; ++l) {
      const float av = arow[l];
      if (av == 0.0f) continue;
      const float* brow = pb + l * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  util::require(a.cols() == b.rows(), "matmul: inner dimensions differ");
  out.resize(a.rows(), b.cols());
  gemm_accumulate(a, b, out);
}

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  util::require(a.cols() == b.rows(), "matmul_acc: inner dimensions differ");
  util::require(out.rows() == a.rows() && out.cols() == b.cols(),
                "matmul_acc: output shape mismatch");
  gemm_accumulate(a, b, out);
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  util::require(a.rows() == b.rows(), "matmul_at_b: inner dimensions differ");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  out.resize(m, n);
  // out(i,j) = sum_l A(l,i) * B(l,j): stream A and B row-wise, scatter into out.
  for (std::size_t l = 0; l < k; ++l) {
    std::span<const float> arow = a.row(l);
    std::span<const float> brow = b.row(l);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  util::require(a.cols() == b.cols(), "matmul_a_bt: inner dimensions differ");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  out.resize(m, n);
#pragma omp parallel for schedule(static) if (m * n * k > 32768)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m); ++i) {
    std::span<const float> arow = a.row(static_cast<std::size_t>(i));
    for (std::size_t j = 0; j < n; ++j)
      out(static_cast<std::size_t>(i), j) = dot(arow, b.row(j));
  }
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
  util::require(x.same_shape(y), "axpy: shape mismatch");
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

void add_row_bias(Matrix& m, const Matrix& bias) {
  util::require(bias.rows() == 1 && bias.cols() == m.cols(),
                "add_row_bias: bias must be 1 x cols");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.data() + r * m.cols();
    const float* b = bias.data();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
}

void sigmoid(const Matrix& in, Matrix& out) {
  out.resize(in.rows(), in.cols());
  const float* pi = in.data();
  float* po = out.data();
  for (std::size_t i = 0; i < in.size(); ++i)
    po[i] = 1.0f / (1.0f + std::exp(-pi[i]));
}

void tanh_act(const Matrix& in, Matrix& out) {
  out.resize(in.rows(), in.cols());
  const float* pi = in.data();
  float* po = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) po[i] = std::tanh(pi[i]);
}

float sigmoid_grad_from_value(float s) { return s * (1.0f - s); }

float tanh_grad_from_value(float t) { return 1.0f - t * t; }

void softmax_rows(const Matrix& in, Matrix& out) {
  out.resize(in.rows(), in.cols());
  for (std::size_t r = 0; r < in.rows(); ++r) {
    std::span<const float> row = in.row(r);
    float mx = *std::max_element(row.begin(), row.end());
    float denom = 0.0f;
    float* orow = out.data() + r * in.cols();
    for (std::size_t c = 0; c < in.cols(); ++c) {
      orow[c] = std::exp(row[c] - mx);
      denom += orow[c];
    }
    const float inv = 1.0f / denom;
    for (std::size_t c = 0; c < in.cols(); ++c) orow[c] *= inv;
  }
}

float logsumexp(std::span<const float> row) {
  util::require(!row.empty(), "logsumexp: empty input");
  float mx = *std::max_element(row.begin(), row.end());
  float acc = 0.0f;
  for (float x : row) acc += std::exp(x - mx);
  return mx + std::log(acc);
}

std::size_t argmax(std::span<const float> row) {
  util::require(!row.empty(), "argmax: empty input");
  return static_cast<std::size_t>(
      std::max_element(row.begin(), row.end()) - row.begin());
}

std::vector<std::size_t> topk(std::span<const float> row, std::size_t k) {
  util::require(k > 0 && k <= row.size(), "topk: k out of range");
  std::vector<std::size_t> idx(row.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(),
                    [&](std::size_t a, std::size_t b) { return row[a] > row[b]; });
  idx.resize(k);
  return idx;
}

void clip_inplace(Matrix& m, float limit) {
  util::require(limit > 0, "clip_inplace: limit must be positive");
  for (float& x : m.flat()) x = std::clamp(x, -limit, limit);
}

float l2_norm(const Matrix& m) {
  double acc = 0;
  for (float x : m.flat()) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

float dot(std::span<const float> a, std::span<const float> b) {
  util::require(a.size() == b.size(), "dot: size mismatch");
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace desh::tensor
