#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/error.hpp"

// Hot element-wise and GEMM loops are compiled once per ISA level and
// dispatched at load time (ifunc), so the build stays baseline x86-64 while
// AVX-512/AVX2 machines get full-width vectors. Every caller in the process
// dispatches to the same clone, so within-build equivalences (batched vs
// single-record replay) are unaffected.
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define DESH_ISA_CLONES __attribute__((target_clones("avx512f", "avx2", "default")))
#endif
#endif
#ifndef DESH_ISA_CLONES
#define DESH_ISA_CLONES
#endif

namespace desh::tensor {

namespace {

// Row-block kernel: out(i0..i1, :) += A(i0..i1, :) * B. The reduction loop
// (l) sits OUTSIDE the row loop, so one streamed pass over B serves every row
// in the block — the lever that makes micro-batched inference beat per-row
// GEMVs once B outgrows the fastest cache level. Per-(i,j) accumulation runs
// in ascending-l order as a single fused multiply-add chain, so results are
// bit-identical to the register-tiled full-block kernel below at any width.
DESH_ISA_CLONES
void gemm_block(const float* pa, const float* pb, float* po, std::size_t i0,
                std::size_t i1, std::size_t k, std::size_t n) {
  for (std::size_t l = 0; l < k; ++l) {
    const float* brow = pb + l * n;
    for (std::size_t i = i0; i < i1; ++i) {
      const float av = pa[i * k + l];
      if (av == 0.0f) continue;  // sparse rows (e.g. zero initial state)
      float* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

// Inner kernel shared by matmul and matmul_acc: out(m x n) += A(m x k)*B(k x n).
// An 8-row block keeps the out tile L1-resident across the streamed pass over
// B; the block loop parallelizes as cleanly as a plain row loop.
constexpr std::size_t kGemmRowBlock = 8;

// 16-float vector used by the full-block kernel. GNU vector extension:
// native zmm in the avx512f clone, emulated as ymm/xmm pairs below it.
// aligned(4) so unaligned row pointers load legally via memcpy.
typedef float v16f __attribute__((vector_size(64), aligned(4)));

// Full-block fast path: an 8-row x 32-column tile of out held in named
// accumulator registers across the whole l loop, so out is read and written
// ONCE per column tile instead of once per l — the simple kernel's
// store/load re-traversal of the out tile is what caps it well below FMA
// throughput (measured 9 -> 22 GMAC/s on an AVX-512 Xeon). Explicit named
// vector variables, not an array: a subscripted accumulator array partially
// spills to the stack and costs ~30%. The software prefetch covers the
// 4-cache-line-per-l strided walk of B that defeats the hardware prefetcher.
// Accumulation per (i,j) is still one ascending-l FMA chain, arithmetically
// identical to gemm_block, so mixed use across batch widths keeps replay
// equivalence bit-exact.
DESH_ISA_CLONES
void gemm_block8(const float* pa, const float* pb, float* po, std::size_t i0,
                 std::size_t k, std::size_t n) {
  constexpr std::size_t JT = 32;
#define DESH_LOADV(dst, src) std::memcpy(&(dst), (src), sizeof(v16f))
#define DESH_STOREV(dst, src) std::memcpy((dst), &(src), sizeof(v16f))
  std::size_t j0 = 0;
  for (; j0 + JT <= n; j0 += JT) {
    v16f a00, a01, a10, a11, a20, a21, a30, a31;
    v16f a40, a41, a50, a51, a60, a61, a70, a71;
    float* const out = po + i0 * n + j0;
    DESH_LOADV(a00, out + 0 * n); DESH_LOADV(a01, out + 0 * n + 16);
    DESH_LOADV(a10, out + 1 * n); DESH_LOADV(a11, out + 1 * n + 16);
    DESH_LOADV(a20, out + 2 * n); DESH_LOADV(a21, out + 2 * n + 16);
    DESH_LOADV(a30, out + 3 * n); DESH_LOADV(a31, out + 3 * n + 16);
    DESH_LOADV(a40, out + 4 * n); DESH_LOADV(a41, out + 4 * n + 16);
    DESH_LOADV(a50, out + 5 * n); DESH_LOADV(a51, out + 5 * n + 16);
    DESH_LOADV(a60, out + 6 * n); DESH_LOADV(a61, out + 6 * n + 16);
    DESH_LOADV(a70, out + 7 * n); DESH_LOADV(a71, out + 7 * n + 16);
    const float* ar = pa + i0 * k;
    for (std::size_t l = 0; l < k; ++l) {
      const float* bp = pb + l * n + j0;
      __builtin_prefetch(bp + 4 * n);
      __builtin_prefetch(bp + 4 * n + 16);
      v16f b0, b1;
      DESH_LOADV(b0, bp);
      DESH_LOADV(b1, bp + 16);
      const float v0 = ar[0 * k + l], v1 = ar[1 * k + l];
      const float v2 = ar[2 * k + l], v3 = ar[3 * k + l];
      const float v4 = ar[4 * k + l], v5 = ar[5 * k + l];
      const float v6 = ar[6 * k + l], v7 = ar[7 * k + l];
      // The zero guards mirror gemm_block's sparse-row skip: skip decisions
      // depend only on the A element, so single-row and batched runs make
      // identical ones — required for bit-exact replay equivalence. They are
      // predictable branches, ~free on dense rows.
      if (v0 != 0.0f) { a00 += v0 * b0; a01 += v0 * b1; }
      if (v1 != 0.0f) { a10 += v1 * b0; a11 += v1 * b1; }
      if (v2 != 0.0f) { a20 += v2 * b0; a21 += v2 * b1; }
      if (v3 != 0.0f) { a30 += v3 * b0; a31 += v3 * b1; }
      if (v4 != 0.0f) { a40 += v4 * b0; a41 += v4 * b1; }
      if (v5 != 0.0f) { a50 += v5 * b0; a51 += v5 * b1; }
      if (v6 != 0.0f) { a60 += v6 * b0; a61 += v6 * b1; }
      if (v7 != 0.0f) { a70 += v7 * b0; a71 += v7 * b1; }
    }
    DESH_STOREV(out + 0 * n, a00); DESH_STOREV(out + 0 * n + 16, a01);
    DESH_STOREV(out + 1 * n, a10); DESH_STOREV(out + 1 * n + 16, a11);
    DESH_STOREV(out + 2 * n, a20); DESH_STOREV(out + 2 * n + 16, a21);
    DESH_STOREV(out + 3 * n, a30); DESH_STOREV(out + 3 * n + 16, a31);
    DESH_STOREV(out + 4 * n, a40); DESH_STOREV(out + 4 * n + 16, a41);
    DESH_STOREV(out + 5 * n, a50); DESH_STOREV(out + 5 * n + 16, a51);
    DESH_STOREV(out + 6 * n, a60); DESH_STOREV(out + 6 * n + 16, a61);
    DESH_STOREV(out + 7 * n, a70); DESH_STOREV(out + 7 * n + 16, a71);
  }
#undef DESH_LOADV
#undef DESH_STOREV
  if (j0 < n)  // column remainder: simple l-outer pass over [j0, n)
    for (std::size_t l = 0; l < k; ++l) {
      const float* brow = pb + l * n;
      for (std::size_t r = 0; r < kGemmRowBlock; ++r) {
        const float av = pa[(i0 + r) * k + l];
        if (av == 0.0f) continue;
        float* orow = po + (i0 + r) * n;
        for (std::size_t j = j0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
}

void gemm_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::size_t blocks = (m + kGemmRowBlock - 1) / kGemmRowBlock;
#pragma omp parallel for schedule(static) if (m * n * k > 32768)
  for (std::ptrdiff_t bi = 0; bi < static_cast<std::ptrdiff_t>(blocks); ++bi) {
    const std::size_t i0 = static_cast<std::size_t>(bi) * kGemmRowBlock;
    const std::size_t i1 = std::min(i0 + kGemmRowBlock, m);
    if (i1 - i0 == kGemmRowBlock)
      gemm_block8(pa, pb, po, i0, k, n);
    else
      gemm_block(pa, pb, po, i0, i1, k, n);
  }
}

}  // namespace

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  util::require(a.cols() == b.rows(), "matmul: inner dimensions differ");
  out.resize(a.rows(), b.cols());
  gemm_accumulate(a, b, out);
}

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  util::require(a.cols() == b.rows(), "matmul_acc: inner dimensions differ");
  util::require(out.rows() == a.rows() && out.cols() == b.cols(),
                "matmul_acc: output shape mismatch");
  gemm_accumulate(a, b, out);
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  util::require(a.rows() == b.rows(), "matmul_at_b: inner dimensions differ");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  out.resize(m, n);
  // out(i,j) = sum_l A(l,i) * B(l,j): stream A and B row-wise, scatter into out.
  for (std::size_t l = 0; l < k; ++l) {
    std::span<const float> arow = a.row(l);
    std::span<const float> brow = b.row(l);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  util::require(a.cols() == b.cols(), "matmul_a_bt: inner dimensions differ");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  out.resize(m, n);
#pragma omp parallel for schedule(static) if (m * n * k > 32768)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m); ++i) {
    std::span<const float> arow = a.row(static_cast<std::size_t>(i));
    for (std::size_t j = 0; j < n; ++j)
      out(static_cast<std::size_t>(i), j) = dot(arow, b.row(j));
  }
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
  util::require(x.same_shape(y), "axpy: shape mismatch");
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

void add_row_bias(Matrix& m, const Matrix& bias) {
  util::require(bias.rows() == 1 && bias.cols() == m.cols(),
                "add_row_bias: bias must be 1 x cols");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.data() + r * m.cols();
    const float* b = bias.data();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
}

namespace {

DESH_ISA_CLONES
void sigmoid_span(const float* pi, float* po, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) po[i] = fast_sigmoid(pi[i]);
}

DESH_ISA_CLONES
void tanh_span(const float* pi, float* po, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) po[i] = fast_tanh(pi[i]);
}

}  // namespace

void sigmoid(const Matrix& in, Matrix& out) {
  out.resize(in.rows(), in.cols());
  sigmoid_span(in.data(), out.data(), in.size());
}

void tanh_act(const Matrix& in, Matrix& out) {
  out.resize(in.rows(), in.cols());
  tanh_span(in.data(), out.data(), in.size());
}

void lstm_activate_gates(Matrix& gates, std::size_t hidden) {
  util::require(gates.cols() == 4 * hidden,
                "lstm_activate_gates: gates must be rows x 4h");
  for (std::size_t r = 0; r < gates.rows(); ++r) {
    float* row = gates.data() + r * 4 * hidden;
    sigmoid_span(row, row, 2 * hidden);                          // i, f
    tanh_span(row + 2 * hidden, row + 2 * hidden, hidden);       // g
    sigmoid_span(row + 3 * hidden, row + 3 * hidden, hidden);    // o
  }
}

DESH_ISA_CLONES
void lstm_cell_update(const float* gates, const float* c_prev, float* c,
                      float* tanh_c, float* h, std::size_t hidden) {
  // Three plain passes (instead of one fused loop) so each vectorizes even
  // under the documented aliasing (c_prev == c, tanh_c == h).
  for (std::size_t j = 0; j < hidden; ++j)
    c[j] = gates[hidden + j] * c_prev[j] + gates[j] * gates[2 * hidden + j];
  tanh_span(c, tanh_c, hidden);
  for (std::size_t j = 0; j < hidden; ++j) h[j] = gates[3 * hidden + j] * tanh_c[j];
}

float sigmoid_grad_from_value(float s) { return s * (1.0f - s); }

float tanh_grad_from_value(float t) { return 1.0f - t * t; }

void softmax_rows(const Matrix& in, Matrix& out) {
  out.resize(in.rows(), in.cols());
  for (std::size_t r = 0; r < in.rows(); ++r) {
    std::span<const float> row = in.row(r);
    float mx = *std::max_element(row.begin(), row.end());
    float denom = 0.0f;
    float* orow = out.data() + r * in.cols();
    for (std::size_t c = 0; c < in.cols(); ++c) {
      orow[c] = std::exp(row[c] - mx);
      denom += orow[c];
    }
    const float inv = 1.0f / denom;
    for (std::size_t c = 0; c < in.cols(); ++c) orow[c] *= inv;
  }
}

float logsumexp(std::span<const float> row) {
  util::require(!row.empty(), "logsumexp: empty input");
  float mx = *std::max_element(row.begin(), row.end());
  float acc = 0.0f;
  for (float x : row) acc += std::exp(x - mx);
  return mx + std::log(acc);
}

std::size_t argmax(std::span<const float> row) {
  util::require(!row.empty(), "argmax: empty input");
  return static_cast<std::size_t>(
      std::max_element(row.begin(), row.end()) - row.begin());
}

std::vector<std::size_t> topk(std::span<const float> row, std::size_t k) {
  util::require(k > 0 && k <= row.size(), "topk: k out of range");
  std::vector<std::size_t> idx(row.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(),
                    [&](std::size_t a, std::size_t b) { return row[a] > row[b]; });
  idx.resize(k);
  return idx;
}

void clip_inplace(Matrix& m, float limit) {
  util::require(limit > 0, "clip_inplace: limit must be positive");
  for (float& x : m.flat()) x = std::clamp(x, -limit, limit);
}

float l2_norm(const Matrix& m) {
  double acc = 0;
  for (float x : m.flat()) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

float dot(std::span<const float> a, std::span<const float> b) {
  util::require(a.size() == b.size(), "dot: size mismatch");
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace desh::tensor
