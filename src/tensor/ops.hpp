// Free-function kernels over Matrix. These are the only compute-intensive
// primitives in the repository; everything in desh::nn reduces to them.
//
// GEMM variants use a blocked inner loop and parallelize the row loop with
// OpenMP when available (shape-checked, single allocation for the output).
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/matrix.hpp"

namespace desh::tensor {

/// Branch-free expf: Cephes-style range reduction plus a degree-5
/// polynomial, accurate to a few ulp over the clamped domain [-87, 87]
/// (outputs saturate outside it; NaN saturates too instead of propagating).
/// Pure float/int arithmetic — no libm call, no control flow — so
/// element-wise loops over it auto-vectorize; scalar libm exp/tanh in the
/// LSTM gate activations would otherwise dominate per-record serving
/// latency. Results are identical for every call site within a build, which
/// is all the replay-equivalence guarantees require.
inline float fast_expf(float x) {
  // |x| <= 87 (e^87 ~ 6e37 < FLT_MAX, exponent bias below stays valid).
  // The clamp runs in the integer domain — non-negative IEEE floats order
  // as ints — because a float ternary/std::min would defeat if-conversion
  // under strict IEEE and block vectorization.
  const std::int32_t ai = std::min(std::bit_cast<std::int32_t>(std::fabs(x)),
                                   std::bit_cast<std::int32_t>(87.0f));
  x = std::copysign(std::bit_cast<float>(ai), x);
  // n = round(x / ln 2) via the 1.5 * 2^23 magic shift (round-to-nearest).
  const float shifted = x * 1.44269504088896341f + 12582912.0f;
  const float n = shifted - 12582912.0f;
  // r = x - n * ln 2, with ln 2 split hi/lo to keep the reduction exact.
  float r = x - n * 0.693359375f;
  r -= n * -2.12194440e-4f;
  // e^r on [-ln2/2, ln2/2] (Cephes expf coefficients).
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = (p * r) * r + r + 1.0f;
  // Scale by 2^n through the exponent field.
  const std::int32_t biased = static_cast<std::int32_t>(n) + 127;
  return p * std::bit_cast<float>(biased << 23);
}

/// 1 / (1 + e^-x) on top of fast_expf; vectorizable, saturates to {0, 1}.
inline float fast_sigmoid(float x) { return 1.0f / (1.0f + fast_expf(-x)); }

/// tanh(x) = (e^2x - 1) / (e^2x + 1) on top of fast_expf; vectorizable,
/// saturates to +/-1 for |x| > 43.5.
inline float fast_tanh(float x) {
  const float e = fast_expf(2.0f * x);
  return (e - 1.0f) / (e + 1.0f);
}

/// out = A * B. Shapes: (m x k) * (k x n) -> (m x n). `out` is resized.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);
/// out = A^T * B. Shapes: (k x m)^T * (k x n) -> (m x n).
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);
/// out = A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n).
void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out);
/// out += A * B (accumulating variant; `out` must already be (m x n)).
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& out);

/// y += alpha * x over flat storage; shapes must match.
void axpy(float alpha, const Matrix& x, Matrix& y);

/// Adds the 1 x n bias row to every row of `m` (n columns).
void add_row_bias(Matrix& m, const Matrix& bias);

/// Element-wise activations (out resized to match input).
void sigmoid(const Matrix& in, Matrix& out);
void tanh_act(const Matrix& in, Matrix& out);
/// In-place LSTM gate activation over a (rows x 4h) gate matrix laid out as
/// [i | f | g | o]: sigmoid on i,f [0,2h), tanh on g [2h,3h), sigmoid on
/// o [3h,4h). Lives here (not in nn) so the element loops compile under the
/// same ISA-dispatched clones as the GEMM kernel.
void lstm_activate_gates(Matrix& gates, std::size_t hidden);
/// Fused LSTM cell update over one row of width `hidden`, from the activated
/// gate row `gates` (4h wide, [i | f | g | o]):
///   c = f (.) c_prev + i (.) g;  tanh_c = tanh(c);  h = o (.) tanh_c.
/// `c_prev` may alias `c` (in-place state step) and `tanh_c` may alias `h`
/// (when the tanh intermediate is not cached).
void lstm_cell_update(const float* gates, const float* c_prev, float* c,
                      float* tanh_c, float* h, std::size_t hidden);
/// d/dx sigmoid given the *activated* value s: s * (1 - s).
float sigmoid_grad_from_value(float s);
/// d/dx tanh given the *activated* value t: 1 - t^2.
float tanh_grad_from_value(float t);

/// Numerically stable row-wise softmax.
void softmax_rows(const Matrix& in, Matrix& out);
/// log(sum(exp(row))) with the max-shift trick.
float logsumexp(std::span<const float> row);
/// Index of the maximum element in a row.
std::size_t argmax(std::span<const float> row);
/// Indices of the k largest elements, descending by value.
std::vector<std::size_t> topk(std::span<const float> row, std::size_t k);

/// Clamps every element to [-limit, limit].
void clip_inplace(Matrix& m, float limit);
/// L2 norm over flat storage.
float l2_norm(const Matrix& m);

/// Dot product of equally-sized spans.
float dot(std::span<const float> a, std::span<const float> b);

}  // namespace desh::tensor
