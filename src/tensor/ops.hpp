// Free-function kernels over Matrix. These are the only compute-intensive
// primitives in the repository; everything in desh::nn reduces to them.
//
// GEMM variants use a blocked inner loop and parallelize the row loop with
// OpenMP when available (shape-checked, single allocation for the output).
#pragma once

#include <cstddef>
#include <span>

#include "tensor/matrix.hpp"

namespace desh::tensor {

/// out = A * B. Shapes: (m x k) * (k x n) -> (m x n). `out` is resized.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);
/// out = A^T * B. Shapes: (k x m)^T * (k x n) -> (m x n).
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);
/// out = A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n).
void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out);
/// out += A * B (accumulating variant; `out` must already be (m x n)).
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& out);

/// y += alpha * x over flat storage; shapes must match.
void axpy(float alpha, const Matrix& x, Matrix& y);

/// Adds the 1 x n bias row to every row of `m` (n columns).
void add_row_bias(Matrix& m, const Matrix& bias);

/// Element-wise activations (out resized to match input).
void sigmoid(const Matrix& in, Matrix& out);
void tanh_act(const Matrix& in, Matrix& out);
/// d/dx sigmoid given the *activated* value s: s * (1 - s).
float sigmoid_grad_from_value(float s);
/// d/dx tanh given the *activated* value t: 1 - t^2.
float tanh_grad_from_value(float t);

/// Numerically stable row-wise softmax.
void softmax_rows(const Matrix& in, Matrix& out);
/// log(sum(exp(row))) with the max-shift trick.
float logsumexp(std::span<const float> row);
/// Index of the maximum element in a row.
std::size_t argmax(std::span<const float> row);
/// Indices of the k largest elements, descending by value.
std::vector<std::size_t> topk(std::span<const float> row, std::size_t k);

/// Clamps every element to [-limit, limit].
void clip_inplace(Matrix& m, float limit);
/// L2 norm over flat storage.
float l2_norm(const Matrix& m);

/// Dot product of equally-sized spans.
float dot(std::span<const float> a, std::span<const float> b);

}  // namespace desh::tensor
