#include "util/bytes.hpp"

#include <cstring>

namespace desh::util {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xFFu));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    put_u8(out, static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    put_u8(out, static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_bytes(std::string& out, std::string_view bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

bool ByteReader::get_u8(std::uint8_t& out) {
  if (remaining() < 1) return false;
  out = static_cast<std::uint8_t>(bytes_[pos_++]);
  return true;
}

bool ByteReader::get_u16(std::uint16_t& out) {
  if (remaining() < 2) return false;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v |= static_cast<std::uint16_t>(
             static_cast<std::uint8_t>(
                 bytes_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos_ += 2;
  out = v;
  return true;
}

bool ByteReader::get_u32(std::uint32_t& out) {
  if (remaining() < 4) return false;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(
                 bytes_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos_ += 4;
  out = v;
  return true;
}

bool ByteReader::get_u64(std::uint64_t& out) {
  if (remaining() < 8) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(
                 bytes_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos_ += 8;
  out = v;
  return true;
}

bool ByteReader::get_f64(double& out) {
  std::uint64_t bits = 0;
  if (!get_u64(bits)) return false;
  std::memcpy(&out, &bits, sizeof out);
  return true;
}

bool ByteReader::get_bytes(std::string& out) {
  std::uint32_t len = 0;
  if (!get_u32(len)) return false;
  if (remaining() < len) {
    pos_ -= 4;  // leave the reader where it was: nothing was consumed
    return false;
  }
  out.assign(bytes_.substr(pos_, len));
  pos_ += len;
  return true;
}

}  // namespace desh::util
