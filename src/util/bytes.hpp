// Portable little-endian byte packing, shared by every on-disk format
// (wal segments/checkpoints, the monitor's checkpoint blob). Integers are
// written byte-by-byte so the encoding is identical on any host; doubles
// travel as their u64 bit image, so a round trip is bit-exact — required
// wherever restored state must reproduce decisions byte-for-byte.
//
// Reads are total: every ByteReader::get_* is bounds-checked and returns
// false instead of reading past the end, so decoders built on it can be
// fed arbitrary bytes (fuzzed, truncated, bit-rotted) without crashing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace desh::util {

void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);
/// u32 length prefix + the bytes.
void put_bytes(std::string& out, std::string_view bytes);

/// Bounds-checked sequential reader over a byte buffer. Every get_*
/// returns false (leaving `out` untouched) instead of reading past the
/// end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool get_u8(std::uint8_t& out);
  bool get_u16(std::uint16_t& out);
  bool get_u32(std::uint32_t& out);
  bool get_u64(std::uint64_t& out);
  bool get_f64(double& out);
  bool get_bytes(std::string& out);  // u32 len + len bytes

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace desh::util
