#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace desh::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[std::string(arg)] = argv[++i];
    } else {
      flags_[std::string(arg)] = "true";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string v = to_lower(it->second);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace desh::util
