// Error types shared across the Desh libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace desh::util {

/// Base class for all errors thrown by Desh libraries. Deriving from
/// std::runtime_error keeps the what() contract and lets callers catch either
/// the Desh-specific or the standard hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad shape, empty input, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An I/O operation (model save/load, log file read) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `what` when `cond` is false. Used to express
/// preconditions in public APIs (kept in release builds, unlike assert).
inline void require(bool cond, const std::string& what) {
  // desh-lint: allow(throw-discipline) require() is the sanctioned thrower
  if (!cond) throw InvalidArgument(what);
}

}  // namespace desh::util
