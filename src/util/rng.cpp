#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace desh::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = acc;
}

Rng::Rng(std::uint64_t seed) : engine_(seed) {}

Rng Rng::fork(std::uint64_t stream_id) {
  // Mix the stream id through splitmix64 so adjacent ids land far apart.
  std::uint64_t mix = next_u64() ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(mix));
}

std::uint64_t Rng::next_u64() { return engine_(); }

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  require(n > 0, "Rng::uniform_index: n must be > 0");
  // Lemire's nearly-divisionless bounded sampling with rejection.
  while (true) {
    std::uint64_t x = engine_();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= n || low >= (-n) % n) return static_cast<std::uint64_t>(m >> 64);
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  require(rate > 0, "Rng::exponential: rate must be > 0");
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::chance(double p) { return uniform() < p; }

std::uint64_t Rng::poisson(double mean) {
  require(mean >= 0, "Rng::poisson: mean must be >= 0");
  if (mean == 0) return 0;
  if (mean > 64.0) {
    // Normal approximation, adequate for workload-sizing draws.
    double x = normal(mean, std::sqrt(mean));
    return x <= 0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = uniform();
  std::uint64_t n = 0;
  while (prod > limit) {
    ++n;
    prod *= uniform();
  }
  return n;
}

std::size_t Rng::discrete(std::span<const double> weights) {
  require(!weights.empty(), "Rng::discrete: weights must be non-empty");
  double total = 0;
  for (double w : weights) {
    require(w >= 0, "Rng::discrete: weights must be non-negative");
    total += w;
  }
  require(total > 0, "Rng::discrete: total weight must be > 0");
  double target = uniform() * total;
  double cum = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;  // numerical guard
}

AliasSampler::AliasSampler(std::span<const double> weights) {
  require(!weights.empty(), "AliasSampler: weights must be non-empty");
  const std::size_t n = weights.size();
  double total = 0;
  for (double w : weights) {
    require(w >= 0, "AliasSampler: weights must be non-negative");
    total += w;
  }
  require(total > 0, "AliasSampler: total weight must be > 0");

  prob_.resize(n);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    std::uint32_t s = small.back();
    small.pop_back();
    std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const {
  std::size_t column = static_cast<std::size_t>(rng.uniform_index(prob_.size()));
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

}  // namespace desh::util
