// Deterministic, seedable random number generation.
//
// Every stochastic component in Desh (weight init, the synthetic Cray log
// generator, negative sampling, data shuffles) draws from desh::util::Rng so
// that a run is fully reproducible from a single 64-bit seed. The engine is
// xoshiro256** (public domain, Blackman & Vigna) seeded via splitmix64, which
// is both faster and statistically stronger than std::minstd and avoids the
// cross-platform variability of std:: distributions.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace desh::util {

/// splitmix64 step; used for seed expansion and as a cheap standalone hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** engine with a std::uniform_random_bit_generator interface.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()();

  /// Advances the state by 2^128 steps; gives independent parallel streams.
  void long_jump();

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Distribution facade over Xoshiro256. All methods are deterministic given
/// the construction seed and call sequence.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream; children with distinct ids never
  /// correlate with the parent or each other.
  Rng fork(std::uint64_t stream_id);

  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second variate).
  double normal();
  double normal(double mean, double stddev);
  /// Log-normal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma);
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Bernoulli trial.
  bool chance(double p);
  /// Poisson-distributed count (Knuth for small mean, normal approx above 64).
  std::uint64_t poisson(double mean);
  /// Samples an index proportionally to non-negative `weights`.
  std::size_t discrete(std::span<const double> weights);
  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  Xoshiro256 engine_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Precomputed O(1) sampler for a fixed discrete distribution
/// (Walker/Vose alias method). Used for unigram^0.75 negative sampling where
/// millions of draws are made from one static distribution.
class AliasSampler {
 public:
  explicit AliasSampler(std::span<const double> weights);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace desh::util
