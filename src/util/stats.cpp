#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace desh::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  require(!samples_.empty(), "SampleSet::quantile: no samples");
  require(q >= 0.0 && q <= 1.0, "SampleSet::quantile: q out of [0,1]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  require(bins > 0, "Histogram: need at least one bin");
  require(hi > lo, "Histogram: hi must exceed lo");
}

void Histogram::add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  require(bin < counts_.size(), "Histogram::bin_count: bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

}  // namespace desh::util
