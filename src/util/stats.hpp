// Streaming statistics accumulators used throughout the evaluation harness
// (lead-time means/deviations of Figs 6-7, metric aggregation, generator
// self-checks in tests).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace desh::util {

/// Welford single-pass mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains all samples; supports exact quantiles. Intended for the modest
/// sample counts of evaluation runs, not for unbounded streams.
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  /// Exact quantile by linear interpolation, q in [0, 1].
  double quantile(double q) const;
  std::span<const double> samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace desh::util
