#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace desh::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  return contains(to_lower(haystack), to_lower(needle));
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace desh::util
