// Small string utilities shared by the log parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace desh::util {

/// Splits on a single delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Splits on runs of whitespace; empty tokens are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool contains(std::string_view haystack, std::string_view needle);
bool contains_ci(std::string_view haystack, std::string_view needle);

/// printf-style double formatting with fixed decimals (e.g. format_fixed(3.14159, 2) == "3.14").
std::string format_fixed(double value, int decimals);

}  // namespace desh::util
