// Synchronization wrappers with Clang thread-safety (capability) annotations
// — the statically checked locking layer every Desh subsystem uses instead of
// raw <mutex> primitives (desh_lint rule `raw-sync` enforces this; the one
// std::mutex instance in the tree lives inside Mutex below).
//
// On Clang the annotations turn the locking conventions PR1–PR4 established
// by hand into compile errors: a field marked DESH_GUARDED_BY(mu_) cannot be
// read or written without mu_ held, and a function marked DESH_REQUIRES(mu_)
// cannot be called without it. The build enables
// -Wthread-safety -Werror=thread-safety, so a violation fails the Clang CI
// leg (tests/compile_fail proves the rejection actually fires). On GCC every
// macro expands to nothing and the wrappers are zero-cost forwarding shims —
// same codegen as the raw primitives they replace.
//
// This header is deliberately header-only and standard-library-only: util
// links against obs, never the reverse, yet obs' registry locks through
// these wrappers too. A header with no link dependency keeps that layering
// intact (see src/obs/CMakeLists.txt).
//
// Idiom summary (DESIGN.md "Correctness tooling"):
//   util::Mutex mu_;
//   int depth_ DESH_GUARDED_BY(mu_);            // field needs mu_
//   void pump_locked() DESH_REQUIRES(mu_);      // caller must hold mu_
//   { util::LockGuard lock(mu_); ++depth_; }    // scoped acquire
//   util::UniqueLock lk(mu_);                   // relockable scope (CondVar)
//   while (!ready_) cv_.wait(lk);               // inline predicate loop, so
//                                               // the analysis sees the lock
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Annotation macros. Active only under Clang's -Wthread-safety analysis;
// no-ops everywhere else (GCC has no equivalent attribute family).
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define DESH_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DESH_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability ("mutex" names it in
/// diagnostics).
#define DESH_CAPABILITY(x) DESH_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define DESH_SCOPED_CAPABILITY DESH_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be accessed while holding `x`.
#define DESH_GUARDED_BY(x) DESH_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field: the *pointee* may only be accessed while holding `x`.
#define DESH_PT_GUARDED_BY(x) DESH_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the listed capabilities to be held by the caller.
#define DESH_REQUIRES(...) \
  DESH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on return).
#define DESH_ACQUIRE(...) \
  DESH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities (no longer held on return).
#define DESH_RELEASE(...) \
  DESH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `result`.
#define DESH_TRY_ACQUIRE(result, ...) \
  DESH_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
/// Function must be called WITHOUT the listed capabilities (deadlock guard).
#define DESH_EXCLUDES(...) DESH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Returns a reference to the capability guarding the annotated object.
#define DESH_RETURN_CAPABILITY(x) DESH_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch for functions whose locking discipline the analysis cannot
/// express (document why at every use site).
#define DESH_NO_THREAD_SAFETY_ANALYSIS \
  DESH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace desh::util {

/// Annotated exclusive mutex. Same semantics and cost as the std::mutex it
/// wraps; lock()/unlock()/try_lock() satisfy the Cpp17Lockable requirements
/// (tests/test_sync.cpp pins the equivalence).
class DESH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DESH_ACQUIRE() { mu_.lock(); }
  void unlock() DESH_RELEASE() { mu_.unlock(); }
  bool try_lock() DESH_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle, for CondVar's native wait. Intentionally not
  /// public API for locking — going around the annotations defeats them.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;  // desh-lint: allow(raw-sync) the one wrapped instance
};

/// RAII lock for the plain acquire-in-ctor / release-in-dtor case —
/// std::lock_guard with the scoped-capability annotation.
class DESH_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) DESH_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() DESH_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock that can be dropped and re-taken mid-scope (FileSink's flush
/// loop) and that CondVar can wait on — std::unique_lock, annotated. Always
/// constructed locked.
class DESH_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) DESH_ACQUIRE(mu)
      : mu_(mu), lk_(mu.native()) {}
  ~UniqueLock() DESH_RELEASE() {}  // lk_ releases iff still held

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void unlock() DESH_RELEASE() { lk_.unlock(); }
  void lock() DESH_ACQUIRE() { lk_.lock(); }

  /// The wrapped handle, for CondVar only.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  Mutex& mu_;
  std::unique_lock<std::mutex> lk_;  // desh-lint: allow(raw-sync) wrapped
};

/// Condition variable over Mutex/UniqueLock. No predicate overloads on
/// purpose: a predicate lambda is analyzed as its own function, where Clang
/// cannot see the held lock, so guarded reads inside it would warn. Callers
/// write the standard inline loop instead, which the analysis understands:
///
///   util::UniqueLock lk(mu_);
///   while (!condition_involving_guarded_state()) cv_.wait(lk);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lk` and blocks; re-acquired on return. Spurious
  /// wakeups happen — always wait in a predicate loop.
  void wait(UniqueLock& lk) { cv_.wait(lk.native()); }

  /// wait() with a timeout; returns false on timeout, true when notified
  /// (or spuriously woken) earlier.
  template <typename Rep, typename Period>
  bool wait_for(UniqueLock& lk,
                const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lk.native(), timeout) == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // desh-lint: allow(raw-sync) wrapped
};

}  // namespace desh::util
