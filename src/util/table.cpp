#include "util/table.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace desh::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(),
          "TextTable::add_row: column count mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TextTable::print(std::ostream& os) const { os << render(); }

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void TextTable::write_csv(const std::string& path) const {
  std::ofstream os(path);
  // desh-lint: allow(throw-discipline) legacy throwing I/O helper
  if (!os) throw IoError("TextTable::write_csv: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  // desh-lint: allow(throw-discipline) legacy throwing I/O helper
  if (!os) throw IoError("TextTable::write_csv: write failed for " + path);
}

}  // namespace desh::util
