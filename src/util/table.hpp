// Console table and CSV writers used by the bench harness to print the
// paper's tables/figures as aligned text plus machine-readable CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace desh::util {

/// Accumulates rows of strings and renders them as an ASCII-aligned table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders with column alignment and a header separator.
  std::string render() const;
  void print(std::ostream& os) const;

  /// Writes the same data as CSV to `path`; throws IoError on failure.
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace desh::util
