#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "obs/catalog.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

#ifndef DESH_DEFAULT_THREADS
#define DESH_DEFAULT_THREADS 0
#endif

namespace desh::util {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DESH_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  if (DESH_DEFAULT_THREADS > 0)
    return static_cast<std::size_t>(DESH_DEFAULT_THREADS);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads)
    : worker_count_(resolve_threads(threads)) {
  obs::registry().gauge(obs::kPoolWorkers)
      .set(static_cast<double>(worker_count_));
  worker_busy_.reserve(worker_count_);
  for (std::size_t w = 0; w < worker_count_; ++w)
    worker_busy_.push_back(&obs::registry().gauge(
        obs::kPoolWorkerBusySeconds, "worker", std::to_string(w)));
  threads_.reserve(worker_count_ - 1);
  for (std::size_t w = 1; w < worker_count_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  while (true) {
    std::function<void(std::size_t)> task;
    {
      UniqueLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker_id);
  }
}

void ThreadPool::drain(ParallelJob& job, std::size_t worker_id) {
  Stopwatch busy;
  while (true) {
    // ordering: relaxed — `next` is only a work-claim ticket counter; the
    // job's body/n fields were published by the queue mutex at enqueue.
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    try {
      (*job.body)(i, worker_id);
    } catch (...) {
      LockGuard lock(job.mu);
      if (!job.error) job.error = std::current_exception();
    }
    // ordering: acq_rel — the release half publishes this item's body
    // writes to the parallel_for caller (whose wait loop loads `done` with
    // acquire); the acquire half chains earlier items through the counter's
    // release sequence.
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      LockGuard lock(job.mu);
      job.cv.notify_all();
    }
  }
  worker_busy_[worker_id]->add(busy.elapsed_seconds());
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  static obs::Counter& jobs_total =
      obs::registry().counter(obs::kPoolParallelJobsTotal);
  static obs::Histogram& job_seconds =
      obs::registry().histogram(obs::kPoolParallelForSeconds);
  Stopwatch sw;
  if (worker_count_ == 1 || n == 1) {
    // Serial mode: identical decomposition, no threads, exceptions propagate
    // naturally.
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    worker_busy_[0]->add(sw.elapsed_seconds());
    jobs_total.add();
    job_seconds.observe(sw.elapsed_seconds());
    return;
  }
  auto job = std::make_shared<ParallelJob>();
  job->body = &body;
  job->n = n;
  {
    LockGuard lock(mu_);
    require(!stopping_, "ThreadPool::parallel_for: pool is shutting down");
    // One helper entry per pool thread; each drains items until none remain,
    // so idle threads cost one no-op pass and busy ones share the range.
    for (std::size_t w = 1; w < worker_count_; ++w)
      queue_.emplace_back(
          [this, job](std::size_t worker_id) { drain(*job, worker_id); });
  }
  cv_.notify_all();
  drain(*job, 0);  // the caller is worker 0
  {
    UniqueLock lock(job->mu);
    // ordering: acquire — pairs with drain()'s acq_rel fetch_add so every
    // worker's body writes happen-before the caller returns.
    while (job->done.load(std::memory_order_acquire) != job->n)
      job->cv.wait(lock);
    if (job->error) std::rethrow_exception(job->error);
  }
  jobs_total.add();
  job_seconds.observe(sw.elapsed_seconds());
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  static obs::Counter& tasks_total =
      obs::registry().counter(obs::kPoolTasksTotal);
  static obs::Histogram& task_seconds =
      obs::registry().histogram(obs::kPoolTaskSeconds);
  static obs::Histogram& queue_wait =
      obs::registry().histogram(obs::kPoolQueueWaitSeconds);
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  if (worker_count_ == 1) {
    Stopwatch sw;
    (*packaged)();
    queue_wait.observe(0.0);  // inline execution never queues
    task_seconds.observe(sw.elapsed_seconds());
    worker_busy_[0]->add(sw.elapsed_seconds());
    tasks_total.add();
    return future;
  }
  {
    LockGuard lock(mu_);
    require(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.emplace_back([this, packaged,
                         enqueued = Stopwatch()](std::size_t worker_id) {
      queue_wait.observe(enqueued.elapsed_seconds());
      Stopwatch sw;
      (*packaged)();
      task_seconds.observe(sw.elapsed_seconds());
      worker_busy_[worker_id]->add(sw.elapsed_seconds());
      tasks_total.add();
    });
  }
  cv_.notify_one();
  return future;
}

}  // namespace desh::util
