// Fixed-size worker pool shared by the data-parallel training engine and the
// sharded streaming/inference paths.
//
// Design constraints (see DESIGN.md "Threading model"):
//  - the pool never decides *what* is computed, only *where*: all work is
//    expressed as index ranges whose decomposition is fixed by the caller, so
//    results are bit-identical at any worker count;
//  - the calling thread participates as worker 0, so a pool of size 1 spawns
//    no threads at all and executes the exact same code path serially;
//  - exceptions thrown by loop bodies are captured and the first one is
//    rethrown on the calling thread after the loop completes.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace desh::util {

/// Resolves a requested worker count: `requested` > 0 wins; otherwise the
/// DESH_THREADS environment variable; otherwise the compile-time default
/// (CMake -DDESH_THREADS=N); otherwise std::thread::hardware_concurrency().
/// Always returns at least 1.
std::size_t resolve_threads(std::size_t requested = 0);

class ThreadPool {
 public:
  /// Creates a pool of `threads` workers (0 = resolve_threads()). The pool
  /// spawns `threads - 1` OS threads; the caller of parallel_for is the
  /// remaining worker.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count including the calling thread.
  std::size_t size() const { return worker_count_; }

  /// Runs body(index, worker_id) for every index in [0, n). Work items are
  /// claimed dynamically; worker_id is in [0, size()) and is stable for the
  /// duration of one item (use it to pick per-worker scratch state). Blocks
  /// until all n items finished; rethrows the first body exception.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Enqueues one task for any pool worker (the caller does not participate).
  /// On a 1-worker pool the task runs inline. The future carries exceptions.
  std::future<void> submit(std::function<void()> task);

 private:
  struct ParallelJob {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    Mutex mu;
    CondVar cv;
    std::exception_ptr error DESH_GUARDED_BY(mu);  // first exception only
  };

  void worker_loop(std::size_t worker_id);
  void drain(ParallelJob& job, std::size_t worker_id);

  std::size_t worker_count_ = 1;
  /// Per-worker-slot busy-time gauges, cached at construction so the hot
  /// paths never take the registry lock (telemetry observes, never steers:
  /// work claiming is unchanged, so determinism guarantees hold).
  std::vector<obs::Gauge*> worker_busy_;
  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void(std::size_t)>> queue_  // arg: worker_id
      DESH_GUARDED_BY(mu_);
  bool stopping_ DESH_GUARDED_BY(mu_) = false;
};

}  // namespace desh::util
