#include "wal/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "wal/codec.hpp"
#include "wal/crash_points.hpp"

namespace desh::wal {
namespace {

constexpr std::string_view kMagic = "DESHCKPT";
constexpr std::string_view kPrefix = "ckpt-";
constexpr std::string_view kSuffix = ".ckpt";
constexpr std::size_t kSeqDigits = 20;

std::string checkpoint_name(std::uint64_t seq) {
  std::string digits = std::to_string(seq);
  std::string name(kPrefix);
  name.append(kSeqDigits - digits.size(), '0');
  name += digits;
  name += kSuffix;
  return name;
}

/// Parses `ckpt-<20 digits>.ckpt`; returns false for anything else.
bool parse_checkpoint_name(const std::string& name, std::uint64_t& seq) {
  if (name.size() != kPrefix.size() + kSeqDigits + kSuffix.size())
    return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0)
    return false;
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kSeqDigits; ++i) {
    const char c = name[kPrefix.size() + i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  seq = value;
  return true;
}

core::Error io_error(const std::string& what,
                     const std::filesystem::path& path) {
  return core::Error{core::ErrorCode::kIo,
                     what + " " + path.string() + ": " +
                         std::strerror(errno)};
}

}  // namespace

const std::string* CheckpointData::find(std::string_view name) const {
  for (const auto& [section_name, blob] : sections)
    if (section_name == name) return &blob;
  return nullptr;
}

std::string encode_checkpoint(const CheckpointData& data) {
  std::string out;
  out.append(kMagic);
  put_u32(out, kCheckpointFormatVersion);
  put_u64(out, data.seq);
  put_u32(out, static_cast<std::uint32_t>(data.sections.size()));
  for (const auto& [name, blob] : data.sections) {
    put_bytes(out, name);
    put_bytes(out, blob);
  }
  put_u32(out, crc32(out));
  return out;
}

core::Expected<CheckpointData> decode_checkpoint(std::string_view bytes) {
  const auto corrupt = [](const char* what) {
    return core::Error{core::ErrorCode::kFormatVersion,
                       std::string("checkpoint: ") + what};
  };
  if (bytes.size() < kMagic.size() + 4 + 8 + 4 + 4)
    return corrupt("file too short");
  if (bytes.substr(0, kMagic.size()) != kMagic)
    return corrupt("bad magic");
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  ByteReader trailer(bytes.substr(bytes.size() - 4));
  std::uint32_t expect_crc = 0;
  if (!trailer.get_u32(expect_crc) || crc32(body) != expect_crc)
    return corrupt("CRC mismatch");
  ByteReader reader(body.substr(kMagic.size()));
  CheckpointData data;
  std::uint32_t format = 0;
  std::uint32_t n_sections = 0;
  if (!reader.get_u32(format) || format != kCheckpointFormatVersion)
    return corrupt("unsupported format version");
  if (!reader.get_u64(data.seq) || !reader.get_u32(n_sections))
    return corrupt("truncated header");
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    std::string name;
    std::string blob;
    if (!reader.get_bytes(name) || !reader.get_bytes(blob))
      return corrupt("truncated section");
    data.sections.emplace_back(std::move(name), std::move(blob));
  }
  if (!reader.done()) return corrupt("trailing bytes");
  return data;
}

core::Expected<void> write_checkpoint(const std::filesystem::path& dir,
                                      const CheckpointData& data) {
  const std::string bytes = encode_checkpoint(data);
  const std::filesystem::path final_path = dir / checkpoint_name(data.seq);
  const std::filesystem::path tmp_path =
      final_path.string() + ".tmp";
  // POSIX fd I/O so the bytes are handed to the kernel before the rename
  // is attempted; an abrupt exit at the crash point below must leave the
  // complete temp file behind, not a libc-buffered fraction of it.
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) return io_error("open", tmp_path);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const core::Error err = io_error("write", tmp_path);
      ::close(fd);
      return err;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0) return io_error("close", tmp_path);
  crash_point("wal.checkpoint.rename");
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec)
    return core::Error{core::ErrorCode::kIo,
                       "rename " + tmp_path.string() + " -> " +
                           final_path.string() + ": " + ec.message()};
  return {};
}

core::Expected<CheckpointData> read_checkpoint(
    const std::filesystem::path& file) {
  std::ifstream is(file, std::ios::binary);
  if (!is)
    return core::Error{core::ErrorCode::kIo,
                       "cannot open checkpoint " + file.string()};
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return decode_checkpoint(buffer.str());
}

std::vector<std::pair<std::uint64_t, std::filesystem::path>> list_checkpoints(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t seq = 0;
    if (parse_checkpoint_name(entry.path().filename().string(), seq))
      found.emplace_back(seq, entry.path());
  }
  std::sort(found.begin(), found.end());
  return found;
}

core::Expected<CheckpointData> load_latest_checkpoint(
    const std::filesystem::path& dir,
    const std::function<bool(const CheckpointData&)>& acceptable) {
  auto checkpoints = list_checkpoints(dir);
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    core::Expected<CheckpointData> loaded = read_checkpoint(it->second);
    if (!loaded.ok()) continue;  // corrupt — fall back to an older one
    if (acceptable && !acceptable(loaded.value())) continue;
    return loaded;
  }
  // No usable checkpoint: recovery starts from an empty state at seq 0.
  return CheckpointData{};
}

std::uint64_t gc_checkpoints(const std::filesystem::path& dir,
                             std::size_t keep) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp")
      std::filesystem::remove(entry.path(), ec);
  }
  auto checkpoints = list_checkpoints(dir);
  if (keep == 0) keep = 1;
  while (checkpoints.size() > keep) {
    std::filesystem::remove(checkpoints.front().second, ec);
    checkpoints.erase(checkpoints.begin());
  }
  return checkpoints.empty() ? 0 : checkpoints.front().first;
}

}  // namespace desh::wal
