// Fuzzy checkpoints of recoverable state (DESIGN.md "Durability").
//
// A checkpoint captures the full recoverable state as of WAL sequence
// number `seq`: every record with seq' <= seq is folded into the blobs,
// every record after it must be replayed from the log tail. Sections are
// opaque named blobs ("monitor", "adapt", ...) so subsystems own their own
// encodings; the checkpoint layer only frames them.
//
// File format (`ckpt-<seq, zero-padded to 20>.ckpt`):
//
//   "DESHCKPT" [u32 format=1] [u64 seq] [u32 n_sections]
//   n_sections x { [u32 name_len][name] [u32 blob_len][blob] }
//   [u32 crc32 of everything before it]
//
// Durability idiom is write-then-rename, same as the model registry's
// MANIFEST: the bytes land in `<file>.tmp`, are closed, then renamed into
// place. A crash before the rename leaves only a `.tmp` orphan that the
// next GC sweep removes; a crash after it leaves a whole, CRC-valid file.
// There is never a moment where a reader can observe a half-written
// checkpoint under its final name.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/expected.hpp"

namespace desh::wal {

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

struct CheckpointData {
  std::uint64_t seq = 0;
  /// (section name, opaque blob), in write order.
  std::vector<std::pair<std::string, std::string>> sections;

  /// Returns the blob for `name`, or nullptr if the section is absent.
  const std::string* find(std::string_view name) const;
};

/// Serializes `data` (without the filename) into the on-disk byte layout.
std::string encode_checkpoint(const CheckpointData& data);

/// Inverse of encode_checkpoint. Total: arbitrary bytes yield an error,
/// never a crash or a throw.
core::Expected<CheckpointData> decode_checkpoint(std::string_view bytes);

/// Writes `data` to `dir/ckpt-<seq>.ckpt` via write-then-rename.
core::Expected<void> write_checkpoint(const std::filesystem::path& dir,
                                      const CheckpointData& data);

/// Reads and validates one checkpoint file.
core::Expected<CheckpointData> read_checkpoint(
    const std::filesystem::path& file);

/// All well-named checkpoint files in `dir`, ascending by seq. Files that
/// merely *look* like checkpoints are included; validity is decided by
/// read_checkpoint.
std::vector<std::pair<std::uint64_t, std::filesystem::path>> list_checkpoints(
    const std::filesystem::path& dir);

/// Loads the newest checkpoint in `dir` that both parses and satisfies
/// `acceptable` (e.g. "the monitor blob matches this pipeline's vocab").
/// Older checkpoints are tried in turn — a corrupt or incompatible newest
/// checkpoint degrades recovery (longer replay), never blocks it. Returns
/// an empty optional-like Expected carrying seq==0 and no sections when no
/// usable checkpoint exists.
core::Expected<CheckpointData> load_latest_checkpoint(
    const std::filesystem::path& dir,
    const std::function<bool(const CheckpointData&)>& acceptable);

/// Deletes all but the newest `keep` checkpoints plus any `.tmp` orphans
/// from interrupted writes. Returns the smallest surviving checkpoint seq
/// (0 when none survive) so the log can drop fully-covered segments.
std::uint64_t gc_checkpoints(const std::filesystem::path& dir,
                             std::size_t keep);

}  // namespace desh::wal
