#include "wal/codec.hpp"

#include <array>

namespace desh::wal {
namespace {

/// CRC32 lookup table for the IEEE polynomial, built once at startup.
std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> kTable = build_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes)
    c = kTable[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void encode_frame(std::uint64_t seq, const logs::LogRecord& record,
                  std::string& out) {
  std::string payload;
  payload.reserve(29 + record.message.size());
  put_u8(payload, kEventFrame);
  put_u64(payload, seq);
  put_f64(payload, record.timestamp);
  put_u16(payload, record.node.cabinet_x);
  put_u16(payload, record.node.cabinet_y);
  put_u8(payload, record.node.chassis);
  put_u8(payload, record.node.slot);
  put_u8(payload, record.node.node);
  put_bytes(payload, record.message);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.append(payload);
}

DecodeResult decode_frame(std::string_view bytes) {
  DecodeResult result;
  ByteReader header(bytes);
  std::uint32_t payload_len = 0;
  std::uint32_t expect_crc = 0;
  if (!header.get_u32(payload_len) || !header.get_u32(expect_crc)) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  if (payload_len > kMaxFramePayload) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }
  if (bytes.size() - 8 < payload_len) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  const std::string_view payload = bytes.substr(8, payload_len);
  if (crc32(payload) != expect_crc) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }
  ByteReader body(payload);
  std::uint8_t type = 0;
  EventFrame frame;
  const bool ok = body.get_u8(type) && type == kEventFrame &&
                  body.get_u64(frame.seq) &&
                  body.get_f64(frame.record.timestamp) &&
                  body.get_u16(frame.record.node.cabinet_x) &&
                  body.get_u16(frame.record.node.cabinet_y) &&
                  body.get_u8(frame.record.node.chassis) &&
                  body.get_u8(frame.record.node.slot) &&
                  body.get_u8(frame.record.node.node) &&
                  body.get_bytes(frame.record.message) && body.done();
  if (!ok) {
    // The CRC matched but the body doesn't parse as an event frame — an
    // unknown type tag or internal inconsistency. Corruption either way.
    result.status = DecodeStatus::kCorrupt;
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.consumed = 8 + payload_len;
  result.frame = std::move(frame);
  return result;
}

}  // namespace desh::wal
